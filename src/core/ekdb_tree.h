// The eps-k-d-B tree: the paper's main-memory index for high-dimensional
// similarity joins.
//
// Construction: a node at depth k that holds more than leaf_threshold points
// splits them on dimension order[k] into *global* stripes of width
// w = 1/floor(1/eps) >= eps.  Because stripes are global (the grid is the
// same in every subtree and in every tree built with the same epsilon), the
// join traversal only ever has to pair a child stripe with itself and its
// two index-neighbours — points two or more stripes apart differ by more
// than w >= eps in that coordinate and can never join under any L_p metric.
// Leaves keep their point ids sorted on the first dimension unused on their
// root-to-leaf path, which is what the sliding-window leaf join sweeps on.

#ifndef SIMJOIN_CORE_EKDB_TREE_H_
#define SIMJOIN_CORE_EKDB_TREE_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/bounding_box.h"
#include "common/dataset.h"
#include "common/status.h"
#include "core/ekdb_config.h"

namespace simjoin {

struct JoinStats;
class TaskGroup;
class ThreadPool;

/// One node of an eps-k-d-B tree.  Leaves own point ids; internal nodes own
/// a sparse, stripe-sorted child list.  Every node carries the exact
/// bounding box of the points below it (used for join pruning).
struct EkdbNode {
  /// Stripe-index-sorted children; only non-empty stripes are materialised.
  std::vector<std::pair<uint32_t, std::unique_ptr<EkdbNode>>> children;

  /// Leaf payload: point ids sorted ascending by coordinate sort_dim.
  std::vector<PointId> points;

  /// Exact bounding box of all points in this subtree.
  BoundingBox bbox;

  /// Depth of this node (root = 0); equals the number of dimensions already
  /// consumed on the path from the root.
  uint32_t depth = 0;

  /// Leaf only: the dimension its point list is sorted on.
  uint32_t sort_dim = 0;

  bool is_leaf() const { return children.empty(); }

  /// Number of points in the subtree.
  size_t SubtreeSize() const;
};

/// Aggregate structural statistics of a tree.  The pointer-representation
/// fields are filled by EkdbTree::ComputeStats; the flat_* fields by
/// FlatEkdbTree::FillStats, so the R8 memory experiment can report both
/// representations of the same index side by side.
struct EkdbTreeStats {
  uint64_t nodes = 0;
  uint64_t leaves = 0;
  uint64_t max_depth = 0;
  uint64_t total_points = 0;
  double avg_leaf_size = 0.0;
  uint64_t max_leaf_size = 0;
  uint64_t memory_bytes = 0;      ///< pointer tree: nodes + id lists + boxes
  double bytes_per_point = 0.0;   ///< memory_bytes / total_points

  uint64_t flat_node_bytes = 0;   ///< flat tree: node array + bbox planes
  uint64_t flat_arena_bytes = 0;  ///< flat tree: coordinate arena + id remap
  double flat_bytes_per_point = 0.0;  ///< (node + arena bytes) / points
};

/// An eps-k-d-B tree over a dataset it does not own.  The dataset must stay
/// alive and unmodified for the lifetime of the tree.
class EkdbTree {
 public:
  /// Builds a tree.  Fails if the config is invalid or any coordinate lies
  /// outside [0, 1] (normalise with Dataset::NormalizeToUnitCube first).
  static Result<EkdbTree> Build(const Dataset& dataset, const EkdbConfig& config);

  /// Builds the identical tree using the shared work-stealing pool: large
  /// nodes partition their points into stripes in parallel chunks (merged
  /// in chunk order, so bucket contents match the sequential pass exactly)
  /// and child subtrees build as recursive tasks that keep splitting while
  /// idle workers exist.  num_threads == 0 uses hardware concurrency.  The
  /// resulting structure is bit-identical to Build()'s.
  static Result<EkdbTree> BuildParallel(const Dataset& dataset,
                                        const EkdbConfig& config,
                                        size_t num_threads = 0);

  /// Builds the subtree a full Build over a larger dataset would create at
  /// `start_depth` for exactly these points: the root starts at that depth,
  /// so splits consume dim_order[start_depth], dim_order[start_depth+1], …
  /// and leaf sort dimensions match the full build's.  Used by the external
  /// bulk loader (core/segment_builder.h), which partitions the top-level
  /// stripe outside the tree and stitches per-stripe subtrees back together
  /// bit-identically to an in-memory build.
  static Result<EkdbTree> BuildSubtree(const Dataset& dataset,
                                       const EkdbConfig& config,
                                       uint32_t start_depth);

  const EkdbNode* root() const { return root_.get(); }
  const Dataset& dataset() const { return *dataset_; }
  const EkdbConfig& config() const { return config_; }

  /// Resolved dimension consumption order.
  const std::vector<uint32_t>& dim_order() const { return dim_order_; }

  /// Stripe grid parameters (identical for all trees with equal epsilon).
  size_t num_stripes() const { return num_stripes_; }
  double stripe_width() const { return stripe_width_; }

  /// Global stripe index of a coordinate value in [0, 1].
  uint32_t StripeIndex(float value) const;

  /// Inserts one point of the dataset (by row id) into the tree,
  /// maintaining every structural invariant (stripe containment, bounding
  /// boxes, leaf sort order, splitting).  Intended for incremental
  /// maintenance: append the point to the dataset first, then Insert its
  /// id.  Fails if the id is out of range, already beyond [0,1]^d, or was
  /// already inserted (not checked — inserting an id twice is a caller
  /// bug that double-reports pairs).
  Status Insert(PointId id);

  /// Removes one previously inserted point (by row id).  The dataset row
  /// must still hold the point's coordinates when Remove is called (they
  /// are needed to locate it); overwrite the row only afterwards.  Bounding
  /// boxes along the path are recomputed exactly and emptied nodes are
  /// unlinked.  Returns NotFound if the id is not in the tree.
  Status Remove(PointId id);

  /// Collects the ids of all indexed points within eps_query of the query
  /// point under the tree's metric.  eps_query must be in
  /// (0, config().epsilon]: the stripe grid only supports radii up to the
  /// epsilon the tree was built for.  Leaf scans run through the batched
  /// epsilon filter (BatchDistanceKernel) a candidate tile at a time; when
  /// stats is provided the work counters — including simd_batches and
  /// scalar_fallbacks — are accumulated into it.
  Status RangeQuery(const float* query, double eps_query,
                    std::vector<PointId>* out,
                    JoinStats* stats = nullptr) const;

  /// Persists the index structure (config, dimension order, nodes, point
  /// ids) to a binary file.  The dataset itself is NOT stored — persist it
  /// separately (e.g. WriteBinaryDataset) and pass it to Load.
  Status Save(const std::string& path) const;

  /// Reconstructs a tree previously Save()d, re-bound to the given dataset
  /// (which must be the dataset the tree was built over: same size and
  /// dimensionality; point ids are validated, bounding boxes are recomputed
  /// from the data).  The dataset must outlive the returned tree.
  static Result<EkdbTree> Load(const Dataset& dataset, const std::string& path);

  /// Walks the tree and gathers structural statistics.
  EkdbTreeStats ComputeStats() const;

  /// True iff the two trees were built with join-compatible configurations
  /// (same epsilon grid, metric, dimensionality, and dimension order).
  static bool JoinCompatible(const EkdbTree& a, const EkdbTree& b);

  // Movable, not copyable (owns the node arena).
  EkdbTree(EkdbTree&&) = default;
  EkdbTree& operator=(EkdbTree&&) = default;
  EkdbTree(const EkdbTree&) = delete;
  EkdbTree& operator=(const EkdbTree&) = delete;

 private:
  EkdbTree(const Dataset* dataset, EkdbConfig config);

  std::unique_ptr<EkdbNode> BuildNode(std::vector<PointId> ids, uint32_t depth);

  /// Parallel mirror of BuildNode: same structure, but the stripe partition
  /// chunks across workers for large nodes and child subtrees become pool
  /// tasks (counted against `group`) while idle workers exist.
  std::unique_ptr<EkdbNode> BuildNodeParallel(std::vector<PointId> ids,
                                              uint32_t depth, ThreadPool& pool,
                                              TaskGroup& group);

  const Dataset* dataset_;
  EkdbConfig config_;
  std::vector<uint32_t> dim_order_;
  size_t num_stripes_ = 1;
  double stripe_width_ = 1.0;
  std::unique_ptr<EkdbNode> root_;
};

}  // namespace simjoin

#endif  // SIMJOIN_CORE_EKDB_TREE_H_
