// Fault-in serving backend over a memory-mapped index segment.
//
// MmapEkdbBackend is the out-of-core twin of EkdbFlatBackend: it answers the
// same queries through the same FlatEkdbTree traversal code, but its node
// array, bbox planes, arena, and dataset rows are views into a MappedSegment
// rather than heap vectors.  Nothing is loaded eagerly — pages fault in as
// traversals touch them, and the OS page cache owns residency, so the heap
// cost of a served index collapses to a few hundred bytes of bookkeeping.
// That is what lets the registry keep indexes far larger than its byte
// budget serviceable: eviction unmaps the segment (dropping resident pages),
// fault-in re-opens it, and neither path rebuilds anything.
//
// Self-joins on a mapped backend may exceed memory if run in-core over a
// huge arena; above spill_join_bytes the backend routes the join through the
// out-of-core partition join (core/external_join.h), feeding it the dataset
// section of its own segment file as a raw region — no copy, bounded
// resident footprint, pair set identical to the in-core join.

#ifndef SIMJOIN_CORE_SEGMENT_BACKEND_H_
#define SIMJOIN_CORE_SEGMENT_BACKEND_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "core/index_backend.h"
#include "core/segment.h"

namespace simjoin {

/// Serving knobs of a mapped backend.
struct MmapBackendOptions {
  /// Self-joins on segments mapping more than this many bytes run through
  /// the out-of-core partition join instead of the in-core flat join.
  uint64_t spill_join_bytes = uint64_t{512} << 20;

  /// Temp directory for spilled join partitions; empty uses the segment
  /// file's directory.
  std::string spill_temp_dir;

  /// Resident point budget handed to the out-of-core join when spilling.
  size_t spill_memory_budget_points = size_t{1} << 17;

  /// Multiplier the planner applies to this backend's probed query cost
  /// while the mapping is cold (no queries served yet): the first
  /// traversals pay page faults, not just arithmetic.
  double cold_cost_penalty = 4.0;
};

/// IndexBackend over a memory-mapped segment file.  kind() reports
/// kEkdbFlat — it IS the flat tree, just view-backed — and mapped() reports
/// true so the planner and the registry can account for fault-in costs.
class MmapEkdbBackend final : public IndexBackend {
 public:
  /// Maps the segment at `path` and wraps it for serving.
  static Result<std::unique_ptr<MmapEkdbBackend>> Open(
      const std::string& path, const MmapBackendOptions& options = {});

  BackendKind kind() const override { return BackendKind::kEkdbFlat; }
  bool mapped() const override { return true; }
  const EkdbConfig& config() const override { return index_.tree->config(); }
  const Dataset& dataset() const override { return *index_.dataset; }
  /// Heap bytes only: the mapping's bytes live in the page cache and are
  /// reported separately (mapped_bytes / ResidentBytes).
  uint64_t index_bytes() const override;
  bool exact() const override { return true; }
  bool supports_self_join() const override { return true; }
  Status ValidateQueryEpsilon(double eps_query) const override {
    return index_.tree->ValidateQueryEpsilon(eps_query);
  }
  Status RangeQuery(const float* query, double eps_query,
                    std::vector<PointId>* out, JoinStats* stats,
                    double* recall_est) const override;
  Status RangeQueryBatch(const RangeQuerySpec* specs, size_t count,
                         std::vector<std::vector<PointId>>* results,
                         std::vector<JoinStats>* stats,
                         std::vector<double>* recall_ests) const override;
  /// In-core flat self-join below spill_join_bytes; out-of-core partition
  /// join over the segment's own dataset section above it.  Both emit the
  /// identical canonical pair set.
  Status SelfJoin(double eps_query, size_t num_threads, PairSink* sink,
                  JoinStats* stats) const override;
  double EstimatedQueryCost(double eps_query,
                            double expected_neighbors) const override;
  const FlatEkdbTree* flat_tree() const override { return index_.tree.get(); }

  // -- segment introspection ----------------------------------------------

  const MappedSegment& segment() const { return *index_.segment; }
  const std::string& segment_path() const { return index_.segment->path(); }
  uint64_t mapped_bytes() const { return index_.segment->mapped_bytes(); }
  /// Pages of the mapping currently resident (mincore sample).
  uint64_t resident_bytes() const { return index_.segment->ResidentBytes(); }
  /// Queries served since the mapping was opened; 0 means cold (the
  /// planner's cold-read penalty applies).
  uint64_t queries_served() const {
    return queries_served_.load(std::memory_order_relaxed);
  }

 private:
  MmapEkdbBackend(SegmentIndex index, MmapBackendOptions options)
      : index_(std::move(index)), options_(std::move(options)) {}

  SegmentIndex index_;
  MmapBackendOptions options_;
  mutable std::atomic<uint64_t> queries_served_{0};
};

}  // namespace simjoin

#endif  // SIMJOIN_CORE_SEGMENT_BACKEND_H_
