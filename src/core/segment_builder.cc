#include "core/segment_builder.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <numeric>
#include <utility>
#include <vector>

#include "common/binary_io.h"
#include "common/dataset.h"
#include "core/ekdb_flat.h"
#include "core/ekdb_tree.h"
#include "core/segment.h"
#include "core/segment_internal.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace simjoin {

namespace {

namespace si = segment_internal;

obs::Counter* ExternalBuildsCounter() {
  static obs::Counter* const counter =
      obs::GlobalMetrics().GetCounter("segment.external_builds");
  return counter;
}
obs::Histogram* ExternalBuildHistogram() {
  static obs::Histogram* const hist =
      obs::GlobalMetrics().GetHistogram("segment.external_build_us");
  return hist;
}

/// Removes a set of temp files on scope exit (success or failure).
class TempFileSweeper {
 public:
  ~TempFileSweeper() {
    for (const std::string& path : paths_) ::unlink(path.c_str());
  }
  const std::string& Track(std::string path) {
    paths_.push_back(std::move(path));
    return paths_.back();
  }

 private:
  std::vector<std::string> paths_;
};

std::string DirOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

/// Top-level stripe of a coordinate — must match FlatEkdbTree::StripeIndex /
/// EkdbTree::StripeIndex exactly (same clamp, same double arithmetic) or the
/// external partition diverges from the in-memory split.
uint32_t StripeIndexOf(float value, double stripe_width, size_t num_stripes) {
  if (value <= 0.0f) return 0;
  const auto idx =
      static_cast<size_t>(static_cast<double>(value) / stripe_width);
  return static_cast<uint32_t>(std::min(idx, num_stripes - 1));
}

/// One pass-1 record: (top-level stripe, original row id, coordinates).
/// Stored on disk exactly in this order, coords inline after the two ids.
struct RunRecordHeader {
  uint32_t stripe;
  uint32_t id;
};

/// Streaming reader over one sorted run file.
class RunCursor {
 public:
  Status Open(const std::string& path, size_t dims) {
    dims_ = dims;
    coords_.resize(dims);
    in_.open(path, std::ios::binary);
    if (!in_.is_open()) {
      return Status::IoError("cannot reopen run file '" + path + "'");
    }
    return Advance();
  }

  bool exhausted() const { return exhausted_; }
  uint32_t stripe() const { return header_.stripe; }
  uint32_t id() const { return header_.id; }
  const float* coords() const { return coords_.data(); }

  Status Advance() {
    in_.read(reinterpret_cast<char*>(&header_), sizeof(header_));
    if (in_.gcount() == 0 && in_.eof()) {
      exhausted_ = true;
      return Status::OK();
    }
    if (static_cast<size_t>(in_.gcount()) != sizeof(header_)) {
      return Status::IoError("short read from sorted run file");
    }
    in_.read(reinterpret_cast<char*>(coords_.data()),
             static_cast<std::streamsize>(dims_ * sizeof(float)));
    if (static_cast<size_t>(in_.gcount()) != dims_ * sizeof(float)) {
      return Status::IoError("short read from sorted run file");
    }
    return Status::OK();
  }

 private:
  std::ifstream in_;
  RunRecordHeader header_{0, 0};
  std::vector<float> coords_;
  size_t dims_ = 0;
  bool exhausted_ = false;
};

/// Node metadata of one flattened per-stripe subtree, kept in memory until
/// assembly.  Arena ranges are already rebased to global offsets and the
/// fragment root's stripe field is already patched; children_begin values
/// are still fragment-local node indices.
struct Fragment {
  uint32_t top_stripe = 0;
  std::vector<FlatEkdbNode> nodes;
  std::vector<float> bbox_lo;
  std::vector<float> bbox_hi;
  /// level_begin[d] = first node index whose depth is >= d (nodes are BFS
  /// ordered, so depth is non-decreasing); sized max_depth + 2 so
  /// level_begin[d + 1] closes level d.  Fragment roots sit at depth 1.
  std::vector<uint32_t> level_begin;

  uint32_t LevelBegin(uint32_t depth) const {
    return depth < level_begin.size()
               ? level_begin[depth]
               : static_cast<uint32_t>(nodes.size());
  }
  uint32_t LevelCount(uint32_t depth) const {
    return LevelBegin(depth + 1) - LevelBegin(depth);
  }
  uint32_t max_depth() const {
    return static_cast<uint32_t>(level_begin.size()) - 2;
  }
};

/// Buffered sequential writer with a streaming section checksum.
class ChecksummedWriter {
 public:
  Status Open(const std::string& path) {
    out_.open(path, std::ios::binary | std::ios::trunc);
    if (!out_.is_open()) {
      return Status::IoError("cannot create temp file '" + path + "'");
    }
    return Status::OK();
  }
  Status Write(const void* data, size_t len) {
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(len));
    if (!out_.good()) return Status::IoError("temp spill write failed");
    checksum_ = si::Fnv1a64(data, len, checksum_);
    bytes_ += len;
    return Status::OK();
  }
  Status Close() {
    out_.close();
    if (out_.fail()) return Status::IoError("temp spill close failed");
    return Status::OK();
  }
  uint64_t checksum() const { return checksum_; }
  uint64_t bytes() const { return bytes_; }

 private:
  std::ofstream out_;
  uint64_t checksum_ = si::kFnvSeed;
  uint64_t bytes_ = 0;
};

/// Appends `len` bytes to an output stream while threading the section
/// checksum (used for sections whose checksum was not precomputed).
Status StreamWrite(std::ofstream* out, const void* data, size_t len) {
  out->write(static_cast<const char*>(data),
             static_cast<std::streamsize>(len));
  if (!out->good()) return Status::IoError("segment write failed");
  return Status::OK();
}

Status PadTo(std::ofstream* out, uint64_t* written, uint64_t target) {
  static constexpr char kZeros[kSegmentPageBytes] = {};
  while (*written < target) {
    const uint64_t pad = std::min<uint64_t>(sizeof(kZeros), target - *written);
    SIMJOIN_RETURN_NOT_OK(StreamWrite(out, kZeros, pad));
    *written += pad;
  }
  return Status::OK();
}

/// Copies a whole temp spill file into the output stream.
Status CopyFileInto(const std::string& from, std::ofstream* out,
                    uint64_t expected_bytes) {
  std::ifstream in(from, std::ios::binary);
  if (!in.is_open()) {
    return Status::IoError("cannot reopen temp file '" + from + "'");
  }
  std::vector<char> buf(size_t{1} << 20);
  uint64_t copied = 0;
  while (copied < expected_bytes) {
    const uint64_t want =
        std::min<uint64_t>(buf.size(), expected_bytes - copied);
    in.read(buf.data(), static_cast<std::streamsize>(want));
    if (static_cast<uint64_t>(in.gcount()) != want) {
      return Status::IoError("temp file '" + from + "' shorter than expected");
    }
    SIMJOIN_RETURN_NOT_OK(StreamWrite(out, buf.data(), want));
    copied += want;
  }
  return Status::OK();
}

/// Degenerate shapes: build in memory and write the segment directly.
Result<ExternalBuildReport> BuildInMemoryFallback(
    const std::string& dataset_path, const std::string& segment_path,
    const EkdbConfig& config, ExternalBuildReport report) {
  SIMJOIN_ASSIGN_OR_RETURN(Dataset dataset, ReadBinaryDataset(dataset_path));
  SIMJOIN_ASSIGN_OR_RETURN(EkdbTree tree, EkdbTree::Build(dataset, config));
  SIMJOIN_ASSIGN_OR_RETURN(FlatEkdbTree flat, FlatEkdbTree::FromTree(tree));
  SIMJOIN_RETURN_NOT_OK(WriteSegment(flat, segment_path));
  SIMJOIN_ASSIGN_OR_RETURN(SegmentInfo info, ReadSegmentInfo(segment_path));
  report.fallback_in_memory = true;
  report.num_nodes = info.num_nodes;
  report.num_fragments = 0;
  report.peak_stripe_points = report.num_points;
  report.segment_bytes = info.file_bytes;
  return report;
}

}  // namespace

Result<ExternalBuildReport> BuildSegmentExternal(
    const std::string& dataset_path, const std::string& segment_path,
    const ExternalBuildConfig& config) {
  SIMJOIN_TRACE_SPAN("segment.external_build");
  obs::ScopedLatencyTimer timer(ExternalBuildHistogram());
  ExternalBuildsCounter()->Add(1);

  if (config.sort_run_points == 0 || config.io_batch_points == 0) {
    return Status::InvalidArgument(
        "sort_run_points and io_batch_points must be positive");
  }

  BinaryDatasetReader probe;
  SIMJOIN_RETURN_NOT_OK(probe.Open(dataset_path));
  const size_t dims = probe.dims();
  const uint64_t n = probe.total_points();
  if (n == 0) {
    return Status::InvalidArgument(
        "cannot build a segment over an empty dataset");
  }
  if (n > std::numeric_limits<uint32_t>::max()) {
    return Status::InvalidArgument(
        "dataset exceeds the 32-bit point capacity of a segment");
  }
  SIMJOIN_RETURN_NOT_OK(config.ekdb.Validate(dims));

  const std::vector<uint32_t> dim_order = config.ekdb.ResolvedDimOrder(dims);
  const size_t num_stripes = config.ekdb.NumStripes();
  const double stripe_width = config.ekdb.StripeWidth();

  ExternalBuildReport report;
  report.num_points = n;
  report.dims = static_cast<uint32_t>(dims);

  // Shapes whose in-memory root would not split cannot be partitioned into
  // depth-1 subtrees; build them in RAM (they are small or degenerate).
  if (n <= config.ekdb.leaf_threshold || num_stripes < 2 || dims < 2) {
    return BuildInMemoryFallback(dataset_path, segment_path, config.ekdb,
                                 std::move(report));
  }

  const std::string temp_dir =
      config.temp_dir.empty() ? DirOf(segment_path) : config.temp_dir;
  const std::string temp_prefix = temp_dir + "/segbuild." +
                                  std::to_string(::getpid()) + "." +
                                  std::to_string(reinterpret_cast<uintptr_t>(
                                      &report) &
                                                 0xFFFF);
  TempFileSweeper sweeper;

  // ---- Pass 1: form stripe-sorted runs and checksum the dataset section.
  // The dataset section of the final file is the raw rows in original
  // order, which is exactly the stream order of this pass.
  const uint32_t split_dim = dim_order[0];
  uint64_t dataset_checksum = si::kFnvSeed;
  std::vector<std::string> run_paths;
  {
    BinaryDatasetReader reader;
    SIMJOIN_RETURN_NOT_OK(reader.Open(dataset_path));
    std::vector<RunRecordHeader> run_headers;
    std::vector<float> run_coords;
    run_headers.reserve(config.sort_run_points);
    run_coords.reserve(config.sort_run_points * dims);

    auto flush_run = [&]() -> Status {
      if (run_headers.empty()) return Status::OK();
      // Stable by stripe: within a stripe, original row order survives —
      // the same order the in-memory top-level bucketing preserves.
      std::vector<uint32_t> perm(run_headers.size());
      std::iota(perm.begin(), perm.end(), 0u);
      std::stable_sort(perm.begin(), perm.end(),
                       [&](uint32_t a, uint32_t b) {
                         return run_headers[a].stripe < run_headers[b].stripe;
                       });
      const std::string path =
          temp_prefix + ".run" + std::to_string(run_paths.size());
      sweeper.Track(path);
      ChecksummedWriter out;
      SIMJOIN_RETURN_NOT_OK(out.Open(path));
      for (const uint32_t idx : perm) {
        SIMJOIN_RETURN_NOT_OK(
            out.Write(&run_headers[idx], sizeof(RunRecordHeader)));
        SIMJOIN_RETURN_NOT_OK(out.Write(
            run_coords.data() + static_cast<size_t>(idx) * dims,
            dims * sizeof(float)));
      }
      SIMJOIN_RETURN_NOT_OK(out.Close());
      report.temp_bytes_written += out.bytes();
      run_paths.push_back(path);
      run_headers.clear();
      run_coords.clear();
      return Status::OK();
    };

    Dataset batch;
    PointId first_id = 0;
    while (!reader.AtEnd()) {
      SIMJOIN_RETURN_NOT_OK(
          reader.ReadBatch(config.io_batch_points, &batch, &first_id));
      dataset_checksum = si::Fnv1a64(
          batch.data(), batch.size() * dims * sizeof(float), dataset_checksum);
      for (size_t r = 0; r < batch.size(); ++r) {
        const float* row = batch.Row(static_cast<PointId>(r));
        for (size_t d = 0; d < dims; ++d) {
          if (!(row[d] >= 0.0f && row[d] <= 1.0f)) {
            return Status::InvalidArgument(
                "point " + std::to_string(first_id + r) +
                " has a coordinate outside [0, 1]; normalise the dataset "
                "before bulk loading");
          }
        }
        RunRecordHeader header;
        header.stripe = StripeIndexOf(row[split_dim], stripe_width,
                                      num_stripes);
        header.id = first_id + static_cast<PointId>(r);
        run_headers.push_back(header);
        run_coords.insert(run_coords.end(), row, row + dims);
        if (run_headers.size() >= config.sort_run_points) {
          SIMJOIN_RETURN_NOT_OK(flush_run());
        }
      }
    }
    SIMJOIN_RETURN_NOT_OK(flush_run());
  }
  report.num_runs = run_paths.size();

  // ---- Pass 2: k-way merge on (stripe, id); tile one stripe at a time.
  // The arena and id sections of the final file are plain concatenations of
  // the fragments' arenas in stripe order, so both stream straight to temp
  // spill files with running checksums; only node metadata stays in memory.
  const std::string arena_path = sweeper.Track(temp_prefix + ".arena");
  const std::string ids_path = sweeper.Track(temp_prefix + ".ids");
  ChecksummedWriter arena_out;
  ChecksummedWriter ids_out;
  SIMJOIN_RETURN_NOT_OK(arena_out.Open(arena_path));
  SIMJOIN_RETURN_NOT_OK(ids_out.Open(ids_path));

  std::vector<Fragment> fragments;
  uint64_t arena_offset = 0;
  uint64_t total_nodes = 1;  // the synthesised root

  EkdbConfig subtree_config = config.ekdb;
  subtree_config.dim_order = dim_order;

  std::vector<float> stripe_coords;
  std::vector<PointId> stripe_ids;
  std::vector<PointId> translated_ids;

  auto process_stripe = [&](uint32_t stripe) -> Status {
    const size_t m = stripe_ids.size();
    if (m == 0) return Status::OK();
    report.peak_stripe_points =
        std::max<uint64_t>(report.peak_stripe_points, m);

    // Build the subtree the full build would hang under this stripe: local
    // rows are the stripe's points in original row order, so the recursion
    // sees the same sequence (and the same coordinate ties) as the
    // in-memory bucket, making the structure — and every std::sort
    // permutation inside it — identical.
    SIMJOIN_ASSIGN_OR_RETURN(
        Dataset local, Dataset::FromFlat(std::move(stripe_coords), dims));
    SIMJOIN_ASSIGN_OR_RETURN(
        EkdbTree subtree,
        EkdbTree::BuildSubtree(local, subtree_config, /*start_depth=*/1));
    SIMJOIN_ASSIGN_OR_RETURN(FlatEkdbTree flat,
                             FlatEkdbTree::FromTree(subtree));

    SIMJOIN_RETURN_NOT_OK(arena_out.Write(
        flat.arena_data(), static_cast<size_t>(m) * dims * sizeof(float)));
    translated_ids.resize(m);
    for (size_t pos = 0; pos < m; ++pos) {
      translated_ids[pos] = stripe_ids[flat.arena_id(
          static_cast<uint32_t>(pos))];
    }
    SIMJOIN_RETURN_NOT_OK(
        ids_out.Write(translated_ids.data(), m * sizeof(PointId)));

    Fragment frag;
    frag.top_stripe = stripe;
    const uint32_t frag_nodes = flat.num_nodes();
    frag.nodes.assign(flat.nodes_data(), flat.nodes_data() + frag_nodes);
    frag.bbox_lo.assign(flat.bbox_lo(0), flat.bbox_lo(0) + frag_nodes * dims);
    frag.bbox_hi.assign(flat.bbox_hi(0), flat.bbox_hi(0) + frag_nodes * dims);
    uint32_t max_depth = 1;
    for (FlatEkdbNode& node : frag.nodes) {
      node.arena_begin += static_cast<uint32_t>(arena_offset);
      node.arena_end += static_cast<uint32_t>(arena_offset);
      max_depth = std::max(max_depth, node.depth);
    }
    frag.nodes[0].stripe = stripe;  // FromTree zeroes the root's stripe
    frag.level_begin.assign(max_depth + 2, frag_nodes);
    for (uint32_t i = frag_nodes; i-- > 0;) {
      frag.level_begin[frag.nodes[i].depth] = i;
    }
    frag.level_begin[0] = 0;
    // Close gaps for any skipped depth (cannot happen in BFS order, but
    // keeps LevelBegin monotone even so).
    for (size_t d = frag.level_begin.size() - 1; d-- > 0;) {
      frag.level_begin[d] =
          std::min(frag.level_begin[d], frag.level_begin[d + 1]);
    }

    arena_offset += m;
    total_nodes += frag_nodes;
    fragments.push_back(std::move(frag));
    stripe_coords.clear();
    stripe_ids.clear();
    return Status::OK();
  };

  {
    std::vector<std::unique_ptr<RunCursor>> cursors;
    cursors.reserve(run_paths.size());
    for (const std::string& path : run_paths) {
      auto cursor = std::make_unique<RunCursor>();
      SIMJOIN_RETURN_NOT_OK(cursor->Open(path, dims));
      cursors.push_back(std::move(cursor));
    }
    // Min-heap of run indices on (stripe, id).
    auto heap_greater = [&](size_t a, size_t b) {
      const RunCursor& ca = *cursors[a];
      const RunCursor& cb = *cursors[b];
      if (ca.stripe() != cb.stripe()) return ca.stripe() > cb.stripe();
      return ca.id() > cb.id();
    };
    std::vector<size_t> heap;
    for (size_t i = 0; i < cursors.size(); ++i) {
      if (!cursors[i]->exhausted()) heap.push_back(i);
    }
    std::make_heap(heap.begin(), heap.end(), heap_greater);

    bool have_stripe = false;
    uint32_t current_stripe = 0;
    while (!heap.empty()) {
      std::pop_heap(heap.begin(), heap.end(), heap_greater);
      const size_t r = heap.back();
      heap.pop_back();
      RunCursor& cursor = *cursors[r];
      if (!have_stripe || cursor.stripe() != current_stripe) {
        if (have_stripe) SIMJOIN_RETURN_NOT_OK(process_stripe(current_stripe));
        current_stripe = cursor.stripe();
        have_stripe = true;
      }
      stripe_ids.push_back(cursor.id());
      stripe_coords.insert(stripe_coords.end(), cursor.coords(),
                           cursor.coords() + dims);
      SIMJOIN_RETURN_NOT_OK(cursor.Advance());
      if (!cursor.exhausted()) {
        heap.push_back(r);
        std::push_heap(heap.begin(), heap.end(), heap_greater);
      }
    }
    if (have_stripe) SIMJOIN_RETURN_NOT_OK(process_stripe(current_stripe));
  }
  SIMJOIN_RETURN_NOT_OK(arena_out.Close());
  SIMJOIN_RETURN_NOT_OK(ids_out.Close());
  report.temp_bytes_written += arena_out.bytes() + ids_out.bytes();
  report.num_fragments = fragments.size();
  if (arena_offset != n) {
    return Status::Internal("external build lost points: merged " +
                            std::to_string(arena_offset) + " of " +
                            std::to_string(n));
  }
  if (total_nodes > std::numeric_limits<uint32_t>::max()) {
    return Status::InvalidArgument("tree has too many nodes to flatten");
  }

  // ---- Assembly: interleave fragment node arrays level by level into the
  // global BFS layout.  A node's depth equals its BFS level, and global
  // level L (>= 1) is the concatenation, in stripe order, of every
  // fragment's level-L nodes in fragment order — exactly the order the
  // in-memory BFS visits them.  children_begin therefore remaps
  // arithmetically: start of global level L+1, plus earlier fragments'
  // level-(L+1) node counts, plus the child's index within its fragment's
  // level L+1.
  uint32_t max_level = 0;
  for (const Fragment& frag : fragments) {
    max_level = std::max(max_level, frag.max_depth());
  }
  std::vector<uint64_t> level_offset(max_level + 2, 0);
  {
    std::vector<uint64_t> level_count(max_level + 2, 0);
    level_count[0] = 1;
    for (const Fragment& frag : fragments) {
      for (uint32_t d = 1; d <= frag.max_depth(); ++d) {
        level_count[d] += frag.LevelCount(d);
      }
    }
    uint64_t acc = 0;
    for (size_t d = 0; d < level_offset.size(); ++d) {
      level_offset[d] = acc;
      acc += d < level_count.size() ? level_count[d] : 0;
    }
  }

  std::vector<FlatEkdbNode> nodes;
  std::vector<float> bbox_lo;
  std::vector<float> bbox_hi;
  nodes.reserve(total_nodes);
  bbox_lo.reserve(total_nodes * dims);
  bbox_hi.reserve(total_nodes * dims);

  // Synthesised root: depth 0, whole arena, bbox = union of fragment roots
  // (float min/max is associative, so the union equals the in-memory root's
  // exact point bbox bit for bit).
  {
    FlatEkdbNode root;
    root.children_begin = 1;
    root.children_count = static_cast<uint32_t>(fragments.size());
    root.arena_begin = 0;
    root.arena_end = static_cast<uint32_t>(n);
    root.stripe = 0;
    root.depth = 0;
    root.sort_dim = 0;
    nodes.push_back(root);
    std::vector<float> lo(dims, std::numeric_limits<float>::infinity());
    std::vector<float> hi(dims, -std::numeric_limits<float>::infinity());
    for (const Fragment& frag : fragments) {
      for (size_t d = 0; d < dims; ++d) {
        lo[d] = std::min(lo[d], frag.bbox_lo[d]);
        hi[d] = std::max(hi[d], frag.bbox_hi[d]);
      }
    }
    bbox_lo.insert(bbox_lo.end(), lo.begin(), lo.end());
    bbox_hi.insert(bbox_hi.end(), hi.begin(), hi.end());
  }

  for (uint32_t level = 1; level <= max_level; ++level) {
    // Prefix counts of level+1 nodes over fragments, for the child remap.
    uint64_t prior_children = 0;
    for (const Fragment& frag : fragments) {
      const uint32_t begin = frag.LevelBegin(level);
      const uint32_t end = frag.LevelBegin(level + 1);
      for (uint32_t i = begin; i < end; ++i) {
        FlatEkdbNode node = frag.nodes[i];
        if (!node.is_leaf()) {
          const uint32_t local_child_index =
              node.children_begin - frag.LevelBegin(level + 1);
          node.children_begin = static_cast<uint32_t>(
              level_offset[level + 1] + prior_children + local_child_index);
        } else {
          node.children_begin = 0;
        }
        nodes.push_back(node);
        bbox_lo.insert(bbox_lo.end(),
                       frag.bbox_lo.begin() + static_cast<size_t>(i) * dims,
                       frag.bbox_lo.begin() + (static_cast<size_t>(i) + 1) *
                                                  dims);
        bbox_hi.insert(bbox_hi.end(),
                       frag.bbox_hi.begin() + static_cast<size_t>(i) * dims,
                       frag.bbox_hi.begin() + (static_cast<size_t>(i) + 1) *
                                                  dims);
      }
      prior_children += frag.LevelCount(level + 1);
    }
  }
  if (nodes.size() != total_nodes) {
    return Status::Internal("external build assembled " +
                            std::to_string(nodes.size()) + " nodes, expected " +
                            std::to_string(total_nodes));
  }

  // ---- Final write: identical layout, header, and padding bytes to
  // WriteSegment (shared helpers), so the differential tests can compare
  // whole files.
  SegmentInfo info;
  info.version = kSegmentVersion;
  info.dims = static_cast<uint32_t>(dims);
  info.num_nodes = static_cast<uint32_t>(total_nodes);
  info.num_points = n;
  info.num_stripes = num_stripes;
  info.stripe_width = stripe_width;
  info.config = config.ekdb;
  si::ComputeSectionLayout(&info);

  auto section = [&info](SegmentSection s) -> SegmentInfo::Section& {
    return info.sections[static_cast<size_t>(s)];
  };
  section(SegmentSection::kDimOrder).checksum = si::Fnv1a64(
      dim_order.data(), dim_order.size() * sizeof(uint32_t), si::kFnvSeed);
  section(SegmentSection::kNodes).checksum = si::Fnv1a64(
      nodes.data(), nodes.size() * sizeof(FlatEkdbNode), si::kFnvSeed);
  section(SegmentSection::kBboxLo).checksum = si::Fnv1a64(
      bbox_lo.data(), bbox_lo.size() * sizeof(float), si::kFnvSeed);
  section(SegmentSection::kBboxHi).checksum = si::Fnv1a64(
      bbox_hi.data(), bbox_hi.size() * sizeof(float), si::kFnvSeed);
  section(SegmentSection::kArena).checksum = arena_out.checksum();
  section(SegmentSection::kArenaIds).checksum = ids_out.checksum();
  section(SegmentSection::kDataset).checksum = dataset_checksum;

  uint8_t page[kSegmentPageBytes];
  si::SerializeHeaderPage(info, page);

  const std::string tmp = segment_path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
      Status st = Status::IoError("cannot create segment file '" + tmp + "'");
      return st;
    }
    uint64_t written = 0;
    Status st = StreamWrite(&out, page, sizeof(page));
    written += sizeof(page);

    auto write_section = [&](SegmentSection s, const void* data) -> Status {
      SIMJOIN_RETURN_NOT_OK(PadTo(&out, &written, section(s).offset));
      SIMJOIN_RETURN_NOT_OK(StreamWrite(&out, data, section(s).bytes));
      written += section(s).bytes;
      return Status::OK();
    };
    auto copy_section = [&](SegmentSection s,
                            const std::string& from) -> Status {
      SIMJOIN_RETURN_NOT_OK(PadTo(&out, &written, section(s).offset));
      SIMJOIN_RETURN_NOT_OK(CopyFileInto(from, &out, section(s).bytes));
      written += section(s).bytes;
      return Status::OK();
    };

    if (st.ok()) st = write_section(SegmentSection::kDimOrder, dim_order.data());
    if (st.ok()) st = write_section(SegmentSection::kNodes, nodes.data());
    if (st.ok()) st = write_section(SegmentSection::kBboxLo, bbox_lo.data());
    if (st.ok()) st = write_section(SegmentSection::kBboxHi, bbox_hi.data());
    if (st.ok()) st = copy_section(SegmentSection::kArena, arena_path);
    if (st.ok()) st = copy_section(SegmentSection::kArenaIds, ids_path);
    if (st.ok()) {
      // The dataset section is the input rows in original order; re-stream
      // them from the source file (its checksum was taken in pass 1).
      st = PadTo(&out, &written,
                 section(SegmentSection::kDataset).offset);
      if (st.ok()) {
        BinaryDatasetReader reader;
        st = reader.Open(dataset_path);
        Dataset batch;
        PointId first_id = 0;
        while (st.ok() && !reader.AtEnd()) {
          st = reader.ReadBatch(config.io_batch_points, &batch, &first_id);
          if (st.ok()) {
            st = StreamWrite(&out, batch.data(),
                             batch.size() * dims * sizeof(float));
            written += batch.size() * dims * sizeof(float);
          }
        }
      }
    }
    if (st.ok()) st = PadTo(&out, &written, info.file_bytes);
    if (st.ok()) {
      out.flush();
      if (!out.good()) st = Status::IoError("segment flush failed");
    }
    if (!st.ok()) {
      out.close();
      ::unlink(tmp.c_str());
      return st;
    }
  }
  // Same durability contract as WriteSegment: the bytes must be on disk
  // before the rename publishes the file, or a crash can leave a complete-
  // looking name over torn content.
  {
    const int fd = ::open(tmp.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0 || ::fsync(fd) != 0) {
      if (fd >= 0) ::close(fd);
      ::unlink(tmp.c_str());
      return Status::IoError("segment fsync failed");
    }
    ::close(fd);
  }
  if (::rename(tmp.c_str(), segment_path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Status::IoError("cannot rename segment into place");
  }

  report.num_nodes = info.num_nodes;
  report.segment_bytes = info.file_bytes;
  return report;
}

}  // namespace simjoin
