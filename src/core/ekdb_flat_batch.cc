// Fused multi-query execution over the flat arena (FlatEkdbTree
// ::RangeQueryBatch).
//
// The solo RangeQuery walks the tree and sweeps each surviving leaf window
// as it finds it, constructing a fresh kernel per query.  For a batch of
// queries that repeats all the per-query fixed costs and visits the arena in
// per-query order, so tiles pulled into cache for one query are usually
// evicted before the next query re-reads them.  This driver restructures the
// same work into three passes:
//
//   plan:    every query runs the exact RangeQuery traversal (same pruning,
//            same binary searches, same leaf order), but instead of scoring
//            a window immediately it records a SweepTask.
//   sweep:   tasks from all queries are sorted by arena position and scored
//            front to back with ONE BatchDistanceKernel, so consecutive
//            tasks hit overlapping / adjacent arena tiles while they are
//            still cache-resident.
//   scatter: each query's hits are concatenated in its recorded task order.
//
// Because a window's tiling, scoring arithmetic, and hit order are identical
// to the solo path, and tasks are scattered back in traversal order, every
// query's output id sequence — and its JoinStats delta, tracked per task by
// snapshotting the kernel counters — is bit-identical to an independent
// RangeQuery call.  The whole batch runs on the calling thread, so the
// result is also independent of any thread-pool configuration.

#include <algorithm>
#include <vector>

#include "common/bounding_box.h"
#include "common/simd_kernel.h"
#include "core/ekdb_flat.h"
#include "core/ekdb_flat_internal.h"
#include "obs/trace.h"

namespace simjoin {

namespace {

/// One leaf window of one query, in that query's traversal order.
struct SweepTask {
  uint32_t window_begin = 0;  ///< arena position range to score
  uint32_t window_end = 0;
  uint32_t spec = 0;          ///< originating query
  uint32_t hits_begin = 0;    ///< range in the shared hit pool (sweep fills)
  uint32_t hits_end = 0;
};

}  // namespace

Status FlatEkdbTree::RangeQueryBatch(
    const RangeQuerySpec* specs, size_t count,
    std::vector<std::vector<PointId>>* results,
    std::vector<JoinStats>* stats) const {
  if (results == nullptr) {
    return Status::InvalidArgument("results must not be null");
  }
  if (count != 0 && specs == nullptr) {
    return Status::InvalidArgument("specs must not be null");
  }
  for (size_t i = 0; i < count; ++i) {
    if (specs[i].query == nullptr) {
      return Status::InvalidArgument("spec query must not be null");
    }
    if (Status st = ValidateQueryEpsilon(specs[i].epsilon); !st.ok()) {
      return st;
    }
  }
  results->assign(count, {});
  if (stats != nullptr) stats->assign(count, JoinStats{});
  if (count == 0) return Status::OK();
  SIMJOIN_TRACE_SPAN("tree.batch_range_query");

  // Plan: the solo traversal per query, windows recorded instead of swept.
  // Tasks land grouped by query in traversal order, which is the order the
  // scatter pass walks them in.
  std::vector<SweepTask> tasks;
  std::vector<uint32_t> stack;
  for (uint32_t s = 0; s < count; ++s) {
    const float* query = specs[s].query;
    const double eps_query = specs[s].epsilon;
    uint64_t nodes_visited = 0;
    stack.assign(1, kRoot);
    while (!stack.empty()) {
      const uint32_t idx = stack.back();
      stack.pop_back();
      ++nodes_visited;
      const FlatEkdbNode& node = nodes_[idx];
      if (node.arena_begin == node.arena_end) continue;
      if (BoxMinDistanceToPoint(bbox_lo(idx), bbox_hi(idx), query, dims_,
                                config_.metric) > eps_query) {
        continue;
      }
      if (node.is_leaf()) {
        const uint32_t sd = node.sort_dim;
        const double lo = static_cast<double>(query[sd]) - eps_query;
        const double hi = static_cast<double>(query[sd]) + eps_query;
        const uint32_t wb = flat_internal::LowerBoundPos(
            arena_, dims_, node.arena_begin, node.arena_end, sd, lo);
        const uint32_t we = flat_internal::UpperBoundPos(
            arena_, dims_, wb, node.arena_end, sd, hi);
        if (wb != we) {
          tasks.push_back(SweepTask{wb, we, s, 0, 0});
        }
        continue;
      }
      const uint32_t split_dim = dim_order_[node.depth];
      const uint32_t stripe = StripeIndex(query[split_dim]);
      const uint32_t slo = stripe == 0 ? 0 : stripe - 1;
      const uint32_t end = node.children_begin + node.children_count;
      for (uint32_t c = node.children_begin; c < end; ++c) {
        const uint32_t cs = nodes_[c].stripe;
        if (cs < slo) continue;
        if (cs > stripe + 1) break;
        stack.push_back(c);
      }
    }
    // Same traversal tally the solo path makes (keeps the bit-identity of
    // per-query stats between fused and solo execution).
    if (stats != nullptr) (*stats)[s].node_pairs_visited += nodes_visited;
  }

  // Sweep: arena order, one kernel.  A stable sort keeps same-window tasks
  // in plan order, which makes the sweep deterministic (not that order could
  // change any task's own hits).
  std::vector<uint32_t> sweep_order(tasks.size());
  for (uint32_t t = 0; t < tasks.size(); ++t) sweep_order[t] = t;
  std::stable_sort(sweep_order.begin(), sweep_order.end(),
                   [&tasks](uint32_t a, uint32_t b) {
                     if (tasks[a].window_begin != tasks[b].window_begin) {
                       return tasks[a].window_begin < tasks[b].window_begin;
                     }
                     return tasks[a].window_end < tasks[b].window_end;
                   });

  BatchDistanceKernel kernel(config_.metric, dims_, specs[0].epsilon);
  double kernel_eps = specs[0].epsilon;
  uint8_t mask[BatchDistanceKernel::kTileCapacity];
  std::vector<PointId> hits;
  for (const uint32_t t : sweep_order) {
    SweepTask& task = tasks[t];
    const RangeQuerySpec& spec = specs[task.spec];
    if (spec.epsilon != kernel_eps) {
      kernel.SetEpsilon(spec.epsilon);
      kernel_eps = spec.epsilon;
    }
    const uint64_t batches_before = kernel.simd_batches();
    const uint64_t rescues_before = kernel.scalar_fallbacks();
    task.hits_begin = static_cast<uint32_t>(hits.size());
    const uint32_t we = task.window_end;
    for (uint32_t pos = task.window_begin; pos < we;) {
      const auto n = std::min<uint32_t>(
          static_cast<uint32_t>(BatchDistanceKernel::kTileCapacity), we - pos);
      const float* next = pos + n < we ? arena_row(pos + n) : nullptr;
      kernel.FilterWithinEpsilonStrided(spec.query, arena_row(pos), dims_, n,
                                        mask, next);
      for (uint32_t i = 0; i < n; ++i) {
        if (mask[i]) hits.push_back(arena_ids_[pos + i]);
      }
      pos += n;
    }
    task.hits_end = static_cast<uint32_t>(hits.size());
    if (stats != nullptr) {
      JoinStats& st = (*stats)[task.spec];
      const uint64_t candidates = we - task.window_begin;
      st.candidate_pairs += candidates;
      st.distance_calls += candidates;
      st.simd_batches += kernel.simd_batches() - batches_before;
      st.scalar_fallbacks += kernel.scalar_fallbacks() - rescues_before;
    }
  }

  // Scatter: tasks are already (query, traversal-seq) ordered.
  for (const SweepTask& task : tasks) {
    std::vector<PointId>& out = (*results)[task.spec];
    out.insert(out.end(), hits.begin() + task.hits_begin,
               hits.begin() + task.hits_end);
  }
  if (stats != nullptr) {
    for (size_t s = 0; s < count; ++s) {
      (*stats)[s].pairs_emitted += (*results)[s].size();
    }
  }
  return Status::OK();
}

}  // namespace simjoin
