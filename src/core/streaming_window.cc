#include "core/streaming_window.h"

#include <span>

namespace simjoin {

StreamingWindowJoin::StreamingWindowJoin(size_t window, size_t dims,
                                         EkdbConfig config)
    : window_(window), dims_(dims), config_(std::move(config)) {}

Result<std::unique_ptr<StreamingWindowJoin>> StreamingWindowJoin::Create(
    size_t window, size_t dims, const EkdbConfig& config) {
  if (window < 2) {
    return Status::InvalidArgument("window must hold at least 2 points");
  }
  SIMJOIN_RETURN_NOT_OK(config.Validate(dims));
  return std::unique_ptr<StreamingWindowJoin>(
      new StreamingWindowJoin(window, dims, config));
}

Result<StreamPos> StreamingWindowJoin::Feed(const float* point,
                                            const StreamPairCallback& on_pair) {
  for (size_t d = 0; d < dims_; ++d) {
    if (point[d] < 0.0f || point[d] > 1.0f) {
      return Status::InvalidArgument(
          "stream point coordinates must lie in [0, 1]");
    }
  }
  const StreamPos pos = next_pos_;

  PointId slot;
  if (slot_pos_.size() < window_) {
    // Growth phase: new slot at the end.
    slots_.Append(std::span<const float>(point, dims_));
    slot = static_cast<PointId>(slots_.size() - 1);
  } else {
    // Steady state: evict the expiring resident, reuse its slot.
    slot = static_cast<PointId>(pos % window_);
    SIMJOIN_RETURN_NOT_OK(tree_->Remove(slot));
    std::copy_n(point, dims_, slots_.MutableRow(slot));
  }

  // Report pairs with the surviving residents.  The query runs before the
  // new point is inserted, so it never pairs with itself; during the growth
  // phase the freshly appended slot is not yet indexed either.
  if (tree_ != nullptr) {
    std::vector<PointId> hits;
    SIMJOIN_RETURN_NOT_OK(
        tree_->RangeQuery(point, config_.epsilon, &hits));
    for (PointId hit : hits) {
      on_pair(slot_pos_[hit], pos);
    }
  }

  // Index the new arrival.
  if (tree_ == nullptr) {
    auto built = EkdbTree::Build(slots_, config_);
    if (!built.ok()) return built.status();
    tree_ = std::make_unique<EkdbTree>(std::move(built).value());
  } else {
    SIMJOIN_RETURN_NOT_OK(tree_->Insert(slot));
  }

  if (static_cast<size_t>(slot) < slot_pos_.size()) {
    slot_pos_[slot] = pos;
  } else {
    slot_pos_.push_back(pos);
  }
  ++next_pos_;
  return pos;
}

}  // namespace simjoin
