// PCA-filtered similarity self-join (exact, L2 only).
//
// The GEMINI recipe generalised beyond time series: project the points onto
// the top-k principal components, run the cheap eps-k-d-B join in the
// k-dimensional space, and verify every candidate with the full-dimensional
// distance.  Orthonormal projection contracts L2 distances, so the
// projected join's candidate set is a superset of the true result — the
// filter has no false dismissals and the final answer is exact.
//
// Pays off when the data's intrinsic dimensionality is far below its
// ambient dimensionality (correlated features), which is exactly the regime
// the dataset profiler's effective_dims detects; experiment R18 measures
// the trade-off.

#ifndef SIMJOIN_CORE_PROJECTED_JOIN_H_
#define SIMJOIN_CORE_PROJECTED_JOIN_H_

#include <cstdint>

#include "common/dataset.h"
#include "common/pair_sink.h"
#include "common/status.h"

namespace simjoin {

/// Parameters of the PCA-filtered join.
struct ProjectedJoinConfig {
  /// Principal components kept (the filter dimensionality).
  size_t projected_dims = 4;
  /// Leaf threshold of the eps-k-d-B tree run in the projected space.
  size_t leaf_threshold = 64;
  /// Rows used to fit the PCA model.
  size_t max_fit_points = 20000;
};

/// Work counters of a filtered join run.
struct ProjectedJoinReport {
  uint64_t candidate_pairs = 0;   ///< pairs surviving the projected filter
  uint64_t emitted_pairs = 0;     ///< verified full-space pairs
  double explained_variance = 0;  ///< variance captured by the projection
};

/// Exact L2 self-join at radius epsilon via the PCA filter.  Emits
/// canonical (min, max) pairs exactly once — the same set as
/// NestedLoopSelfJoin(data, epsilon, kL2).  The input need NOT be
/// unit-cube normalised (the projected space is rescaled internally).
Status PcaFilteredSelfJoin(const Dataset& data, double epsilon,
                           const ProjectedJoinConfig& config, PairSink* sink,
                           ProjectedJoinReport* report = nullptr);

}  // namespace simjoin

#endif  // SIMJOIN_CORE_PROJECTED_JOIN_H_
