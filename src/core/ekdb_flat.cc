#include "core/ekdb_flat.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/simd_kernel.h"
#include "common/thread_pool.h"
#include "core/ekdb_flat_internal.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace simjoin {

namespace {

/// Flatten (tree -> cache-conscious arena) phase timing.
obs::Histogram* FlattenHistogram() {
  static obs::Histogram* const hist =
      obs::GlobalMetrics().GetHistogram("join.phase.flatten_us");
  return hist;
}

using ArenaRange = std::pair<uint32_t, uint32_t>;

/// One leaf's slot in the arena: where its points land.
struct LeafRef {
  const EkdbNode* leaf = nullptr;
  uint32_t arena_begin = 0;
};

/// DFS sizing pass: assigns every node its arena range (each leaf's points
/// occupy [arena_begin, arena_begin + |points|) in DFS leaf order) without
/// touching any coordinate data.  DFS order makes every subtree's points a
/// contiguous arena run, which is what gives internal nodes O(1) subtree
/// size and lets the parallel driver split work by range; the actual copy
/// happens afterwards — per leaf, into disjoint ranges — so it can chunk
/// across workers.
void ComputeArenaRanges(
    const EkdbNode* node, uint32_t* offset, std::vector<LeafRef>* leaves,
    std::unordered_map<const EkdbNode*, ArenaRange>* ranges) {
  const uint32_t begin = *offset;
  if (node->is_leaf()) {
    leaves->push_back(LeafRef{node, begin});
    *offset += static_cast<uint32_t>(node->points.size());
  } else {
    for (const auto& [stripe, child] : node->children) {
      ComputeArenaRanges(child.get(), offset, leaves, ranges);
    }
  }
  ranges->emplace(node, ArenaRange{begin, *offset});
}

/// Point-count threshold below which the fill passes stay sequential.
constexpr size_t kParallelFillMin = size_t{1} << 15;

}  // namespace

Result<FlatEkdbTree> FlatEkdbTree::FromTree(const EkdbTree& tree,
                                            size_t num_threads) {
  if (tree.root() == nullptr) {
    return Status::InvalidArgument("cannot flatten a tree without a root");
  }
  SIMJOIN_TRACE_SPAN("tree.flatten");
  obs::ScopedLatencyTimer timer(FlattenHistogram());
  const Dataset& data = tree.dataset();

  FlatEkdbTree flat;
  flat.dataset_ = &data;
  flat.config_ = tree.config();
  flat.dim_order_ = tree.dim_order();
  flat.num_stripes_ = tree.num_stripes();
  flat.stripe_width_ = tree.stripe_width();
  flat.dims_ = data.dims();

  // Arena sizing pass (DFS, no data touched): every node's range and every
  // leaf's destination offset.
  std::unordered_map<const EkdbNode*, ArenaRange> ranges;
  std::vector<LeafRef> leaves;
  uint32_t total = 0;
  ComputeArenaRanges(tree.root(), &total, &leaves, &ranges);
  flat.owned_arena_.resize(static_cast<size_t>(total) * flat.dims_);
  flat.owned_arena_ids_.resize(total);

  // Node layout pass (BFS): when node i is visited, the children of nodes
  // 0..i-1 are already appended, so node i's children start at the current
  // tail and land contiguously, stripe-sorted (the pointer tree keeps its
  // child lists stripe-sorted).
  std::vector<std::pair<const EkdbNode*, uint32_t>> order;  // node, stripe
  std::vector<uint32_t> kid_begin;
  order.emplace_back(tree.root(), 0);
  for (size_t i = 0; i < order.size(); ++i) {
    const EkdbNode* pn = order[i].first;
    kid_begin.push_back(static_cast<uint32_t>(order.size()));
    for (const auto& [stripe, child] : pn->children) {
      order.emplace_back(child.get(), stripe);
    }
  }
  if (order.size() > std::numeric_limits<uint32_t>::max()) {
    return Status::InvalidArgument("tree has too many nodes to flatten");
  }
  const size_t n = order.size();
  flat.owned_nodes_.resize(n);
  flat.owned_bbox_lo_.resize(n * flat.dims_);
  flat.owned_bbox_hi_.resize(n * flat.dims_);

  // Fill passes.  Every chunk writes a disjoint slice of preallocated
  // arrays at offsets fixed by the passes above, so the parallel fill is
  // trivially identical to the sequential one.
  auto fill_nodes = [&flat, &order, &kid_begin, &ranges](size_t lo,
                                                         size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      const EkdbNode* pn = order[i].first;
      FlatEkdbNode& fn = flat.owned_nodes_[i];
      fn.children_begin = pn->is_leaf() ? 0 : kid_begin[i];
      fn.children_count = static_cast<uint32_t>(pn->children.size());
      const ArenaRange& range = ranges.at(pn);
      fn.arena_begin = range.first;
      fn.arena_end = range.second;
      fn.stripe = order[i].second;
      fn.depth = pn->depth;
      fn.sort_dim = pn->sort_dim;
      std::memcpy(flat.owned_bbox_lo_.data() + i * flat.dims_, pn->bbox.lo().data(),
                  flat.dims_ * sizeof(float));
      std::memcpy(flat.owned_bbox_hi_.data() + i * flat.dims_, pn->bbox.hi().data(),
                  flat.dims_ * sizeof(float));
    }
  };
  auto fill_leaves = [&flat, &leaves, &data](size_t lo, size_t hi) {
    for (size_t l = lo; l < hi; ++l) {
      const EkdbNode* leaf = leaves[l].leaf;
      size_t pos = leaves[l].arena_begin;
      for (PointId p : leaf->points) {
        std::memcpy(flat.owned_arena_.data() + pos * flat.dims_, data.Row(p),
                    flat.dims_ * sizeof(float));
        flat.owned_arena_ids_[pos] = p;
        ++pos;
      }
    }
  };

  const size_t threads =
      num_threads != 0
          ? num_threads
          : std::max<size_t>(1, std::thread::hardware_concurrency());
  if (threads <= 1 || total < kParallelFillMin) {
    fill_nodes(0, n);
    fill_leaves(0, leaves.size());
  } else {
    ThreadPool& pool = ThreadPool::Shared(threads);
    TaskGroup group(&pool);
    const size_t node_chunks =
        std::min(threads * 2, std::max<size_t>(1, n / 1024));
    for (size_t c = 0; c < node_chunks; ++c) {
      const size_t lo = n * c / node_chunks;
      const size_t hi = n * (c + 1) / node_chunks;
      group.Run([&fill_nodes, lo, hi] { fill_nodes(lo, hi); });
    }
    // Leaf chunks balanced by point count, since leaf sizes vary.
    const size_t target = std::max<size_t>(4096, total / (threads * 4));
    size_t start = 0;
    size_t acc = 0;
    for (size_t l = 0; l < leaves.size(); ++l) {
      acc += leaves[l].leaf->points.size();
      if (acc >= target || l + 1 == leaves.size()) {
        group.Run([&fill_leaves, start, l] { fill_leaves(start, l + 1); });
        start = l + 1;
        acc = 0;
      }
    }
    group.Wait();
  }
  flat.BindOwnedStorage();
  return flat;
}

void FlatEkdbTree::BindOwnedStorage() {
  nodes_ = owned_nodes_.data();
  num_nodes_ = owned_nodes_.size();
  bbox_lo_ = owned_bbox_lo_.data();
  bbox_hi_ = owned_bbox_hi_.data();
  arena_ = owned_arena_.data();
  arena_ids_ = owned_arena_ids_.data();
  arena_count_ = owned_arena_ids_.size();
}

Status FlatEkdbTree::ValidateStructure(const FlatEkdbStorageView& view,
                                       size_t dataset_size,
                                       size_t dataset_dims) {
  const size_t dims = dataset_dims;
  SIMJOIN_RETURN_NOT_OK(view.config.Validate(dims));
  if (view.num_nodes == 0 || view.nodes == nullptr) {
    return Status::InvalidArgument("flat tree storage has no nodes");
  }
  if (view.num_nodes > std::numeric_limits<uint32_t>::max() ||
      view.arena_count > std::numeric_limits<uint32_t>::max()) {
    return Status::InvalidArgument("flat tree storage exceeds 32-bit limits");
  }
  if (view.arena_count != dataset_size) {
    return Status::InvalidArgument(
        "flat tree arena holds " + std::to_string(view.arena_count) +
        " points but the dataset holds " + std::to_string(dataset_size));
  }
  if (view.dim_order.size() != dims) {
    return Status::InvalidArgument("dim_order length != dims");
  }
  std::vector<bool> seen(dims, false);
  for (const uint32_t d : view.dim_order) {
    if (d >= dims || seen[d]) {
      return Status::InvalidArgument("dim_order is not a permutation");
    }
    seen[d] = true;
  }
  if (view.num_stripes == 0 || view.num_stripes != view.config.NumStripes() ||
      view.stripe_width != view.config.StripeWidth()) {
    return Status::InvalidArgument(
        "stripe grid parameters do not match the stored epsilon");
  }
  const FlatEkdbNode& root = view.nodes[0];
  if (root.arena_begin != 0 || root.arena_end != view.arena_count) {
    return Status::InvalidArgument("root node does not cover the arena");
  }
  for (size_t i = 0; i < view.num_nodes; ++i) {
    const FlatEkdbNode& node = view.nodes[i];
    if (node.arena_begin > node.arena_end ||
        node.arena_end > view.arena_count) {
      return Status::InvalidArgument("node " + std::to_string(i) +
                                     " arena range out of bounds");
    }
    if (node.is_leaf()) {
      if (node.sort_dim >= dims) {
        return Status::InvalidArgument("leaf " + std::to_string(i) +
                                       " sort_dim out of range");
      }
      continue;
    }
    // BFS layout puts children strictly after their parent; enforcing it
    // here is what guarantees every traversal terminates on hostile input.
    const uint64_t kids_end = static_cast<uint64_t>(node.children_begin) +
                              node.children_count;
    if (node.children_begin <= i || kids_end > view.num_nodes) {
      return Status::InvalidArgument("node " + std::to_string(i) +
                                     " children range out of bounds");
    }
    if (node.depth >= dims) {
      return Status::InvalidArgument("internal node " + std::to_string(i) +
                                     " depth exceeds dimensionality");
    }
    for (uint64_t c = node.children_begin; c < kids_end; ++c) {
      if (view.nodes[c].stripe >= view.num_stripes) {
        return Status::InvalidArgument("node " + std::to_string(c) +
                                       " stripe index out of range");
      }
    }
  }
  return Status::OK();
}

Result<FlatEkdbTree> FlatEkdbTree::FromStorage(const Dataset& dataset,
                                               FlatEkdbStorage storage) {
  FlatEkdbStorageView view;
  view.config = storage.config;
  view.dim_order = storage.dim_order;
  view.num_stripes = storage.num_stripes;
  view.stripe_width = storage.stripe_width;
  view.nodes = storage.nodes.data();
  view.num_nodes = storage.nodes.size();
  view.bbox_lo = storage.bbox_lo.data();
  view.bbox_hi = storage.bbox_hi.data();
  view.arena = storage.arena.data();
  view.arena_ids = storage.arena_ids.data();
  view.arena_count = storage.arena_ids.size();
  SIMJOIN_RETURN_NOT_OK(
      ValidateStructure(view, dataset.size(), dataset.dims()));
  const size_t dims = dataset.dims();
  if (storage.bbox_lo.size() != storage.nodes.size() * dims ||
      storage.bbox_hi.size() != storage.nodes.size() * dims ||
      storage.arena.size() != storage.arena_ids.size() * dims) {
    return Status::InvalidArgument("flat tree storage array sizes disagree");
  }
  FlatEkdbTree flat;
  flat.dataset_ = &dataset;
  flat.config_ = std::move(storage.config);
  flat.dim_order_ = std::move(storage.dim_order);
  flat.num_stripes_ = storage.num_stripes;
  flat.stripe_width_ = storage.stripe_width;
  flat.dims_ = dims;
  flat.owned_nodes_ = std::move(storage.nodes);
  flat.owned_bbox_lo_ = std::move(storage.bbox_lo);
  flat.owned_bbox_hi_ = std::move(storage.bbox_hi);
  flat.owned_arena_ = std::move(storage.arena);
  flat.owned_arena_ids_ = std::move(storage.arena_ids);
  flat.BindOwnedStorage();
  return flat;
}

Result<FlatEkdbTree> FlatEkdbTree::FromView(
    const Dataset& dataset, const FlatEkdbStorageView& view,
    std::shared_ptr<const void> keepalive) {
  SIMJOIN_RETURN_NOT_OK(
      ValidateStructure(view, dataset.size(), dataset.dims()));
  if (view.bbox_lo == nullptr || view.bbox_hi == nullptr ||
      (view.arena_count != 0 &&
       (view.arena == nullptr || view.arena_ids == nullptr))) {
    return Status::InvalidArgument("flat tree view has null sections");
  }
  FlatEkdbTree flat;
  flat.dataset_ = &dataset;
  flat.config_ = view.config;
  flat.dim_order_ = view.dim_order;
  flat.num_stripes_ = view.num_stripes;
  flat.stripe_width_ = view.stripe_width;
  flat.dims_ = dataset.dims();
  flat.nodes_ = view.nodes;
  flat.num_nodes_ = view.num_nodes;
  flat.bbox_lo_ = view.bbox_lo;
  flat.bbox_hi_ = view.bbox_hi;
  flat.arena_ = view.arena;
  flat.arena_ids_ = view.arena_ids;
  flat.arena_count_ = view.arena_count;
  flat.keepalive_ = std::move(keepalive);
  return flat;
}

Result<FlatEkdbTree> FlatEkdbTree::Load(const Dataset& dataset,
                                        const std::string& path) {
  SIMJOIN_ASSIGN_OR_RETURN(EkdbTree tree, EkdbTree::Load(dataset, path));
  return FromTree(tree);
}

uint32_t FlatEkdbTree::StripeIndex(float value) const {
  if (value <= 0.0f) return 0;
  const auto idx =
      static_cast<size_t>(static_cast<double>(value) / stripe_width_);
  return static_cast<uint32_t>(std::min(idx, num_stripes_ - 1));
}

bool FlatEkdbTree::JoinCompatible(const FlatEkdbTree& a,
                                  const FlatEkdbTree& b) {
  return a.dims() == b.dims() && a.config().epsilon == b.config().epsilon &&
         a.config().metric == b.config().metric &&
         a.num_stripes() == b.num_stripes() && a.dim_order() == b.dim_order();
}

Status FlatEkdbTree::ValidateQueryEpsilon(double eps_query) const {
  if (!(eps_query > 0.0) || eps_query > config_.epsilon) {
    return Status::InvalidArgument(
        "eps_query must be in (0, built epsilon]; the stripe grid only "
        "supports radii up to the build epsilon");
  }
  return Status::OK();
}

Status FlatEkdbTree::RangeQuery(const float* query, double eps_query,
                                std::vector<PointId>* out,
                                JoinStats* stats) const {
  if (out == nullptr) return Status::InvalidArgument("out must not be null");
  if (Status st = ValidateQueryEpsilon(eps_query); !st.ok()) return st;
  BatchDistanceKernel kernel(config_.metric, dims_, eps_query);
  uint8_t mask[BatchDistanceKernel::kTileCapacity];
  uint64_t candidates = 0;
  uint64_t nodes_visited = 0;
  const size_t emitted_before = out->size();

  std::vector<uint32_t> stack = {kRoot};
  while (!stack.empty()) {
    const uint32_t idx = stack.back();
    stack.pop_back();
    ++nodes_visited;
    const FlatEkdbNode& node = nodes_[idx];
    if (node.arena_begin == node.arena_end) continue;
    if (BoxMinDistanceToPoint(bbox_lo(idx), bbox_hi(idx), query, dims_,
                              config_.metric) > eps_query) {
      continue;
    }
    if (node.is_leaf()) {
      // The leaf's arena run is sorted on sort_dim: binary-search the
      // window, then filter it as contiguous strided tiles.
      const uint32_t sd = node.sort_dim;
      const double lo = static_cast<double>(query[sd]) - eps_query;
      const double hi = static_cast<double>(query[sd]) + eps_query;
      const uint32_t wb = flat_internal::LowerBoundPos(
          arena_, dims_, node.arena_begin, node.arena_end, sd, lo);
      const uint32_t we = flat_internal::UpperBoundPos(arena_, dims_,
                                                       wb, node.arena_end, sd,
                                                       hi);
      for (uint32_t pos = wb; pos < we;) {
        const auto count = std::min<uint32_t>(
            static_cast<uint32_t>(BatchDistanceKernel::kTileCapacity),
            we - pos);
        const float* next =
            pos + count < we ? arena_row(pos + count) : nullptr;
        kernel.FilterWithinEpsilonStrided(query, arena_row(pos), dims_, count,
                                          mask, next);
        for (uint32_t i = 0; i < count; ++i) {
          if (mask[i]) out->push_back(arena_ids_[pos + i]);
        }
        candidates += count;
        pos += count;
      }
      continue;
    }
    // Only the query's stripe and its two neighbours can hold matches.
    const uint32_t split_dim = dim_order_[node.depth];
    const uint32_t stripe = StripeIndex(query[split_dim]);
    const uint32_t slo = stripe == 0 ? 0 : stripe - 1;
    const uint32_t end = node.children_begin + node.children_count;
    for (uint32_t c = node.children_begin; c < end; ++c) {
      const uint32_t s = nodes_[c].stripe;
      if (s < slo) continue;
      if (s > stripe + 1) break;
      stack.push_back(c);
    }
  }

  if (stats != nullptr) {
    stats->candidate_pairs += candidates;
    stats->distance_calls += candidates;
    // Traversal work, the planner's probe-cost signal: one tally per node
    // popped off the stack (the batch planner counts identically).
    stats->node_pairs_visited += nodes_visited;
    stats->pairs_emitted += out->size() - emitted_before;
    stats->simd_batches += kernel.simd_batches();
    stats->scalar_fallbacks += kernel.scalar_fallbacks();
  }
  return Status::OK();
}

void FlatEkdbTree::FillStats(EkdbTreeStats* stats) const {
  stats->flat_node_bytes = node_bytes();
  stats->flat_arena_bytes = arena_bytes();
  stats->flat_bytes_per_point =
      arena_count_ == 0 ? 0.0
                        : static_cast<double>(total_bytes()) /
                              static_cast<double>(arena_count_);
}

}  // namespace simjoin
