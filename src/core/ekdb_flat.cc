#include "core/ekdb_flat.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/simd_kernel.h"
#include "common/thread_pool.h"
#include "core/ekdb_flat_internal.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace simjoin {

namespace {

/// Flatten (tree -> cache-conscious arena) phase timing.
obs::Histogram* FlattenHistogram() {
  static obs::Histogram* const hist =
      obs::GlobalMetrics().GetHistogram("join.phase.flatten_us");
  return hist;
}

using ArenaRange = std::pair<uint32_t, uint32_t>;

/// One leaf's slot in the arena: where its points land.
struct LeafRef {
  const EkdbNode* leaf = nullptr;
  uint32_t arena_begin = 0;
};

/// DFS sizing pass: assigns every node its arena range (each leaf's points
/// occupy [arena_begin, arena_begin + |points|) in DFS leaf order) without
/// touching any coordinate data.  DFS order makes every subtree's points a
/// contiguous arena run, which is what gives internal nodes O(1) subtree
/// size and lets the parallel driver split work by range; the actual copy
/// happens afterwards — per leaf, into disjoint ranges — so it can chunk
/// across workers.
void ComputeArenaRanges(
    const EkdbNode* node, uint32_t* offset, std::vector<LeafRef>* leaves,
    std::unordered_map<const EkdbNode*, ArenaRange>* ranges) {
  const uint32_t begin = *offset;
  if (node->is_leaf()) {
    leaves->push_back(LeafRef{node, begin});
    *offset += static_cast<uint32_t>(node->points.size());
  } else {
    for (const auto& [stripe, child] : node->children) {
      ComputeArenaRanges(child.get(), offset, leaves, ranges);
    }
  }
  ranges->emplace(node, ArenaRange{begin, *offset});
}

/// Point-count threshold below which the fill passes stay sequential.
constexpr size_t kParallelFillMin = size_t{1} << 15;

}  // namespace

Result<FlatEkdbTree> FlatEkdbTree::FromTree(const EkdbTree& tree,
                                            size_t num_threads) {
  if (tree.root() == nullptr) {
    return Status::InvalidArgument("cannot flatten a tree without a root");
  }
  SIMJOIN_TRACE_SPAN("tree.flatten");
  obs::ScopedLatencyTimer timer(FlattenHistogram());
  const Dataset& data = tree.dataset();

  FlatEkdbTree flat;
  flat.dataset_ = &data;
  flat.config_ = tree.config();
  flat.dim_order_ = tree.dim_order();
  flat.num_stripes_ = tree.num_stripes();
  flat.stripe_width_ = tree.stripe_width();
  flat.dims_ = data.dims();

  // Arena sizing pass (DFS, no data touched): every node's range and every
  // leaf's destination offset.
  std::unordered_map<const EkdbNode*, ArenaRange> ranges;
  std::vector<LeafRef> leaves;
  uint32_t total = 0;
  ComputeArenaRanges(tree.root(), &total, &leaves, &ranges);
  flat.arena_.resize(static_cast<size_t>(total) * flat.dims_);
  flat.arena_ids_.resize(total);

  // Node layout pass (BFS): when node i is visited, the children of nodes
  // 0..i-1 are already appended, so node i's children start at the current
  // tail and land contiguously, stripe-sorted (the pointer tree keeps its
  // child lists stripe-sorted).
  std::vector<std::pair<const EkdbNode*, uint32_t>> order;  // node, stripe
  std::vector<uint32_t> kid_begin;
  order.emplace_back(tree.root(), 0);
  for (size_t i = 0; i < order.size(); ++i) {
    const EkdbNode* pn = order[i].first;
    kid_begin.push_back(static_cast<uint32_t>(order.size()));
    for (const auto& [stripe, child] : pn->children) {
      order.emplace_back(child.get(), stripe);
    }
  }
  if (order.size() > std::numeric_limits<uint32_t>::max()) {
    return Status::InvalidArgument("tree has too many nodes to flatten");
  }
  const size_t n = order.size();
  flat.nodes_.resize(n);
  flat.bbox_lo_.resize(n * flat.dims_);
  flat.bbox_hi_.resize(n * flat.dims_);

  // Fill passes.  Every chunk writes a disjoint slice of preallocated
  // arrays at offsets fixed by the passes above, so the parallel fill is
  // trivially identical to the sequential one.
  auto fill_nodes = [&flat, &order, &kid_begin, &ranges](size_t lo,
                                                         size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      const EkdbNode* pn = order[i].first;
      FlatEkdbNode& fn = flat.nodes_[i];
      fn.children_begin = pn->is_leaf() ? 0 : kid_begin[i];
      fn.children_count = static_cast<uint32_t>(pn->children.size());
      const ArenaRange& range = ranges.at(pn);
      fn.arena_begin = range.first;
      fn.arena_end = range.second;
      fn.stripe = order[i].second;
      fn.depth = pn->depth;
      fn.sort_dim = pn->sort_dim;
      std::memcpy(flat.bbox_lo_.data() + i * flat.dims_, pn->bbox.lo().data(),
                  flat.dims_ * sizeof(float));
      std::memcpy(flat.bbox_hi_.data() + i * flat.dims_, pn->bbox.hi().data(),
                  flat.dims_ * sizeof(float));
    }
  };
  auto fill_leaves = [&flat, &leaves, &data](size_t lo, size_t hi) {
    for (size_t l = lo; l < hi; ++l) {
      const EkdbNode* leaf = leaves[l].leaf;
      size_t pos = leaves[l].arena_begin;
      for (PointId p : leaf->points) {
        std::memcpy(flat.arena_.data() + pos * flat.dims_, data.Row(p),
                    flat.dims_ * sizeof(float));
        flat.arena_ids_[pos] = p;
        ++pos;
      }
    }
  };

  const size_t threads =
      num_threads != 0
          ? num_threads
          : std::max<size_t>(1, std::thread::hardware_concurrency());
  if (threads <= 1 || total < kParallelFillMin) {
    fill_nodes(0, n);
    fill_leaves(0, leaves.size());
  } else {
    ThreadPool& pool = ThreadPool::Shared(threads);
    TaskGroup group(&pool);
    const size_t node_chunks =
        std::min(threads * 2, std::max<size_t>(1, n / 1024));
    for (size_t c = 0; c < node_chunks; ++c) {
      const size_t lo = n * c / node_chunks;
      const size_t hi = n * (c + 1) / node_chunks;
      group.Run([&fill_nodes, lo, hi] { fill_nodes(lo, hi); });
    }
    // Leaf chunks balanced by point count, since leaf sizes vary.
    const size_t target = std::max<size_t>(4096, total / (threads * 4));
    size_t start = 0;
    size_t acc = 0;
    for (size_t l = 0; l < leaves.size(); ++l) {
      acc += leaves[l].leaf->points.size();
      if (acc >= target || l + 1 == leaves.size()) {
        group.Run([&fill_leaves, start, l] { fill_leaves(start, l + 1); });
        start = l + 1;
        acc = 0;
      }
    }
    group.Wait();
  }
  return flat;
}

Result<FlatEkdbTree> FlatEkdbTree::Load(const Dataset& dataset,
                                        const std::string& path) {
  SIMJOIN_ASSIGN_OR_RETURN(EkdbTree tree, EkdbTree::Load(dataset, path));
  return FromTree(tree);
}

uint32_t FlatEkdbTree::StripeIndex(float value) const {
  if (value <= 0.0f) return 0;
  const auto idx =
      static_cast<size_t>(static_cast<double>(value) / stripe_width_);
  return static_cast<uint32_t>(std::min(idx, num_stripes_ - 1));
}

bool FlatEkdbTree::JoinCompatible(const FlatEkdbTree& a,
                                  const FlatEkdbTree& b) {
  return a.dims() == b.dims() && a.config().epsilon == b.config().epsilon &&
         a.config().metric == b.config().metric &&
         a.num_stripes() == b.num_stripes() && a.dim_order() == b.dim_order();
}

Status FlatEkdbTree::ValidateQueryEpsilon(double eps_query) const {
  if (!(eps_query > 0.0) || eps_query > config_.epsilon) {
    return Status::InvalidArgument(
        "eps_query must be in (0, built epsilon]; the stripe grid only "
        "supports radii up to the build epsilon");
  }
  return Status::OK();
}

Status FlatEkdbTree::RangeQuery(const float* query, double eps_query,
                                std::vector<PointId>* out,
                                JoinStats* stats) const {
  if (out == nullptr) return Status::InvalidArgument("out must not be null");
  if (Status st = ValidateQueryEpsilon(eps_query); !st.ok()) return st;
  BatchDistanceKernel kernel(config_.metric, dims_, eps_query);
  uint8_t mask[BatchDistanceKernel::kTileCapacity];
  uint64_t candidates = 0;
  uint64_t nodes_visited = 0;
  const size_t emitted_before = out->size();

  std::vector<uint32_t> stack = {kRoot};
  while (!stack.empty()) {
    const uint32_t idx = stack.back();
    stack.pop_back();
    ++nodes_visited;
    const FlatEkdbNode& node = nodes_[idx];
    if (node.arena_begin == node.arena_end) continue;
    if (BoxMinDistanceToPoint(bbox_lo(idx), bbox_hi(idx), query, dims_,
                              config_.metric) > eps_query) {
      continue;
    }
    if (node.is_leaf()) {
      // The leaf's arena run is sorted on sort_dim: binary-search the
      // window, then filter it as contiguous strided tiles.
      const uint32_t sd = node.sort_dim;
      const double lo = static_cast<double>(query[sd]) - eps_query;
      const double hi = static_cast<double>(query[sd]) + eps_query;
      const uint32_t wb = flat_internal::LowerBoundPos(
          arena_.data(), dims_, node.arena_begin, node.arena_end, sd, lo);
      const uint32_t we = flat_internal::UpperBoundPos(arena_.data(), dims_,
                                                       wb, node.arena_end, sd,
                                                       hi);
      for (uint32_t pos = wb; pos < we;) {
        const auto count = std::min<uint32_t>(
            static_cast<uint32_t>(BatchDistanceKernel::kTileCapacity),
            we - pos);
        const float* next =
            pos + count < we ? arena_row(pos + count) : nullptr;
        kernel.FilterWithinEpsilonStrided(query, arena_row(pos), dims_, count,
                                          mask, next);
        for (uint32_t i = 0; i < count; ++i) {
          if (mask[i]) out->push_back(arena_ids_[pos + i]);
        }
        candidates += count;
        pos += count;
      }
      continue;
    }
    // Only the query's stripe and its two neighbours can hold matches.
    const uint32_t split_dim = dim_order_[node.depth];
    const uint32_t stripe = StripeIndex(query[split_dim]);
    const uint32_t slo = stripe == 0 ? 0 : stripe - 1;
    const uint32_t end = node.children_begin + node.children_count;
    for (uint32_t c = node.children_begin; c < end; ++c) {
      const uint32_t s = nodes_[c].stripe;
      if (s < slo) continue;
      if (s > stripe + 1) break;
      stack.push_back(c);
    }
  }

  if (stats != nullptr) {
    stats->candidate_pairs += candidates;
    stats->distance_calls += candidates;
    // Traversal work, the planner's probe-cost signal: one tally per node
    // popped off the stack (the batch planner counts identically).
    stats->node_pairs_visited += nodes_visited;
    stats->pairs_emitted += out->size() - emitted_before;
    stats->simd_batches += kernel.simd_batches();
    stats->scalar_fallbacks += kernel.scalar_fallbacks();
  }
  return Status::OK();
}

void FlatEkdbTree::FillStats(EkdbTreeStats* stats) const {
  stats->flat_node_bytes = node_bytes();
  stats->flat_arena_bytes = arena_bytes();
  stats->flat_bytes_per_point =
      arena_ids_.empty() ? 0.0
                         : static_cast<double>(total_bytes()) /
                               static_cast<double>(arena_ids_.size());
}

}  // namespace simjoin
