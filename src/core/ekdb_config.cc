#include "core/ekdb_config.h"

#include <algorithm>
#include <cmath>

namespace simjoin {

Status EkdbConfig::Validate(size_t dims) const {
  if (dims == 0) {
    return Status::InvalidArgument("dataset dimensionality must be positive");
  }
  if (!(epsilon > 0.0) || epsilon >= 1.0) {
    return Status::InvalidArgument(
        "epsilon must be in (0, 1); got " + std::to_string(epsilon));
  }
  if (leaf_threshold == 0) {
    return Status::InvalidArgument("leaf_threshold must be positive");
  }
  if (!dim_order.empty()) {
    if (dim_order.size() != dims) {
      return Status::InvalidArgument(
          "dim_order has " + std::to_string(dim_order.size()) +
          " entries, dataset has " + std::to_string(dims) + " dims");
    }
    std::vector<bool> seen(dims, false);
    for (uint32_t d : dim_order) {
      if (d >= dims || seen[d]) {
        return Status::InvalidArgument("dim_order is not a permutation of 0..d-1");
      }
      seen[d] = true;
    }
  }
  return Status::OK();
}

size_t EkdbConfig::NumStripes() const {
  const double f = std::floor(1.0 / epsilon);
  if (f < 1.0) return 1;
  return static_cast<size_t>(f);
}

std::vector<uint32_t> EkdbConfig::ResolvedDimOrder(size_t dims) const {
  if (!dim_order.empty()) return dim_order;
  std::vector<uint32_t> order(dims);
  for (size_t i = 0; i < dims; ++i) order[i] = static_cast<uint32_t>(i);
  return order;
}

}  // namespace simjoin
