// Live-updatable index: an LSM-style mutable delta tier in front of an
// immutable flat eps-k-d-B snapshot.
//
// The structure is two tiers plus a tombstone set:
//   * the *base tier* — a FlatEkdbTree over a point-in-time dataset, shared
//     out as an immutable shared_ptr so readers never block on it;
//   * the *delta memtable* — a pointer EkdbTree grown one point at a time
//     with EkdbTree::Insert over a small owned dataset;
//   * the *tombstones* — a copy-on-write set of removed logical ids (both
//     base and delta points die by tombstone; EkdbTree::Remove is not on
//     this path, so a remove is O(tombstones) worst case, never a tree
//     restructure).
//
// Points carry stable *logical ids*: the initial build keeps its row ids
// 0..n-1, every insert gets the next fresh id, and ids are never reused.
// Because compaction rebuilds the base from live points in ascending
// logical order, every tier's row->logical map stays sorted — which is what
// makes membership checks a binary search and lets merged query results be
// emitted in one canonical order (ascending logical id).  That canonical
// order is the determinism contract: a query against an UpdatableIndex is
// bit-identical to sorting the remapped result of a fresh immutable build
// over the current live point set.
//
// Concurrency: one shared_mutex guards the mutable state.  Queries take a
// shared lock just long enough to pin the base tier/tombstone shared_ptrs
// and run the (small) delta-tree lookup, then scan the immutable base tier
// with no lock held.  Writers take the exclusive lock for O(1)-ish delta
// appends.  Background compaction (ThreadPool::Shared) builds the merged
// flat tree entirely off-lock from a snapshot of the state and swaps it in
// under one brief exclusive lock — readers either see the old view or the
// new one, never a half-merged hybrid.
//
// Unlike the other IndexBackend implementations this one is *not* frozen
// after construction; instead it is internally synchronised, so the
// interface-wide "safe for unsynchronised concurrent const access" contract
// still holds.  Mutators are const for the same reason the plan caches on
// IndexSnapshot are: callers hold shared_ptr<const ...> snapshots, and
// mutation is part of this type's logically-const serving behaviour.

#ifndef SIMJOIN_CORE_DELTA_INDEX_H_
#define SIMJOIN_CORE_DELTA_INDEX_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <vector>

#include "common/dataset.h"
#include "common/status.h"
#include "core/ekdb_tree.h"
#include "core/index_backend.h"

namespace simjoin {

/// Compaction policy of an UpdatableIndex.
struct UpdatableConfig {
  /// A delta this large always triggers compaction.
  size_t compact_min_delta_points = 4096;
  /// ... or a delta holding this fraction of the base tier's rows.
  double compact_delta_fraction = 0.25;
  /// ... or tombstones covering this fraction of all indexed rows.
  double compact_tombstone_ratio = 0.25;
  /// Schedule compaction on ThreadPool::Shared when a mutation crosses a
  /// threshold.  Disable for deterministic tests that drive Flush() by
  /// hand.
  bool auto_compact = true;
  /// Threads for the compaction rebuild (0 = hardware concurrency).
  size_t compact_threads = 1;
};

/// Point-in-time shape of an UpdatableIndex (Stats RPC / tests).
struct UpdatableStats {
  uint64_t base_points = 0;   ///< rows in the flat tier (tombstoned included)
  uint64_t delta_points = 0;  ///< rows in the memtable (tombstoned included)
  uint64_t tombstones = 0;    ///< removed-but-not-yet-compacted logical ids
  uint64_t live_points = 0;   ///< base + delta - tombstones
  uint64_t compactions = 0;   ///< merges completed since construction
  uint64_t next_id = 0;       ///< logical id the next insert will get
  /// Heap estimate of the mutable state: delta rows + memtable tree +
  /// tombstones (the same accounting index_bytes() charges on top of the
  /// base tier — service gauges must report this, not re-derive it).
  uint64_t delta_bytes = 0;
};

/// The updatable backend (BackendKind::kUpdatable).  Construct via Build —
/// always through std::shared_ptr, because background compaction keeps the
/// index alive with shared_from_this while it rebuilds.
class UpdatableIndex final
    : public IndexBackend,
      public std::enable_shared_from_this<UpdatableIndex> {
 public:
  /// Builds the initial base tier over the dataset (parallel when
  /// num_threads != 1).  The index takes shared ownership of the dataset:
  /// background compaction reads tier-zero rows off-lock and may outlive
  /// the caller's snapshot, so the rows must not be tied to the caller's
  /// lifetime.  Points inserted later live in storage the index owns.
  static Result<std::shared_ptr<UpdatableIndex>> Build(
      std::shared_ptr<const Dataset> dataset, const EkdbConfig& config,
      size_t num_threads, const UpdatableConfig& update_config = {});

  // -- IndexBackend -------------------------------------------------------

  BackendKind kind() const override { return BackendKind::kUpdatable; }
  const EkdbConfig& config() const override { return config_; }
  /// The *initial build* dataset (rows the index co-owns).  Live points
  /// may differ after updates; use Stats().live_points for current counts.
  const Dataset& dataset() const override { return *base_data_; }
  /// Current heap footprint of base tier + delta + tombstones (the delta
  /// pointer-tree portion is estimated, not walked).  Dynamic — grows with
  /// inserts, shrinks on compaction.
  uint64_t index_bytes() const override;
  bool exact() const override { return true; }
  bool supports_self_join() const override { return true; }

  Status ValidateQueryEpsilon(double eps_query) const override;
  Status RangeQuery(const float* query, double eps_query,
                    std::vector<PointId>* out, JoinStats* stats,
                    double* recall_est) const override;
  Status RangeQueryBatch(const RangeQuerySpec* specs, size_t count,
                         std::vector<std::vector<PointId>>* results,
                         std::vector<JoinStats>* stats,
                         std::vector<double>* recall_ests) const override;
  /// Self-join over the current live point set, pairs in canonical sorted
  /// order ((min, max) logical, ascending).  num_threads parallelises the
  /// base-base portion.
  Status SelfJoin(double eps_query, size_t num_threads, PairSink* sink,
                  JoinStats* stats) const override;
  /// Base-tier prior plus one delta-scan term: a query additionally pays
  /// for walking the memtable, so the planner's cost for this index rises
  /// with delta size until compaction folds it in.
  double EstimatedQueryCost(double eps_query,
                            double expected_neighbors) const override;

  // -- updates ------------------------------------------------------------

  /// Appends `count` points (row-major, dims() floats each) to the delta
  /// memtable and returns the logical id assigned to the first one (the
  /// rest are consecutive).  Fails — without inserting anything — when a
  /// coordinate leaves [0, 1] or the id space would overflow.
  Result<PointId> InsertBatch(const float* rows, size_t count) const;

  /// Tombstones one live point.  NotFound when the id was never assigned
  /// or is already removed.
  Status Remove(PointId id) const;

  /// Tombstones a batch; unknown/dead ids are counted in *missing rather
  /// than failing the batch (one copy-on-write clone for the whole call).
  void RemoveBatch(const PointId* ids, size_t count, uint32_t* removed,
                   uint32_t* missing) const;

  /// Synchronous compaction: merges base + delta minus tombstones into a
  /// fresh flat tier and swaps it in.  Returns true when a merge ran
  /// (false when there was nothing to fold in).  Serialised against the
  /// background compactor.
  Result<bool> Flush() const;

  /// True while a background compaction is scheduled or running.
  bool compaction_inflight() const;

  UpdatableStats Stats() const;
  const UpdatableConfig& update_config() const { return update_config_; }

  /// Observer invoked after every completed compaction with its duration
  /// in seconds (the service layer hangs the compaction.* metrics here;
  /// called from the compacting thread).  Set once, before serving.
  void SetCompactionObserver(std::function<void(double)> observer) const;

 private:
  /// One immutable base tier: the flat tree, the rows it indexes, and the
  /// sorted row->logical-id map.  `owned` is null only for tier zero,
  /// whose rows are the build dataset the index co-owns (base_data_).
  /// `tree` is disengaged when the tier is empty (every point removed,
  /// then compacted).
  struct Tier {
    std::unique_ptr<Dataset> owned;
    const Dataset* data = nullptr;
    std::optional<FlatEkdbTree> tree;
    std::vector<PointId> logical;
    uint64_t bytes = 0;
  };

  using TombstoneSet = std::vector<PointId>;  // sorted ascending

  UpdatableIndex() = default;

  /// Appends delta matches for one query to *out (remapped to logical ids,
  /// tombstones applied).  Requires mu_ held (shared is enough).
  Status DeltaMatchesLocked(const float* query, double eps_query,
                            const TombstoneSet& tombstones,
                            std::vector<PointId>* out,
                            JoinStats* stats) const;

  /// Heap estimate of delta rows + memtable tree + tombstones.  Requires
  /// mu_ held (shared is enough).
  uint64_t DeltaBytesLocked() const;

  /// Restores the delta to its pre-InsertBatch shape after a mid-batch
  /// failure (truncates rows/logical map, rebuilds the memtable tree over
  /// the surviving prefix) so a failed call inserts nothing.  Requires mu_
  /// held exclusively.
  void RollbackInsertsLocked(size_t rows_before, PointId next_before) const;

  /// Runs one merge if there is anything to fold in; *ran reports whether
  /// a swap happened.  Requires compact_mu_ held.
  Status CompactLocked(bool* ran) const;

  /// Schedules a background compaction when a threshold is crossed and
  /// none is in flight.  Requires mu_ held exclusively.
  void MaybeScheduleCompactionLocked() const;

  EkdbConfig config_;
  UpdatableConfig update_config_;
  // Initial build rows.  Shared ownership, not borrowed: background
  // compaction reads tier-zero rows off-lock and holds the index alive via
  // shared_from_this, so the rows must survive the caller's snapshot.
  std::shared_ptr<const Dataset> base_data_;

  // Guards all mutable state below.  Writers exclusive, queries shared.
  mutable std::shared_mutex mu_;
  mutable std::shared_ptr<const Tier> tier_;
  mutable std::unique_ptr<Dataset> delta_rows_;
  mutable std::optional<EkdbTree> delta_tree_;
  mutable std::vector<PointId> delta_logical_;  // sorted (ids ascend)
  mutable std::shared_ptr<const TombstoneSet> tombstones_;
  mutable PointId next_logical_ = 0;
  mutable uint64_t compactions_ = 0;
  mutable bool compact_scheduled_ = false;

  // Serialises compaction bodies (Flush vs the background task).
  mutable std::mutex compact_mu_;

  mutable std::function<void(double)> compaction_observer_;
};

}  // namespace simjoin

#endif  // SIMJOIN_CORE_DELTA_INDEX_H_
