#include "core/planner.h"

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "baselines/grid_join.h"
#include "baselines/kdtree.h"
#include "baselines/nested_loop.h"
#include "baselines/sort_merge.h"
#include "core/ekdb_join.h"
#include "core/selectivity.h"
#include "rtree/rtree_join.h"

namespace simjoin {

const char* JoinAlgorithmName(JoinAlgorithm algorithm) {
  switch (algorithm) {
    case JoinAlgorithm::kNestedLoop:
      return "nested-loop";
    case JoinAlgorithm::kSortMerge:
      return "sort-merge";
    case JoinAlgorithm::kGrid:
      return "grid";
    case JoinAlgorithm::kKdTree:
      return "kdtree";
    case JoinAlgorithm::kRTree:
      return "rtree";
    case JoinAlgorithm::kEkdb:
      return "ekdb";
  }
  return "unknown";
}

Result<JoinPlan> PlanSelfJoin(const Dataset& data, double epsilon, Metric metric,
                              const PlannerOptions& options) {
  if (data.size() < 2) {
    return Status::InvalidArgument("need at least two points to plan a join");
  }
  if (!(epsilon > 0.0)) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  if (options.selectivity_samples == 0) {
    return Status::InvalidArgument("selectivity_samples must be positive");
  }

  JoinPlan plan;
  const double possible_pairs = 0.5 * static_cast<double>(data.size()) *
                                static_cast<double>(data.size() - 1);

  if (data.size() <= options.nested_loop_cutoff) {
    plan.algorithm = JoinAlgorithm::kNestedLoop;
    plan.rationale = "tiny input (n <= " +
                     std::to_string(options.nested_loop_cutoff) +
                     "): index build overhead would dominate";
    // Selectivity is cheap to estimate even when unused for the decision.
    SIMJOIN_ASSIGN_OR_RETURN(
        auto estimate,
        EstimatePairsByPairSampling(data, epsilon, metric,
                                    options.selectivity_samples, options.seed));
    plan.estimated_pairs = estimate.estimated_pairs;
    plan.estimated_density = estimate.estimated_pairs / possible_pairs;
    return plan;
  }

  SIMJOIN_ASSIGN_OR_RETURN(
      auto estimate,
      EstimatePairsByPairSampling(data, epsilon, metric,
                                  options.selectivity_samples, options.seed));
  plan.estimated_pairs = estimate.estimated_pairs;
  plan.estimated_density = estimate.estimated_pairs / possible_pairs;

  if (plan.estimated_density >= options.output_bound_density) {
    plan.algorithm = JoinAlgorithm::kNestedLoop;
    plan.rationale = "output-bound join (estimated density " +
                     std::to_string(plan.estimated_density) +
                     "): every algorithm must enumerate most pairs anyway";
    return plan;
  }
  if (epsilon >= 1.0) {
    // The stripe grid needs epsilon < 1 on unit-cube data; the k-d tree is
    // epsilon-agnostic and handles outsized radii gracefully.
    plan.algorithm = JoinAlgorithm::kKdTree;
    plan.rationale =
        "epsilon >= 1 exceeds the eps-k-d-B stripe limit; k-d tree is "
        "epsilon-agnostic";
    return plan;
  }
  if (data.dims() <= options.grid_max_dims && epsilon < 0.5) {
    plan.algorithm = JoinAlgorithm::kGrid;
    plan.rationale = "low dimensionality (d <= " +
                     std::to_string(options.grid_max_dims) +
                     "): epsilon-grid neighbourhoods stay small";
    return plan;
  }
  plan.algorithm = JoinAlgorithm::kEkdb;
  plan.rationale =
      "default: eps-k-d-B tree dominates at this size/dimensionality "
      "(experiments R1-R3)";
  return plan;
}

Status ExecuteSelfJoin(const Dataset& data, double epsilon, Metric metric,
                       const JoinPlan& plan, PairSink* sink, JoinStats* stats) {
  switch (plan.algorithm) {
    case JoinAlgorithm::kNestedLoop:
      return NestedLoopSelfJoin(data, epsilon, metric, sink, stats);
    case JoinAlgorithm::kSortMerge:
      return SortMergeSelfJoin(data, epsilon, metric, SortMergeConfig{}, sink,
                               stats);
    case JoinAlgorithm::kGrid:
      return GridSelfJoin(data, epsilon, metric, GridJoinConfig{}, sink, stats);
    case JoinAlgorithm::kKdTree: {
      SIMJOIN_ASSIGN_OR_RETURN(auto tree, KdTree::Build(data, KdTreeConfig{}));
      return KdTreeSelfJoin(tree, epsilon, metric, sink, stats);
    }
    case JoinAlgorithm::kRTree: {
      SIMJOIN_ASSIGN_OR_RETURN(auto tree, RTree::BulkLoad(data, RTreeConfig{}));
      return RTreeSelfJoin(tree, epsilon, sink, metric, stats);
    }
    case JoinAlgorithm::kEkdb: {
      EkdbConfig config;
      config.epsilon = epsilon;
      config.metric = metric;
      SIMJOIN_ASSIGN_OR_RETURN(auto tree, EkdbTree::Build(data, config));
      return EkdbSelfJoin(tree, sink, stats);
    }
  }
  return Status::InvalidArgument("unknown algorithm in plan");
}

Status PlanAndRunSelfJoin(const Dataset& data, double epsilon, Metric metric,
                          PairSink* sink, JoinPlan* plan_out, JoinStats* stats,
                          const PlannerOptions& options) {
  SIMJOIN_ASSIGN_OR_RETURN(JoinPlan plan,
                           PlanSelfJoin(data, epsilon, metric, options));
  if (plan_out != nullptr) *plan_out = plan;
  return ExecuteSelfJoin(data, epsilon, metric, plan, sink, stats);
}

Result<double> ProbeRangeQueryCost(const IndexBackend& backend,
                                   double eps_query,
                                   const RangePlannerOptions& options) {
  if (options.probe_queries == 0) {
    return Status::InvalidArgument("probe_queries must be positive");
  }
  SIMJOIN_RETURN_NOT_OK(backend.ValidateQueryEpsilon(eps_query));
  const Dataset& data = backend.dataset();
  const size_t n = data.size();
  Rng rng(options.seed);
  JoinStats stats;
  std::vector<PointId> scratch;
  const size_t probes = std::min(options.probe_queries, n);
  for (size_t i = 0; i < probes; ++i) {
    const PointId id = static_cast<PointId>(rng.UniformInt(n));
    scratch.clear();
    SIMJOIN_RETURN_NOT_OK(
        backend.RangeQuery(data.Row(id), eps_query, &scratch, &stats));
  }
  return (static_cast<double>(stats.candidate_pairs) +
          options.node_visit_cost *
              static_cast<double>(stats.node_pairs_visited)) /
         static_cast<double>(probes);
}

Result<double> EstimateAvgNeighbors(const Dataset& data, double epsilon,
                                    Metric metric,
                                    const RangePlannerOptions& options) {
  SIMJOIN_ASSIGN_OR_RETURN(
      auto estimate,
      EstimatePairsByPairSampling(data, epsilon, metric,
                                  options.selectivity_samples, options.seed));
  return 2.0 * estimate.estimated_pairs / static_cast<double>(data.size());
}

}  // namespace simjoin
