#include "core/external_join.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "common/binary_io.h"
#include "common/logging.h"
#include "core/ekdb_join.h"
#include "core/ekdb_tree.h"

namespace simjoin {
namespace {

namespace fs = std::filesystem;

/// One loaded partition: the points plus their original file row ids.
struct Partition {
  Dataset points;
  std::vector<PointId> original_ids;
};

/// Sink adaptor translating partition-local ids back to original row ids.
/// In canonical mode (self-joins) the pair is reordered (min, max).
class TranslatingSink : public PairSink {
 public:
  TranslatingSink(const std::vector<PointId>& a_ids,
                  const std::vector<PointId>& b_ids, bool canonicalize,
                  PairSink* target)
      : a_ids_(a_ids),
        b_ids_(b_ids),
        canonicalize_(canonicalize),
        target_(target) {}

  void Emit(PointId a, PointId b) override {
    PointId oa = a_ids_[a];
    PointId ob = b_ids_[b];
    if (canonicalize_ && oa > ob) std::swap(oa, ob);
    target_->Emit(oa, ob);
  }

 private:
  const std::vector<PointId>& a_ids_;
  const std::vector<PointId>& b_ids_;
  bool canonicalize_;
  PairSink* target_;
};

/// Spill-record layout: original row id followed by the coordinates.
size_t RecordBytes(size_t dims) { return sizeof(PointId) + dims * sizeof(float); }

/// Shared stripe geometry derived from the config.
struct StripeGrid {
  uint32_t split_dim = 0;
  size_t num_stripes = 1;
  double stripe_width = 1.0;

  size_t StripeOf(float v) const {
    if (v <= 0.0f) return 0;
    return std::min(static_cast<size_t>(static_cast<double>(v) / stripe_width),
                    num_stripes - 1);
  }
};

/// Opens an input reader over either form of join input.
Status OpenRef(const ExternalDatasetRef& ref, BinaryDatasetReader* reader) {
  if (ref.raw) {
    return reader->OpenRaw(ref.path, ref.byte_offset, ref.num_points,
                           ref.dims);
  }
  return reader->Open(ref.path);
}

/// Streams a dataset input accumulating per-stripe counts; also validates
/// the [0,1] range.  *dims is set from the file (and checked for equality
/// when already set).
Status StripeHistogram(const ExternalDatasetRef& input,
                       const ExternalJoinConfig& config,
                       const StripeGrid& grid, size_t* dims,
                       std::vector<size_t>* counts) {
  BinaryDatasetReader reader;
  SIMJOIN_RETURN_NOT_OK(OpenRef(input, &reader));
  if (*dims == 0) {
    *dims = reader.dims();
  } else if (*dims != reader.dims()) {
    return Status::InvalidArgument("joined inputs have different dims");
  }
  if (reader.total_points() == 0) {
    return Status::InvalidArgument("input dataset is empty: " + input.path);
  }
  Dataset batch;
  PointId first_id = 0;
  while (!reader.AtEnd()) {
    SIMJOIN_RETURN_NOT_OK(
        reader.ReadBatch(config.io_batch_points, &batch, &first_id));
    if (!batch.AllWithin(0.0f, 1.0f)) {
      return Status::InvalidArgument(
          "input coordinates must lie in [0, 1]; normalise before spilling");
    }
    for (size_t i = 0; i < batch.size(); ++i) {
      ++(*counts)[grid.StripeOf(batch.Row(static_cast<PointId>(i))[grid.split_dim])];
    }
  }
  return Status::OK();
}

/// Streams a dataset input scattering (id, coords) records into one spill
/// file per partition.
Status ScatterToPartitions(const ExternalDatasetRef& input,
                           const ExternalJoinConfig& config,
                           const StripeGrid& grid, size_t dims,
                           const std::vector<size_t>& stripe_to_partition,
                           const std::vector<std::string>& spill_paths) {
  std::vector<std::ofstream> spills(spill_paths.size());
  for (size_t p = 0; p < spill_paths.size(); ++p) {
    spills[p].open(spill_paths[p], std::ios::binary | std::ios::trunc);
    if (!spills[p]) {
      return Status::IoError("cannot create spill file: " + spill_paths[p]);
    }
  }
  BinaryDatasetReader reader;
  SIMJOIN_RETURN_NOT_OK(OpenRef(input, &reader));
  Dataset batch;
  PointId first_id = 0;
  std::vector<char> record(RecordBytes(dims));
  while (!reader.AtEnd()) {
    SIMJOIN_RETURN_NOT_OK(
        reader.ReadBatch(config.io_batch_points, &batch, &first_id));
    for (size_t i = 0; i < batch.size(); ++i) {
      const PointId id = static_cast<PointId>(first_id + i);
      const float* row = batch.Row(static_cast<PointId>(i));
      const size_t p = stripe_to_partition[grid.StripeOf(row[grid.split_dim])];
      std::memcpy(record.data(), &id, sizeof(PointId));
      std::memcpy(record.data() + sizeof(PointId), row, dims * sizeof(float));
      spills[p].write(record.data(),
                      static_cast<std::streamsize>(record.size()));
    }
  }
  for (auto& s : spills) {
    s.flush();
    if (!s) return Status::IoError("spill write failed");
  }
  return Status::OK();
}

Status LoadPartition(const std::string& path, size_t dims, size_t count,
                     Partition* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open spill file: " + path);
  out->points.Reset(count, dims);
  out->original_ids.resize(count);
  std::vector<char> record(RecordBytes(dims));
  for (size_t i = 0; i < count; ++i) {
    in.read(record.data(), static_cast<std::streamsize>(record.size()));
    if (!in) return Status::IoError("truncated spill file: " + path);
    std::memcpy(&out->original_ids[i], record.data(), sizeof(PointId));
    std::memcpy(out->points.MutableRow(static_cast<PointId>(i)),
                record.data() + sizeof(PointId), dims * sizeof(float));
  }
  return Status::OK();
}

Status ValidateConfig(const ExternalJoinConfig& config) {
  if (config.temp_dir.empty() || !fs::is_directory(config.temp_dir)) {
    return Status::InvalidArgument("temp_dir must be an existing directory: " +
                                   config.temp_dir);
  }
  if (config.memory_budget_points < 2 || config.io_batch_points == 0) {
    return Status::InvalidArgument(
        "memory_budget_points must be >= 2 and io_batch_points positive");
  }
  return Status::OK();
}

/// Groups stripes into contiguous partitions with at most `budget` combined
/// occupancy each (single over-dense stripes may exceed it).
void GreedyPartition(const std::vector<size_t>& stripe_counts, size_t budget,
                     std::vector<size_t>* stripe_to_partition,
                     std::vector<size_t>* partition_of_stripe_counts) {
  stripe_to_partition->assign(stripe_counts.size(), 0);
  partition_of_stripe_counts->clear();
  partition_of_stripe_counts->push_back(0);
  size_t current = 0;
  for (size_t s = 0; s < stripe_counts.size(); ++s) {
    if ((*partition_of_stripe_counts)[current] > 0 &&
        (*partition_of_stripe_counts)[current] + stripe_counts[s] > budget) {
      ++current;
      partition_of_stripe_counts->push_back(0);
    }
    (*stripe_to_partition)[s] = current;
    (*partition_of_stripe_counts)[current] += stripe_counts[s];
  }
}

std::vector<std::string> SpillPaths(const std::string& temp_dir,
                                    const std::string& tag,
                                    size_t num_partitions) {
  std::vector<std::string> paths(num_partitions);
  for (size_t p = 0; p < num_partitions; ++p) {
    paths[p] = (fs::path(temp_dir) /
                ("simjoin_" + tag + "_" + std::to_string(p) + ".spill"))
                   .string();
  }
  return paths;
}

void RemoveAll(const std::vector<std::string>& paths) {
  for (const auto& path : paths) {
    std::error_code ec;
    fs::remove(path, ec);
  }
}

/// Per-input partition counts derived from a shared stripe->partition map.
std::vector<size_t> PartitionCounts(const std::vector<size_t>& stripe_counts,
                                    const std::vector<size_t>& stripe_to_partition,
                                    size_t num_partitions) {
  std::vector<size_t> counts(num_partitions, 0);
  for (size_t s = 0; s < stripe_counts.size(); ++s) {
    counts[stripe_to_partition[s]] += stripe_counts[s];
  }
  return counts;
}

}  // namespace

Status ExternalSelfJoin(const ExternalDatasetRef& input,
                        const ExternalJoinConfig& config, PairSink* sink,
                        JoinStats* stats, ExternalJoinReport* report) {
  if (sink == nullptr) return Status::InvalidArgument("sink must not be null");
  SIMJOIN_RETURN_NOT_OK(ValidateConfig(config));

  size_t dims = 0;
  {
    BinaryDatasetReader reader;
    SIMJOIN_RETURN_NOT_OK(OpenRef(input, &reader));
    dims = reader.dims();
    SIMJOIN_RETURN_NOT_OK(config.ekdb.Validate(dims));
  }
  StripeGrid grid;
  grid.split_dim = config.ekdb.ResolvedDimOrder(dims)[0];
  grid.num_stripes = config.ekdb.NumStripes();
  grid.stripe_width = config.ekdb.StripeWidth();

  // Pass 1: histogram + validation.
  std::vector<size_t> stripe_counts(grid.num_stripes, 0);
  size_t seen_dims = dims;
  SIMJOIN_RETURN_NOT_OK(
      StripeHistogram(input, config, grid, &seen_dims, &stripe_counts));

  // Partition and scatter.
  std::vector<size_t> stripe_to_partition, partition_counts;
  GreedyPartition(stripe_counts, std::max<size_t>(1, config.memory_budget_points / 2),
                  &stripe_to_partition, &partition_counts);
  const size_t num_partitions = partition_counts.size();
  const std::vector<std::string> spill_paths =
      SpillPaths(config.temp_dir, "self", num_partitions);
  Status status = ScatterToPartitions(input, config, grid, dims,
                                      stripe_to_partition, spill_paths);

  ExternalJoinReport local_report;
  local_report.partitions = num_partitions;
  for (size_t p = 0; p < num_partitions; ++p) {
    local_report.total_points += partition_counts[p];
    local_report.max_partition_points =
        std::max(local_report.max_partition_points, partition_counts[p]);
    local_report.bytes_spilled += partition_counts[p] * RecordBytes(dims);
  }

  // Join phase: partition p self-join + (p-1, p) cross join.
  if (status.ok()) {
    Partition prev, current;
    bool have_prev = false;
    for (size_t p = 0; p < num_partitions && status.ok(); ++p) {
      if (partition_counts[p] == 0) {
        have_prev = false;
        continue;
      }
      status = LoadPartition(spill_paths[p], dims, partition_counts[p], &current);
      if (!status.ok()) break;
      auto current_tree = EkdbTree::Build(current.points, config.ekdb);
      if (!current_tree.ok()) {
        status = current_tree.status();
        break;
      }
      size_t resident = current.points.size();
      if (have_prev) {
        resident += prev.points.size();
        auto prev_tree = EkdbTree::Build(prev.points, config.ekdb);
        if (!prev_tree.ok()) {
          status = prev_tree.status();
          break;
        }
        TranslatingSink cross_sink(prev.original_ids, current.original_ids,
                                   /*canonicalize=*/true, sink);
        status = EkdbJoin(*prev_tree, *current_tree, &cross_sink, stats);
        if (!status.ok()) break;
      }
      local_report.peak_resident_points =
          std::max(local_report.peak_resident_points, resident);

      TranslatingSink self_sink(current.original_ids, current.original_ids,
                                /*canonicalize=*/true, sink);
      status = EkdbSelfJoin(*current_tree, &self_sink, stats);
      if (!status.ok()) break;

      prev = std::move(current);
      have_prev = true;
    }
  }

  RemoveAll(spill_paths);
  if (report != nullptr) *report = local_report;
  return status;
}

Status ExternalJoin(const ExternalDatasetRef& input_a,
                    const ExternalDatasetRef& input_b,
                    const ExternalJoinConfig& config, PairSink* sink,
                    JoinStats* stats, ExternalJoinReport* report) {
  if (sink == nullptr) return Status::InvalidArgument("sink must not be null");
  SIMJOIN_RETURN_NOT_OK(ValidateConfig(config));

  size_t dims = 0;
  {
    BinaryDatasetReader reader;
    SIMJOIN_RETURN_NOT_OK(OpenRef(input_a, &reader));
    dims = reader.dims();
    SIMJOIN_RETURN_NOT_OK(config.ekdb.Validate(dims));
  }
  StripeGrid grid;
  grid.split_dim = config.ekdb.ResolvedDimOrder(dims)[0];
  grid.num_stripes = config.ekdb.NumStripes();
  grid.stripe_width = config.ekdb.StripeWidth();

  // Pass 1: per-input stripe histograms (shared grid).
  std::vector<size_t> counts_a(grid.num_stripes, 0);
  std::vector<size_t> counts_b(grid.num_stripes, 0);
  SIMJOIN_RETURN_NOT_OK(
      StripeHistogram(input_a, config, grid, &dims, &counts_a));
  SIMJOIN_RETURN_NOT_OK(
      StripeHistogram(input_b, config, grid, &dims, &counts_b));

  // Shared partition boundaries sized by combined occupancy so that one
  // partition from each side fits together in the budget.
  std::vector<size_t> combined(grid.num_stripes);
  for (size_t s = 0; s < grid.num_stripes; ++s) {
    combined[s] = counts_a[s] + counts_b[s];
  }
  std::vector<size_t> stripe_to_partition, combined_counts;
  GreedyPartition(combined, std::max<size_t>(1, config.memory_budget_points / 2),
                  &stripe_to_partition, &combined_counts);
  const size_t num_partitions = combined_counts.size();
  const std::vector<size_t> parts_a =
      PartitionCounts(counts_a, stripe_to_partition, num_partitions);
  const std::vector<size_t> parts_b =
      PartitionCounts(counts_b, stripe_to_partition, num_partitions);

  const std::vector<std::string> spills_a =
      SpillPaths(config.temp_dir, "a", num_partitions);
  const std::vector<std::string> spills_b =
      SpillPaths(config.temp_dir, "b", num_partitions);
  Status status = ScatterToPartitions(input_a, config, grid, dims,
                                      stripe_to_partition, spills_a);
  if (status.ok()) {
    status = ScatterToPartitions(input_b, config, grid, dims,
                                 stripe_to_partition, spills_b);
  }

  ExternalJoinReport local_report;
  local_report.partitions = num_partitions;
  for (size_t p = 0; p < num_partitions; ++p) {
    local_report.total_points += parts_a[p] + parts_b[p];
    local_report.max_partition_points = std::max(
        {local_report.max_partition_points, parts_a[p], parts_b[p]});
    local_report.bytes_spilled +=
        (parts_a[p] + parts_b[p]) * RecordBytes(dims);
  }

  // Join phase: A_p against B_{p-1}, B_p, B_{p+1} (two resident at a time).
  if (status.ok()) {
    Partition part_a, part_b;
    for (size_t p = 0; p < num_partitions && status.ok(); ++p) {
      if (parts_a[p] == 0) continue;
      status = LoadPartition(spills_a[p], dims, parts_a[p], &part_a);
      if (!status.ok()) break;
      auto tree_a = EkdbTree::Build(part_a.points, config.ekdb);
      if (!tree_a.ok()) {
        status = tree_a.status();
        break;
      }
      const size_t q_lo = p == 0 ? 0 : p - 1;
      const size_t q_hi = std::min(num_partitions - 1, p + 1);
      for (size_t q = q_lo; q <= q_hi && status.ok(); ++q) {
        if (parts_b[q] == 0) continue;
        status = LoadPartition(spills_b[q], dims, parts_b[q], &part_b);
        if (!status.ok()) break;
        auto tree_b = EkdbTree::Build(part_b.points, config.ekdb);
        if (!tree_b.ok()) {
          status = tree_b.status();
          break;
        }
        local_report.peak_resident_points =
            std::max(local_report.peak_resident_points,
                     part_a.points.size() + part_b.points.size());
        TranslatingSink cross_sink(part_a.original_ids, part_b.original_ids,
                                   /*canonicalize=*/false, sink);
        status = EkdbJoin(*tree_a, *tree_b, &cross_sink, stats);
      }
    }
  }

  RemoveAll(spills_a);
  RemoveAll(spills_b);
  if (report != nullptr) *report = local_report;
  return status;
}

}  // namespace simjoin
