// External (out-of-core) bulk load of eps-k-d-B segment files.
//
// The classic STR external build samples the input to pick partition
// boundaries; the eps-k-d-B tree needs no sampling pass because its
// top-level partition is the *global* epsilon-stripe grid — boundaries are a
// pure function of epsilon, identical to the ones an in-memory build would
// choose.  That determinism is what lets the external build promise more
// than "equivalent": the segment file it writes is byte-identical to
// WriteSegment over an in-RAM Build of the same dataset.
//
// Pipeline (input is a simjoin binary dataset file, common/binary_io.h):
//
//  1. Run formation: stream the input in batches, tag every point with its
//     top-level stripe (dim_order[0]), stable-sort each memory-sized run by
//     stripe (stability preserves original row order within a stripe) and
//     spill it to a temp file.
//  2. K-way merge: merge the runs on (stripe, row id), which regroups the
//     input by top-level stripe with rows in original order — exactly the
//     bucket contents the in-memory build's top-level split produces.
//  3. Per-stripe tiling: each stripe's points (the only full-width resident
//     state; peak memory = the largest stripe, recorded in the report) are
//     built into the subtree a full build would hang under that stripe
//     (EkdbTree::BuildSubtree at depth 1), flattened, and its arena rows and
//     translated ids streamed to temp files; node metadata (a few % of the
//     data) is kept in memory.
//  4. Assembly: fragments' node arrays are interleaved level by level into
//     the global BFS layout (child ranges remapped arithmetically), a root
//     node is synthesised, and the final segment file is written in one
//     sequential pass — node/bbox sections from memory, arena/id sections
//     copied from the temp spill, the dataset section re-streamed from the
//     input.  Checksums are accumulated streaming; layout and header bytes
//     come from the same helpers WriteSegment uses.
//
// Degenerate shapes where the in-memory root would not split (fewer points
// than the leaf threshold, a one-stripe grid, or 1-d data, whose depth-1
// subtrees cannot be built in isolation) fall back to an in-memory build +
// WriteSegment; the report says so.

#ifndef SIMJOIN_CORE_SEGMENT_BUILDER_H_
#define SIMJOIN_CORE_SEGMENT_BUILDER_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "core/ekdb_config.h"

namespace simjoin {

/// Parameters of the external segment build.
struct ExternalBuildConfig {
  /// Index parameters (epsilon, metric, leaf threshold, dim order...).
  EkdbConfig ekdb;

  /// Directory for run/arena spill files; must exist and be writable.
  /// Empty uses the output segment's directory.  Spill files are removed on
  /// completion (success or failure).
  std::string temp_dir;

  /// Points per sorted run in pass 1.  Together with the largest stripe this
  /// bounds the build's resident point count.
  size_t sort_run_points = size_t{1} << 17;

  /// Batch size (points) for streaming reads of the input.
  size_t io_batch_points = size_t{1} << 14;
};

/// What the external build actually did; useful for tests, benches, and the
/// bounded-memory claims in docs/external.md.
struct ExternalBuildReport {
  uint64_t num_points = 0;
  uint32_t num_nodes = 0;
  uint32_t dims = 0;
  size_t num_runs = 0;            ///< sorted runs spilled in pass 1
  size_t num_fragments = 0;       ///< non-empty top-level stripes
  uint64_t peak_stripe_points = 0;  ///< resident bound of the tiling phase
  uint64_t temp_bytes_written = 0;  ///< run + arena spill volume
  uint64_t segment_bytes = 0;       ///< final segment file size
  bool fallback_in_memory = false;  ///< degenerate shape, built in RAM
};

/// Bulk-loads the binary dataset at dataset_path into a segment file at
/// segment_path without ever materialising the whole index in memory.  The
/// output is byte-identical to WriteSegment(FlatEkdbTree::FromTree(
/// EkdbTree::Build(dataset, config.ekdb)), segment_path).
Result<ExternalBuildReport> BuildSegmentExternal(
    const std::string& dataset_path, const std::string& segment_path,
    const ExternalBuildConfig& config);

}  // namespace simjoin

#endif  // SIMJOIN_CORE_SEGMENT_BUILDER_H_
