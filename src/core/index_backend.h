// The backend-agnostic index interface the query service plans over.
//
// The paper's central result is that no single similarity-join structure
// wins across dimensionality/epsilon regimes, so the serving layer cannot
// be married to one: IndexBackend abstracts "a structure built over one
// dataset that answers epsilon range queries (and possibly self-joins)",
// and everything above it — solo dispatch, the fusion collector, join
// streaming, the cost-based planner — works against this interface only.
//
// Four concrete backends exist today:
//   * EkdbFlatBackend  — the exact eps-k-d-B flat tree (the default),
//   * EpsilonGridBackend — the exact dense low-d uniform grid,
//   * BruteSimdBackend — an exact strided SIMD scan of the whole dataset
//     (no build cost, no structure; wins when the tree degenerates so far
//     that it scans almost everything anyway, paying traversal on top),
//   * LshBackend (src/approx/lsh_index.h) — recall-controlled p-stable LSH
//     candidates re-verified by the exact batch kernel.
//
// Every exact backend answers the same query with the same id *set*; the
// emission *order* is backend-specific (tree traversal order, grid cell
// order, ascending dataset order).  Planner-routed responses are therefore
// canonicalised (sorted ascending) by the service so the answer bytes do
// not depend on which exact backend the planner picked.

#ifndef SIMJOIN_CORE_INDEX_BACKEND_H_
#define SIMJOIN_CORE_INDEX_BACKEND_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/dataset.h"
#include "common/pair_sink.h"
#include "common/status.h"
#include "core/ekdb_config.h"
#include "core/ekdb_flat.h"
#include "core/epsilon_grid.h"

namespace simjoin {

/// Which index structure backs a served index or answers one query.  Wire
/// values (one byte in BuildIndex requests and in the RangeQuery planner
/// extension) — append only.
enum class BackendKind : uint8_t {
  kEkdbFlat = 0,     ///< eps-k-d-B tree flattened to an arena (the default)
  kEpsilonGrid = 1,  ///< uniform epsilon-cell grid (dense low-d fast path)
  kLsh = 2,          ///< p-stable LSH candidates + exact SIMD verification
  kBruteSimd = 3,    ///< strided SIMD scan of the whole dataset
  kRTree = 4,        ///< bulk-loaded R-tree (src/rtree), exact range search
  kUpdatable = 5,    ///< LSM-style delta memtable + flat snapshot (updatable)
};

/// Number of distinct BackendKind values (for fixed-size per-kind tables).
inline constexpr size_t kNumBackendKinds = 6;

/// Wire byte in the RangeQuery planner extension meaning "no forced
/// backend — let the planner choose".
inline constexpr uint8_t kWireBackendAuto = 0xFF;

/// Returns the backend kind for a wire byte, or InvalidArgument for
/// unknown values.
Result<BackendKind> BackendKindFromWire(uint8_t value);

/// Short stable name ("ekdb-flat", "grid", "lsh", "brute-simd").
const char* BackendKindName(BackendKind kind);

/// True for kinds a BuildIndex request may select as an index's primary
/// structure.  LSH and brute-SIMD are query-time backends the planner (or a
/// per-request override) materialises on demand; they are never primaries.
bool BackendKindBuildable(BackendKind kind);

/// One index structure over one dataset, answering epsilon range queries.
///
/// Implementations are immutable after construction and safe for
/// unsynchronised concurrent const access; the dataset must outlive the
/// backend.  The query contract is shared:
///  * eps_query must pass ValidateQueryEpsilon ((0, build epsilon]);
///  * RangeQuery appends matching ids to *out in a deterministic
///    backend-specific order and tallies stats when provided;
///  * RangeQueryBatch is bit-identical to per-query RangeQuery calls;
///  * exact() backends return exactly the true epsilon neighbourhood;
///    approximate ones return a verified subset (precision 1, recall < 1)
///    and report a per-query achieved-recall estimate.
class IndexBackend {
 public:
  virtual ~IndexBackend() = default;

  virtual BackendKind kind() const = 0;
  virtual const EkdbConfig& config() const = 0;
  virtual const Dataset& dataset() const = 0;
  /// Heap footprint of the structure itself (excluding the dataset).
  virtual uint64_t index_bytes() const = 0;
  /// True when RangeQuery returns the exact epsilon neighbourhood.
  virtual bool exact() const = 0;
  /// True when SelfJoin is implemented natively.
  virtual bool supports_self_join() const { return false; }
  /// True when the structure is served out of a memory-mapped segment file
  /// (fault-in serving) rather than heap storage.  The planner charges
  /// mapped backends a cold-read penalty until they have served queries,
  /// and the registry accounts their bytes against the OS page cache, not
  /// the heap budget.
  virtual bool mapped() const { return false; }

  virtual Status ValidateQueryEpsilon(double eps_query) const = 0;

  /// Appends the ids within eps_query of the query point to *out.  When
  /// recall_est is non-null it receives this backend's estimate of the
  /// recall achieved on this query (exact backends write 1.0).
  virtual Status RangeQuery(const float* query, double eps_query,
                            std::vector<PointId>* out,
                            JoinStats* stats = nullptr,
                            double* recall_est = nullptr) const = 0;

  /// Batch form; results/stats/recall estimates are bit-identical to solo
  /// RangeQuery calls over the same specs.  recall_ests (when non-null) is
  /// resized to count.
  virtual Status RangeQueryBatch(const RangeQuerySpec* specs, size_t count,
                                 std::vector<std::vector<PointId>>* results,
                                 std::vector<JoinStats>* stats = nullptr,
                                 std::vector<double>* recall_ests =
                                     nullptr) const = 0;

  /// Streams the epsilon self-join at eps_query into the sink (sequential
  /// pair sequence regardless of num_threads).  Unimplemented unless
  /// supports_self_join(); callers fall back to an ekdb-flat backend.
  virtual Status SelfJoin(double eps_query, size_t num_threads,
                          PairSink* sink, JoinStats* stats = nullptr) const;

  // -- planner hooks -------------------------------------------------------

  /// Estimated work for one range query, in row-filter-equivalent units
  /// (1.0 ~ streaming one candidate row through the batch kernel), given
  /// the sampled expectation of true epsilon neighbours per query.  A
  /// static prior — the planner refines exact backends' costs with probe
  /// queries and trusts this only where probing is pointless (brute scan)
  /// or impossible (backend not yet built).
  virtual double EstimatedQueryCost(double eps_query,
                                    double expected_neighbors) const = 0;

  /// Model lower bound on the recall of one range query at eps_query
  /// (exact backends: 1.0; LSH: the collision-probability bound at the
  /// worst case, distance == eps_query).
  virtual double ExpectedRecall(double eps_query) const { return 1.0; }

  /// The flat tree when this backend is tree-backed (cross-joins need the
  /// concrete structure for compatibility checks); nullptr otherwise.
  virtual const FlatEkdbTree* flat_tree() const { return nullptr; }
};

/// Exact eps-k-d-B flat-tree backend (wraps the pointer-tree build +
/// flatten the registry has always done; parallel when num_threads != 1).
class EkdbFlatBackend final : public IndexBackend {
 public:
  static Result<std::unique_ptr<EkdbFlatBackend>> Build(
      const Dataset& dataset, const EkdbConfig& config, size_t num_threads);
  /// Wraps an already-flattened tree (must be built over `dataset`).
  explicit EkdbFlatBackend(FlatEkdbTree tree) : tree_(std::move(tree)) {}

  BackendKind kind() const override { return BackendKind::kEkdbFlat; }
  const EkdbConfig& config() const override { return tree_.config(); }
  const Dataset& dataset() const override { return tree_.dataset(); }
  uint64_t index_bytes() const override { return tree_.total_bytes(); }
  bool exact() const override { return true; }
  bool supports_self_join() const override { return true; }
  Status ValidateQueryEpsilon(double eps_query) const override {
    return tree_.ValidateQueryEpsilon(eps_query);
  }
  Status RangeQuery(const float* query, double eps_query,
                    std::vector<PointId>* out, JoinStats* stats,
                    double* recall_est) const override;
  Status RangeQueryBatch(const RangeQuerySpec* specs, size_t count,
                         std::vector<std::vector<PointId>>* results,
                         std::vector<JoinStats>* stats,
                         std::vector<double>* recall_ests) const override;
  Status SelfJoin(double eps_query, size_t num_threads, PairSink* sink,
                  JoinStats* stats) const override;
  double EstimatedQueryCost(double eps_query,
                            double expected_neighbors) const override;
  const FlatEkdbTree* flat_tree() const override { return &tree_; }

 private:
  FlatEkdbTree tree_;
};

/// Exact epsilon-grid backend (dense low-dimensional fast path).
class EpsilonGridBackend final : public IndexBackend {
 public:
  static Result<std::unique_ptr<EpsilonGridBackend>> Build(
      const Dataset& dataset, const EkdbConfig& config);

  BackendKind kind() const override { return BackendKind::kEpsilonGrid; }
  const EkdbConfig& config() const override { return grid_.config(); }
  const Dataset& dataset() const override { return grid_.dataset(); }
  uint64_t index_bytes() const override { return grid_.total_bytes(); }
  bool exact() const override { return true; }
  Status ValidateQueryEpsilon(double eps_query) const override {
    return grid_.ValidateQueryEpsilon(eps_query);
  }
  Status RangeQuery(const float* query, double eps_query,
                    std::vector<PointId>* out, JoinStats* stats,
                    double* recall_est) const override;
  Status RangeQueryBatch(const RangeQuerySpec* specs, size_t count,
                         std::vector<std::vector<PointId>>* results,
                         std::vector<JoinStats>* stats,
                         std::vector<double>* recall_ests) const override;
  double EstimatedQueryCost(double eps_query,
                            double expected_neighbors) const override;

  const EpsilonGrid& grid() const { return grid_; }

 private:
  explicit EpsilonGridBackend(EpsilonGrid grid) : grid_(std::move(grid)) {}

  EpsilonGrid grid_;
};

/// Exact brute-force backend: one strided streaming SIMD sweep of the
/// whole dataset per query, ids emitted in ascending dataset order.  Zero
/// build cost and zero index memory — the floor every structure must beat,
/// and the planner's choice when a degenerate tree would scan nearly
/// everything anyway while also paying traversal.
class BruteSimdBackend final : public IndexBackend {
 public:
  static Result<std::unique_ptr<BruteSimdBackend>> Build(
      const Dataset& dataset, const EkdbConfig& config);

  BackendKind kind() const override { return BackendKind::kBruteSimd; }
  const EkdbConfig& config() const override { return config_; }
  const Dataset& dataset() const override { return *dataset_; }
  uint64_t index_bytes() const override { return 0; }
  bool exact() const override { return true; }
  Status ValidateQueryEpsilon(double eps_query) const override;
  Status RangeQuery(const float* query, double eps_query,
                    std::vector<PointId>* out, JoinStats* stats,
                    double* recall_est) const override;
  Status RangeQueryBatch(const RangeQuerySpec* specs, size_t count,
                         std::vector<std::vector<PointId>>* results,
                         std::vector<JoinStats>* stats,
                         std::vector<double>* recall_ests) const override;
  double EstimatedQueryCost(double eps_query,
                            double expected_neighbors) const override;

 private:
  BruteSimdBackend(const Dataset& dataset, const EkdbConfig& config)
      : dataset_(&dataset), config_(config) {}

  const Dataset* dataset_;
  EkdbConfig config_;
};

}  // namespace simjoin

#endif  // SIMJOIN_CORE_INDEX_BACKEND_H_
