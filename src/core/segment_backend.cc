#include "core/segment_backend.h"

#include <utility>

#include "core/ekdb_flat_join.h"
#include "core/external_join.h"
#include "core/parallel_join.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace simjoin {

namespace {

obs::Counter* SpillJoinsCounter() {
  static obs::Counter* const counter =
      obs::GlobalMetrics().GetCounter("mmap.spill_joins");
  return counter;
}

std::string DirOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

Result<std::unique_ptr<MmapEkdbBackend>> MmapEkdbBackend::Open(
    const std::string& path, const MmapBackendOptions& options) {
  SIMJOIN_ASSIGN_OR_RETURN(SegmentIndex index,
                           OpenSegment(path, SegmentOpenMode::kMmap));
  return std::unique_ptr<MmapEkdbBackend>(
      new MmapEkdbBackend(std::move(index), options));
}

uint64_t MmapEkdbBackend::index_bytes() const {
  // Heap bookkeeping only: the structure's real bytes live in the mapping
  // (page cache), reported via mapped_bytes()/resident_bytes().
  return sizeof(*this) +
         config().dim_order.capacity() * sizeof(uint32_t) +
         index_.segment->path().capacity();
}

Status MmapEkdbBackend::RangeQuery(const float* query, double eps_query,
                                   std::vector<PointId>* out, JoinStats* stats,
                                   double* recall_est) const {
  if (recall_est != nullptr) *recall_est = 1.0;
  SIMJOIN_RETURN_NOT_OK(index_.tree->RangeQuery(query, eps_query, out, stats));
  queries_served_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status MmapEkdbBackend::RangeQueryBatch(
    const RangeQuerySpec* specs, size_t count,
    std::vector<std::vector<PointId>>* results, std::vector<JoinStats>* stats,
    std::vector<double>* recall_ests) const {
  if (recall_ests != nullptr) recall_ests->assign(count, 1.0);
  SIMJOIN_RETURN_NOT_OK(
      index_.tree->RangeQueryBatch(specs, count, results, stats));
  queries_served_.fetch_add(count, std::memory_order_relaxed);
  return Status::OK();
}

Status MmapEkdbBackend::SelfJoin(double eps_query, size_t num_threads,
                                 PairSink* sink, JoinStats* stats) const {
  SIMJOIN_RETURN_NOT_OK(ValidateQueryEpsilon(eps_query));
  const FlatEkdbTree& tree = *index_.tree;
  if (mapped_bytes() <= options_.spill_join_bytes) {
    const double build_eps = tree.config().epsilon;
    if (num_threads > 1 && eps_query == build_eps) {
      ParallelJoinConfig pcfg;
      pcfg.num_threads = num_threads;
      return ParallelFlatEkdbSelfJoin(tree, pcfg, sink, stats);
    }
    return eps_query == build_eps
               ? FlatEkdbSelfJoin(tree, sink, stats)
               : FlatEkdbSelfJoinWithEpsilon(tree, eps_query, sink, stats);
  }

  // Operand exceeds the in-core budget: run the out-of-core partition join
  // over the dataset section of our own segment file (a headerless raw
  // region — no copy of the data is made).  Resident footprint is bounded
  // by spill_memory_budget_points; the canonical pair set is identical.
  SIMJOIN_TRACE_SPAN("mmap.spill_self_join");
  SpillJoinsCounter()->Add(1);
  const SegmentInfo& info = index_.segment->info();
  const SegmentInfo::Section& rows =
      info.sections[static_cast<size_t>(SegmentSection::kDataset)];
  ExternalJoinConfig ext;
  ext.ekdb = tree.config();
  ext.ekdb.epsilon = eps_query;
  ext.temp_dir = options_.spill_temp_dir.empty() ? DirOf(segment_path())
                                                 : options_.spill_temp_dir;
  ext.memory_budget_points = options_.spill_memory_budget_points;
  return ExternalSelfJoin(
      ExternalDatasetRef::Raw(segment_path(), rows.offset, info.num_points,
                              info.dims),
      ext, sink, stats);
}

double MmapEkdbBackend::EstimatedQueryCost(double /*eps_query*/,
                                           double expected_neighbors) const {
  // Same prior as the heap-backed flat tree, multiplied by the cold-read
  // penalty until the mapping has demonstrably faulted its hot pages in.
  const double n = static_cast<double>(dataset().size());
  const double warm = std::min(n, 64.0 + 8.0 * expected_neighbors);
  const bool cold = queries_served_.load(std::memory_order_relaxed) == 0;
  return cold ? warm * options_.cold_cost_penalty : warm;
}

}  // namespace simjoin
