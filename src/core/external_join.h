// Out-of-core eps-k-d-B similarity self-join.
//
// The paper's in-memory index assumes the window of data fits in RAM; for
// larger inputs it prescribes the natural stripe decomposition: partition
// the input on the first split dimension into runs of whole epsilon-stripes,
// spill each partition to disk, and then join each partition with itself and
// with its immediate successor — stripe adjacency guarantees no pair spans
// non-adjacent partitions, so two partitions resident at a time suffice.
//
// The input is a simjoin binary dataset file (common/binary_io.h) streamed
// in batches, so the full input is never materialised: pass 1 histograms
// the stripe occupancy to choose memory-sized partitions, pass 2 scatters
// points into per-partition spill files, and the join phase loads at most
// two partitions, builds eps-k-d-B trees over them, and emits pairs in the
// original file row ids.

#ifndef SIMJOIN_CORE_EXTERNAL_JOIN_H_
#define SIMJOIN_CORE_EXTERNAL_JOIN_H_

#include <cstdint>
#include <string>

#include "common/pair_sink.h"
#include "common/status.h"
#include "core/ekdb_config.h"

namespace simjoin {

/// Parameters of the out-of-core join.
struct ExternalJoinConfig {
  /// Index/join parameters (epsilon, metric, leaf threshold, ...).
  EkdbConfig ekdb;

  /// Directory for partition spill files; must exist and be writable.
  /// Spill files are removed on completion.
  std::string temp_dir;

  /// Target maximum number of points resident in memory at once.  Each
  /// partition is sized to at most half of this so that a partition and its
  /// successor fit together.  A single over-dense stripe can exceed the
  /// target (stripes are indivisible); the report records the actual peak.
  size_t memory_budget_points = 1 << 17;

  /// Batch size (points) for streaming passes.
  size_t io_batch_points = 1 << 14;
};

/// What the out-of-core run actually did; useful for tests and benchmarks.
struct ExternalJoinReport {
  size_t total_points = 0;
  size_t partitions = 0;
  size_t max_partition_points = 0;   ///< largest single partition
  size_t peak_resident_points = 0;   ///< max points loaded simultaneously
  uint64_t bytes_spilled = 0;        ///< total spill-file volume
};

/// One out-of-core join input: either a simjoin binary dataset file, or a
/// headerless raw row-major float32 region inside an arbitrary file — the
/// dataset section of an index segment file (core/segment.h), which lets a
/// memory-mapped index spill-join directly from its own backing file.
struct ExternalDatasetRef {
  std::string path;

  /// When false (a plain binary dataset file), the remaining fields are
  /// ignored and read from the file header.
  bool raw = false;
  uint64_t byte_offset = 0;
  uint64_t num_points = 0;
  size_t dims = 0;

  ExternalDatasetRef() = default;
  /*implicit*/ ExternalDatasetRef(std::string p) : path(std::move(p)) {}
  /*implicit*/ ExternalDatasetRef(const char* p) : path(p) {}

  static ExternalDatasetRef Raw(std::string p, uint64_t offset,
                                uint64_t points, size_t d) {
    ExternalDatasetRef ref;
    ref.path = std::move(p);
    ref.raw = true;
    ref.byte_offset = offset;
    ref.num_points = points;
    ref.dims = d;
    return ref;
  }
};

/// Self-join of the referenced dataset.  Pairs are emitted in canonical
/// (smaller row id, larger row id) order, exactly once, and the pair set
/// equals the in-memory EkdbSelfJoin on the same data.
Status ExternalSelfJoin(const ExternalDatasetRef& input,
                        const ExternalJoinConfig& config, PairSink* sink,
                        JoinStats* stats = nullptr,
                        ExternalJoinReport* report = nullptr);

/// Out-of-core join between two binary dataset files of equal
/// dimensionality.  Both inputs are partitioned on the same stripe grid
/// (boundaries sized by their combined occupancy); partition p of A is
/// joined with partitions p-1, p, p+1 of B — stripe adjacency guarantees no
/// other combination can hold pairs — with two partitions resident at a
/// time.  Pairs are (row id in A, row id in B), exactly once.
Status ExternalJoin(const ExternalDatasetRef& input_a,
                    const ExternalDatasetRef& input_b,
                    const ExternalJoinConfig& config, PairSink* sink,
                    JoinStats* stats = nullptr,
                    ExternalJoinReport* report = nullptr);

}  // namespace simjoin

#endif  // SIMJOIN_CORE_EXTERNAL_JOIN_H_
