#include "core/projected_join.h"

#include <algorithm>

#include "common/metric.h"
#include "common/pca.h"
#include "core/ekdb_join.h"
#include "core/ekdb_tree.h"

namespace simjoin {
namespace {

/// Verifies projected-space candidates in the full space.
class VerifyingSink : public PairSink {
 public:
  VerifyingSink(const Dataset& full, double epsilon, PairSink* target,
                ProjectedJoinReport* report)
      : full_(full),
        kernel_(Metric::kL2),
        epsilon_(epsilon),
        target_(target),
        report_(report) {}

  void Emit(PointId a, PointId b) override {
    ++report_->candidate_pairs;
    if (kernel_.WithinEpsilon(full_.Row(a), full_.Row(b), full_.dims(),
                              epsilon_)) {
      ++report_->emitted_pairs;
      target_->Emit(a, b);
    }
  }

 private:
  const Dataset& full_;
  DistanceKernel kernel_;
  double epsilon_;
  PairSink* target_;
  ProjectedJoinReport* report_;
};

}  // namespace

Status PcaFilteredSelfJoin(const Dataset& data, double epsilon,
                           const ProjectedJoinConfig& config, PairSink* sink,
                           ProjectedJoinReport* report) {
  if (sink == nullptr) return Status::InvalidArgument("sink must not be null");
  if (data.size() < 2) {
    return Status::InvalidArgument("need at least two points to join");
  }
  if (!(epsilon > 0.0)) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  if (config.projected_dims == 0 || config.projected_dims > data.dims()) {
    return Status::InvalidArgument("projected_dims must be in [1, dims]");
  }

  ProjectedJoinReport local;
  SIMJOIN_ASSIGN_OR_RETURN(
      PcaModel model, FitPca(data, config.projected_dims, config.max_fit_points));
  local.explained_variance = model.ExplainedVarianceRatio();
  SIMJOIN_ASSIGN_OR_RETURN(Dataset projected, ProjectDataset(model, data));

  // Map the projected space into the unit cube with ONE uniform scale so L2
  // distances scale by exactly 1/scale and the join radius stays metric-true.
  const std::vector<float> mins = projected.ColumnMin();
  const std::vector<float> maxs = projected.ColumnMax();
  double scale = 0.0;
  for (size_t d = 0; d < projected.dims(); ++d) {
    scale = std::max(scale, static_cast<double>(maxs[d]) - mins[d]);
  }
  VerifyingSink verifier(data, epsilon, sink, &local);
  // Inflate the filter radius slightly: float projection/rescaling rounding
  // must never push a true pair past the filter (verification keeps the
  // output exact regardless).
  const double scaled_eps =
      scale > 0.0 ? (epsilon / scale) * 1.001 + 1e-6 : 1.0;
  if (scale <= 0.0 || scaled_eps >= 1.0) {
    // Degenerate projection (all points coincide) or a radius spanning the
    // whole projected range: the filter cannot discriminate, so verify all
    // pairs directly.
    const size_t n = projected.size();
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        verifier.Emit(static_cast<PointId>(i), static_cast<PointId>(j));
      }
    }
    if (report != nullptr) *report = local;
    return Status::OK();
  }

  for (size_t i = 0; i < projected.size(); ++i) {
    float* row = projected.MutableRow(static_cast<PointId>(i));
    for (size_t d = 0; d < projected.dims(); ++d) {
      row[d] = static_cast<float>(
          std::min(1.0, std::max(0.0, (static_cast<double>(row[d]) - mins[d]) /
                                          scale)));
    }
  }

  EkdbConfig ekdb;
  ekdb.epsilon = scaled_eps;
  ekdb.metric = Metric::kL2;
  ekdb.leaf_threshold = config.leaf_threshold;
  SIMJOIN_ASSIGN_OR_RETURN(auto tree, EkdbTree::Build(projected, ekdb));
  SIMJOIN_RETURN_NOT_OK(EkdbSelfJoin(tree, &verifier));
  if (report != nullptr) *report = local;
  return Status::OK();
}

}  // namespace simjoin
