#include "core/epsilon_grid.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/simd_kernel.h"
#include "obs/trace.h"

namespace simjoin {

Result<EpsilonGrid> EpsilonGrid::Build(const Dataset& dataset,
                                       const EkdbConfig& config) {
  SIMJOIN_RETURN_NOT_OK(config.Validate(dataset.dims()));
  if (dataset.empty()) {
    return Status::InvalidArgument(
        "cannot build epsilon grid on empty dataset");
  }
  if (!dataset.AllWithin(0.0f, 1.0f)) {
    return Status::InvalidArgument(
        "dataset coordinates must lie in [0, 1]; call NormalizeToUnitCube()");
  }
  SIMJOIN_TRACE_SPAN("grid.build");

  EpsilonGrid grid;
  grid.dataset_ = &dataset;
  grid.config_ = config;
  grid.dims_ = dataset.dims();
  grid.stripes_per_dim_ = config.NumStripes();
  grid.stripe_width_ = config.StripeWidth();

  // Binned dims: a prefix of the dim order, capped at kMaxBinnedDims and
  // shrunk until the cell table fits.  Large epsilon (few stripes) bins all
  // three dims; tiny epsilon in high d degrades towards fewer binned dims
  // rather than an enormous sparse table.
  const std::vector<uint32_t> order = config.ResolvedDimOrder(grid.dims_);
  size_t binned = std::min(kMaxBinnedDims, grid.dims_);
  auto table_size = [&grid](size_t g) {
    size_t cells = 1;
    for (size_t k = 0; k < g; ++k) {
      if (cells > kMaxCells / grid.stripes_per_dim_) return kMaxCells + 1;
      cells *= grid.stripes_per_dim_;
    }
    return cells;
  };
  while (binned > 0 && table_size(binned) > kMaxCells) --binned;
  grid.binned_dims_.assign(order.begin(), order.begin() + binned);
  const size_t cells = table_size(binned);

  // Counting sort into the cell-major arena; a second cursor pass keeps
  // dataset order within each cell (the documented intra-cell order).
  const size_t n = dataset.size();
  grid.cell_start_.assign(cells + 1, 0);
  std::vector<size_t> cell_of(n);
  for (size_t i = 0; i < n; ++i) {
    const size_t c = grid.CellOf(dataset.Row(static_cast<PointId>(i)));
    cell_of[i] = c;
    ++grid.cell_start_[c + 1];
  }
  for (size_t c = 0; c < cells; ++c) {
    grid.cell_start_[c + 1] += grid.cell_start_[c];
  }
  grid.arena_.resize(n * grid.dims_);
  grid.ids_.resize(n);
  std::vector<uint32_t> cursor(grid.cell_start_.begin(),
                               grid.cell_start_.end() - 1);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t pos = cursor[cell_of[i]]++;
    std::memcpy(grid.arena_.data() + static_cast<size_t>(pos) * grid.dims_,
                dataset.Row(static_cast<PointId>(i)),
                grid.dims_ * sizeof(float));
    grid.ids_[pos] = static_cast<PointId>(i);
  }
  return grid;
}

uint32_t EpsilonGrid::StripeIndex(float value) const {
  if (value <= 0.0f) return 0;
  const auto idx =
      static_cast<size_t>(static_cast<double>(value) / stripe_width_);
  return static_cast<uint32_t>(std::min(idx, stripes_per_dim_ - 1));
}

size_t EpsilonGrid::CellOf(const float* row) const {
  size_t cell = 0;
  for (const uint32_t dim : binned_dims_) {
    cell = cell * stripes_per_dim_ + StripeIndex(row[dim]);
  }
  return cell;
}

Status EpsilonGrid::ValidateQueryEpsilon(double eps_query) const {
  if (!(eps_query > 0.0) || eps_query > config_.epsilon) {
    return Status::InvalidArgument(
        "eps_query must be in (0, built epsilon]; the cell grid only "
        "supports radii up to the build epsilon");
  }
  return Status::OK();
}

void EpsilonGrid::CollectWindows(
    const float* query,
    std::vector<std::pair<uint32_t, uint32_t>>* windows) const {
  // Odometer over the +-1 stripe range of every binned dim, ascending
  // lexicographic — which is ascending cell id, so windows come out in
  // arena order and adjacent non-empty cells coalesce into one window.
  const size_t g = binned_dims_.size();
  uint32_t lo[kMaxBinnedDims], hi[kMaxBinnedDims], cur[kMaxBinnedDims];
  for (size_t k = 0; k < g; ++k) {
    const uint32_t s = StripeIndex(query[binned_dims_[k]]);
    lo[k] = s == 0 ? 0 : s - 1;
    hi[k] = std::min<uint32_t>(s + 1,
                               static_cast<uint32_t>(stripes_per_dim_ - 1));
    cur[k] = lo[k];
  }
  while (true) {
    size_t cell = 0;
    for (size_t k = 0; k < g; ++k) cell = cell * stripes_per_dim_ + cur[k];
    const uint32_t begin = cell_start_[cell];
    const uint32_t end = cell_start_[cell + 1];
    if (begin != end) {
      if (!windows->empty() && windows->back().second == begin) {
        windows->back().second = end;  // contiguous cells: one sweep window
      } else {
        windows->emplace_back(begin, end);
      }
    }
    size_t k = g;
    while (k > 0) {
      --k;
      if (cur[k] < hi[k]) {
        ++cur[k];
        for (size_t j = k + 1; j < g; ++j) cur[j] = lo[j];
        break;
      }
      if (k == 0) return;
    }
    if (g == 0) return;  // single-cell grid: one pass only
  }
}

Status EpsilonGrid::RangeQuery(const float* query, double eps_query,
                               std::vector<PointId>* out,
                               JoinStats* stats) const {
  if (out == nullptr) return Status::InvalidArgument("out must not be null");
  SIMJOIN_RETURN_NOT_OK(ValidateQueryEpsilon(eps_query));
  BatchDistanceKernel kernel(config_.metric, dims_, eps_query);
  uint8_t mask[BatchDistanceKernel::kTileCapacity];
  uint64_t candidates = 0;
  const size_t emitted_before = out->size();

  std::vector<std::pair<uint32_t, uint32_t>> windows;
  CollectWindows(query, &windows);
  for (const auto& [wb, we] : windows) {
    for (uint32_t pos = wb; pos < we;) {
      const auto count = std::min<uint32_t>(
          static_cast<uint32_t>(BatchDistanceKernel::kTileCapacity),
          we - pos);
      const float* row = arena_.data() + static_cast<size_t>(pos) * dims_;
      const float* next = pos + count < we ? row + count * dims_ : nullptr;
      kernel.FilterWithinEpsilonStrided(query, row, dims_, count, mask, next);
      for (uint32_t i = 0; i < count; ++i) {
        if (mask[i]) out->push_back(ids_[pos + i]);
      }
      candidates += count;
      pos += count;
    }
  }

  if (stats != nullptr) {
    stats->candidate_pairs += candidates;
    stats->distance_calls += candidates;
    // Structure-visit tally (coalesced neighbour-cell windows), the grid's
    // analogue of the tree's node visits — the planner's probe-cost signal.
    stats->node_pairs_visited += windows.size();
    stats->pairs_emitted += out->size() - emitted_before;
    stats->simd_batches += kernel.simd_batches();
    stats->scalar_fallbacks += kernel.scalar_fallbacks();
  }
  return Status::OK();
}

namespace {

struct GridSweepTask {
  uint32_t window_begin = 0;
  uint32_t window_end = 0;
  uint32_t spec = 0;
  uint32_t hits_begin = 0;
  uint32_t hits_end = 0;
};

}  // namespace

Status EpsilonGrid::RangeQueryBatch(const RangeQuerySpec* specs, size_t count,
                                    std::vector<std::vector<PointId>>* results,
                                    std::vector<JoinStats>* stats) const {
  if (results == nullptr) {
    return Status::InvalidArgument("results must not be null");
  }
  if (count != 0 && specs == nullptr) {
    return Status::InvalidArgument("specs must not be null");
  }
  for (size_t i = 0; i < count; ++i) {
    if (specs[i].query == nullptr) {
      return Status::InvalidArgument("spec query must not be null");
    }
    SIMJOIN_RETURN_NOT_OK(ValidateQueryEpsilon(specs[i].epsilon));
  }
  results->assign(count, {});
  if (stats != nullptr) stats->assign(count, JoinStats{});
  if (count == 0) return Status::OK();
  SIMJOIN_TRACE_SPAN("grid.batch_range_query");

  // Plan: per query, exactly the solo window list.
  std::vector<GridSweepTask> tasks;
  std::vector<std::pair<uint32_t, uint32_t>> windows;
  for (uint32_t s = 0; s < count; ++s) {
    windows.clear();
    CollectWindows(specs[s].query, &windows);
    for (const auto& [wb, we] : windows) {
      tasks.push_back(GridSweepTask{wb, we, s, 0, 0});
    }
    // Same window tally the solo path makes (fused/solo stat bit-identity).
    if (stats != nullptr) (*stats)[s].node_pairs_visited += windows.size();
  }

  // Sweep in arena order with one kernel, counters snapshotted per task.
  std::vector<uint32_t> sweep_order(tasks.size());
  for (uint32_t t = 0; t < tasks.size(); ++t) sweep_order[t] = t;
  std::stable_sort(sweep_order.begin(), sweep_order.end(),
                   [&tasks](uint32_t a, uint32_t b) {
                     if (tasks[a].window_begin != tasks[b].window_begin) {
                       return tasks[a].window_begin < tasks[b].window_begin;
                     }
                     return tasks[a].window_end < tasks[b].window_end;
                   });
  BatchDistanceKernel kernel(config_.metric, dims_, specs[0].epsilon);
  double kernel_eps = specs[0].epsilon;
  uint8_t mask[BatchDistanceKernel::kTileCapacity];
  std::vector<PointId> hits;
  for (const uint32_t t : sweep_order) {
    GridSweepTask& task = tasks[t];
    const RangeQuerySpec& spec = specs[task.spec];
    if (spec.epsilon != kernel_eps) {
      kernel.SetEpsilon(spec.epsilon);
      kernel_eps = spec.epsilon;
    }
    const uint64_t batches_before = kernel.simd_batches();
    const uint64_t rescues_before = kernel.scalar_fallbacks();
    task.hits_begin = static_cast<uint32_t>(hits.size());
    const uint32_t we = task.window_end;
    for (uint32_t pos = task.window_begin; pos < we;) {
      const auto n = std::min<uint32_t>(
          static_cast<uint32_t>(BatchDistanceKernel::kTileCapacity), we - pos);
      const float* row = arena_.data() + static_cast<size_t>(pos) * dims_;
      const float* next = pos + n < we ? row + n * dims_ : nullptr;
      kernel.FilterWithinEpsilonStrided(spec.query, row, dims_, n, mask,
                                        next);
      for (uint32_t i = 0; i < n; ++i) {
        if (mask[i]) hits.push_back(ids_[pos + i]);
      }
      pos += n;
    }
    task.hits_end = static_cast<uint32_t>(hits.size());
    if (stats != nullptr) {
      JoinStats& st = (*stats)[task.spec];
      const uint64_t candidates = we - task.window_begin;
      st.candidate_pairs += candidates;
      st.distance_calls += candidates;
      st.simd_batches += kernel.simd_batches() - batches_before;
      st.scalar_fallbacks += kernel.scalar_fallbacks() - rescues_before;
    }
  }

  // Scatter: tasks are already (query, window) ordered.
  for (const GridSweepTask& task : tasks) {
    std::vector<PointId>& out = (*results)[task.spec];
    out.insert(out.end(), hits.begin() + task.hits_begin,
               hits.begin() + task.hits_end);
  }
  if (stats != nullptr) {
    for (size_t s = 0; s < count; ++s) {
      (*stats)[s].pairs_emitted += (*results)[s].size();
    }
  }
  return Status::OK();
}

}  // namespace simjoin
