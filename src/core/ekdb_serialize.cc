// Binary persistence of the eps-k-d-B tree structure (EkdbTree::Save/Load).
//
// Layout: header (magic, version, dims, config, dimension order) followed
// by a preorder node stream.  Bounding boxes are not stored; Load recomputes
// them from the dataset, which both shrinks the file and revalidates that
// the structure matches the data it is being bound to.

#include <cerrno>
#include <cstring>
#include <fstream>

#include "core/ekdb_tree.h"

namespace simjoin {
namespace {

constexpr uint32_t kMagic = 0x534a4554;  // "SJET"
constexpr uint32_t kVersion = 1;
constexpr uint8_t kLeafTag = 0;
constexpr uint8_t kInternalTag = 1;

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

void SaveNode(std::ofstream& out, const EkdbNode& node) {
  if (node.is_leaf()) {
    WritePod(out, kLeafTag);
    WritePod(out, node.depth);
    WritePod(out, node.sort_dim);
    WritePod(out, static_cast<uint64_t>(node.points.size()));
    out.write(reinterpret_cast<const char*>(node.points.data()),
              static_cast<std::streamsize>(node.points.size() * sizeof(PointId)));
    return;
  }
  WritePod(out, kInternalTag);
  WritePod(out, node.depth);
  WritePod(out, static_cast<uint64_t>(node.children.size()));
  for (const auto& [stripe, child] : node.children) {
    WritePod(out, stripe);
    SaveNode(out, *child);
  }
}

/// Recursively reads one node; recomputes its bounding box from the data.
Status LoadNode(std::ifstream& in, const Dataset& data, size_t max_depth,
                std::unique_ptr<EkdbNode>* out) {
  uint8_t tag;
  uint32_t depth;
  if (!ReadPod(in, &tag) || !ReadPod(in, &depth)) {
    return Status::IoError("truncated tree file (node header)");
  }
  if (depth > max_depth) {
    return Status::InvalidArgument("corrupt tree file: depth out of range");
  }
  auto node = std::make_unique<EkdbNode>();
  node->depth = depth;
  node->bbox = BoundingBox(data.dims());

  if (tag == kLeafTag) {
    uint64_t count;
    if (!ReadPod(in, &node->sort_dim) || !ReadPod(in, &count)) {
      return Status::IoError("truncated tree file (leaf header)");
    }
    if (node->sort_dim >= data.dims() || count > data.size()) {
      return Status::InvalidArgument("corrupt tree file: leaf metadata");
    }
    node->points.resize(count);
    in.read(reinterpret_cast<char*>(node->points.data()),
            static_cast<std::streamsize>(count * sizeof(PointId)));
    if (!in) return Status::IoError("truncated tree file (leaf points)");
    for (PointId id : node->points) {
      if (static_cast<size_t>(id) >= data.size()) {
        return Status::InvalidArgument(
            "tree file references point ids beyond the bound dataset");
      }
      node->bbox.ExtendPoint(data.Row(id));
    }
  } else if (tag == kInternalTag) {
    uint64_t count;
    if (!ReadPod(in, &count)) {
      return Status::IoError("truncated tree file (internal header)");
    }
    if (count == 0 || count > data.size()) {
      return Status::InvalidArgument("corrupt tree file: child count");
    }
    uint32_t prev_stripe = 0;
    for (uint64_t c = 0; c < count; ++c) {
      uint32_t stripe;
      if (!ReadPod(in, &stripe)) {
        return Status::IoError("truncated tree file (stripe)");
      }
      if (c > 0 && stripe <= prev_stripe) {
        return Status::InvalidArgument(
            "corrupt tree file: children not stripe-sorted");
      }
      prev_stripe = stripe;
      std::unique_ptr<EkdbNode> child;
      SIMJOIN_RETURN_NOT_OK(LoadNode(in, data, max_depth, &child));
      if (child->depth != depth + 1) {
        return Status::InvalidArgument("corrupt tree file: child depth");
      }
      node->bbox.ExtendBox(child->bbox);
      node->children.emplace_back(stripe, std::move(child));
    }
  } else {
    return Status::InvalidArgument("corrupt tree file: unknown node tag");
  }
  *out = std::move(node);
  return Status::OK();
}

}  // namespace

Status EkdbTree::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open for writing: " + path + " (" +
                           std::strerror(errno) + ")");
  }
  WritePod(out, kMagic);
  WritePod(out, kVersion);
  WritePod(out, static_cast<uint64_t>(dataset_->size()));
  WritePod(out, static_cast<uint64_t>(dataset_->dims()));
  WritePod(out, config_.epsilon);
  WritePod(out, static_cast<uint64_t>(config_.leaf_threshold));
  WritePod(out, static_cast<int32_t>(config_.metric));
  WritePod(out, static_cast<uint8_t>(config_.bbox_pruning));
  WritePod(out, static_cast<uint8_t>(config_.sliding_window_leaf_join));
  WritePod(out, static_cast<uint64_t>(dim_order_.size()));
  out.write(reinterpret_cast<const char*>(dim_order_.data()),
            static_cast<std::streamsize>(dim_order_.size() * sizeof(uint32_t)));
  SaveNode(out, *root_);
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<EkdbTree> EkdbTree::Load(const Dataset& dataset, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open for reading: " + path + " (" +
                           std::strerror(errno) + ")");
  }
  uint32_t magic, version;
  if (!ReadPod(in, &magic) || magic != kMagic) {
    return Status::InvalidArgument("not a simjoin tree file: " + path);
  }
  if (!ReadPod(in, &version) || version != kVersion) {
    return Status::InvalidArgument("unsupported tree file version");
  }
  uint64_t n, dims;
  if (!ReadPod(in, &n) || !ReadPod(in, &dims)) {
    return Status::IoError("truncated tree file (header)");
  }
  if (n != dataset.size() || dims != dataset.dims()) {
    return Status::InvalidArgument(
        "tree file was built over a different dataset (size or dims differ)");
  }

  EkdbConfig config;
  uint64_t leaf_threshold;
  int32_t metric;
  uint8_t bbox_pruning, sliding;
  uint64_t order_len;
  if (!ReadPod(in, &config.epsilon) || !ReadPod(in, &leaf_threshold) ||
      !ReadPod(in, &metric) || !ReadPod(in, &bbox_pruning) ||
      !ReadPod(in, &sliding) || !ReadPod(in, &order_len)) {
    return Status::IoError("truncated tree file (config)");
  }
  config.leaf_threshold = leaf_threshold;
  config.metric = static_cast<Metric>(metric);
  config.bbox_pruning = bbox_pruning != 0;
  config.sliding_window_leaf_join = sliding != 0;
  if (order_len != dims) {
    return Status::InvalidArgument("corrupt tree file: dim order arity");
  }
  config.dim_order.resize(order_len);
  in.read(reinterpret_cast<char*>(config.dim_order.data()),
          static_cast<std::streamsize>(order_len * sizeof(uint32_t)));
  if (!in) return Status::IoError("truncated tree file (dim order)");
  SIMJOIN_RETURN_NOT_OK(config.Validate(dataset.dims()));

  EkdbTree tree(&dataset, config);
  SIMJOIN_RETURN_NOT_OK(
      LoadNode(in, dataset, dataset.dims(), &tree.root_));
  if (tree.root_->depth != 0) {
    return Status::InvalidArgument("corrupt tree file: root depth");
  }
  return tree;
}

}  // namespace simjoin
