// Segment-format internals shared by the in-memory writer (core/segment.cc)
// and the external bulk loader (core/segment_builder.cc).  Both writers MUST
// go through ComputeSectionLayout + SerializeHeaderPage so that an external
// build of a dataset produces a file byte-identical to WriteSegment over the
// equivalent in-RAM tree — the differential tests compare whole files.
//
// Nothing here is part of the public API; include only from core/*.cc and
// tests that deliberately corrupt segment files.

#ifndef SIMJOIN_CORE_SEGMENT_INTERNAL_H_
#define SIMJOIN_CORE_SEGMENT_INTERNAL_H_

#include <cstdint>

#include "common/status.h"
#include "core/segment.h"

namespace simjoin {
namespace segment_internal {

/// FNV-1a 64 streaming seed and step.  Chosen for simplicity and streamable
/// one-pass computation during external builds (not cryptographic — the
/// checksums detect corruption and truncation, not tampering).
inline constexpr uint64_t kFnvSeed = 0xcbf29ce484222325ull;
uint64_t Fnv1a64(const void* data, size_t len, uint64_t state);

/// Rounds up to the next segment page boundary.
uint64_t PageAlign(uint64_t offset);

/// Byte size a section must have given the shape fields (dims, num_nodes,
/// num_points) of the header.
uint64_t ExpectedSectionBytes(SegmentSection section, const SegmentInfo& info);

/// Fills every section's offset and byte size plus file_bytes from the shape
/// fields already set in *info (dims, num_nodes, num_points).  Section
/// checksums are the caller's job.  This is the single source of truth for
/// file layout: sections in enum order, each starting on a page boundary,
/// header in page zero.
void ComputeSectionLayout(SegmentInfo* info);

/// Serialises the fixed header page (including the trailing header checksum)
/// from a fully populated info.  `page` must hold kSegmentPageBytes and is
/// zeroed first, so padding bytes are deterministic.
void SerializeHeaderPage(const SegmentInfo& info, uint8_t* page);

/// Parses and validates a header page against the file size: magic, version,
/// header checksum, section table bounds and per-section expected sizes.
/// Fills everything in *out except config.dim_order (stored as a section).
Status ParseHeaderPage(const uint8_t* page, uint64_t file_bytes,
                       SegmentInfo* out);

}  // namespace segment_internal
}  // namespace simjoin

#endif  // SIMJOIN_CORE_SEGMENT_INTERNAL_H_
