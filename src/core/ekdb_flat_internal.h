// Internal helpers shared by the flat-tree query paths (ekdb_flat.cc and
// ekdb_flat_batch.cc).  Not part of the public surface.

#ifndef SIMJOIN_CORE_EKDB_FLAT_INTERNAL_H_
#define SIMJOIN_CORE_EKDB_FLAT_INTERNAL_H_

#include <cstddef>
#include <cstdint>

namespace simjoin {
namespace flat_internal {

/// First position in [begin, end) whose coordinate `dim` is >= lo.  The
/// arena range must be sorted ascending on that coordinate.
inline uint32_t LowerBoundPos(const float* arena, size_t dims, uint32_t begin,
                              uint32_t end, uint32_t dim, double lo) {
  while (begin < end) {
    const uint32_t mid = begin + (end - begin) / 2;
    const double v = arena[static_cast<size_t>(mid) * dims + dim];
    if (v < lo) {
      begin = mid + 1;
    } else {
      end = mid;
    }
  }
  return begin;
}

/// First position in [begin, end) whose coordinate `dim` is > hi.
inline uint32_t UpperBoundPos(const float* arena, size_t dims, uint32_t begin,
                              uint32_t end, uint32_t dim, double hi) {
  while (begin < end) {
    const uint32_t mid = begin + (end - begin) / 2;
    const double v = arena[static_cast<size_t>(mid) * dims + dim];
    if (v <= hi) {
      begin = mid + 1;
    } else {
      end = mid;
    }
  }
  return begin;
}

}  // namespace flat_internal
}  // namespace simjoin

#endif  // SIMJOIN_CORE_EKDB_FLAT_INTERNAL_H_
