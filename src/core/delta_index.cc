#include "core/delta_index.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "common/metric.h"
#include "common/pair_sink.h"
#include "common/thread_pool.h"
#include "core/ekdb_flat_join.h"
#include "core/parallel_join.h"
#include "obs/request_context.h"

namespace simjoin {
namespace {

// Rough per-point heap cost of the delta pointer tree (node amortisation +
// id storage).  The memtable is bounded by the compaction thresholds, so an
// estimate is enough for budget accounting; walking the tree per Stats RPC
// would make accounting O(delta).
constexpr uint64_t kDeltaTreeBytesPerPoint = 48;

bool Dead(const std::vector<PointId>& tombstones, PointId id) {
  return std::binary_search(tombstones.begin(), tombstones.end(), id);
}

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Result<std::shared_ptr<UpdatableIndex>> UpdatableIndex::Build(
    std::shared_ptr<const Dataset> dataset, const EkdbConfig& config,
    size_t num_threads, const UpdatableConfig& update_config) {
  if (dataset == nullptr || dataset->empty()) {
    return Status::InvalidArgument("dataset must not be empty");
  }
  SIMJOIN_RETURN_NOT_OK(config.Validate(dataset->dims()));
  if (dataset->size() >= static_cast<size_t>(UINT32_MAX)) {
    return Status::InvalidArgument("dataset exhausts the 32-bit id space");
  }
  SIMJOIN_ASSIGN_OR_RETURN(
      EkdbTree tree, num_threads == 1
                         ? EkdbTree::Build(*dataset, config)
                         : EkdbTree::BuildParallel(*dataset, config,
                                                   num_threads));
  SIMJOIN_ASSIGN_OR_RETURN(FlatEkdbTree flat,
                           FlatEkdbTree::FromTree(tree, num_threads));

  auto index = std::shared_ptr<UpdatableIndex>(new UpdatableIndex());
  index->config_ = config;
  index->update_config_ = update_config;
  index->base_data_ = std::move(dataset);
  const Dataset& data = *index->base_data_;

  auto tier = std::make_shared<Tier>();
  tier->data = &data;
  tier->tree.emplace(std::move(flat));
  tier->logical.resize(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    tier->logical[i] = static_cast<PointId>(i);
  }
  tier->bytes = tier->tree->total_bytes() +
                tier->logical.size() * sizeof(PointId);
  index->tier_ = std::move(tier);
  index->tombstones_ = std::make_shared<const TombstoneSet>();
  index->next_logical_ = static_cast<PointId>(data.size());
  return index;
}

uint64_t UpdatableIndex::DeltaBytesLocked() const {
  uint64_t bytes = 0;
  if (delta_rows_ != nullptr) bytes += delta_rows_->MemoryUsageBytes();
  bytes += delta_logical_.size() *
           (sizeof(PointId) + kDeltaTreeBytesPerPoint);
  bytes += tombstones_->size() * sizeof(PointId);
  return bytes;
}

uint64_t UpdatableIndex::index_bytes() const {
  std::shared_lock lock(mu_);
  return tier_->bytes + DeltaBytesLocked();
}

Status UpdatableIndex::ValidateQueryEpsilon(double eps_query) const {
  if (!(eps_query > 0.0) || eps_query > config_.epsilon) {
    return Status::InvalidArgument(
        "eps_query must be in (0, built epsilon]; the stripe grid only "
        "supports radii up to the build epsilon");
  }
  return Status::OK();
}

Status UpdatableIndex::DeltaMatchesLocked(const float* query, double eps_query,
                                          const TombstoneSet& tombstones,
                                          std::vector<PointId>* out,
                                          JoinStats* stats) const {
  if (!delta_tree_.has_value()) return Status::OK();
  std::vector<PointId> rows;
  SIMJOIN_RETURN_NOT_OK(delta_tree_->RangeQuery(query, eps_query, &rows,
                                                stats));
  for (PointId row : rows) {
    const PointId id = delta_logical_[row];
    if (!Dead(tombstones, id)) out->push_back(id);
  }
  return Status::OK();
}

Status UpdatableIndex::RangeQuery(const float* query, double eps_query,
                                  std::vector<PointId>* out, JoinStats* stats,
                                  double* recall_est) const {
  if (out == nullptr) return Status::InvalidArgument("out must not be null");
  if (query == nullptr) {
    return Status::InvalidArgument("query must not be null");
  }
  SIMJOIN_RETURN_NOT_OK(ValidateQueryEpsilon(eps_query));
  if (recall_est != nullptr) *recall_est = 1.0;

  std::shared_ptr<const Tier> tier;
  std::shared_ptr<const TombstoneSet> tombstones;
  std::vector<PointId> merged;
  {
    std::shared_lock lock(mu_);
    tier = tier_;
    tombstones = tombstones_;
    SIMJOIN_RETURN_NOT_OK(
        DeltaMatchesLocked(query, eps_query, *tombstones, &merged, stats));
  }
  if (tier->tree.has_value()) {
    std::vector<PointId> rows;
    SIMJOIN_RETURN_NOT_OK(
        tier->tree->RangeQuery(query, eps_query, &rows, stats));
    for (PointId row : rows) {
      const PointId id = tier->logical[row];
      if (!Dead(*tombstones, id)) merged.push_back(id);
    }
  }
  // Canonical order: ascending logical id, whatever mix of tiers matched.
  std::sort(merged.begin(), merged.end());
  out->insert(out->end(), merged.begin(), merged.end());
  return Status::OK();
}

Status UpdatableIndex::RangeQueryBatch(const RangeQuerySpec* specs,
                                       size_t count,
                                       std::vector<std::vector<PointId>>* results,
                                       std::vector<JoinStats>* stats,
                                       std::vector<double>* recall_ests) const {
  if (results == nullptr) {
    return Status::InvalidArgument("results must not be null");
  }
  if (count != 0 && specs == nullptr) {
    return Status::InvalidArgument("specs must not be null");
  }
  for (size_t i = 0; i < count; ++i) {
    if (specs[i].query == nullptr) {
      return Status::InvalidArgument("spec query must not be null");
    }
    SIMJOIN_RETURN_NOT_OK(ValidateQueryEpsilon(specs[i].epsilon));
  }
  results->assign(count, {});
  if (stats != nullptr) stats->assign(count, JoinStats{});
  if (recall_ests != nullptr) recall_ests->assign(count, 1.0);

  std::shared_ptr<const Tier> tier;
  std::shared_ptr<const TombstoneSet> tombstones;
  std::vector<std::vector<PointId>> delta_hits(count);
  {
    std::shared_lock lock(mu_);
    tier = tier_;
    tombstones = tombstones_;
    for (size_t i = 0; i < count; ++i) {
      SIMJOIN_RETURN_NOT_OK(DeltaMatchesLocked(
          specs[i].query, specs[i].epsilon, *tombstones, &delta_hits[i],
          stats != nullptr ? &(*stats)[i] : nullptr));
    }
  }
  std::vector<std::vector<PointId>> base_rows;
  std::vector<JoinStats> base_stats;
  if (tier->tree.has_value()) {
    SIMJOIN_RETURN_NOT_OK(tier->tree->RangeQueryBatch(
        specs, count, &base_rows, stats != nullptr ? &base_stats : nullptr));
  }
  for (size_t i = 0; i < count; ++i) {
    std::vector<PointId>& merged = (*results)[i];
    merged = std::move(delta_hits[i]);
    if (!base_rows.empty()) {
      for (PointId row : base_rows[i]) {
        const PointId id = tier->logical[row];
        if (!Dead(*tombstones, id)) merged.push_back(id);
      }
      if (stats != nullptr) (*stats)[i].Merge(base_stats[i]);
    }
    std::sort(merged.begin(), merged.end());
  }
  return Status::OK();
}

Status UpdatableIndex::SelfJoin(double eps_query, size_t num_threads,
                                PairSink* sink, JoinStats* stats) const {
  if (sink == nullptr) return Status::InvalidArgument("sink must not be null");
  SIMJOIN_RETURN_NOT_OK(ValidateQueryEpsilon(eps_query));

  // Point-in-time view: tier + tombstones by shared_ptr, the (small) delta
  // rows by copy, so the join never races a concurrent append.
  std::shared_ptr<const Tier> tier;
  std::shared_ptr<const TombstoneSet> tombstones;
  Dataset delta_copy;
  std::vector<PointId> delta_logical;
  {
    std::shared_lock lock(mu_);
    tier = tier_;
    tombstones = tombstones_;
    if (delta_rows_ != nullptr) delta_copy = *delta_rows_;
    delta_logical = delta_logical_;
  }

  JoinStats local;
  std::vector<IdPair> pairs;

  // Base x base: the flat tier joins natively, then pairs are remapped to
  // logical ids and filtered through the tombstones.
  if (tier->tree.has_value()) {
    VectorSink base_pairs;
    const double build_eps = config_.epsilon;
    if (num_threads > 1 && eps_query == build_eps) {
      ParallelJoinConfig pcfg;
      pcfg.num_threads = num_threads;
      SIMJOIN_RETURN_NOT_OK(
          ParallelFlatEkdbSelfJoin(*tier->tree, pcfg, &base_pairs, &local));
    } else if (eps_query == build_eps) {
      SIMJOIN_RETURN_NOT_OK(FlatEkdbSelfJoin(*tier->tree, &base_pairs,
                                             &local));
    } else {
      SIMJOIN_RETURN_NOT_OK(FlatEkdbSelfJoinWithEpsilon(
          *tier->tree, eps_query, &base_pairs, &local));
    }
    for (const IdPair& p : base_pairs.pairs()) {
      const PointId a = tier->logical[p.first];
      const PointId b = tier->logical[p.second];
      if (Dead(*tombstones, a) || Dead(*tombstones, b)) continue;
      pairs.emplace_back(std::min(a, b), std::max(a, b));
    }
  }

  // Base x delta: one base range query per live delta point.
  const size_t delta_n = delta_logical.size();
  if (tier->tree.has_value()) {
    std::vector<PointId> rows;
    for (size_t i = 0; i < delta_n; ++i) {
      const PointId delta_id = delta_logical[i];
      if (Dead(*tombstones, delta_id)) continue;
      rows.clear();
      SIMJOIN_RETURN_NOT_OK(tier->tree->RangeQuery(
          delta_copy.Row(static_cast<PointId>(i)), eps_query, &rows, &local));
      for (PointId row : rows) {
        const PointId base_id = tier->logical[row];
        if (Dead(*tombstones, base_id)) continue;
        pairs.emplace_back(std::min(base_id, delta_id),
                           std::max(base_id, delta_id));
      }
    }
  }

  // Delta x delta: the memtable is small by construction, so an exact
  // pairwise sweep is cheaper than building join structure over it.
  const DistanceKernel kernel(config_.metric);
  const size_t dims = delta_copy.dims();
  for (size_t i = 0; i < delta_n; ++i) {
    const PointId a = delta_logical[i];
    if (Dead(*tombstones, a)) continue;
    for (size_t j = i + 1; j < delta_n; ++j) {
      const PointId b = delta_logical[j];
      if (Dead(*tombstones, b)) continue;
      ++local.candidate_pairs;
      ++local.distance_calls;
      if (kernel.WithinEpsilon(delta_copy.Row(static_cast<PointId>(i)),
                               delta_copy.Row(static_cast<PointId>(j)), dims,
                               eps_query)) {
        pairs.emplace_back(std::min(a, b), std::max(a, b));
      }
    }
  }

  std::sort(pairs.begin(), pairs.end());
  sink->EmitBatch(pairs);
  local.pairs_emitted = pairs.size();
  if (stats != nullptr) stats->Merge(local);
  return Status::OK();
}

double UpdatableIndex::EstimatedQueryCost(double /*eps_query*/,
                                          double expected_neighbors) const {
  uint64_t base_points;
  uint64_t delta_points;
  {
    std::shared_lock lock(mu_);
    base_points = tier_->logical.size();
    delta_points = delta_logical_.size();
  }
  // The flat-tier prior of EkdbFlatBackend, plus one memtable walk: the
  // pointer tree's scattered nodes cost roughly a candidate row each, so a
  // query gets linearly more expensive as the delta grows — which is
  // exactly the signal that makes the planner's routing stay honest
  // mid-burst, and what compaction resets.
  const double n = static_cast<double>(base_points + delta_points);
  const double base_cost = std::min(n, 64.0 + 8.0 * expected_neighbors);
  return base_cost + static_cast<double>(delta_points);
}

Result<PointId> UpdatableIndex::InsertBatch(const float* rows,
                                            size_t count) const {
  if (count != 0 && rows == nullptr) {
    return Status::InvalidArgument("rows must not be null");
  }
  const size_t dims = base_data_->dims();
  for (size_t i = 0; i < count * dims; ++i) {
    if (!(rows[i] >= 0.0f && rows[i] <= 1.0f)) {
      return Status::InvalidArgument(
          "coordinates must lie in [0, 1] (normalise before inserting)");
    }
  }
  std::unique_lock lock(mu_);
  if (static_cast<uint64_t>(next_logical_) + count >=
      static_cast<uint64_t>(UINT32_MAX)) {
    return Status::InvalidArgument("insert would exhaust the 32-bit id space");
  }
  const PointId first = next_logical_;
  if (count == 0) return first;
  if (delta_rows_ == nullptr) {
    delta_rows_ = std::make_unique<Dataset>(0, dims);
  }
  const size_t rows_before = delta_rows_->size();
  for (size_t i = 0; i < count; ++i) {
    const PointId row = static_cast<PointId>(delta_rows_->size());
    delta_rows_->Append(std::span<const float>(rows + i * dims, dims));
    Status tree_status;
    if (!delta_tree_.has_value()) {
      auto tree = EkdbTree::Build(*delta_rows_, config_);
      if (tree.ok()) {
        delta_tree_.emplace(std::move(tree).value());
      } else {
        tree_status = tree.status();
      }
    } else {
      tree_status = delta_tree_->Insert(row);
    }
    if (!tree_status.ok()) {
      RollbackInsertsLocked(rows_before, first);
      return tree_status;
    }
    delta_logical_.push_back(next_logical_++);
  }
  MaybeScheduleCompactionLocked();
  return first;
}

void UpdatableIndex::RollbackInsertsLocked(size_t rows_before,
                                           PointId next_before) const {
  delta_logical_.resize(rows_before);
  next_logical_ = next_before;
  if (rows_before == 0) {
    delta_rows_.reset();
    delta_tree_.reset();
    return;
  }
  delta_rows_->Truncate(rows_before);
  // The surviving prefix held a valid tree moments ago, so rebuilding it
  // can only fail on resource exhaustion — where a crash beats serving a
  // delta whose row->logical map no longer matches its tree.
  auto rebuilt = EkdbTree::Build(*delta_rows_, config_);
  SIMJOIN_CHECK(rebuilt.ok()) << "delta rollback rebuild failed: "
                              << rebuilt.status().ToString();
  delta_tree_.emplace(std::move(rebuilt).value());
}

void UpdatableIndex::RemoveBatch(const PointId* ids, size_t count,
                                 uint32_t* removed, uint32_t* missing) const {
  uint32_t n_removed = 0;
  uint32_t n_missing = 0;
  std::unique_lock lock(mu_);
  // One copy-on-write clone serves the whole batch; readers holding the old
  // set keep their consistent view.
  TombstoneSet next = *tombstones_;
  for (size_t i = 0; i < count; ++i) {
    const PointId id = ids[i];
    const bool live =
        !Dead(next, id) &&
        (std::binary_search(tier_->logical.begin(), tier_->logical.end(),
                            id) ||
         std::binary_search(delta_logical_.begin(), delta_logical_.end(),
                            id));
    if (!live) {
      ++n_missing;
      continue;
    }
    next.insert(std::upper_bound(next.begin(), next.end(), id), id);
    ++n_removed;
  }
  if (n_removed > 0) {
    tombstones_ = std::make_shared<const TombstoneSet>(std::move(next));
    MaybeScheduleCompactionLocked();
  }
  if (removed != nullptr) *removed = n_removed;
  if (missing != nullptr) *missing = n_missing;
}

Status UpdatableIndex::Remove(PointId id) const {
  uint32_t removed = 0;
  RemoveBatch(&id, 1, &removed, nullptr);
  if (removed == 0) {
    return Status::NotFound("point id " + std::to_string(id) +
                            " is not live in this index");
  }
  return Status::OK();
}

void UpdatableIndex::MaybeScheduleCompactionLocked() const {
  if (!update_config_.auto_compact || compact_scheduled_) return;
  const size_t base_points = tier_->logical.size();
  const size_t delta_points = delta_logical_.size();
  const size_t tombstones = tombstones_->size();
  const size_t total = base_points + delta_points;
  const bool delta_full =
      delta_points >= update_config_.compact_min_delta_points ||
      (update_config_.compact_delta_fraction > 0.0 && delta_points >= 64 &&
       static_cast<double>(delta_points) >=
           update_config_.compact_delta_fraction *
               static_cast<double>(base_points));
  const bool tombstone_heavy =
      update_config_.compact_tombstone_ratio > 0.0 && tombstones >= 64 &&
      static_cast<double>(tombstones) >=
          update_config_.compact_tombstone_ratio *
              static_cast<double>(std::max<size_t>(total, 1));
  if (!delta_full && !tombstone_heavy) return;
  compact_scheduled_ = true;
  auto self = shared_from_this();
  // Submitted from a request-handler thread, but the compaction belongs to
  // no request: blank the thread's request context so Submit does not
  // capture a profile collector that dies when the triggering request
  // finishes (the compaction can easily outlive it).
  obs::ScopedRequestContext detach{obs::RequestContext{}};
  ThreadPool::Shared().Submit([self] {
    {
      std::lock_guard<std::mutex> compact_lock(self->compact_mu_);
      bool ran = false;
      // A failed merge (e.g. allocation pressure) leaves the old view
      // serving; the next mutation re-arms the trigger.
      (void)self->CompactLocked(&ran);
    }
    std::unique_lock lock(self->mu_);
    self->compact_scheduled_ = false;
    // Heavy ingest during the merge may already warrant another round.
    self->MaybeScheduleCompactionLocked();
  });
}

Result<bool> UpdatableIndex::Flush() const {
  std::lock_guard<std::mutex> compact_lock(compact_mu_);
  bool ran = false;
  SIMJOIN_RETURN_NOT_OK(CompactLocked(&ran));
  return ran;
}

Status UpdatableIndex::CompactLocked(bool* ran) const {
  *ran = false;
  const double start = NowSeconds();

  // Snapshot the state to merge.  Rows appended after this point stay in
  // the delta; tombstones added after this point survive the swap.
  std::shared_ptr<const Tier> tier;
  std::shared_ptr<const TombstoneSet> applied;
  Dataset delta_copy;
  std::vector<PointId> delta_logical;
  std::function<void(double)> observer;
  {
    std::shared_lock lock(mu_);
    tier = tier_;
    applied = tombstones_;
    if (delta_rows_ != nullptr) delta_copy = *delta_rows_;
    delta_logical = delta_logical_;
    observer = compaction_observer_;
  }
  const size_t merged_rows = delta_logical.size();
  if (merged_rows == 0 && applied->empty()) return Status::OK();

  // Build the merged tier off-lock.  Base logicals all precede delta
  // logicals, so appending base-then-delta keeps the row->logical map
  // sorted — the invariant every membership check and the canonical result
  // order rely on.
  const size_t dims = base_data_->dims();
  auto owned = std::make_unique<Dataset>(0, dims);
  std::vector<PointId> logical;
  for (size_t i = 0; i < tier->logical.size(); ++i) {
    const PointId id = tier->logical[i];
    if (Dead(*applied, id)) continue;
    owned->Append(tier->data->RowSpan(static_cast<PointId>(i)));
    logical.push_back(id);
  }
  for (size_t i = 0; i < merged_rows; ++i) {
    const PointId id = delta_logical[i];
    if (Dead(*applied, id)) continue;
    owned->Append(delta_copy.RowSpan(static_cast<PointId>(i)));
    logical.push_back(id);
  }

  auto next = std::make_shared<Tier>();
  if (!owned->empty()) {
    const size_t threads = update_config_.compact_threads;
    SIMJOIN_ASSIGN_OR_RETURN(
        EkdbTree tree, threads == 1
                           ? EkdbTree::Build(*owned, config_)
                           : EkdbTree::BuildParallel(*owned, config_,
                                                     threads));
    SIMJOIN_ASSIGN_OR_RETURN(FlatEkdbTree flat,
                             FlatEkdbTree::FromTree(tree, threads));
    next->tree.emplace(std::move(flat));
  }
  next->data = owned.get();
  next->logical = std::move(logical);
  next->bytes = owned->MemoryUsageBytes() +
                (next->tree.has_value() ? next->tree->total_bytes() : 0) +
                next->logical.size() * sizeof(PointId);
  next->owned = std::move(owned);

  // Swap: rebuild the (tiny) residual delta from rows appended during the
  // merge and drop the tombstones the merge applied.
  {
    std::unique_lock lock(mu_);
    std::unique_ptr<Dataset> residual_rows;
    std::optional<EkdbTree> residual_tree;
    std::vector<PointId> residual_logical;
    for (size_t i = merged_rows; i < delta_logical_.size(); ++i) {
      if (residual_rows == nullptr) {
        residual_rows = std::make_unique<Dataset>(0, dims);
      }
      const PointId row = static_cast<PointId>(residual_rows->size());
      residual_rows->Append(
          delta_rows_->RowSpan(static_cast<PointId>(i)));
      if (!residual_tree.has_value()) {
        SIMJOIN_ASSIGN_OR_RETURN(EkdbTree tree,
                                 EkdbTree::Build(*residual_rows, config_));
        residual_tree.emplace(std::move(tree));
      } else {
        SIMJOIN_RETURN_NOT_OK(residual_tree->Insert(row));
      }
      residual_logical.push_back(delta_logical_[i]);
    }
    auto surviving = std::make_shared<TombstoneSet>();
    std::set_difference(tombstones_->begin(), tombstones_->end(),
                        applied->begin(), applied->end(),
                        std::back_inserter(*surviving));
    tier_ = std::move(next);
    delta_rows_ = std::move(residual_rows);
    delta_tree_ = std::move(residual_tree);
    delta_logical_ = std::move(residual_logical);
    tombstones_ = std::move(surviving);
    ++compactions_;
  }
  *ran = true;
  if (observer) observer(NowSeconds() - start);
  return Status::OK();
}

bool UpdatableIndex::compaction_inflight() const {
  std::shared_lock lock(mu_);
  return compact_scheduled_;
}

UpdatableStats UpdatableIndex::Stats() const {
  std::shared_lock lock(mu_);
  UpdatableStats stats;
  stats.base_points = tier_->logical.size();
  stats.delta_points = delta_logical_.size();
  stats.tombstones = tombstones_->size();
  stats.live_points =
      stats.base_points + stats.delta_points - stats.tombstones;
  stats.compactions = compactions_;
  stats.next_id = next_logical_;
  stats.delta_bytes = DeltaBytesLocked();
  return stats;
}

void UpdatableIndex::SetCompactionObserver(
    std::function<void(double)> observer) const {
  std::unique_lock lock(mu_);
  compaction_observer_ = std::move(observer);
}

}  // namespace simjoin
