// On-disk index segments: the out-of-core form of a FlatEkdbTree.
//
// A segment file is a versioned, checksummed container holding everything
// needed to serve an index with zero rebuild work: the flat tree's node
// array, bbox planes, leaf-packed coordinate arena and id remap, plus the
// original dataset rows (original row order) and the resolved dimension
// order.  Every section starts on a 4096-byte page boundary and the arrays
// are stored exactly as FlatEkdbTree lays them out in memory, so the file
// can be served two ways:
//
//  * mmap fault-in (MappedSegment + FlatEkdbTree::FromView): the registry's
//    cold tier.  Only the header page is read eagerly; node/arena pages
//    fault in on first touch and the OS page cache owns residency.
//  * full load (OpenSegment kInMemory): reads and checksum-verifies every
//    section into owned storage — the Load-compatible path differential
//    tests bit-compare against in-RAM builds.
//
// The format is host-endian (little-endian in practice — same assumption
// the wire protocol makes) and fixed-layout: FlatEkdbNode is a packed
// 28-byte POD, so the node section maps directly as the traversal's node
// array.  Integrity: an FNV-1a 64 checksum per section plus one over the
// header; mmap opens verify the header eagerly and may verify sections on
// demand (VerifyChecksums), full loads always verify everything.
//
// See docs/external.md for the format diagram and lifecycle.

#ifndef SIMJOIN_CORE_SEGMENT_H_
#define SIMJOIN_CORE_SEGMENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/dataset.h"
#include "common/status.h"
#include "core/ekdb_config.h"
#include "core/ekdb_flat.h"

namespace simjoin {

/// Segment file magic ("SJSG") and current format version.
inline constexpr uint32_t kSegmentMagic = 0x4753'4A53;
inline constexpr uint32_t kSegmentVersion = 1;
/// Every section offset is a multiple of this (mmap page granularity).
inline constexpr uint64_t kSegmentPageBytes = 4096;

/// Section order inside a segment file (also the section-table order).
enum class SegmentSection : uint32_t {
  kDimOrder = 0,  ///< dims x u32 resolved dimension order
  kNodes = 1,     ///< num_nodes x FlatEkdbNode (BFS order)
  kBboxLo = 2,    ///< num_nodes x dims floats
  kBboxHi = 3,    ///< num_nodes x dims floats
  kArena = 4,     ///< num_points x dims floats (DFS leaf order)
  kArenaIds = 5,  ///< num_points x u32 arena-position -> row id remap
  kDataset = 6,   ///< num_points x dims floats (original row order)
};
inline constexpr size_t kNumSegmentSections = 7;

/// Parsed, validated segment header.
struct SegmentInfo {
  uint32_t version = 0;
  uint32_t dims = 0;
  uint32_t num_nodes = 0;
  uint64_t num_points = 0;
  uint64_t num_stripes = 1;
  double stripe_width = 1.0;
  EkdbConfig config;  ///< dim_order filled from the kDimOrder section
  struct Section {
    uint64_t offset = 0;
    uint64_t bytes = 0;
    uint64_t checksum = 0;
  };
  Section sections[kNumSegmentSections];
  uint64_t file_bytes = 0;
};

/// Writes the flat tree (and the dataset it was built over) as a segment
/// file.  The file is written to a temporary sibling and renamed into
/// place, so readers never observe a half-written segment.
Status WriteSegment(const FlatEkdbTree& tree, const std::string& path);

/// A read-only memory mapping of a segment file.  Construction validates
/// the header (magic, version, section table bounds, header checksum) but
/// faults no data pages; accessors hand out typed pointers into the
/// mapping.  Safe for unsynchronised concurrent reads; unmapped on
/// destruction.  madvise: the node/bbox sections are marked WILLNEED (hot,
/// touched by every traversal), the arena and dataset sections RANDOM
/// (point queries touch scattered leaf windows).
class MappedSegment {
 public:
  static Result<std::shared_ptr<MappedSegment>> Open(const std::string& path);
  ~MappedSegment();

  const SegmentInfo& info() const { return info_; }
  const std::string& path() const { return path_; }

  const uint32_t* dim_order() const {
    return SectionAs<uint32_t>(SegmentSection::kDimOrder);
  }
  const FlatEkdbNode* nodes() const {
    return SectionAs<FlatEkdbNode>(SegmentSection::kNodes);
  }
  const float* bbox_lo() const {
    return SectionAs<float>(SegmentSection::kBboxLo);
  }
  const float* bbox_hi() const {
    return SectionAs<float>(SegmentSection::kBboxHi);
  }
  const float* arena() const {
    return SectionAs<float>(SegmentSection::kArena);
  }
  const PointId* arena_ids() const {
    return SectionAs<PointId>(SegmentSection::kArenaIds);
  }
  const float* dataset_rows() const {
    return SectionAs<float>(SegmentSection::kDataset);
  }

  /// Total bytes mapped (the whole file).
  uint64_t mapped_bytes() const { return info_.file_bytes; }

  /// Bytes of the mapping currently resident in physical memory (mincore
  /// sample; 0 if the kernel cannot answer).  This is the number the
  /// out-of-core bench gates its resident-set ceiling on.
  uint64_t ResidentBytes() const;

  /// Verifies every section checksum by reading the mapped bytes (faults
  /// the whole file in — meant for tests and explicit integrity checks,
  /// not the serving path).
  Status VerifyChecksums() const;

  /// Hints the kernel that this mapping is cold (MADV_DONTNEED), releasing
  /// resident pages; they fault back in on next access.
  void ReleaseResidentPages() const;

  MappedSegment(const MappedSegment&) = delete;
  MappedSegment& operator=(const MappedSegment&) = delete;

 private:
  MappedSegment() = default;

  template <typename T>
  const T* SectionAs(SegmentSection section) const {
    const SegmentInfo::Section& s =
        info_.sections[static_cast<size_t>(section)];
    return reinterpret_cast<const T*>(static_cast<const uint8_t*>(base_) +
                                      s.offset);
  }

  std::string path_;
  void* base_ = nullptr;
  uint64_t length_ = 0;
  SegmentInfo info_;
};

/// How OpenSegment materialises the index.
enum class SegmentOpenMode {
  kMmap,      ///< fault-in serving: views over a MappedSegment
  kInMemory,  ///< full checksum-verified read into owned storage
};

/// A segment opened for serving: the dataset (borrowed over the mapping or
/// an owned copy), the flat tree over it, and — for mapped opens — the
/// mapping that keeps both alive.  Movable; members are destroyed in
/// declaration order (tree first, then dataset, then mapping), which is the
/// safe teardown order.
struct SegmentIndex {
  std::shared_ptr<MappedSegment> segment;  ///< null for in-memory opens
  std::unique_ptr<Dataset> dataset;
  std::unique_ptr<FlatEkdbTree> tree;
};

/// Opens a segment file for serving.  kMmap validates the header and wraps
/// views (lazy fault-in); kInMemory reads and verifies every section into
/// owned storage.  Both modes produce trees that answer every query
/// bit-identically to the FlatEkdbTree the segment was written from.
Result<SegmentIndex> OpenSegment(const std::string& path,
                                 SegmentOpenMode mode);

/// Reads and validates only the header page (cheap existence / integrity /
/// shape probe — used by registry fault-in bookkeeping and tooling).
Result<SegmentInfo> ReadSegmentInfo(const std::string& path);

}  // namespace simjoin

#endif  // SIMJOIN_CORE_SEGMENT_H_
