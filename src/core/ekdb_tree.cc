#include "core/ekdb_tree.h"

#include <algorithm>
#include <cmath>
#include <thread>

#include "common/simd_kernel.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace simjoin {

namespace {

/// Partition/build phase timing (sequential and parallel share one
/// histogram; the trace span name tells them apart).
obs::Histogram* BuildHistogram() {
  static obs::Histogram* const hist =
      obs::GlobalMetrics().GetHistogram("join.phase.build_us");
  return hist;
}

}  // namespace

size_t EkdbNode::SubtreeSize() const {
  if (is_leaf()) return points.size();
  size_t total = 0;
  for (const auto& [stripe, child] : children) total += child->SubtreeSize();
  return total;
}

EkdbTree::EkdbTree(const Dataset* dataset, EkdbConfig config)
    : dataset_(dataset), config_(std::move(config)) {
  dim_order_ = config_.ResolvedDimOrder(dataset_->dims());
  num_stripes_ = config_.NumStripes();
  stripe_width_ = config_.StripeWidth();
}

uint32_t EkdbTree::StripeIndex(float value) const {
  if (value <= 0.0f) return 0;
  const auto idx = static_cast<size_t>(static_cast<double>(value) / stripe_width_);
  return static_cast<uint32_t>(std::min(idx, num_stripes_ - 1));
}

Result<EkdbTree> EkdbTree::Build(const Dataset& dataset, const EkdbConfig& config) {
  SIMJOIN_RETURN_NOT_OK(config.Validate(dataset.dims()));
  if (dataset.empty()) {
    return Status::InvalidArgument("cannot build eps-k-d-B tree on empty dataset");
  }
  if (!dataset.AllWithin(0.0f, 1.0f)) {
    return Status::InvalidArgument(
        "dataset coordinates must lie in [0, 1]; call NormalizeToUnitCube()");
  }
  SIMJOIN_TRACE_SPAN("tree.build");
  obs::ScopedLatencyTimer timer(BuildHistogram());
  EkdbTree tree(&dataset, config);
  std::vector<PointId> all(dataset.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<PointId>(i);
  tree.root_ = tree.BuildNode(std::move(all), 0);
  return tree;
}

Result<EkdbTree> EkdbTree::BuildSubtree(const Dataset& dataset,
                                        const EkdbConfig& config,
                                        uint32_t start_depth) {
  SIMJOIN_RETURN_NOT_OK(config.Validate(dataset.dims()));
  if (dataset.empty()) {
    return Status::InvalidArgument("cannot build eps-k-d-B tree on empty dataset");
  }
  if (start_depth >= dataset.dims()) {
    return Status::InvalidArgument("subtree start depth must be < dims");
  }
  if (!dataset.AllWithin(0.0f, 1.0f)) {
    return Status::InvalidArgument(
        "dataset coordinates must lie in [0, 1]; call NormalizeToUnitCube()");
  }
  EkdbTree tree(&dataset, config);
  std::vector<PointId> all(dataset.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<PointId>(i);
  tree.root_ = tree.BuildNode(std::move(all), start_depth);
  return tree;
}

std::unique_ptr<EkdbNode> EkdbTree::BuildNode(std::vector<PointId> ids,
                                              uint32_t depth) {
  auto node = std::make_unique<EkdbNode>();
  node->depth = depth;
  node->bbox = BoundingBox(dataset_->dims());
  for (PointId id : ids) node->bbox.ExtendPoint(dataset_->Row(id));

  const size_t dims = dataset_->dims();
  const bool can_split =
      ids.size() > config_.leaf_threshold && depth < dims && num_stripes_ >= 2;

  if (!can_split) {
    node->sort_dim = dim_order_[depth % dims];
    node->points = std::move(ids);
    const uint32_t sd = node->sort_dim;
    std::sort(node->points.begin(), node->points.end(),
              [this, sd](PointId a, PointId b) {
                return dataset_->Row(a)[sd] < dataset_->Row(b)[sd];
              });
    return node;
  }

  // Partition point ids into global stripes of dimension dim_order_[depth].
  const uint32_t split_dim = dim_order_[depth];
  std::vector<std::vector<PointId>> buckets(num_stripes_);
  for (PointId id : ids) {
    buckets[StripeIndex(dataset_->Row(id)[split_dim])].push_back(id);
  }
  ids.clear();
  ids.shrink_to_fit();

  for (uint32_t stripe = 0; stripe < buckets.size(); ++stripe) {
    if (buckets[stripe].empty()) continue;
    node->children.emplace_back(stripe,
                                BuildNode(std::move(buckets[stripe]), depth + 1));
  }
  return node;
}

namespace {

/// Subtree build tasks at or below this many points run inline: task
/// submission overhead would outweigh the build work.
constexpr size_t kMinSpawnPoints = 2048;

/// Nodes with at least this many points chunk their stripe partition across
/// workers instead of scanning sequentially.
constexpr size_t kParallelPartitionMin = size_t{1} << 15;

}  // namespace

std::unique_ptr<EkdbNode> EkdbTree::BuildNodeParallel(std::vector<PointId> ids,
                                                      uint32_t depth,
                                                      ThreadPool& pool,
                                                      TaskGroup& group) {
  const size_t dims = dataset_->dims();
  const bool can_split =
      ids.size() > config_.leaf_threshold && depth < dims && num_stripes_ >= 2;
  // Leaves (and any node BuildNode would not split) take the sequential
  // path wholesale, so the produced node is identical by construction.
  if (!can_split) return BuildNode(std::move(ids), depth);

  auto node = std::make_unique<EkdbNode>();
  node->depth = depth;
  node->bbox = BoundingBox(dims);

  const uint32_t split_dim = dim_order_[depth];
  std::vector<std::vector<PointId>> buckets(num_stripes_);
  if (ids.size() >= kParallelPartitionMin && pool.HasIdleWorkers()) {
    // Chunked partition.  Per-chunk buckets concatenated in chunk order
    // reproduce the sequential bucket contents exactly (same ids, same
    // order), and min/max bbox merging is order-independent on floats, so
    // the node comes out bit-identical.
    const size_t chunks = std::min(
        pool.num_threads() * 2,
        std::max<size_t>(2, ids.size() / (kParallelPartitionMin / 4)));
    struct ChunkOut {
      BoundingBox bbox;
      std::vector<std::vector<PointId>> buckets;
    };
    std::vector<ChunkOut> outs(chunks);
    {
      TaskGroup part(&pool);
      for (size_t c = 0; c < chunks; ++c) {
        const size_t lo = ids.size() * c / chunks;
        const size_t hi = ids.size() * (c + 1) / chunks;
        part.Run([this, &ids, &outs, c, lo, hi, split_dim, dims] {
          ChunkOut& out = outs[c];
          out.bbox = BoundingBox(dims);
          out.buckets.resize(num_stripes_);
          for (size_t i = lo; i < hi; ++i) {
            const float* row = dataset_->Row(ids[i]);
            out.bbox.ExtendPoint(row);
            out.buckets[StripeIndex(row[split_dim])].push_back(ids[i]);
          }
        });
      }
      part.Wait();
    }
    for (const ChunkOut& out : outs) {
      node->bbox.ExtendBox(out.bbox);
      for (size_t s = 0; s < buckets.size(); ++s) {
        buckets[s].insert(buckets[s].end(), out.buckets[s].begin(),
                          out.buckets[s].end());
      }
    }
  } else {
    for (PointId id : ids) {
      const float* row = dataset_->Row(id);
      node->bbox.ExtendPoint(row);
      buckets[StripeIndex(row[split_dim])].push_back(id);
    }
  }
  ids.clear();
  ids.shrink_to_fit();

  // Create every child slot before spawning any subtree task: tasks hold
  // pointers into the children vector, which must not grow afterwards.
  std::vector<uint32_t> slot_stripes;
  for (uint32_t stripe = 0; stripe < buckets.size(); ++stripe) {
    if (buckets[stripe].empty()) continue;
    node->children.emplace_back(stripe, nullptr);
    slot_stripes.push_back(stripe);
  }
  for (size_t k = 0; k < node->children.size(); ++k) {
    std::vector<PointId>& bucket = buckets[slot_stripes[k]];
    std::unique_ptr<EkdbNode>* slot = &node->children[k].second;
    if (bucket.size() > kMinSpawnPoints && pool.HasIdleWorkers()) {
      group.Run([this, slot, b = std::move(bucket), depth, &pool,
                 &group]() mutable {
        *slot = BuildNodeParallel(std::move(b), depth + 1, pool, group);
      });
    } else {
      *slot = BuildNodeParallel(std::move(bucket), depth + 1, pool, group);
    }
  }
  return node;
}

Result<EkdbTree> EkdbTree::BuildParallel(const Dataset& dataset,
                                         const EkdbConfig& config,
                                         size_t num_threads) {
  SIMJOIN_TRACE_SPAN("tree.build_parallel");
  obs::ScopedLatencyTimer timer(BuildHistogram());
  SIMJOIN_RETURN_NOT_OK(config.Validate(dataset.dims()));
  if (dataset.empty()) {
    return Status::InvalidArgument("cannot build eps-k-d-B tree on empty dataset");
  }
  if (!dataset.AllWithin(0.0f, 1.0f)) {
    return Status::InvalidArgument(
        "dataset coordinates must lie in [0, 1]; call NormalizeToUnitCube()");
  }
  EkdbTree tree(&dataset, config);
  std::vector<PointId> all(dataset.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<PointId>(i);

  const size_t threads =
      num_threads != 0 ? num_threads
                       : std::max<size_t>(1, std::thread::hardware_concurrency());
  if (threads <= 1) {
    tree.root_ = tree.BuildNode(std::move(all), 0);
    return tree;
  }

  ThreadPool& pool = ThreadPool::Shared(threads);
  {
    TaskGroup group(&pool);
    // The recursive build spawns subtree tasks into `group`; the root node
    // (and thus every slot tasks write into) stays alive until Wait().
    tree.root_ = tree.BuildNodeParallel(std::move(all), 0, pool, group);
    group.Wait();
  }
  return tree;
}

Status EkdbTree::Insert(PointId id) {
  if (static_cast<size_t>(id) >= dataset_->size()) {
    return Status::OutOfRange("point id " + std::to_string(id) +
                              " out of range");
  }
  const float* row = dataset_->Row(id);
  const size_t dims = dataset_->dims();
  for (size_t d = 0; d < dims; ++d) {
    if (row[d] < 0.0f || row[d] > 1.0f) {
      return Status::InvalidArgument(
          "inserted point coordinates must lie in [0, 1]");
    }
  }

  EkdbNode* node = root_.get();
  for (;;) {
    node->bbox.ExtendPoint(row);
    if (node->is_leaf()) break;
    const uint32_t split_dim = dim_order_[node->depth];
    const uint32_t stripe = StripeIndex(row[split_dim]);
    // Children are sorted by stripe index; find or create the slot.
    auto it = std::lower_bound(
        node->children.begin(), node->children.end(), stripe,
        [](const auto& entry, uint32_t s) { return entry.first < s; });
    if (it == node->children.end() || it->first != stripe) {
      auto leaf = std::make_unique<EkdbNode>();
      leaf->depth = node->depth + 1;
      leaf->sort_dim = dim_order_[leaf->depth % dims];
      leaf->bbox = BoundingBox(dims);
      it = node->children.emplace(it, stripe, std::move(leaf));
    }
    node = it->second.get();
  }

  // Sorted insert into the leaf.
  const uint32_t sd = node->sort_dim;
  const Dataset& data = *dataset_;
  auto pos = std::lower_bound(node->points.begin(), node->points.end(),
                              row[sd], [&data, sd](PointId p, float v) {
                                return data.Row(p)[sd] < v;
                              });
  node->points.insert(pos, id);

  // Split an overflowing leaf by rebuilding the subtree in place; the
  // subtree is at most leaf_threshold + 1 points, so this is cheap.
  if (node->points.size() > config_.leaf_threshold &&
      node->depth < dims && num_stripes_ >= 2) {
    std::vector<PointId> ids = std::move(node->points);
    std::unique_ptr<EkdbNode> rebuilt = BuildNode(std::move(ids), node->depth);
    *node = std::move(*rebuilt);
  }
  return Status::OK();
}

namespace {

/// Recursive removal.  Returns true if the id was found and removed below
/// node; on success node's bbox is exact again and empty children are
/// unlinked.
bool RemoveFromSubtree(EkdbNode* node, PointId id, const float* row,
                       const Dataset& data,
                       const std::vector<uint32_t>& dim_order,
                       const EkdbTree& tree) {
  if (node->is_leaf()) {
    // Leaf points are sorted on sort_dim; scan the equal-coordinate run.
    const uint32_t sd = node->sort_dim;
    auto it = std::lower_bound(node->points.begin(), node->points.end(),
                               row[sd], [&data, sd](PointId p, float v) {
                                 return data.Row(p)[sd] < v;
                               });
    while (it != node->points.end() && data.Row(*it)[sd] == row[sd]) {
      if (*it == id) {
        node->points.erase(it);
        node->bbox = BoundingBox(data.dims());
        for (PointId p : node->points) node->bbox.ExtendPoint(data.Row(p));
        return true;
      }
      ++it;
    }
    return false;
  }
  const uint32_t split_dim = dim_order[node->depth];
  const uint32_t stripe = tree.StripeIndex(row[split_dim]);
  auto it = std::lower_bound(
      node->children.begin(), node->children.end(), stripe,
      [](const auto& entry, uint32_t s) { return entry.first < s; });
  if (it == node->children.end() || it->first != stripe) return false;
  if (!RemoveFromSubtree(it->second.get(), id, row, data, dim_order, tree)) {
    return false;
  }
  const EkdbNode* child = it->second.get();
  const bool child_empty = child->is_leaf() ? child->points.empty()
                                            : child->children.empty();
  if (child_empty) node->children.erase(it);
  node->bbox = BoundingBox(data.dims());
  for (const auto& [s, c] : node->children) node->bbox.ExtendBox(c->bbox);
  return true;
}

}  // namespace

Status EkdbTree::Remove(PointId id) {
  if (static_cast<size_t>(id) >= dataset_->size()) {
    return Status::OutOfRange("point id " + std::to_string(id) +
                              " out of range");
  }
  const float* row = dataset_->Row(id);
  if (!RemoveFromSubtree(root_.get(), id, row, *dataset_, dim_order_, *this)) {
    return Status::NotFound("point id " + std::to_string(id) +
                            " is not in the tree");
  }
  return Status::OK();
}

Status EkdbTree::RangeQuery(const float* query, double eps_query,
                            std::vector<PointId>* out,
                            JoinStats* stats) const {
  if (out == nullptr) return Status::InvalidArgument("out must not be null");
  if (!(eps_query > 0.0) || eps_query > config_.epsilon) {
    return Status::InvalidArgument(
        "eps_query must be in (0, built epsilon]; the stripe grid only "
        "supports radii up to the build epsilon");
  }
  const size_t dims = dataset_->dims();
  BatchDistanceKernel batch(config_.metric, dims, eps_query);
  CandidateTile tile;
  uint8_t mask[CandidateTile::kCapacity];
  uint64_t candidates = 0;
  const size_t emitted_before = out->size();
  // Filters the gathered tile against the query and appends survivors.
  const auto flush_tile = [&] {
    if (tile.empty()) return;
    batch.FilterWithinEpsilon(query, tile.rows(), tile.size(), mask);
    for (size_t i = 0; i < tile.size(); ++i) {
      if (mask[i]) out->push_back(tile.ids()[i]);
    }
    candidates += tile.size();
    tile.Clear();
  };
  std::vector<const EkdbNode*> stack = {root_.get()};
  while (!stack.empty()) {
    const EkdbNode* node = stack.back();
    stack.pop_back();
    if (node->bbox.IsEmpty() ||
        node->bbox.MinDistanceToPoint(query, dims, config_.metric) > eps_query) {
      continue;
    }
    if (node->is_leaf()) {
      // Leaf points are sorted on sort_dim: window the scan, batching the
      // windowed candidates into tiles for the vectorized filter.
      const uint32_t sd = node->sort_dim;
      for (PointId p : node->points) {
        const float* row = dataset_->Row(p);
        if (static_cast<double>(row[sd]) < query[sd] - eps_query) continue;
        if (static_cast<double>(row[sd]) > query[sd] + eps_query) break;
        tile.Add(p, row);
        if (tile.full()) flush_tile();
      }
      flush_tile();
      continue;
    }
    // Only the query's stripe and its two neighbours can hold matches.
    const uint32_t split_dim = dim_order_[node->depth];
    const uint32_t stripe = StripeIndex(query[split_dim]);
    const uint32_t lo = stripe == 0 ? 0 : stripe - 1;
    for (const auto& [s, child] : node->children) {
      if (s < lo) continue;
      if (s > stripe + 1) break;
      stack.push_back(child.get());
    }
  }
  if (stats != nullptr) {
    stats->candidate_pairs += candidates;
    stats->distance_calls += candidates;
    stats->pairs_emitted += out->size() - emitted_before;
    stats->simd_batches += batch.simd_batches();
    stats->scalar_fallbacks += batch.scalar_fallbacks();
  }
  return Status::OK();
}

namespace {

void Walk(const EkdbNode* node, EkdbTreeStats* stats) {
  ++stats->nodes;
  stats->max_depth = std::max<uint64_t>(stats->max_depth, node->depth);
  stats->memory_bytes += sizeof(EkdbNode);
  stats->memory_bytes += node->points.capacity() * sizeof(PointId);
  stats->memory_bytes +=
      node->children.capacity() *
      sizeof(std::pair<uint32_t, std::unique_ptr<EkdbNode>>);
  // Bounding box payload: two float vectors of length d.
  stats->memory_bytes += 2 * node->bbox.dims() * sizeof(float);
  if (node->is_leaf()) {
    ++stats->leaves;
    stats->total_points += node->points.size();
    stats->max_leaf_size = std::max<uint64_t>(stats->max_leaf_size, node->points.size());
    return;
  }
  for (const auto& [stripe, child] : node->children) Walk(child.get(), stats);
}

}  // namespace

EkdbTreeStats EkdbTree::ComputeStats() const {
  EkdbTreeStats stats;
  Walk(root_.get(), &stats);
  stats.avg_leaf_size = stats.leaves > 0 ? static_cast<double>(stats.total_points) /
                                               static_cast<double>(stats.leaves)
                                         : 0.0;
  stats.bytes_per_point =
      stats.total_points > 0 ? static_cast<double>(stats.memory_bytes) /
                                   static_cast<double>(stats.total_points)
                             : 0.0;
  return stats;
}

bool EkdbTree::JoinCompatible(const EkdbTree& a, const EkdbTree& b) {
  return a.dataset().dims() == b.dataset().dims() &&
         a.config().epsilon == b.config().epsilon &&
         a.config().metric == b.config().metric &&
         a.num_stripes() == b.num_stripes() && a.dim_order() == b.dim_order();
}

}  // namespace simjoin
