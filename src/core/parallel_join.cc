#include "core/parallel_join.h"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "common/bounding_box.h"
#include "common/thread_pool.h"
#include "core/ekdb_flat_join.h"
#include "core/ekdb_join.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace simjoin {
namespace {

/// Parallel phase timing: traversal covers spawn-through-wait (all worker
/// tasks, including their SIMD filtering); merge covers the deterministic
/// path-ordered segment concatenation.  Both record wall time of the
/// calling thread only — JoinStats and the emitted pair sequence are not
/// touched, preserving bit-identical sequential/parallel output.
obs::Histogram* ParallelTraversalHistogram() {
  static obs::Histogram* const hist =
      obs::GlobalMetrics().GetHistogram("join.phase.parallel_traversal_us");
  return hist;
}

obs::Histogram* ParallelMergeHistogram() {
  static obs::Histogram* const hist =
      obs::GlobalMetrics().GetHistogram("join.phase.merge_us");
  return hist;
}

// ---------------------------------------------------------------------------
// Deterministic sharded emission
// ---------------------------------------------------------------------------

/// Position of a task in the sequential traversal.  Every split extends the
/// parent's path with the subtask's enumeration rank, and splits enumerate
/// subtasks in exactly the order the sequential recursion visits them; leaf
/// tasks sorted lexicographically by path therefore reproduce the sequential
/// traversal order — no matter how tasks were split or which worker ran
/// them, so the merged output is identical for every thread count.
using TaskPath = std::vector<uint32_t>;

/// One executed task's output: its traversal path plus the pairs it emitted.
struct Segment {
  TaskPath path;
  std::vector<IdPair> pairs;
};

/// Worker-private sink redirecting into the current task's segment.  No
/// locks, no sharing: each worker writes only its own shards, which are
/// merged in path order after all tasks finish.
class SegmentSink : public PairSink {
 public:
  void SetTarget(std::vector<IdPair>* out) { out_ = out; }
  void Emit(PointId a, PointId b) override { out_->emplace_back(a, b); }
  void EmitBatch(std::span<const IdPair> pairs) override {
    out_->insert(out_->end(), pairs.begin(), pairs.end());
  }

 private:
  std::vector<IdPair>* out_ = nullptr;
};

// ---------------------------------------------------------------------------
// Work-stealing join engine
// ---------------------------------------------------------------------------

/// Runs a join decomposed into tasks over a work-stealing pool.  Traits
/// abstracts the tree representation (pointer vs flat): it defines the task
/// type, the per-worker join context, task sizes, and how a task splits into
/// the exact subtask sequence of the sequential recursion.
///
/// Splitting is adaptive: tasks above a coarse threshold (enough chunks to
/// spread over all workers) always split; between the coarse threshold and
/// config.min_task_points they split only while some worker is idle, so a
/// balanced run keeps tasks fat and an imbalanced one refines them.
template <typename Traits>
class WorkStealingJoinEngine {
 public:
  using Task = typename Traits::Task;
  using Context = typename Traits::Context;

  WorkStealingJoinEngine(const Traits& traits, ThreadPool& pool,
                         size_t min_task_points, size_t total_points)
      : traits_(traits),
        pool_(pool),
        group_(&pool),
        min_task_points_(min_task_points),
        coarse_points_(std::max(
            min_task_points,
            total_points / (8 * std::max<size_t>(1, pool.num_threads())))),
        slots_(pool.num_threads() + 1) {}

  Status Run(const Task& root, PairSink* sink, JoinStats* stats) {
    {
      SIMJOIN_TRACE_SPAN("join.traversal");
      obs::ScopedLatencyTimer timer(ParallelTraversalHistogram());
      Spawn(root, TaskPath{});
      group_.Wait();
    }

    // Deterministic lock-free merge: concatenate segments in traversal
    // order.  Workers are done, so all shards are safe to read.
    SIMJOIN_TRACE_SPAN("join.merge");
    obs::ScopedLatencyTimer merge_timer(ParallelMergeHistogram());
    std::vector<const Segment*> ordered;
    for (const Slot& slot : slots_) {
      for (const Segment& seg : slot.segments) ordered.push_back(&seg);
    }
    std::sort(ordered.begin(), ordered.end(),
              [](const Segment* a, const Segment* b) { return a->path < b->path; });
    for (const Segment* seg : ordered) {
      if (!seg->pairs.empty()) {
        sink->EmitBatch(std::span<const IdPair>(seg->pairs));
      }
    }

    if (stats != nullptr) {
      // Exact merge of per-worker locals; split-time counters mirror what
      // the sequential recursion would have counted at the split levels.
      for (const Slot& slot : slots_) {
        stats->Merge(slot.split_stats);
        if (slot.ctx.has_value()) stats->Merge(slot.ctx->stats());
      }
    }
    return Status::OK();
  }

 private:
  /// Per-worker state, cacheline-separated: a lazily-built join context
  /// (reused across this worker's tasks), its segment shards, and the stats
  /// accumulated by split steps it performed.
  struct alignas(64) Slot {
    std::optional<Context> ctx;
    SegmentSink sink;
    std::vector<Segment> segments;
    JoinStats split_stats;
  };

  void Spawn(const Task& task, TaskPath path) {
    group_.Run([this, task, path = std::move(path)]() mutable {
      Execute(task, std::move(path));
    });
  }

  void Execute(const Task& task, TaskPath path) {
    Slot& slot = SlotForThisThread();
    const size_t size = Traits::TaskPoints(task);
    const bool want_split =
        size > coarse_points_ ||
        (size > min_task_points_ && pool_.HasIdleWorkers());
    if (want_split && traits_.CanSplit(task)) {
      uint32_t rank = 0;
      traits_.Split(task, &slot.split_stats, [&](const Task& sub) {
        TaskPath sub_path = path;
        sub_path.push_back(rank++);
        Spawn(sub, std::move(sub_path));
      });
      return;
    }
    if (!slot.ctx.has_value()) traits_.EmplaceContext(&slot.ctx, &slot.sink);
    slot.segments.push_back(Segment{std::move(path), {}});
    slot.sink.SetTarget(&slot.segments.back().pairs);
    Traits::Run(*slot.ctx, task);
    slot.ctx->Flush();
  }

  Slot& SlotForThisThread() {
    const size_t idx = pool_.CurrentWorkerIndex();
    return slots_[idx == ThreadPool::kNotAWorker ? slots_.size() - 1 : idx];
  }

  const Traits& traits_;
  ThreadPool& pool_;
  TaskGroup group_;
  const size_t min_task_points_;
  const size_t coarse_points_;
  std::vector<Slot> slots_;
};

// ---------------------------------------------------------------------------
// Pointer-tree traits
// ---------------------------------------------------------------------------

/// One unit of pointer-tree work: a subtree self-join (b == nullptr) or a
/// cross join of two subtrees.  points caches the combined subtree size so
/// split decisions don't re-walk subtrees.
struct PtrTask {
  const EkdbNode* a = nullptr;
  const EkdbNode* b = nullptr;
  size_t points = 0;
};

class PtrTraits {
 public:
  using Task = PtrTask;
  using Context = internal::EkdbJoinContext;

  explicit PtrTraits(const EkdbTree& tree)
      : a_(&tree),
        b_(nullptr),
        bbox_pruning_(tree.config().bbox_pruning),
        metric_(tree.config().metric),
        epsilon_(tree.config().epsilon) {}

  PtrTraits(const EkdbTree& a, const EkdbTree& b)
      : a_(&a),
        b_(&b),
        bbox_pruning_(a.config().bbox_pruning && b.config().bbox_pruning),
        metric_(a.config().metric),
        epsilon_(a.config().epsilon) {}

  Task RootTask() const {
    if (b_ == nullptr) {
      return Task{a_->root(), nullptr, a_->root()->SubtreeSize()};
    }
    return Task{a_->root(), b_->root(),
                a_->root()->SubtreeSize() + b_->root()->SubtreeSize()};
  }

  void EmplaceContext(std::optional<Context>* ctx, PairSink* sink) const {
    if (b_ == nullptr) {
      ctx->emplace(*a_, sink);
    } else {
      ctx->emplace(*a_, *b_, sink);
    }
  }

  static size_t TaskPoints(const Task& t) { return t.points; }

  static bool CanSplit(const Task& t) {
    if (t.b == nullptr) return !t.a->is_leaf();
    return !(t.a->is_leaf() && t.b->is_leaf());
  }

  static void Run(Context& ctx, const Task& t) {
    if (t.b == nullptr) {
      ctx.SelfJoinNode(t.a);
    } else {
      ctx.JoinNodes(t.a, t.b);
    }
  }

  /// Replaces a task with the exact subtask sequence the sequential
  /// recursion would visit, mirroring its stats side effects.
  template <typename Emit>
  void Split(const Task& t, JoinStats* stats, Emit&& emit) const {
    if (t.b == nullptr) {
      SplitSelf(t.a, emit);
    } else {
      SplitCross(t.a, t.b, stats, emit);
    }
  }

 private:
  /// Mirrors EkdbJoinContext::SelfJoinNode's internal-node step: one self
  /// task per child interleaved with adjacent-stripe cross tasks.  The
  /// sequential recursion counts nothing at this level.
  template <typename Emit>
  static void SplitSelf(const EkdbNode* node, Emit& emit) {
    const auto& kids = node->children;
    std::vector<size_t> sizes(kids.size());
    for (size_t i = 0; i < kids.size(); ++i) {
      sizes[i] = kids[i].second->SubtreeSize();
    }
    for (size_t i = 0; i < kids.size(); ++i) {
      emit(Task{kids[i].second.get(), nullptr, sizes[i]});
      if (i + 1 < kids.size() && kids[i + 1].first == kids[i].first + 1) {
        emit(Task{kids[i].second.get(), kids[i + 1].second.get(),
                  sizes[i] + sizes[i + 1]});
      }
    }
  }

  /// Mirrors EkdbJoinContext::JoinNodes' pre-descent step — visit count,
  /// bbox prune, then the stripe-window child pairing — so merged stats
  /// match the sequential join exactly.
  template <typename Emit>
  void SplitCross(const EkdbNode* a, const EkdbNode* b, JoinStats* stats,
                  Emit& emit) const {
    ++stats->node_pairs_visited;
    if (bbox_pruning_ && a->bbox.MinDistance(b->bbox, metric_) > epsilon_) {
      ++stats->node_pairs_pruned;
      return;
    }
    if (a->is_leaf()) {
      const size_t a_points = a->points.size();
      for (const auto& [stripe, child] : b->children) {
        emit(Task{a, child.get(), a_points + child->SubtreeSize()});
      }
      return;
    }
    if (b->is_leaf()) {
      const size_t b_points = b->points.size();
      for (const auto& [stripe, child] : a->children) {
        emit(Task{child.get(), b, child->SubtreeSize() + b_points});
      }
      return;
    }
    const auto& ka = a->children;
    const auto& kb = b->children;
    std::vector<size_t> b_sizes(kb.size());
    for (size_t j = 0; j < kb.size(); ++j) {
      b_sizes[j] = kb[j].second->SubtreeSize();
    }
    size_t j_lo = 0;
    for (const auto& [sa, ca] : ka) {
      const size_t ca_size = ca->SubtreeSize();
      const uint32_t lo = sa == 0 ? 0 : sa - 1;
      while (j_lo < kb.size() && kb[j_lo].first < lo) ++j_lo;
      for (size_t j = j_lo; j < kb.size() && kb[j].first <= sa + 1; ++j) {
        emit(Task{ca.get(), kb[j].second.get(), ca_size + b_sizes[j]});
      }
    }
  }

  const EkdbTree* a_;
  const EkdbTree* b_;
  bool bbox_pruning_;
  Metric metric_;
  double epsilon_;
};

// ---------------------------------------------------------------------------
// Flat-tree traits
// ---------------------------------------------------------------------------

/// Flat unit of work: node indices instead of pointers; self marks a
/// subtree self-join of a (b is ignored then).  Sizes are O(1) reads off
/// the arena ranges, so split decisions never walk subtrees.
struct FlatTask {
  uint32_t a = 0;
  uint32_t b = 0;
  bool self = false;
  uint32_t points = 0;
};

class FlatTraits {
 public:
  using Task = FlatTask;
  using Context = internal::FlatEkdbJoinContext;

  explicit FlatTraits(const FlatEkdbTree& tree)
      : a_(&tree),
        b_(&tree),
        self_mode_(true),
        bbox_pruning_(tree.config().bbox_pruning),
        metric_(tree.config().metric),
        epsilon_(tree.config().epsilon),
        dims_(tree.dims()) {}

  FlatTraits(const FlatEkdbTree& a, const FlatEkdbTree& b)
      : a_(&a),
        b_(&b),
        self_mode_(false),
        bbox_pruning_(a.config().bbox_pruning && b.config().bbox_pruning),
        metric_(a.config().metric),
        epsilon_(a.config().epsilon),
        dims_(a.dims()) {}

  Task RootTask() const {
    if (self_mode_) {
      return Task{FlatEkdbTree::kRoot, 0, true,
                  a_->node(FlatEkdbTree::kRoot).subtree_points()};
    }
    return Task{FlatEkdbTree::kRoot, FlatEkdbTree::kRoot, false,
                a_->node(FlatEkdbTree::kRoot).subtree_points() +
                    b_->node(FlatEkdbTree::kRoot).subtree_points()};
  }

  void EmplaceContext(std::optional<Context>* ctx, PairSink* sink) const {
    if (self_mode_) {
      ctx->emplace(*a_, sink);
    } else {
      ctx->emplace(*a_, *b_, sink);
    }
  }

  static size_t TaskPoints(const Task& t) { return t.points; }

  bool CanSplit(const Task& t) const {
    if (t.self) return !a_->node(t.a).is_leaf();
    return !(a_->node(t.a).is_leaf() && b_->node(t.b).is_leaf());
  }

  static void Run(Context& ctx, const Task& t) {
    if (t.self) {
      ctx.SelfJoinNode(t.a);
    } else {
      ctx.JoinNodes(t.a, t.b);
    }
  }

  template <typename Emit>
  void Split(const Task& t, JoinStats* stats, Emit&& emit) const {
    if (t.self) {
      SplitSelf(t.a, emit);
    } else {
      SplitCross(t.a, t.b, stats, emit);
    }
  }

 private:
  /// Mirrors FlatEkdbJoinContext::SelfJoinNode's internal-node step.
  template <typename Emit>
  void SplitSelf(uint32_t idx, Emit& emit) const {
    const FlatEkdbNode& node = a_->node(idx);
    const uint32_t cb = node.children_begin;
    const uint32_t ce = cb + node.children_count;
    for (uint32_t c = cb; c < ce; ++c) {
      emit(Task{c, 0, true, a_->node(c).subtree_points()});
      if (c + 1 < ce && a_->node(c + 1).stripe == a_->node(c).stripe + 1) {
        emit(Task{c, c + 1, false,
                  a_->node(c).subtree_points() +
                      a_->node(c + 1).subtree_points()});
      }
    }
  }

  /// Mirrors FlatEkdbJoinContext::JoinNodes' pre-descent step, including
  /// its stats side effects.
  template <typename Emit>
  void SplitCross(uint32_t a_idx, uint32_t b_idx, JoinStats* stats,
                  Emit& emit) const {
    ++stats->node_pairs_visited;
    const FlatEkdbNode& a = a_->node(a_idx);
    const FlatEkdbNode& b = b_->node(b_idx);
    if (bbox_pruning_ &&
        BoxMinDistance(a_->bbox_lo(a_idx), a_->bbox_hi(a_idx),
                       b_->bbox_lo(b_idx), b_->bbox_hi(b_idx), dims_,
                       metric_) > epsilon_) {
      ++stats->node_pairs_pruned;
      return;
    }
    if (a.is_leaf()) {
      const uint32_t end = b.children_begin + b.children_count;
      for (uint32_t c = b.children_begin; c < end; ++c) {
        emit(Task{a_idx, c, false,
                  a.subtree_points() + b_->node(c).subtree_points()});
      }
      return;
    }
    if (b.is_leaf()) {
      const uint32_t end = a.children_begin + a.children_count;
      for (uint32_t c = a.children_begin; c < end; ++c) {
        emit(Task{c, b_idx, false,
                  a_->node(c).subtree_points() + b.subtree_points()});
      }
      return;
    }
    const uint32_t ae = a.children_begin + a.children_count;
    const uint32_t be = b.children_begin + b.children_count;
    uint32_t j_lo = b.children_begin;
    for (uint32_t ci = a.children_begin; ci < ae; ++ci) {
      const uint32_t sa = a_->node(ci).stripe;
      const uint32_t lo = sa == 0 ? 0 : sa - 1;
      while (j_lo < be && b_->node(j_lo).stripe < lo) ++j_lo;
      for (uint32_t cj = j_lo; cj < be && b_->node(cj).stripe <= sa + 1;
           ++cj) {
        emit(Task{ci, cj, false,
                  a_->node(ci).subtree_points() +
                      b_->node(cj).subtree_points()});
      }
    }
  }

  const FlatEkdbTree* a_;
  const FlatEkdbTree* b_;
  bool self_mode_;
  bool bbox_pruning_;
  Metric metric_;
  double epsilon_;
  size_t dims_;
};

// ---------------------------------------------------------------------------
// Drivers
// ---------------------------------------------------------------------------

Status ValidateCommon(const ParallelJoinConfig& config, PairSink* sink) {
  if (sink == nullptr) return Status::InvalidArgument("sink must not be null");
  if (config.min_task_points == 0) {
    return Status::InvalidArgument("min_task_points must be positive");
  }
  return Status::OK();
}

ThreadPool& ResolvePool(const ParallelJoinConfig& config) {
  if (config.pool != nullptr) return *config.pool;
  return ThreadPool::Shared(config.num_threads);
}

template <typename Traits>
Status RunEngine(const Traits& traits, const ParallelJoinConfig& config,
                 size_t total_points, PairSink* sink, JoinStats* stats) {
  ThreadPool& pool = ResolvePool(config);
  WorkStealingJoinEngine<Traits> engine(traits, pool, config.min_task_points,
                                        total_points);
  return engine.Run(traits.RootTask(), sink, stats);
}

}  // namespace

Status ParallelEkdbSelfJoin(const EkdbTree& tree, const ParallelJoinConfig& config,
                            PairSink* sink, JoinStats* stats) {
  SIMJOIN_RETURN_NOT_OK(ValidateCommon(config, sink));
  PtrTraits traits(tree);
  return RunEngine(traits, config, tree.dataset().size(), sink, stats);
}

Status ParallelEkdbJoin(const EkdbTree& a, const EkdbTree& b,
                        const ParallelJoinConfig& config, PairSink* sink,
                        JoinStats* stats) {
  SIMJOIN_RETURN_NOT_OK(ValidateCommon(config, sink));
  if (!EkdbTree::JoinCompatible(a, b)) {
    return Status::InvalidArgument(
        "trees are not join-compatible (epsilon, metric, dims, and dim order "
        "must match)");
  }
  PtrTraits traits(a, b);
  return RunEngine(traits, config, a.dataset().size() + b.dataset().size(),
                   sink, stats);
}

Status ParallelFlatEkdbSelfJoin(const FlatEkdbTree& tree,
                                const ParallelJoinConfig& config,
                                PairSink* sink, JoinStats* stats) {
  SIMJOIN_RETURN_NOT_OK(ValidateCommon(config, sink));
  FlatTraits traits(tree);
  return RunEngine(traits, config, tree.arena_size(), sink, stats);
}

Status ParallelFlatEkdbJoin(const FlatEkdbTree& a, const FlatEkdbTree& b,
                            const ParallelJoinConfig& config, PairSink* sink,
                            JoinStats* stats) {
  SIMJOIN_RETURN_NOT_OK(ValidateCommon(config, sink));
  if (!FlatEkdbTree::JoinCompatible(a, b)) {
    return Status::InvalidArgument(
        "trees are not join-compatible (epsilon, metric, dims, and dim order "
        "must match)");
  }
  FlatTraits traits(a, b);
  return RunEngine(traits, config,
                   static_cast<size_t>(a.arena_size()) + b.arena_size(), sink,
                   stats);
}

}  // namespace simjoin
