#include "core/parallel_join.h"

#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "core/ekdb_flat_join.h"
#include "core/ekdb_join.h"

namespace simjoin {
namespace {

/// One unit of traversal work: either a subtree self-join (b == nullptr) or
/// a cross join of two disjoint subtrees.
struct JoinTask {
  const EkdbNode* a = nullptr;
  const EkdbNode* b = nullptr;  // nullptr => self-join of a
};

/// Recursively expands self-join tasks: a large internal node becomes one
/// self task per child plus one cross task per adjacent-stripe child pair.
/// Cross tasks are not expanded further — they are already small relative to
/// the self tasks they flank.
void ExpandSelfTask(const EkdbNode* node, size_t min_points,
                    std::vector<JoinTask>* tasks) {
  if (node->is_leaf() || node->SubtreeSize() <= min_points) {
    tasks->push_back(JoinTask{node, nullptr});
    return;
  }
  const auto& kids = node->children;
  for (size_t i = 0; i < kids.size(); ++i) {
    ExpandSelfTask(kids[i].second.get(), min_points, tasks);
    if (i + 1 < kids.size() && kids[i + 1].first == kids[i].first + 1) {
      tasks->push_back(JoinTask{kids[i].second.get(), kids[i + 1].second.get()});
    }
  }
}

/// Thread-safe fan-in: buffers pairs locally, flushes under a lock.
class LockedSink : public PairSink {
 public:
  LockedSink(PairSink* target, std::mutex* mu) : target_(target), mu_(mu) {}

  void Emit(PointId a, PointId b) override {
    buffer_.emplace_back(a, b);
    if (buffer_.size() >= kFlushThreshold) Flush();
  }

  void EmitBatch(std::span<const IdPair> pairs) override {
    buffer_.insert(buffer_.end(), pairs.begin(), pairs.end());
    if (buffer_.size() >= kFlushThreshold) Flush();
  }

  void Flush() {
    if (buffer_.empty()) return;
    std::lock_guard<std::mutex> lock(*mu_);
    target_->EmitBatch(std::span<const IdPair>(buffer_));
    buffer_.clear();
  }

 private:
  static constexpr size_t kFlushThreshold = 4096;
  PairSink* target_;
  std::mutex* mu_;
  std::vector<IdPair> buffer_;
};

/// Expands a cross-join task over two subtrees, mirroring the recursion of
/// EkdbJoinContext::JoinNodes: once either side is a leaf, or the combined
/// size is small, the pair stays one task; otherwise stripe-adjacent child
/// pairs recurse.
void ExpandCrossTask(const EkdbNode* a, const EkdbNode* b, size_t min_points,
                     std::vector<JoinTask>* tasks) {
  if (a->is_leaf() || b->is_leaf() ||
      a->SubtreeSize() + b->SubtreeSize() <= min_points) {
    tasks->push_back(JoinTask{a, b});
    return;
  }
  const auto& ka = a->children;
  const auto& kb = b->children;
  size_t j_lo = 0;
  for (const auto& [sa, ca] : ka) {
    const uint32_t lo = sa == 0 ? 0 : sa - 1;
    while (j_lo < kb.size() && kb[j_lo].first < lo) ++j_lo;
    for (size_t j = j_lo; j < kb.size() && kb[j].first <= sa + 1; ++j) {
      ExpandCrossTask(ca.get(), kb[j].second.get(), min_points, tasks);
    }
  }
}

/// Runs a task list across the pool, fanning results into sink/stats.
Status RunTasks(const std::vector<JoinTask>& tasks, size_t threads,
                const std::function<internal::EkdbJoinContext(PairSink*)>&
                    make_context,
                PairSink* sink, JoinStats* stats) {
  std::mutex sink_mu;
  std::mutex stats_mu;
  JoinStats merged;

  ThreadPool pool(threads);
  for (const JoinTask& task : tasks) {
    pool.Submit([&make_context, &sink_mu, &stats_mu, &merged, sink, task] {
      LockedSink local_sink(sink, &sink_mu);
      internal::EkdbJoinContext ctx = make_context(&local_sink);
      if (task.b == nullptr) {
        ctx.SelfJoinNode(task.a);
      } else {
        ctx.JoinNodes(task.a, task.b);
      }
      // Drain the context's pair buffer into local_sink before local_sink
      // itself flushes to the shared sink.
      ctx.Flush();
      local_sink.Flush();
      std::lock_guard<std::mutex> lock(stats_mu);
      merged.Merge(ctx.stats());
    });
  }
  pool.WaitIdle();

  if (stats != nullptr) stats->Merge(merged);
  return Status::OK();
}

size_t ResolveThreads(size_t requested) {
  if (requested != 0) return requested;
  return std::max<size_t>(1, std::thread::hardware_concurrency());
}

/// Flat-tree unit of work: node indices instead of pointers.  self marks a
/// subtree self-join of a (b is ignored then).
struct FlatJoinTask {
  uint32_t a = 0;
  uint32_t b = 0;
  bool self = false;
};

/// Flat mirror of ExpandSelfTask.  Subtree sizes are O(1) reads off the
/// arena ranges, so expansion never walks subtrees.
void ExpandFlatSelfTask(const FlatEkdbTree& tree, uint32_t idx,
                        size_t min_points, std::vector<FlatJoinTask>* tasks) {
  const FlatEkdbNode& node = tree.node(idx);
  if (node.is_leaf() || node.subtree_points() <= min_points) {
    tasks->push_back(FlatJoinTask{idx, 0, true});
    return;
  }
  const uint32_t end = node.children_begin + node.children_count;
  for (uint32_t c = node.children_begin; c < end; ++c) {
    ExpandFlatSelfTask(tree, c, min_points, tasks);
    if (c + 1 < end && tree.node(c + 1).stripe == tree.node(c).stripe + 1) {
      tasks->push_back(FlatJoinTask{c, c + 1, false});
    }
  }
}

/// Flat mirror of ExpandCrossTask.
void ExpandFlatCrossTask(const FlatEkdbTree& a_tree, uint32_t a_idx,
                         const FlatEkdbTree& b_tree, uint32_t b_idx,
                         size_t min_points, std::vector<FlatJoinTask>* tasks) {
  const FlatEkdbNode& a = a_tree.node(a_idx);
  const FlatEkdbNode& b = b_tree.node(b_idx);
  if (a.is_leaf() || b.is_leaf() ||
      a.subtree_points() + b.subtree_points() <= min_points) {
    tasks->push_back(FlatJoinTask{a_idx, b_idx, false});
    return;
  }
  const uint32_t ae = a.children_begin + a.children_count;
  const uint32_t be = b.children_begin + b.children_count;
  uint32_t j_lo = b.children_begin;
  for (uint32_t ci = a.children_begin; ci < ae; ++ci) {
    const uint32_t sa = a_tree.node(ci).stripe;
    const uint32_t lo = sa == 0 ? 0 : sa - 1;
    while (j_lo < be && b_tree.node(j_lo).stripe < lo) ++j_lo;
    for (uint32_t cj = j_lo; cj < be && b_tree.node(cj).stripe <= sa + 1;
         ++cj) {
      ExpandFlatCrossTask(a_tree, ci, b_tree, cj, min_points, tasks);
    }
  }
}

/// Runs a flat task list across the pool, fanning results into sink/stats.
Status RunFlatTasks(
    const std::vector<FlatJoinTask>& tasks, size_t threads,
    const std::function<internal::FlatEkdbJoinContext(PairSink*)>&
        make_context,
    PairSink* sink, JoinStats* stats) {
  std::mutex sink_mu;
  std::mutex stats_mu;
  JoinStats merged;

  ThreadPool pool(threads);
  for (const FlatJoinTask& task : tasks) {
    pool.Submit([&make_context, &sink_mu, &stats_mu, &merged, sink, task] {
      LockedSink local_sink(sink, &sink_mu);
      internal::FlatEkdbJoinContext ctx = make_context(&local_sink);
      if (task.self) {
        ctx.SelfJoinNode(task.a);
      } else {
        ctx.JoinNodes(task.a, task.b);
      }
      ctx.Flush();
      local_sink.Flush();
      std::lock_guard<std::mutex> lock(stats_mu);
      merged.Merge(ctx.stats());
    });
  }
  pool.WaitIdle();

  if (stats != nullptr) stats->Merge(merged);
  return Status::OK();
}

}  // namespace

Status ParallelEkdbSelfJoin(const EkdbTree& tree, const ParallelJoinConfig& config,
                            PairSink* sink, JoinStats* stats) {
  if (sink == nullptr) return Status::InvalidArgument("sink must not be null");
  size_t threads = ResolveThreads(config.num_threads);
  if (config.min_task_points == 0) {
    return Status::InvalidArgument("min_task_points must be positive");
  }

  std::vector<JoinTask> tasks;
  ExpandSelfTask(tree.root(), config.min_task_points, &tasks);
  return RunTasks(
      tasks, threads,
      [&tree](PairSink* task_sink) {
        return internal::EkdbJoinContext(tree, task_sink);
      },
      sink, stats);
}

Status ParallelEkdbJoin(const EkdbTree& a, const EkdbTree& b,
                        const ParallelJoinConfig& config, PairSink* sink,
                        JoinStats* stats) {
  if (sink == nullptr) return Status::InvalidArgument("sink must not be null");
  if (!EkdbTree::JoinCompatible(a, b)) {
    return Status::InvalidArgument(
        "trees are not join-compatible (epsilon, metric, dims, and dim order "
        "must match)");
  }
  const size_t threads = ResolveThreads(config.num_threads);
  if (config.min_task_points == 0) {
    return Status::InvalidArgument("min_task_points must be positive");
  }

  std::vector<JoinTask> tasks;
  ExpandCrossTask(a.root(), b.root(), config.min_task_points, &tasks);
  return RunTasks(
      tasks, threads,
      [&a, &b](PairSink* task_sink) {
        return internal::EkdbJoinContext(a, b, task_sink);
      },
      sink, stats);
}

Status ParallelFlatEkdbSelfJoin(const FlatEkdbTree& tree,
                                const ParallelJoinConfig& config,
                                PairSink* sink, JoinStats* stats) {
  if (sink == nullptr) return Status::InvalidArgument("sink must not be null");
  const size_t threads = ResolveThreads(config.num_threads);
  if (config.min_task_points == 0) {
    return Status::InvalidArgument("min_task_points must be positive");
  }

  std::vector<FlatJoinTask> tasks;
  ExpandFlatSelfTask(tree, FlatEkdbTree::kRoot, config.min_task_points,
                     &tasks);
  return RunFlatTasks(
      tasks, threads,
      [&tree](PairSink* task_sink) {
        return internal::FlatEkdbJoinContext(tree, task_sink);
      },
      sink, stats);
}

Status ParallelFlatEkdbJoin(const FlatEkdbTree& a, const FlatEkdbTree& b,
                            const ParallelJoinConfig& config, PairSink* sink,
                            JoinStats* stats) {
  if (sink == nullptr) return Status::InvalidArgument("sink must not be null");
  if (!FlatEkdbTree::JoinCompatible(a, b)) {
    return Status::InvalidArgument(
        "trees are not join-compatible (epsilon, metric, dims, and dim order "
        "must match)");
  }
  const size_t threads = ResolveThreads(config.num_threads);
  if (config.min_task_points == 0) {
    return Status::InvalidArgument("min_task_points must be positive");
  }

  std::vector<FlatJoinTask> tasks;
  ExpandFlatCrossTask(a, FlatEkdbTree::kRoot, b, FlatEkdbTree::kRoot,
                      config.min_task_points, &tasks);
  return RunFlatTasks(
      tasks, threads,
      [&a, &b](PairSink* task_sink) {
        return internal::FlatEkdbJoinContext(a, b, task_sink);
      },
      sink, stats);
}

}  // namespace simjoin
