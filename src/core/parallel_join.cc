#include "core/parallel_join.h"

#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "core/ekdb_join.h"

namespace simjoin {
namespace {

/// One unit of traversal work: either a subtree self-join (b == nullptr) or
/// a cross join of two disjoint subtrees.
struct JoinTask {
  const EkdbNode* a = nullptr;
  const EkdbNode* b = nullptr;  // nullptr => self-join of a
};

/// Recursively expands self-join tasks: a large internal node becomes one
/// self task per child plus one cross task per adjacent-stripe child pair.
/// Cross tasks are not expanded further — they are already small relative to
/// the self tasks they flank.
void ExpandSelfTask(const EkdbNode* node, size_t min_points,
                    std::vector<JoinTask>* tasks) {
  if (node->is_leaf() || node->SubtreeSize() <= min_points) {
    tasks->push_back(JoinTask{node, nullptr});
    return;
  }
  const auto& kids = node->children;
  for (size_t i = 0; i < kids.size(); ++i) {
    ExpandSelfTask(kids[i].second.get(), min_points, tasks);
    if (i + 1 < kids.size() && kids[i + 1].first == kids[i].first + 1) {
      tasks->push_back(JoinTask{kids[i].second.get(), kids[i + 1].second.get()});
    }
  }
}

/// Thread-safe fan-in: buffers pairs locally, flushes under a lock.
class LockedSink : public PairSink {
 public:
  LockedSink(PairSink* target, std::mutex* mu) : target_(target), mu_(mu) {}

  void Emit(PointId a, PointId b) override {
    buffer_.emplace_back(a, b);
    if (buffer_.size() >= kFlushThreshold) Flush();
  }

  void EmitBatch(std::span<const IdPair> pairs) override {
    buffer_.insert(buffer_.end(), pairs.begin(), pairs.end());
    if (buffer_.size() >= kFlushThreshold) Flush();
  }

  void Flush() {
    if (buffer_.empty()) return;
    std::lock_guard<std::mutex> lock(*mu_);
    target_->EmitBatch(std::span<const IdPair>(buffer_));
    buffer_.clear();
  }

 private:
  static constexpr size_t kFlushThreshold = 4096;
  PairSink* target_;
  std::mutex* mu_;
  std::vector<IdPair> buffer_;
};

/// Expands a cross-join task over two subtrees, mirroring the recursion of
/// EkdbJoinContext::JoinNodes: once either side is a leaf, or the combined
/// size is small, the pair stays one task; otherwise stripe-adjacent child
/// pairs recurse.
void ExpandCrossTask(const EkdbNode* a, const EkdbNode* b, size_t min_points,
                     std::vector<JoinTask>* tasks) {
  if (a->is_leaf() || b->is_leaf() ||
      a->SubtreeSize() + b->SubtreeSize() <= min_points) {
    tasks->push_back(JoinTask{a, b});
    return;
  }
  const auto& ka = a->children;
  const auto& kb = b->children;
  size_t j_lo = 0;
  for (const auto& [sa, ca] : ka) {
    const uint32_t lo = sa == 0 ? 0 : sa - 1;
    while (j_lo < kb.size() && kb[j_lo].first < lo) ++j_lo;
    for (size_t j = j_lo; j < kb.size() && kb[j].first <= sa + 1; ++j) {
      ExpandCrossTask(ca.get(), kb[j].second.get(), min_points, tasks);
    }
  }
}

/// Runs a task list across the pool, fanning results into sink/stats.
Status RunTasks(const std::vector<JoinTask>& tasks, size_t threads,
                const std::function<internal::EkdbJoinContext(PairSink*)>&
                    make_context,
                PairSink* sink, JoinStats* stats) {
  std::mutex sink_mu;
  std::mutex stats_mu;
  JoinStats merged;

  ThreadPool pool(threads);
  for (const JoinTask& task : tasks) {
    pool.Submit([&make_context, &sink_mu, &stats_mu, &merged, sink, task] {
      LockedSink local_sink(sink, &sink_mu);
      internal::EkdbJoinContext ctx = make_context(&local_sink);
      if (task.b == nullptr) {
        ctx.SelfJoinNode(task.a);
      } else {
        ctx.JoinNodes(task.a, task.b);
      }
      // Drain the context's pair buffer into local_sink before local_sink
      // itself flushes to the shared sink.
      ctx.Flush();
      local_sink.Flush();
      std::lock_guard<std::mutex> lock(stats_mu);
      merged.Merge(ctx.stats());
    });
  }
  pool.WaitIdle();

  if (stats != nullptr) stats->Merge(merged);
  return Status::OK();
}

size_t ResolveThreads(size_t requested) {
  if (requested != 0) return requested;
  return std::max<size_t>(1, std::thread::hardware_concurrency());
}

}  // namespace

Status ParallelEkdbSelfJoin(const EkdbTree& tree, const ParallelJoinConfig& config,
                            PairSink* sink, JoinStats* stats) {
  if (sink == nullptr) return Status::InvalidArgument("sink must not be null");
  size_t threads = ResolveThreads(config.num_threads);
  if (config.min_task_points == 0) {
    return Status::InvalidArgument("min_task_points must be positive");
  }

  std::vector<JoinTask> tasks;
  ExpandSelfTask(tree.root(), config.min_task_points, &tasks);
  return RunTasks(
      tasks, threads,
      [&tree](PairSink* task_sink) {
        return internal::EkdbJoinContext(tree, task_sink);
      },
      sink, stats);
}

Status ParallelEkdbJoin(const EkdbTree& a, const EkdbTree& b,
                        const ParallelJoinConfig& config, PairSink* sink,
                        JoinStats* stats) {
  if (sink == nullptr) return Status::InvalidArgument("sink must not be null");
  if (!EkdbTree::JoinCompatible(a, b)) {
    return Status::InvalidArgument(
        "trees are not join-compatible (epsilon, metric, dims, and dim order "
        "must match)");
  }
  const size_t threads = ResolveThreads(config.num_threads);
  if (config.min_task_points == 0) {
    return Status::InvalidArgument("min_task_points must be positive");
  }

  std::vector<JoinTask> tasks;
  ExpandCrossTask(a.root(), b.root(), config.min_task_points, &tasks);
  return RunTasks(
      tasks, threads,
      [&a, &b](PairSink* task_sink) {
        return internal::EkdbJoinContext(a, b, task_sink);
      },
      sink, stats);
}

}  // namespace simjoin
