// Rule-based join planner: picks a join algorithm from cheap dataset
// statistics and a sampled selectivity estimate, the way a query optimizer
// would, then executes it.  The rules encode the outcome of the evaluation
// experiments (EXPERIMENTS.md): brute force wins only for tiny inputs or
// output-bound joins; the epsilon grid wins at very low dimensionality;
// the eps-k-d-B tree is the default everywhere else.

#ifndef SIMJOIN_CORE_PLANNER_H_
#define SIMJOIN_CORE_PLANNER_H_

#include <cstdint>
#include <string>

#include "common/dataset.h"
#include "common/metric.h"
#include "common/pair_sink.h"
#include "common/status.h"
#include "core/epsilon_grid.h"
#include "core/index_backend.h"

namespace simjoin {

/// The algorithms the planner can choose between.
enum class JoinAlgorithm {
  kNestedLoop,
  kSortMerge,
  kGrid,
  kKdTree,
  kRTree,
  kEkdb,
};

/// Short stable name ("ekdb", "nested-loop", ...).
const char* JoinAlgorithmName(JoinAlgorithm algorithm);

/// Planner knobs.
struct PlannerOptions {
  /// Random pairs sampled for the selectivity estimate.
  size_t selectivity_samples = 2000;
  /// Below this cardinality brute force wins outright.  Tuned via
  /// experiment R16: the eps-k-d-B build is cheap enough that the index
  /// pays off from a few hundred points up.
  size_t nested_loop_cutoff = 200;
  /// Estimated result density (pairs / possible pairs) above which the join
  /// is output-bound and brute force is chosen.
  double output_bound_density = 0.2;
  /// Dimensionality at or below which the epsilon grid is chosen.  Derived
  /// from the grid's own binning cap so the planner's notion of "low
  /// dimensionality" can never drift from what EpsilonGrid actually bins.
  size_t grid_max_dims = EpsilonGrid::kMaxBinnedDims;
  uint64_t seed = 17;
};

/// A planning decision.
struct JoinPlan {
  JoinAlgorithm algorithm = JoinAlgorithm::kEkdb;
  double estimated_pairs = 0.0;
  double estimated_density = 0.0;  ///< estimated pairs / C(n, 2)
  std::string rationale;
};

/// Chooses an algorithm for a self-join over the (unit-cube normalised)
/// dataset.  Cost: one sampled selectivity pass, no index builds.
Result<JoinPlan> PlanSelfJoin(const Dataset& data, double epsilon, Metric metric,
                              const PlannerOptions& options = {});

/// Runs the planned algorithm.  The emitted pair set is exact regardless of
/// the plan (every candidate algorithm is exact).
Status ExecuteSelfJoin(const Dataset& data, double epsilon, Metric metric,
                       const JoinPlan& plan, PairSink* sink,
                       JoinStats* stats = nullptr);

/// Convenience: plan, then execute; optionally reports the plan used.
Status PlanAndRunSelfJoin(const Dataset& data, double epsilon, Metric metric,
                          PairSink* sink, JoinPlan* plan_out = nullptr,
                          JoinStats* stats = nullptr,
                          const PlannerOptions& options = {});

// ---------------------------------------------------------------------------
// Serving-path range-query backend planner
// ---------------------------------------------------------------------------

/// Knobs of the per-request backend planner the query service runs
/// (sample-based cost decisions in the style of Adaptive MapReduce
/// Similarity Joins, PAPERS.md).  All signals are deterministic work
/// counters, never wall time, so a plan for a given (snapshot, epsilon,
/// recall) is reproducible.
struct RangePlannerOptions {
  /// Sampled dataset rows probed through an exact backend to measure its
  /// real per-query work (candidate rows + structure visits).
  size_t probe_queries = 16;
  /// Random pairs sampled for the selectivity (expected-neighbours)
  /// estimate.
  size_t selectivity_samples = 512;
  /// Row-filter-equivalent cost of visiting one structure node/window
  /// during traversal (bbox test, stack work, window binary search).
  double node_visit_cost = 4.0;
  /// A non-primary backend must beat the primary's measured cost by this
  /// factor before the planner switches — guards against probe noise
  /// flapping the routing on near-ties.
  double switch_margin = 1.25;
  /// K for the LSH tier; L is then sized from the recall target.  Each
  /// extra concatenated hash cuts a *far* pair's bucket-collision odds by
  /// its (small) per-hash probability while the recall loss on true
  /// neighbours is repaid with linearly more tables, so a larger K buys
  /// precision in the candidate set almost for free — K=8 keeps clustered
  /// high-d workloads' cross-cluster collisions near zero where K=4 floods
  /// every bucket probe with them.
  size_t lsh_hashes_per_table = 8;
  /// Hard cap on L (memory and hashing cost scale linearly with it).
  size_t lsh_max_tables = 64;
  /// Multiplier on a memory-mapped primary's probed cost while it is cold
  /// (no queries served yet): its first traversals pay page faults against
  /// the segment file, not just arithmetic.  Captured before the probe —
  /// probing warms the mapping — so a freshly faulted-in index competes
  /// honestly with heap-resident alternatives.
  double cold_read_penalty = 4.0;
  uint64_t seed = 17;
};

/// Measures an exact backend's per-query cost in row-filter units by
/// running probe range queries at eps_query over sampled dataset rows:
/// (candidate rows + node_visit_cost * structure visits) / probes.
Result<double> ProbeRangeQueryCost(const IndexBackend& backend,
                                   double eps_query,
                                   const RangePlannerOptions& options);

/// Expected true epsilon-neighbours per query point, from the sampled
/// pair-selectivity estimate (2 * estimated_pairs / n).
Result<double> EstimateAvgNeighbors(const Dataset& data, double epsilon,
                                    Metric metric,
                                    const RangePlannerOptions& options);

}  // namespace simjoin

#endif  // SIMJOIN_CORE_PLANNER_H_
