// Rule-based join planner: picks a join algorithm from cheap dataset
// statistics and a sampled selectivity estimate, the way a query optimizer
// would, then executes it.  The rules encode the outcome of the evaluation
// experiments (EXPERIMENTS.md): brute force wins only for tiny inputs or
// output-bound joins; the epsilon grid wins at very low dimensionality;
// the eps-k-d-B tree is the default everywhere else.

#ifndef SIMJOIN_CORE_PLANNER_H_
#define SIMJOIN_CORE_PLANNER_H_

#include <cstdint>
#include <string>

#include "common/dataset.h"
#include "common/metric.h"
#include "common/pair_sink.h"
#include "common/status.h"

namespace simjoin {

/// The algorithms the planner can choose between.
enum class JoinAlgorithm {
  kNestedLoop,
  kSortMerge,
  kGrid,
  kKdTree,
  kRTree,
  kEkdb,
};

/// Short stable name ("ekdb", "nested-loop", ...).
const char* JoinAlgorithmName(JoinAlgorithm algorithm);

/// Planner knobs.
struct PlannerOptions {
  /// Random pairs sampled for the selectivity estimate.
  size_t selectivity_samples = 2000;
  /// Below this cardinality brute force wins outright.  Tuned via
  /// experiment R16: the eps-k-d-B build is cheap enough that the index
  /// pays off from a few hundred points up.
  size_t nested_loop_cutoff = 200;
  /// Estimated result density (pairs / possible pairs) above which the join
  /// is output-bound and brute force is chosen.
  double output_bound_density = 0.2;
  /// Dimensionality at or below which the epsilon grid is chosen.
  size_t grid_max_dims = 3;
  uint64_t seed = 17;
};

/// A planning decision.
struct JoinPlan {
  JoinAlgorithm algorithm = JoinAlgorithm::kEkdb;
  double estimated_pairs = 0.0;
  double estimated_density = 0.0;  ///< estimated pairs / C(n, 2)
  std::string rationale;
};

/// Chooses an algorithm for a self-join over the (unit-cube normalised)
/// dataset.  Cost: one sampled selectivity pass, no index builds.
Result<JoinPlan> PlanSelfJoin(const Dataset& data, double epsilon, Metric metric,
                              const PlannerOptions& options = {});

/// Runs the planned algorithm.  The emitted pair set is exact regardless of
/// the plan (every candidate algorithm is exact).
Status ExecuteSelfJoin(const Dataset& data, double epsilon, Metric metric,
                       const JoinPlan& plan, PairSink* sink,
                       JoinStats* stats = nullptr);

/// Convenience: plan, then execute; optionally reports the plan used.
Status PlanAndRunSelfJoin(const Dataset& data, double epsilon, Metric metric,
                          PairSink* sink, JoinPlan* plan_out = nullptr,
                          JoinStats* stats = nullptr,
                          const PlannerOptions& options = {});

}  // namespace simjoin

#endif  // SIMJOIN_CORE_PLANNER_H_
