// Join-size (selectivity) estimation for epsilon similarity self-joins.
//
// A query processor wants the expected result cardinality *before* paying
// for the join — to choose algorithms, allocate memory, or refuse runaway
// radii.  Two estimators are provided:
//
//  * Pair sampling: test m uniformly random point pairs and scale the hit
//    fraction by C(n, 2).  Unbiased, trivially cheap, but high-variance
//    when the join is very selective (hit probability ~ pairs / C(n,2)).
//
//  * Point sampling: for m sampled points, count their exact epsilon
//    neighbours with an eps-k-d-B range query and scale the mean neighbour
//    count by n/2.  Unbiased with far lower variance on selective joins
//    because every sample contributes its full neighbourhood; when
//    m == n (all points, sampled without replacement) the estimate is the
//    exact pair count.

#ifndef SIMJOIN_CORE_SELECTIVITY_H_
#define SIMJOIN_CORE_SELECTIVITY_H_

#include <cstdint>

#include "common/dataset.h"
#include "common/metric.h"
#include "common/status.h"
#include "core/ekdb_tree.h"

namespace simjoin {

/// Result of a selectivity estimate.
struct SelectivityEstimate {
  double estimated_pairs = 0.0;  ///< expected self-join result size
  size_t samples = 0;            ///< samples actually drawn
};

/// Pair-sampling estimator over the raw dataset.
Result<SelectivityEstimate> EstimatePairsByPairSampling(
    const Dataset& data, double epsilon, Metric metric, size_t samples,
    uint64_t seed);

/// Point-sampling estimator over an existing eps-k-d-B tree (samples are
/// drawn without replacement; samples >= n degenerates to the exact count).
Result<SelectivityEstimate> EstimatePairsByPointSampling(const EkdbTree& tree,
                                                         size_t samples,
                                                         uint64_t seed);

/// Inverse problem: suggest a join radius whose self-join is expected to
/// return roughly target_pairs results, by sampling random pair distances
/// and reading off the target quantile.  Useful when the user knows "how
/// many" rather than "how close" but wants a radius (e.g. to feed the
/// eps-k-d-B build) instead of the exact TopKClosestPairs answer.
Result<double> SuggestEpsilonForTargetPairs(const Dataset& data,
                                            uint64_t target_pairs,
                                            Metric metric,
                                            size_t samples = 4096,
                                            uint64_t seed = 1);

}  // namespace simjoin

#endif  // SIMJOIN_CORE_SELECTIVITY_H_
