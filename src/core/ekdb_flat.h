// Cache-conscious flat form of the eps-k-d-B tree.
//
// The pointer tree (EkdbTree) is the build / incremental-maintenance
// representation: nodes are heap objects linked by unique_ptr, leaves hold
// point ids into the (insertion-ordered) Dataset.  That layout is right for
// Insert/Remove but wrong for the join hot path, where every candidate row
// is a data-dependent pointer chase.
//
// FlatEkdbTree linearises a built tree into three contiguous arrays:
//
//  - a node array: children as index ranges (each node's children occupy a
//    contiguous run, BFS order), with stripe / depth / sort_dim inline;
//  - bbox planes: per-node lo/hi coordinate rows in two dense arrays;
//  - a leaf-major coordinate arena: every leaf's points copied into
//    row-major storage in leaf sweep order (DFS leaf order, each leaf's
//    rows sorted on its sort_dim), plus an arena-position -> original
//    PointId remap applied only when a pair is emitted.
//
// A sliding-window leaf sweep over the arena is therefore a straight
// streaming scan — candidate tiles are contiguous rows fed to the strided
// BatchDistanceKernel entry points — instead of a per-candidate gather
// through 32 row pointers.  Joins over the flat form emit pair sets
// bit-identical to the pointer-tree joins (see ekdb_flat_join.h and the
// differential tests).  See docs/layout.md for the full story.

#ifndef SIMJOIN_CORE_EKDB_FLAT_H_
#define SIMJOIN_CORE_EKDB_FLAT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/dataset.h"
#include "common/pair_sink.h"
#include "common/status.h"
#include "core/ekdb_config.h"
#include "core/ekdb_tree.h"

namespace simjoin {

/// One node of the flat tree: 28 bytes, no pointers.  Children of a node are
/// the contiguous index range [children_begin, children_begin +
/// children_count) of the node array, sorted by stripe.  Every node owns the
/// contiguous arena range [arena_begin, arena_end) covering its subtree's
/// points, so subtree size is O(1).
struct FlatEkdbNode {
  uint32_t children_begin = 0;
  uint32_t children_count = 0;  ///< 0 means leaf
  uint32_t arena_begin = 0;
  uint32_t arena_end = 0;
  uint32_t stripe = 0;    ///< stripe index within the parent (root: 0)
  uint32_t depth = 0;
  uint32_t sort_dim = 0;  ///< leaves: dimension the arena range is sorted on

  bool is_leaf() const { return children_count == 0; }
  uint32_t subtree_points() const { return arena_end - arena_begin; }
};

/// One query of a fused batch: a point (dims floats, borrowed) and its
/// radius.  The pointed-to coordinates must stay alive until the batch call
/// returns.
struct RangeQuerySpec {
  const float* query = nullptr;
  double epsilon = 0.0;
};

/// The complete structural payload of a flat tree as plain arrays — what a
/// segment loader hands to FromStorage (owned) or what a builder assembles
/// off-line.  Index semantics are exactly FlatEkdbTree's internal layout:
/// BFS node array, per-node bbox planes, DFS-leaf-order arena.
struct FlatEkdbStorage {
  EkdbConfig config;
  std::vector<uint32_t> dim_order;
  size_t num_stripes = 1;
  double stripe_width = 1.0;
  std::vector<FlatEkdbNode> nodes;
  std::vector<float> bbox_lo;
  std::vector<float> bbox_hi;
  std::vector<float> arena;
  std::vector<PointId> arena_ids;
};

/// Borrowed form of the same payload: raw pointers into storage someone
/// else keeps alive (a memory-mapped segment).  See FlatEkdbTree::FromView.
struct FlatEkdbStorageView {
  EkdbConfig config;
  std::vector<uint32_t> dim_order;
  size_t num_stripes = 1;
  double stripe_width = 1.0;
  const FlatEkdbNode* nodes = nullptr;
  size_t num_nodes = 0;
  const float* bbox_lo = nullptr;
  const float* bbox_hi = nullptr;
  const float* arena = nullptr;
  const PointId* arena_ids = nullptr;
  size_t arena_count = 0;
};

/// Pointer-free eps-k-d-B tree over a dataset it does not own.  Immutable:
/// rebuild (or re-flatten an updated pointer tree) after Insert/Remove
/// batches.  The dataset must stay alive and unmodified for the lifetime of
/// this object.
///
/// Storage is view-backed: the query paths read raw array pointers that
/// either alias this object's own heap vectors (FromTree / FromStorage) or
/// point into an externally owned region such as a memory-mapped segment
/// file (FromView).  Both construction paths execute the *same* traversal
/// code, which is what makes mapped serving bit-identical to in-RAM serving
/// by construction rather than by test.
class FlatEkdbTree {
 public:
  /// Linearises a built pointer tree.  The flat tree joins against the same
  /// dataset the pointer tree was built over.  With num_threads > 1 the
  /// arena copy and node-metadata fill run as chunked tasks on the shared
  /// work-stealing pool over precomputed subtree offsets (disjoint output
  /// ranges, so the result is identical to the sequential fill);
  /// num_threads == 0 uses hardware concurrency.
  static Result<FlatEkdbTree> FromTree(const EkdbTree& tree,
                                       size_t num_threads = 1);

  /// Convenience: EkdbTree::Load followed by FromTree (the pointer tree is
  /// discarded).
  static Result<FlatEkdbTree> Load(const Dataset& dataset,
                                   const std::string& path);

  /// Adopts fully assembled storage (segment loads, external builds).  The
  /// structure is validated (node/children/arena bounds, stripe and
  /// dimension sanity) so a corrupted segment fails here with a clear error
  /// instead of crashing a traversal.
  static Result<FlatEkdbTree> FromStorage(const Dataset& dataset,
                                          FlatEkdbStorage storage);

  /// Wraps externally owned storage without copying — the mmap serving
  /// path.  `keepalive` is retained for the tree's lifetime (typically the
  /// MappedSegment whose pages the view points into).  Validation is
  /// identical to FromStorage.
  static Result<FlatEkdbTree> FromView(const Dataset& dataset,
                                       const FlatEkdbStorageView& view,
                                       std::shared_ptr<const void> keepalive);

  // Views stay valid across moves (vector moves transfer their heap
  // buffers), but a copy would alias the source's storage — forbidden.
  FlatEkdbTree(FlatEkdbTree&&) = default;
  FlatEkdbTree& operator=(FlatEkdbTree&&) = default;
  FlatEkdbTree(const FlatEkdbTree&) = delete;
  FlatEkdbTree& operator=(const FlatEkdbTree&) = delete;

  // -- structure ----------------------------------------------------------

  uint32_t num_nodes() const { return static_cast<uint32_t>(num_nodes_); }
  const FlatEkdbNode& node(uint32_t idx) const { return nodes_[idx]; }
  const FlatEkdbNode* nodes_data() const { return nodes_; }
  static constexpr uint32_t kRoot = 0;

  /// Per-node bounding-box planes (dims floats each).
  const float* bbox_lo(uint32_t idx) const {
    return bbox_lo_ + static_cast<size_t>(idx) * dims_;
  }
  const float* bbox_hi(uint32_t idx) const {
    return bbox_hi_ + static_cast<size_t>(idx) * dims_;
  }

  // -- arena --------------------------------------------------------------

  /// Number of points in the arena (== points indexed by the tree).
  uint32_t arena_size() const { return static_cast<uint32_t>(arena_count_); }
  /// Row-major coordinates of arena position pos.
  const float* arena_row(uint32_t pos) const {
    return arena_ + static_cast<size_t>(pos) * dims_;
  }
  const float* arena_data() const { return arena_; }
  /// Original dataset id of arena position pos (the emit-time remap).
  PointId arena_id(uint32_t pos) const { return arena_ids_[pos]; }
  const PointId* arena_ids_data() const { return arena_ids_; }

  /// True when the arrays alias externally owned storage (FromView).
  bool view_backed() const { return keepalive_ != nullptr; }

  // -- configuration ------------------------------------------------------

  const Dataset& dataset() const { return *dataset_; }
  const EkdbConfig& config() const { return config_; }
  size_t dims() const { return dims_; }
  const std::vector<uint32_t>& dim_order() const { return dim_order_; }
  size_t num_stripes() const { return num_stripes_; }
  double stripe_width() const { return stripe_width_; }

  /// Global stripe index of a coordinate value in [0, 1]; identical to
  /// EkdbTree::StripeIndex for equal epsilon.
  uint32_t StripeIndex(float value) const;

  /// True iff the two flat trees were built with join-compatible
  /// configurations (same epsilon grid, metric, dimensionality, dim order).
  static bool JoinCompatible(const FlatEkdbTree& a, const FlatEkdbTree& b);

  // -- queries ------------------------------------------------------------

  /// Collects the ids of all indexed points within eps_query of the query
  /// point (eps_query in (0, config().epsilon]).  Same id set as
  /// EkdbTree::RangeQuery; leaf scans run through the strided batch kernel
  /// and are tallied into stats (simd_batches etc.) when provided.
  Status RangeQuery(const float* query, double eps_query,
                    std::vector<PointId>* out,
                    JoinStats* stats = nullptr) const;

  /// Checks a query radius against the built epsilon without running the
  /// query — exactly the validation RangeQuery performs, factored out so
  /// batch schedulers can reject a bad request up front with the identical
  /// error and keep the rest of the batch alive.
  Status ValidateQueryEpsilon(double eps_query) const;

  /// Answers `count` range queries in one fused arena pass: every query is
  /// planned against the tree (identical traversal to RangeQuery), the
  /// surviving leaf windows of all queries are sorted by arena position, and
  /// the arena is swept once front to back with a single strided batch
  /// kernel.  (*results)[i] receives exactly the ids — in exactly the order —
  /// that RangeQuery(specs[i]) would have produced, and (*stats)[i], when
  /// stats is non-null, receives exactly the JoinStats delta that solo query
  /// would have recorded; both are resized to `count` and overwritten.  Any
  /// invalid spec epsilon fails the whole batch up front (use
  /// ValidateQueryEpsilon to pre-screen when per-query error isolation is
  /// needed).  Runs on the calling thread only, so results do not depend on
  /// any pool configuration.
  Status RangeQueryBatch(const RangeQuerySpec* specs, size_t count,
                         std::vector<std::vector<PointId>>* results,
                         std::vector<JoinStats>* stats = nullptr) const;

  // -- memory accounting --------------------------------------------------

  /// Bytes of the node array plus the bbox planes.  View-backed trees own
  /// no heap arrays (the pages belong to the mapping), so these report the
  /// *logical* structure size either way; heap accounting belongs to the
  /// owner of the storage.
  uint64_t node_bytes() const {
    return static_cast<uint64_t>(num_nodes_) * sizeof(FlatEkdbNode) +
           static_cast<uint64_t>(num_nodes_) * 2 * dims_ * sizeof(float);
  }
  /// Bytes of the coordinate arena plus the id remap.
  uint64_t arena_bytes() const {
    return static_cast<uint64_t>(arena_count_) * dims_ * sizeof(float) +
           static_cast<uint64_t>(arena_count_) * sizeof(PointId);
  }
  uint64_t total_bytes() const { return node_bytes() + arena_bytes(); }

  /// Fills the flat-representation fields of an EkdbTreeStats (the pointer
  /// fields are ComputeStats()'s job), so the R8 memory experiment reports
  /// both forms side by side.
  void FillStats(EkdbTreeStats* stats) const;

 private:
  FlatEkdbTree() = default;

  /// Points the query-path views at the owned vectors (after any fill or
  /// adoption of FlatEkdbStorage).
  void BindOwnedStorage();

  /// Bounds/sanity validation shared by FromStorage and FromView: every
  /// node's children range and arena range must lie inside the arrays, the
  /// root must cover the whole arena, and the grid parameters must be
  /// coherent.  Returns a descriptive error for corrupted input.
  static Status ValidateStructure(const FlatEkdbStorageView& view,
                                  size_t dataset_size, size_t dataset_dims);

  const Dataset* dataset_ = nullptr;
  EkdbConfig config_;
  std::vector<uint32_t> dim_order_;
  size_t num_stripes_ = 1;
  double stripe_width_ = 1.0;
  size_t dims_ = 0;

  // Owned storage; empty for view-backed trees.
  std::vector<FlatEkdbNode> owned_nodes_;
  std::vector<float> owned_bbox_lo_;
  std::vector<float> owned_bbox_hi_;
  std::vector<float> owned_arena_;
  std::vector<PointId> owned_arena_ids_;

  // The views every query path reads — into the owned vectors or into an
  // externally owned mapping held alive by keepalive_.
  const FlatEkdbNode* nodes_ = nullptr;
  size_t num_nodes_ = 0;
  const float* bbox_lo_ = nullptr;
  const float* bbox_hi_ = nullptr;
  const float* arena_ = nullptr;
  const PointId* arena_ids_ = nullptr;
  size_t arena_count_ = 0;
  std::shared_ptr<const void> keepalive_;
};

}  // namespace simjoin

#endif  // SIMJOIN_CORE_EKDB_FLAT_H_
