#include "core/index_backend.h"

#include <algorithm>
#include <utility>

#include "common/simd_kernel.h"
#include "core/ekdb_flat_join.h"
#include "core/ekdb_tree.h"
#include "core/parallel_join.h"

namespace simjoin {
namespace {

// Streaming a row through the strided kernel skips the pointer gather and
// prefetches perfectly, so a brute-scan row is slightly cheaper than the
// tree's window rows the cost units are calibrated on.
constexpr double kBruteRowDiscount = 0.9;

}  // namespace

Result<BackendKind> BackendKindFromWire(uint8_t value) {
  switch (value) {
    case 0:
      return BackendKind::kEkdbFlat;
    case 1:
      return BackendKind::kEpsilonGrid;
    case 2:
      return BackendKind::kLsh;
    case 3:
      return BackendKind::kBruteSimd;
    case 4:
      return BackendKind::kRTree;
    case 5:
      return BackendKind::kUpdatable;
    default:
      return Status::InvalidArgument("unknown index backend byte " +
                                     std::to_string(value));
  }
}

const char* BackendKindName(BackendKind kind) {
  switch (kind) {
    case BackendKind::kEkdbFlat:
      return "ekdb-flat";
    case BackendKind::kEpsilonGrid:
      return "grid";
    case BackendKind::kLsh:
      return "lsh";
    case BackendKind::kBruteSimd:
      return "brute-simd";
    case BackendKind::kRTree:
      return "rtree";
    case BackendKind::kUpdatable:
      return "updatable";
  }
  return "unknown";
}

bool BackendKindBuildable(BackendKind kind) {
  return kind == BackendKind::kEkdbFlat || kind == BackendKind::kEpsilonGrid ||
         kind == BackendKind::kUpdatable;
}

Status IndexBackend::SelfJoin(double /*eps_query*/, size_t /*num_threads*/,
                              PairSink* /*sink*/, JoinStats* /*stats*/) const {
  return Status::Unimplemented(
      std::string("backend '") + BackendKindName(kind()) +
      "' does not implement SelfJoin; use an ekdb-flat backend");
}

// ---------------------------------------------------------------------------
// EkdbFlatBackend
// ---------------------------------------------------------------------------

Result<std::unique_ptr<EkdbFlatBackend>> EkdbFlatBackend::Build(
    const Dataset& dataset, const EkdbConfig& config, size_t num_threads) {
  SIMJOIN_ASSIGN_OR_RETURN(
      EkdbTree tree, num_threads == 1
                         ? EkdbTree::Build(dataset, config)
                         : EkdbTree::BuildParallel(dataset, config,
                                                   num_threads));
  // The pointer tree is build scaffolding; only the flat form is served.
  SIMJOIN_ASSIGN_OR_RETURN(FlatEkdbTree flat,
                           FlatEkdbTree::FromTree(tree, num_threads));
  return std::make_unique<EkdbFlatBackend>(std::move(flat));
}

Status EkdbFlatBackend::RangeQuery(const float* query, double eps_query,
                                   std::vector<PointId>* out, JoinStats* stats,
                                   double* recall_est) const {
  if (recall_est != nullptr) *recall_est = 1.0;
  return tree_.RangeQuery(query, eps_query, out, stats);
}

Status EkdbFlatBackend::RangeQueryBatch(const RangeQuerySpec* specs,
                                        size_t count,
                                        std::vector<std::vector<PointId>>* results,
                                        std::vector<JoinStats>* stats,
                                        std::vector<double>* recall_ests) const {
  if (recall_ests != nullptr) recall_ests->assign(count, 1.0);
  return tree_.RangeQueryBatch(specs, count, results, stats);
}

Status EkdbFlatBackend::SelfJoin(double eps_query, size_t num_threads,
                                 PairSink* sink, JoinStats* stats) const {
  SIMJOIN_RETURN_NOT_OK(ValidateQueryEpsilon(eps_query));
  const double build_eps = tree_.config().epsilon;
  // The parallel driver joins at build epsilon; narrower radii take the
  // sequential radius-override path.  Either way the emitted pair sequence
  // is the sequential sequence (the parallel engine's deterministic-merge
  // guarantee), so callers cannot tell the difference.
  if (num_threads > 1 && eps_query == build_eps) {
    ParallelJoinConfig pcfg;
    pcfg.num_threads = num_threads;
    return ParallelFlatEkdbSelfJoin(tree_, pcfg, sink, stats);
  }
  return eps_query == build_eps
             ? FlatEkdbSelfJoin(tree_, sink, stats)
             : FlatEkdbSelfJoinWithEpsilon(tree_, eps_query, sink, stats);
}

double EkdbFlatBackend::EstimatedQueryCost(double /*eps_query*/,
                                           double expected_neighbors) const {
  // Prior only (the planner probes this backend instead when it can):
  // candidate windows amplify the true neighbourhood a few times, plus a
  // leaf's worth of floor cost.
  const double n = static_cast<double>(tree_.dataset().size());
  return std::min(n, 64.0 + 8.0 * expected_neighbors);
}

// ---------------------------------------------------------------------------
// EpsilonGridBackend
// ---------------------------------------------------------------------------

Result<std::unique_ptr<EpsilonGridBackend>> EpsilonGridBackend::Build(
    const Dataset& dataset, const EkdbConfig& config) {
  SIMJOIN_ASSIGN_OR_RETURN(EpsilonGrid grid,
                           EpsilonGrid::Build(dataset, config));
  return std::unique_ptr<EpsilonGridBackend>(
      new EpsilonGridBackend(std::move(grid)));
}

Status EpsilonGridBackend::RangeQuery(const float* query, double eps_query,
                                      std::vector<PointId>* out,
                                      JoinStats* stats,
                                      double* recall_est) const {
  if (recall_est != nullptr) *recall_est = 1.0;
  return grid_.RangeQuery(query, eps_query, out, stats);
}

Status EpsilonGridBackend::RangeQueryBatch(
    const RangeQuerySpec* specs, size_t count,
    std::vector<std::vector<PointId>>* results, std::vector<JoinStats>* stats,
    std::vector<double>* recall_ests) const {
  if (recall_ests != nullptr) recall_ests->assign(count, 1.0);
  return grid_.RangeQueryBatch(specs, count, results, stats);
}

double EpsilonGridBackend::EstimatedQueryCost(double /*eps_query*/,
                                              double expected_neighbors) const {
  // Prior: the neighbour-cell window of a uniform grid holds about
  // 3^binned_dims cells of average occupancy.
  const double n = static_cast<double>(grid_.dataset().size());
  double window_cells = 1.0;
  for (size_t i = 0; i < grid_.binned_dims().size(); ++i) window_cells *= 3.0;
  const double per_cell = n / static_cast<double>(grid_.num_cells());
  return std::min(n, std::max(expected_neighbors, window_cells * per_cell));
}

// ---------------------------------------------------------------------------
// BruteSimdBackend
// ---------------------------------------------------------------------------

Result<std::unique_ptr<BruteSimdBackend>> BruteSimdBackend::Build(
    const Dataset& dataset, const EkdbConfig& config) {
  if (dataset.empty()) {
    return Status::InvalidArgument("dataset must not be empty");
  }
  SIMJOIN_RETURN_NOT_OK(config.Validate(dataset.dims()));
  return std::unique_ptr<BruteSimdBackend>(
      new BruteSimdBackend(dataset, config));
}

Status BruteSimdBackend::ValidateQueryEpsilon(double eps_query) const {
  // Same contract as the structured backends so the planner can swap them
  // freely (the scan itself would accept any radius).
  if (!(eps_query > 0.0) || eps_query > config_.epsilon) {
    return Status::InvalidArgument(
        "eps_query must be in (0, built epsilon]; the stripe grid only "
        "supports radii up to the build epsilon");
  }
  return Status::OK();
}

Status BruteSimdBackend::RangeQuery(const float* query, double eps_query,
                                    std::vector<PointId>* out,
                                    JoinStats* stats,
                                    double* recall_est) const {
  if (out == nullptr) return Status::InvalidArgument("out must not be null");
  SIMJOIN_RETURN_NOT_OK(ValidateQueryEpsilon(eps_query));
  if (recall_est != nullptr) *recall_est = 1.0;
  const size_t n = dataset_->size();
  const size_t dims = dataset_->dims();
  const float* base = dataset_->Row(0);
  BatchDistanceKernel kernel(config_.metric, dims, eps_query);
  uint8_t mask[BatchDistanceKernel::kTileCapacity];
  const size_t emitted_before = out->size();
  for (size_t begin = 0; begin < n;
       begin += BatchDistanceKernel::kTileCapacity) {
    const size_t count =
        std::min(BatchDistanceKernel::kTileCapacity, n - begin);
    const float* tile = base + begin * dims;
    const float* prefetch =
        begin + count < n ? base + (begin + count) * dims : nullptr;
    kernel.FilterWithinEpsilonStrided(query, tile, dims, count, mask,
                                      prefetch);
    for (size_t i = 0; i < count; ++i) {
      if (mask[i]) out->push_back(static_cast<PointId>(begin + i));
    }
  }
  if (stats != nullptr) {
    stats->candidate_pairs += n;
    stats->distance_calls += n;
    stats->pairs_emitted += out->size() - emitted_before;
    stats->simd_batches += kernel.simd_batches();
    stats->scalar_fallbacks += kernel.scalar_fallbacks();
  }
  return Status::OK();
}

Status BruteSimdBackend::RangeQueryBatch(
    const RangeQuerySpec* specs, size_t count,
    std::vector<std::vector<PointId>>* results, std::vector<JoinStats>* stats,
    std::vector<double>* recall_ests) const {
  if (results == nullptr) {
    return Status::InvalidArgument("results must not be null");
  }
  if (count != 0 && specs == nullptr) {
    return Status::InvalidArgument("specs must not be null");
  }
  for (size_t i = 0; i < count; ++i) {
    if (specs[i].query == nullptr) {
      return Status::InvalidArgument("spec query must not be null");
    }
    SIMJOIN_RETURN_NOT_OK(ValidateQueryEpsilon(specs[i].epsilon));
  }
  results->assign(count, {});
  if (stats != nullptr) stats->assign(count, JoinStats{});
  if (recall_ests != nullptr) recall_ests->assign(count, 1.0);
  // The scan has no cross-query plan to fuse; per-query execution is the
  // batch semantics (bit-identical to solo by construction).
  for (size_t i = 0; i < count; ++i) {
    SIMJOIN_RETURN_NOT_OK(RangeQuery(specs[i].query, specs[i].epsilon,
                                     &(*results)[i],
                                     stats != nullptr ? &(*stats)[i] : nullptr,
                                     nullptr));
  }
  return Status::OK();
}

double BruteSimdBackend::EstimatedQueryCost(double /*eps_query*/,
                                            double /*expected_neighbors*/) const {
  return kBruteRowDiscount * static_cast<double>(dataset_->size());
}

}  // namespace simjoin
