// Umbrella header: the full public API of the simjoin library.
//
// Most applications only need core/ekdb_join.h (index + joins) and
// workload/generators.h (synthetic data); this header pulls in everything
// for convenience.

#ifndef SIMJOIN_SIMJOIN_H_
#define SIMJOIN_SIMJOIN_H_

// Substrate.
#include "common/args.h"            // IWYU pragma: export
#include "common/binary_io.h"       // IWYU pragma: export
#include "common/bounding_box.h"    // IWYU pragma: export
#include "common/csv.h"             // IWYU pragma: export
#include "common/dataset.h"         // IWYU pragma: export
#include "common/net.h"             // IWYU pragma: export
#include "common/eigen.h"           // IWYU pragma: export
#include "common/logging.h"         // IWYU pragma: export
#include "common/metric.h"          // IWYU pragma: export
#include "common/pair_sink.h"       // IWYU pragma: export
#include "common/pca.h"             // IWYU pragma: export
#include "common/simd_kernel.h"     // IWYU pragma: export
#include "common/rng.h"             // IWYU pragma: export
#include "common/stats.h"           // IWYU pragma: export
#include "common/status.h"          // IWYU pragma: export
#include "common/thread_pool.h"     // IWYU pragma: export
#include "common/timer.h"           // IWYU pragma: export
#include "common/union_find.h"      // IWYU pragma: export

// Core contribution: the eps-k-d-B tree and its joins.
#include "core/closest_pairs.h"     // IWYU pragma: export
#include "core/components.h"        // IWYU pragma: export
#include "core/dbscan.h"            // IWYU pragma: export
#include "core/ekdb_config.h"       // IWYU pragma: export
#include "core/ekdb_flat.h"         // IWYU pragma: export
#include "core/ekdb_flat_join.h"    // IWYU pragma: export
#include "core/ekdb_join.h"         // IWYU pragma: export
#include "core/ekdb_tree.h"         // IWYU pragma: export
#include "core/external_join.h"     // IWYU pragma: export
#include "core/parallel_join.h"     // IWYU pragma: export
#include "core/planner.h"           // IWYU pragma: export
#include "core/projected_join.h"    // IWYU pragma: export
#include "core/selectivity.h"       // IWYU pragma: export
#include "core/streaming_window.h"  // IWYU pragma: export

// Approximate extension.
#include "approx/lsh_join.h"     // IWYU pragma: export

// Baselines.
#include "baselines/grid_join.h"    // IWYU pragma: export
#include "baselines/kdtree.h"       // IWYU pragma: export
#include "baselines/nested_loop.h"  // IWYU pragma: export
#include "baselines/sort_merge.h"   // IWYU pragma: export

// R-tree comparator family.
#include "rtree/rtree.h"            // IWYU pragma: export
#include "rtree/rtree_join.h"       // IWYU pragma: export

// Query service: wire protocol, TCP server, index registry, client.
#include "service/client.h"    // IWYU pragma: export
#include "service/protocol.h"  // IWYU pragma: export
#include "service/registry.h"  // IWYU pragma: export
#include "service/server.h"    // IWYU pragma: export

// Workloads.
#include "workload/fft.h"             // IWYU pragma: export
#include "workload/generators.h"      // IWYU pragma: export
#include "workload/image_features.h"  // IWYU pragma: export
#include "workload/profile.h"         // IWYU pragma: export
#include "workload/timeseries.h"      // IWYU pragma: export

#endif  // SIMJOIN_SIMJOIN_H_
