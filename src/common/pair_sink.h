// Result sinks for join algorithms.
//
// Every join in the library reports result pairs through a PairSink so that
// benchmarks can count without materialising, tests can collect and compare
// exact pair sets, and applications can stream results into their own
// processing.  Self-joins emit each unordered pair exactly once in canonical
// (smaller id, larger id) order; A-to-B joins emit (id in A, id in B).

#ifndef SIMJOIN_COMMON_PAIR_SINK_H_
#define SIMJOIN_COMMON_PAIR_SINK_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "common/dataset.h"

namespace simjoin {

/// One result pair of a similarity join.
using IdPair = std::pair<PointId, PointId>;

/// Consumer of join results.
class PairSink {
 public:
  virtual ~PairSink() = default;

  /// Receives one result pair.  Called once per qualifying pair.
  virtual void Emit(PointId a, PointId b) = 0;

  /// Receives a batch of result pairs.  The tiled join hot paths report one
  /// batch per candidate tile, so sinks that override this see one virtual
  /// call per tile instead of one per pair.  The default forwards to Emit.
  virtual void EmitBatch(std::span<const IdPair> pairs) {
    for (const IdPair& p : pairs) Emit(p.first, p.second);
  }
};

/// Counts pairs without storing them; the sink used by benchmarks.
class CountingSink : public PairSink {
 public:
  void Emit(PointId, PointId) override { ++count_; }
  void EmitBatch(std::span<const IdPair> pairs) override {
    count_ += pairs.size();
  }
  uint64_t count() const { return count_; }

 private:
  uint64_t count_ = 0;
};

/// Materialises all pairs; the sink used by tests and small applications.
class VectorSink : public PairSink {
 public:
  void Emit(PointId a, PointId b) override { pairs_.emplace_back(a, b); }
  void EmitBatch(std::span<const IdPair> pairs) override {
    pairs_.insert(pairs_.end(), pairs.begin(), pairs.end());
  }

  const std::vector<IdPair>& pairs() const { return pairs_; }
  std::vector<IdPair>& pairs() { return pairs_; }

  /// Returns the pairs sorted lexicographically — a canonical form for
  /// comparing the output of two algorithms.
  std::vector<IdPair> Sorted() const {
    std::vector<IdPair> out = pairs_;
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  std::vector<IdPair> pairs_;
};

/// Forwards each pair to a user callback.
class CallbackSink : public PairSink {
 public:
  using Callback = std::function<void(PointId, PointId)>;
  explicit CallbackSink(Callback cb) : cb_(std::move(cb)) {}
  void Emit(PointId a, PointId b) override { cb_(a, b); }

 private:
  Callback cb_;
};

/// Buffering adapter in front of another sink: accumulates pairs (from Emit
/// or EmitBatch) and forwards them as one EmitBatch on the target per full
/// buffer, so join inner loops pay one virtual call per buffer instead of
/// one per pair.  Owners must call Flush() (or destroy the adapter) before
/// reading results from the target.
class BufferedSink : public PairSink {
 public:
  static constexpr size_t kDefaultCapacity = 256;

  explicit BufferedSink(PairSink* target, size_t capacity = kDefaultCapacity)
      : target_(target), capacity_(capacity == 0 ? 1 : capacity) {
    buffer_.reserve(capacity_);
  }
  BufferedSink(const BufferedSink&) = default;
  BufferedSink& operator=(const BufferedSink&) = delete;
  ~BufferedSink() override { Flush(); }

  void Emit(PointId a, PointId b) override {
    buffer_.emplace_back(a, b);
    if (buffer_.size() >= capacity_) Flush();
  }

  void EmitBatch(std::span<const IdPair> pairs) override {
    buffer_.insert(buffer_.end(), pairs.begin(), pairs.end());
    if (buffer_.size() >= capacity_) Flush();
  }

  /// Forwards everything buffered so far to the target sink.
  void Flush() {
    if (buffer_.empty()) return;
    target_->EmitBatch(std::span<const IdPair>(buffer_));
    buffer_.clear();
  }

 private:
  PairSink* target_;
  size_t capacity_;
  std::vector<IdPair> buffer_;
};

/// Work counters filled in by join algorithms; all fields are best-effort
/// and additive so parallel workers can merge them.
struct JoinStats {
  uint64_t candidate_pairs = 0;   ///< pairs reaching the distance test
  uint64_t distance_calls = 0;    ///< full or early-exit distance evaluations
  uint64_t node_pairs_visited = 0;  ///< tree-traversal node pairs considered
  uint64_t node_pairs_pruned = 0;   ///< node pairs cut by bbox/stripe pruning
  uint64_t pairs_emitted = 0;     ///< qualifying result pairs
  uint64_t simd_batches = 0;      ///< batch-kernel invocations on a SIMD path
  uint64_t scalar_fallbacks = 0;  ///< candidates decided by the exact scalar kernel

  void Merge(const JoinStats& other) {
    candidate_pairs += other.candidate_pairs;
    distance_calls += other.distance_calls;
    node_pairs_visited += other.node_pairs_visited;
    node_pairs_pruned += other.node_pairs_pruned;
    pairs_emitted += other.pairs_emitted;
    simd_batches += other.simd_batches;
    scalar_fallbacks += other.scalar_fallbacks;
  }
};

}  // namespace simjoin

#endif  // SIMJOIN_COMMON_PAIR_SINK_H_
