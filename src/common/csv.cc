#include "common/csv.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

namespace simjoin {

Status WriteCsv(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open for writing: " + path + " (" +
                           std::strerror(errno) + ")");
  }
  out.precision(9);
  const size_t n = dataset.size();
  const size_t d = dataset.dims();
  for (size_t i = 0; i < n; ++i) {
    const float* row = dataset.Row(static_cast<PointId>(i));
    for (size_t j = 0; j < d; ++j) {
      if (j > 0) out << ',';
      out << row[j];
    }
    out << '\n';
  }
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<Dataset> ReadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open for reading: " + path + " (" +
                           std::strerror(errno) + ")");
  }
  Dataset ds;
  std::string line;
  std::vector<float> row;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    row.clear();
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) {
      try {
        size_t consumed = 0;
        const float v = std::stof(cell, &consumed);
        // Allow trailing whitespace only.
        for (size_t k = consumed; k < cell.size(); ++k) {
          if (!std::isspace(static_cast<unsigned char>(cell[k]))) {
            return Status::InvalidArgument("non-numeric cell '" + cell +
                                           "' at line " + std::to_string(line_no));
          }
        }
        row.push_back(v);
      } catch (const std::exception&) {
        return Status::InvalidArgument("non-numeric cell '" + cell +
                                       "' at line " + std::to_string(line_no));
      }
    }
    if (row.empty()) continue;
    if (ds.dims() != 0 && row.size() != ds.dims()) {
      return Status::InvalidArgument(
          "ragged CSV: line " + std::to_string(line_no) + " has " +
          std::to_string(row.size()) + " cells, expected " +
          std::to_string(ds.dims()));
    }
    ds.Append(row);
  }
  if (ds.empty()) return Status::InvalidArgument("CSV contains no rows: " + path);
  return ds;
}

}  // namespace simjoin
