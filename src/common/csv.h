// Minimal CSV persistence for datasets — enough to round-trip generated
// workloads and to let examples load user data.

#ifndef SIMJOIN_COMMON_CSV_H_
#define SIMJOIN_COMMON_CSV_H_

#include <string>

#include "common/dataset.h"
#include "common/status.h"

namespace simjoin {

/// Writes one point per line, coordinates comma-separated, no header.
Status WriteCsv(const Dataset& dataset, const std::string& path);

/// Reads a headerless numeric CSV; every row must have the same arity.
Result<Dataset> ReadCsv(const std::string& path);

}  // namespace simjoin

#endif  // SIMJOIN_COMMON_CSV_H_
