// Dense symmetric eigendecomposition via the cyclic Jacobi rotation method.
//
// Small-matrix substrate for dataset profiling (covariance spectra, the
// effective-dimensionality estimate that drives the join planner).  Jacobi
// is slow for large n but simple, numerically robust, and exact enough for
// the d <= ~128 covariance matrices this library meets.

#ifndef SIMJOIN_COMMON_EIGEN_H_
#define SIMJOIN_COMMON_EIGEN_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace simjoin {

/// Eigenvalues (descending) and matching orthonormal eigenvectors
/// (vectors[i*n .. i*n+n) is the eigenvector of values[i]).
struct EigenDecomposition {
  std::vector<double> values;
  std::vector<double> vectors;  ///< row-major, one eigenvector per row
  size_t n = 0;
};

/// Decomposes a symmetric n x n matrix (row-major).  Fails if the matrix is
/// empty, not square, or not symmetric within `symmetry_tolerance`.
Result<EigenDecomposition> JacobiEigenSymmetric(
    const std::vector<double>& matrix, size_t n,
    double symmetry_tolerance = 1e-9);

/// Row-major covariance matrix (dims x dims) of a flat row-major sample
/// collection; divisor is the population size n.
std::vector<double> CovarianceMatrix(const std::vector<double>& flat, size_t n,
                                     size_t dims);

}  // namespace simjoin

#endif  // SIMJOIN_COMMON_EIGEN_H_
