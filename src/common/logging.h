// Minimal logging and assertion facility for the simjoin library.
//
// Provides leveled logging (SIMJOIN_LOG) and fatal-on-failure invariants
// (SIMJOIN_CHECK family).  Checks are enabled in all build types: the library
// is a research artifact and silent invariant violations would invalidate
// experimental results, which is worse than the (negligible) branch cost.

#ifndef SIMJOIN_COMMON_LOGGING_H_
#define SIMJOIN_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace simjoin {

/// Severity for log messages.  kFatal messages abort the process after
/// printing; everything else is advisory.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

namespace internal {

/// Returns the minimum level that will actually be emitted.  Controlled by
/// the SIMJOIN_LOG_LEVEL environment variable (0..4, default 1 = info).
LogLevel MinLogLevel();

/// Allows tests to override the minimum level without touching the
/// environment.  Pass a negative value to restore environment control.
void SetMinLogLevelForTesting(int level);

/// Stream-style log sink.  Instantiated by the SIMJOIN_LOG macro; the
/// destructor flushes the accumulated message (and aborts for kFatal).
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Discards everything streamed into it; used when a message is compiled in
/// but filtered out at runtime.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal

/// Human-readable name for a log level ("DEBUG", "INFO", ...).
const char* LogLevelName(LogLevel level);

#define SIMJOIN_LOG(level)                                                  \
  ::simjoin::internal::LogMessage(::simjoin::LogLevel::k##level, __FILE__, \
                                  __LINE__)                                 \
      .stream()

// Fatal invariant checks.  SIMJOIN_CHECK(cond) aborts with a diagnostic when
// cond is false; the binary comparison forms print both operand values.
#define SIMJOIN_CHECK(cond)                                             \
  if (!(cond))                                                          \
  ::simjoin::internal::LogMessage(::simjoin::LogLevel::kFatal, __FILE__, \
                                  __LINE__)                             \
          .stream()                                                     \
      << "Check failed: " #cond " "

#define SIMJOIN_CHECK_OP(op, a, b)                                       \
  if (!((a)op(b)))                                                       \
  ::simjoin::internal::LogMessage(::simjoin::LogLevel::kFatal, __FILE__, \
                                  __LINE__)                              \
          .stream()                                                      \
      << "Check failed: " #a " " #op " " #b " (" << (a) << " vs " << (b) \
      << ") "

#define SIMJOIN_CHECK_EQ(a, b) SIMJOIN_CHECK_OP(==, a, b)
#define SIMJOIN_CHECK_NE(a, b) SIMJOIN_CHECK_OP(!=, a, b)
#define SIMJOIN_CHECK_LT(a, b) SIMJOIN_CHECK_OP(<, a, b)
#define SIMJOIN_CHECK_LE(a, b) SIMJOIN_CHECK_OP(<=, a, b)
#define SIMJOIN_CHECK_GT(a, b) SIMJOIN_CHECK_OP(>, a, b)
#define SIMJOIN_CHECK_GE(a, b) SIMJOIN_CHECK_OP(>=, a, b)

}  // namespace simjoin

#endif  // SIMJOIN_COMMON_LOGGING_H_
