// Thin Status-returning wrappers over POSIX TCP sockets — the substrate for
// the similarity-join query service (src/service/).  Nothing here knows
// about frames or protocols: TcpSocket moves bytes, TcpListener accepts
// connections, WakePipe lets another thread interrupt a poll() loop.
//
// Blocking helpers (Connect/SendAll/RecvAll) serve the synchronous client;
// the non-blocking pair (RecvSome/SendSome) serves the server's poll loops,
// where "would block" is a normal outcome, not an error.  All sends suppress
// SIGPIPE (MSG_NOSIGNAL), so a peer hanging up surfaces as a Status, never a
// signal.

#ifndef SIMJOIN_COMMON_NET_H_
#define SIMJOIN_COMMON_NET_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace simjoin {

/// Movable owner of one connected TCP socket.
class TcpSocket {
 public:
  TcpSocket() = default;
  /// Takes ownership of an already-open descriptor.
  explicit TcpSocket(int fd) : fd_(fd) {}
  ~TcpSocket() { Close(); }

  TcpSocket(TcpSocket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  TcpSocket& operator=(TcpSocket&& other) noexcept;
  TcpSocket(const TcpSocket&) = delete;
  TcpSocket& operator=(const TcpSocket&) = delete;

  /// Blocking connect to host:port (host is a dotted-quad or "localhost").
  /// The returned socket has TCP_NODELAY set: the wire protocol is
  /// request/response and Nagle would serialise round-trips.
  static Result<TcpSocket> Connect(const std::string& host, uint16_t port);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Blocking: sends the whole buffer (retrying on EINTR / partial sends).
  Status SendAll(const void* data, size_t len);

  /// Blocking: reads exactly len bytes.  A clean peer close mid-read is an
  /// IoError ("connection closed"), since callers ask for framed data.
  Status RecvAll(void* data, size_t len);

  /// Non-blocking read of up to cap bytes.  On success *n is the byte count
  /// (0 together with *eof == false means the read would block) and *eof
  /// reports an orderly peer close.  Requires SetNonBlocking(true).
  Status RecvSome(void* data, size_t cap, size_t* n, bool* eof);

  /// Non-blocking write of up to len bytes; *sent receives how many were
  /// accepted (possibly 0 when the send buffer is full).
  Status SendSome(const void* data, size_t len, size_t* sent);

  Status SetNonBlocking(bool on);
  Status SetNoDelay(bool on);

  void Close();

 private:
  int fd_ = -1;
};

/// Listening TCP socket bound to one address.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener() { Close(); }
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds and listens on host:port.  port 0 picks an ephemeral port;
  /// the bound port is available from port() afterwards.  The listener is
  /// non-blocking so Accept can be driven from a poll loop.
  Status Listen(const std::string& host, uint16_t port, int backlog = 128);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  /// Port actually bound (resolves ephemeral port 0).
  uint16_t port() const { return port_; }

  /// Accepts one pending connection, returned non-blocking with
  /// TCP_NODELAY set.  When no connection is pending (the listener is
  /// non-blocking) returns an invalid socket with OK status.
  Result<TcpSocket> Accept();

  void Close();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

/// Self-pipe that wakes a poll() loop from another thread: poll the
/// read_fd() for POLLIN, Notify() from anywhere, Drain() before re-polling.
class WakePipe {
 public:
  WakePipe() = default;
  ~WakePipe() { Close(); }
  WakePipe(const WakePipe&) = delete;
  WakePipe& operator=(const WakePipe&) = delete;

  Status Open();
  int read_fd() const { return fds_[0]; }

  /// Makes the read end readable.  Non-blocking and coalescing: notifying
  /// an already-signalled pipe is a no-op, so callers can Notify freely.
  void Notify();

  /// Consumes every pending notification byte.
  void Drain();

  void Close();

 private:
  int fds_[2] = {-1, -1};
};

}  // namespace simjoin

#endif  // SIMJOIN_COMMON_NET_H_
