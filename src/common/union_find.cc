#include "common/union_find.h"

#include "common/logging.h"

namespace simjoin {

UnionFind::UnionFind(size_t n)
    : parent_(n), size_(n, 1), components_(n) {
  for (size_t i = 0; i < n; ++i) parent_[i] = static_cast<uint32_t>(i);
}

size_t UnionFind::Find(size_t x) {
  SIMJOIN_CHECK_LT(x, parent_.size());
  // Iterative two-pass path compression.
  size_t root = x;
  while (parent_[root] != root) root = parent_[root];
  while (parent_[x] != root) {
    const size_t next = parent_[x];
    parent_[x] = static_cast<uint32_t>(root);
    x = next;
  }
  return root;
}

bool UnionFind::Union(size_t a, size_t b) {
  size_t ra = Find(a);
  size_t rb = Find(b);
  if (ra == rb) return false;
  if (size_[ra] < size_[rb]) std::swap(ra, rb);
  parent_[rb] = static_cast<uint32_t>(ra);
  size_[ra] += size_[rb];
  --components_;
  return true;
}

size_t UnionFind::ComponentSize(size_t x) { return size_[Find(x)]; }

std::vector<uint32_t> UnionFind::DenseLabels() {
  std::vector<uint32_t> labels(parent_.size());
  std::vector<uint32_t> root_to_label(parent_.size(), UINT32_MAX);
  uint32_t next = 0;
  for (size_t i = 0; i < parent_.size(); ++i) {
    const size_t root = Find(i);
    if (root_to_label[root] == UINT32_MAX) root_to_label[root] = next++;
    labels[i] = root_to_label[root];
  }
  return labels;
}

}  // namespace simjoin
