// L_p distance kernels with early-exit threshold tests.
//
// Every join algorithm in the library expresses its final filter as
// "dist_p(a, b) <= eps".  The kernels here provide (1) full distances for
// reporting, and (2) WithinEpsilon tests that abandon the accumulation as
// soon as the partial distance already exceeds the threshold — the classic
// database trick that makes brute force and candidate verification several
// times faster at selective thresholds.

#ifndef SIMJOIN_COMMON_METRIC_H_
#define SIMJOIN_COMMON_METRIC_H_

#include <cstddef>
#include <string>

#include "common/status.h"

namespace simjoin {

/// Supported distance metrics.
enum class Metric : int {
  kL1 = 1,    ///< Manhattan distance.
  kL2 = 2,    ///< Euclidean distance.
  kLinf = 0,  ///< Chebyshev (maximum-coordinate) distance.
};

/// Short lowercase name ("l1", "l2", "linf").
const char* MetricName(Metric metric);

/// Parses a metric name produced by MetricName (case-insensitive).
Result<Metric> ParseMetric(const std::string& name);

/// Full L1 distance.
double L1Distance(const float* a, const float* b, size_t dims);
/// Full squared L2 distance (callers compare against eps^2).
double L2DistanceSquared(const float* a, const float* b, size_t dims);
/// Full L2 distance.
double L2Distance(const float* a, const float* b, size_t dims);
/// Full L-infinity distance.
double LinfDistance(const float* a, const float* b, size_t dims);

/// Stateless dispatcher bound to one metric; the hot-path object passed to
/// all join algorithms.
class DistanceKernel {
 public:
  explicit DistanceKernel(Metric metric) : metric_(metric) {}

  Metric metric() const { return metric_; }

  /// Full distance between two points.
  double Distance(const float* a, const float* b, size_t dims) const;

  /// True iff dist(a, b) <= eps, abandoning early when possible.
  bool WithinEpsilon(const float* a, const float* b, size_t dims,
                     double eps) const;

  /// Number of coordinate comparisons the last-resort full scan would do;
  /// exposed for micro-benchmarks only.
  static constexpr size_t kUnrollWidth = 4;

 private:
  Metric metric_;
};

}  // namespace simjoin

#endif  // SIMJOIN_COMMON_METRIC_H_
