#include "common/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace simjoin {

Result<EigenDecomposition> JacobiEigenSymmetric(
    const std::vector<double>& matrix, size_t n, double symmetry_tolerance) {
  if (n == 0 || matrix.size() != n * n) {
    return Status::InvalidArgument("matrix must be non-empty and square");
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (std::fabs(matrix[i * n + j] - matrix[j * n + i]) >
          symmetry_tolerance) {
        return Status::InvalidArgument("matrix is not symmetric");
      }
    }
  }

  // Work on a copy A; V accumulates the rotations (initially identity).
  std::vector<double> a = matrix;
  std::vector<double> v(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) v[i * n + i] = 1.0;

  const size_t max_sweeps = 100;
  const double tol = 1e-24;
  for (size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    // Sum of squares of off-diagonal elements.
    double off = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) off += a[i * n + j] * a[i * n + j];
    }
    if (off <= tol) break;

    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const double apq = a[p * n + q];
        if (std::fabs(apq) < 1e-300) continue;
        const double app = a[p * n + p];
        const double aqq = a[q * n + q];
        const double theta = (aqq - app) / (2.0 * apq);
        // tan of the rotation angle, the stable small-angle root.
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        // Apply the rotation to A (rows/cols p and q).
        for (size_t k = 0; k < n; ++k) {
          const double akp = a[k * n + p];
          const double akq = a[k * n + q];
          a[k * n + p] = c * akp - s * akq;
          a[k * n + q] = s * akp + c * akq;
        }
        for (size_t k = 0; k < n; ++k) {
          const double apk = a[p * n + k];
          const double aqk = a[q * n + k];
          a[p * n + k] = c * apk - s * aqk;
          a[q * n + k] = s * apk + c * aqk;
        }
        // Accumulate into V.
        for (size_t k = 0; k < n; ++k) {
          const double vpk = v[p * n + k];
          const double vqk = v[q * n + k];
          v[p * n + k] = c * vpk - s * vqk;
          v[q * n + k] = s * vpk + c * vqk;
        }
      }
    }
  }

  // Extract and sort by descending eigenvalue.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&a, n](size_t x, size_t y) {
    return a[x * n + x] > a[y * n + y];
  });

  EigenDecomposition out;
  out.n = n;
  out.values.resize(n);
  out.vectors.resize(n * n);
  for (size_t r = 0; r < n; ++r) {
    const size_t src = order[r];
    out.values[r] = a[src * n + src];
    for (size_t k = 0; k < n; ++k) out.vectors[r * n + k] = v[src * n + k];
  }
  return out;
}

std::vector<double> CovarianceMatrix(const std::vector<double>& flat, size_t n,
                                     size_t dims) {
  std::vector<double> mean(dims, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t d = 0; d < dims; ++d) mean[d] += flat[i * dims + d];
  }
  for (auto& m : mean) m /= static_cast<double>(n);

  std::vector<double> cov(dims * dims, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t d1 = 0; d1 < dims; ++d1) {
      const double c1 = flat[i * dims + d1] - mean[d1];
      for (size_t d2 = d1; d2 < dims; ++d2) {
        cov[d1 * dims + d2] += c1 * (flat[i * dims + d2] - mean[d2]);
      }
    }
  }
  const double inv = n > 0 ? 1.0 / static_cast<double>(n) : 0.0;
  for (size_t d1 = 0; d1 < dims; ++d1) {
    for (size_t d2 = d1; d2 < dims; ++d2) {
      cov[d1 * dims + d2] *= inv;
      cov[d2 * dims + d1] = cov[d1 * dims + d2];
    }
  }
  return cov;
}

}  // namespace simjoin
