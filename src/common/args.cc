#include "common/args.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace simjoin {

ArgParser::ArgParser(std::string program_description)
    : description_(std::move(program_description)) {}

void ArgParser::AddFlag(const std::string& name, const std::string& default_value,
                        const std::string& help) {
  SIMJOIN_CHECK(!flags_.count(name)) << "duplicate flag --" << name;
  flags_[name] = Flag{default_value, default_value, help};
}

Status ArgParser::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    const size_t eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
    } else {
      if (i + 1 >= argc) {
        return Status::InvalidArgument("flag --" + name + " is missing a value");
      }
      value = argv[++i];
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag --" + name + "\n" + Help());
    }
    it->second.value = std::move(value);
  }
  return Status::OK();
}

std::string ArgParser::Help() const {
  std::ostringstream os;
  os << description_ << "\n\nFlags:\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name << " (default: " << flag.default_value << ")\n      "
       << flag.help << "\n";
  }
  return os.str();
}

const ArgParser::Flag& ArgParser::Find(const std::string& name) const {
  auto it = flags_.find(name);
  SIMJOIN_CHECK(it != flags_.end()) << "flag --" << name << " was not declared";
  return it->second;
}

std::string ArgParser::GetString(const std::string& name) const {
  return Find(name).value;
}

int64_t ArgParser::GetInt(const std::string& name) const {
  const std::string& v = Find(name).value;
  size_t used = 0;
  int64_t out = 0;
  try {
    out = std::stoll(v, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  SIMJOIN_CHECK(!v.empty() && used == v.size())
      << "flag --" << name << " expects an integer, got '" << v << "'";
  return out;
}

double ArgParser::GetDouble(const std::string& name) const {
  const std::string& v = Find(name).value;
  size_t used = 0;
  double out = 0;
  try {
    out = std::stod(v, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  SIMJOIN_CHECK(!v.empty() && used == v.size())
      << "flag --" << name << " expects a number, got '" << v << "'";
  return out;
}

bool ArgParser::GetBool(const std::string& name) const {
  std::string v = Find(name).value;
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

}  // namespace simjoin
