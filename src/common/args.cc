#include "common/args.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace simjoin {

ArgParser::ArgParser(std::string program_description)
    : description_(std::move(program_description)) {}

void ArgParser::AddFlag(const std::string& name, const std::string& default_value,
                        const std::string& help) {
  SIMJOIN_CHECK(!flags_.count(name)) << "duplicate flag --" << name;
  flags_[name] = Flag{default_value, default_value, help, /*is_bool=*/false};
}

void ArgParser::AddBoolFlag(const std::string& name, bool default_value,
                            const std::string& help) {
  SIMJOIN_CHECK(!flags_.count(name)) << "duplicate flag --" << name;
  const std::string def = default_value ? "true" : "false";
  flags_[name] = Flag{def, def, help, /*is_bool=*/true};
}

Status ArgParser::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool have_value = false;
    const size_t eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      have_value = true;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag --" + name + "\n" + Help());
    }
    if (!have_value) {
      if (it->second.is_bool) {
        value = "true";  // bare boolean; never consumes the next token
      } else {
        if (i + 1 >= argc) {
          return Status::InvalidArgument("flag --" + name +
                                         " is missing a value");
        }
        value = argv[++i];
      }
    }
    it->second.value = std::move(value);
  }
  return Status::OK();
}

std::string ArgParser::Help() const {
  std::ostringstream os;
  os << description_ << "\n\nFlags:\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name << " (default: " << flag.default_value << ")\n      "
       << flag.help << "\n";
  }
  return os.str();
}

const ArgParser::Flag& ArgParser::Find(const std::string& name) const {
  auto it = flags_.find(name);
  SIMJOIN_CHECK(it != flags_.end()) << "flag --" << name << " was not declared";
  return it->second;
}

std::string ArgParser::GetString(const std::string& name) const {
  return Find(name).value;
}

int64_t ArgParser::GetInt(const std::string& name) const {
  const std::string& v = Find(name).value;
  size_t used = 0;
  int64_t out = 0;
  try {
    out = std::stoll(v, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  SIMJOIN_CHECK(!v.empty() && used == v.size())
      << "flag --" << name << " expects an integer, got '" << v << "'";
  return out;
}

double ArgParser::GetDouble(const std::string& name) const {
  const std::string& v = Find(name).value;
  size_t used = 0;
  double out = 0;
  try {
    out = std::stod(v, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  SIMJOIN_CHECK(!v.empty() && used == v.size())
      << "flag --" << name << " expects a number, got '" << v << "'";
  return out;
}

bool ArgParser::GetBool(const std::string& name) const {
  std::string v = Find(name).value;
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

}  // namespace simjoin
