#include "common/logging.h"

#include <atomic>
#include <cstdlib>

namespace simjoin {
namespace internal {
namespace {

std::atomic<int> g_test_override{-1};

LogLevel LevelFromEnv() {
  const char* env = std::getenv("SIMJOIN_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kInfo;
  const int v = std::atoi(env);
  if (v < 0) return LogLevel::kDebug;
  if (v > 4) return LogLevel::kFatal;
  return static_cast<LogLevel>(v);
}

}  // namespace

LogLevel MinLogLevel() {
  const int override_level = g_test_override.load(std::memory_order_relaxed);
  if (override_level >= 0) return static_cast<LogLevel>(override_level);
  static const LogLevel cached = LevelFromEnv();
  return cached;
}

void SetMinLogLevelForTesting(int level) {
  g_test_override.store(level, std::memory_order_relaxed);
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LogLevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= MinLogLevel() || level_ == LogLevel::kFatal) {
    std::cerr << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "UNKNOWN";
}

}  // namespace simjoin
