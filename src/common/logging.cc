#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>

namespace simjoin {
namespace internal {
namespace {

std::atomic<int> g_test_override{-1};

/// ISO-8601 UTC wall time with millisecond precision, e.g.
/// "2026-08-06T12:34:56.789Z".  Uses gmtime_r so concurrent loggers never
/// share libc's static tm buffer.
std::string WallTimeIso8601() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(ms));
  return buf;
}

/// Short per-thread tag ("t00".."t99", wrapping) so interleaved lines from a
/// pool run can be attributed without printing full thread ids.
uint32_t ThreadTag() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t tag =
      next.fetch_add(1, std::memory_order_relaxed) % 100;
  return tag;
}

LogLevel LevelFromEnv() {
  const char* env = std::getenv("SIMJOIN_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kInfo;
  const int v = std::atoi(env);
  if (v < 0) return LogLevel::kDebug;
  if (v > 4) return LogLevel::kFatal;
  return static_cast<LogLevel>(v);
}

}  // namespace

LogLevel MinLogLevel() {
  const int override_level = g_test_override.load(std::memory_order_relaxed);
  if (override_level >= 0) return static_cast<LogLevel>(override_level);
  static const LogLevel cached = LevelFromEnv();
  return cached;
}

void SetMinLogLevelForTesting(int level) {
  g_test_override.store(level, std::memory_order_relaxed);
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  char tag[8];
  std::snprintf(tag, sizeof(tag), "t%02u", ThreadTag());
  stream_ << "[" << WallTimeIso8601() << " " << tag << " "
          << LogLevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= MinLogLevel() || level_ == LogLevel::kFatal) {
    std::cerr << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "UNKNOWN";
}

}  // namespace simjoin
