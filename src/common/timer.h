// Wall-clock timing utilities for the benchmark harness and examples.

#ifndef SIMJOIN_COMMON_TIMER_H_
#define SIMJOIN_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>
#include <string>

namespace simjoin {

/// Monotonic stopwatch.  Starts running on construction.
class Timer {
 public:
  Timer() { Restart(); }

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Formats a duration in seconds as a short human-readable string
/// ("731 us", "42.1 ms", "3.52 s").
std::string FormatSeconds(double seconds);

/// Formats a byte count as a short human-readable string ("1.5 MiB").
std::string FormatBytes(uint64_t bytes);

/// Formats a count with thousands separators ("1,234,567").
std::string FormatCount(uint64_t count);

}  // namespace simjoin

#endif  // SIMJOIN_COMMON_TIMER_H_
