// Dataset: the in-memory point collection every algorithm in the library
// operates on.  Points are rows of a dense row-major float matrix; a point
// is identified by its row index (PointId).  Row-major layout keeps one
// point's coordinates contiguous, which is what the distance kernels and the
// eps-k-d-B tree leaf sweeps want.

#ifndef SIMJOIN_COMMON_DATASET_H_
#define SIMJOIN_COMMON_DATASET_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"

namespace simjoin {

/// Identifier of a point within a Dataset (its row index).
using PointId = uint32_t;

/// Dense row-major collection of d-dimensional float points.
///
/// Two storage modes share one read interface: an *owning* dataset holds its
/// rows in a heap vector (the default everywhere), while a *borrowed*
/// dataset is a zero-copy view over caller-owned storage — typically the
/// dataset section of a memory-mapped index segment (core/segment.h).
/// Borrowed datasets are strictly read-only: every mutating operation
/// check-fails, so an index served straight off a mapping can never be
/// normalised or appended to by accident.
class Dataset {
 public:
  /// Empty dataset with zero dimensions; Reset() before use.
  Dataset() = default;

  /// n points of dimensionality dims, zero-initialised.
  Dataset(size_t n, size_t dims);

  /// Builds a dataset from a flat row-major buffer.  Fails if the buffer
  /// length is not a multiple of dims or dims is zero.
  static Result<Dataset> FromFlat(std::vector<float> values, size_t dims);

  /// Read-only view over caller-owned row-major storage (n rows of dims
  /// floats).  The storage must stay alive and unmodified for the lifetime
  /// of the returned dataset (and of anything built over it).
  static Dataset Borrowed(const float* data, size_t n, size_t dims);

  /// True when this dataset views storage it does not own.
  bool borrowed() const { return borrowed_ != nullptr; }

  /// Number of points.
  size_t size() const {
    if (borrowed_ != nullptr) return borrowed_n_;
    return dims_ == 0 ? 0 : values_.size() / dims_;
  }
  /// Dimensionality of each point.
  size_t dims() const { return dims_; }
  bool empty() const { return size() == 0; }

  /// Read-only pointer to the flat row-major storage (both modes).
  const float* data() const {
    return borrowed_ != nullptr ? borrowed_ : values_.data();
  }

  /// Read-only pointer to the coordinates of point id.
  const float* Row(PointId id) const {
    SIMJOIN_CHECK_LT(static_cast<size_t>(id), size());
    return data() + static_cast<size_t>(id) * dims_;
  }

  /// Mutable pointer to the coordinates of point id (owning datasets only).
  float* MutableRow(PointId id) {
    SIMJOIN_CHECK(!borrowed()) << "borrowed datasets are read-only";
    SIMJOIN_CHECK_LT(static_cast<size_t>(id), size());
    return values_.data() + static_cast<size_t>(id) * dims_;
  }

  /// Read-only view of the coordinates of point id.
  std::span<const float> RowSpan(PointId id) const {
    return std::span<const float>(Row(id), dims_);
  }

  /// Appends one point; the span length must equal dims() (or, for an empty
  /// dataset with unset dims, defines the dimensionality).
  void Append(std::span<const float> row);

  /// Drops all points but keeps the dimensionality.
  void Clear() {
    SIMJOIN_CHECK(!borrowed()) << "borrowed datasets are read-only";
    values_.clear();
  }

  /// Drops all but the first n points (owning datasets only).
  void Truncate(size_t n) {
    SIMJOIN_CHECK(!borrowed()) << "borrowed datasets are read-only";
    SIMJOIN_CHECK_LE(n, size());
    values_.resize(n * dims_);
  }

  /// Reinitialises to n zero points of the given dimensionality.
  void Reset(size_t n, size_t dims);

  /// New dataset holding copies of the given rows, in the given order
  /// (duplicates allowed).
  Dataset Select(std::span<const PointId> ids) const;

  /// Appends every row of other; dimensionalities must match (or this
  /// dataset must be empty with unset dims).
  void Concat(const Dataset& other);

  /// Raw flat row-major storage (owning datasets only; borrowed views have
  /// no vector to hand out — use data()/size()/dims()).
  const std::vector<float>& flat() const {
    SIMJOIN_CHECK(!borrowed()) << "borrowed datasets have no flat() vector";
    return values_;
  }

  /// Coordinate-wise minimum over all points; empty if the dataset is empty.
  std::vector<float> ColumnMin() const;
  /// Coordinate-wise maximum over all points; empty if the dataset is empty.
  std::vector<float> ColumnMax() const;

  /// Affinely rescales every column to [0, 1] in place (columns with zero
  /// spread map to 0.5).  Returns the per-column (min, max) used, so callers
  /// can map query points or epsilon into the normalised space.
  struct NormalizationInfo {
    std::vector<float> min;
    std::vector<float> max;
  };
  NormalizationInfo NormalizeToUnitCube();

  /// True if every coordinate lies within [lo, hi].
  bool AllWithin(float lo, float hi) const;

  /// Approximate heap footprint in bytes.  Borrowed views own no rows, so
  /// they report only the object itself — a mapped dataset's bytes are the
  /// page cache's to account, not the heap's.
  uint64_t MemoryUsageBytes() const;

 private:
  size_t dims_ = 0;
  std::vector<float> values_;
  const float* borrowed_ = nullptr;  ///< non-null = read-only view
  size_t borrowed_n_ = 0;
};

}  // namespace simjoin

#endif  // SIMJOIN_COMMON_DATASET_H_
