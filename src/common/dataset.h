// Dataset: the in-memory point collection every algorithm in the library
// operates on.  Points are rows of a dense row-major float matrix; a point
// is identified by its row index (PointId).  Row-major layout keeps one
// point's coordinates contiguous, which is what the distance kernels and the
// eps-k-d-B tree leaf sweeps want.

#ifndef SIMJOIN_COMMON_DATASET_H_
#define SIMJOIN_COMMON_DATASET_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"

namespace simjoin {

/// Identifier of a point within a Dataset (its row index).
using PointId = uint32_t;

/// Dense row-major collection of d-dimensional float points.
class Dataset {
 public:
  /// Empty dataset with zero dimensions; Reset() before use.
  Dataset() = default;

  /// n points of dimensionality dims, zero-initialised.
  Dataset(size_t n, size_t dims);

  /// Builds a dataset from a flat row-major buffer.  Fails if the buffer
  /// length is not a multiple of dims or dims is zero.
  static Result<Dataset> FromFlat(std::vector<float> values, size_t dims);

  /// Number of points.
  size_t size() const { return dims_ == 0 ? 0 : values_.size() / dims_; }
  /// Dimensionality of each point.
  size_t dims() const { return dims_; }
  bool empty() const { return values_.empty(); }

  /// Read-only pointer to the coordinates of point id.
  const float* Row(PointId id) const {
    SIMJOIN_CHECK_LT(static_cast<size_t>(id), size());
    return values_.data() + static_cast<size_t>(id) * dims_;
  }

  /// Mutable pointer to the coordinates of point id.
  float* MutableRow(PointId id) {
    SIMJOIN_CHECK_LT(static_cast<size_t>(id), size());
    return values_.data() + static_cast<size_t>(id) * dims_;
  }

  /// Read-only view of the coordinates of point id.
  std::span<const float> RowSpan(PointId id) const {
    return std::span<const float>(Row(id), dims_);
  }

  /// Appends one point; the span length must equal dims() (or, for an empty
  /// dataset with unset dims, defines the dimensionality).
  void Append(std::span<const float> row);

  /// Drops all points but keeps the dimensionality.
  void Clear() { values_.clear(); }

  /// Reinitialises to n zero points of the given dimensionality.
  void Reset(size_t n, size_t dims);

  /// New dataset holding copies of the given rows, in the given order
  /// (duplicates allowed).
  Dataset Select(std::span<const PointId> ids) const;

  /// Appends every row of other; dimensionalities must match (or this
  /// dataset must be empty with unset dims).
  void Concat(const Dataset& other);

  /// Raw flat row-major storage.
  const std::vector<float>& flat() const { return values_; }

  /// Coordinate-wise minimum over all points; empty if the dataset is empty.
  std::vector<float> ColumnMin() const;
  /// Coordinate-wise maximum over all points; empty if the dataset is empty.
  std::vector<float> ColumnMax() const;

  /// Affinely rescales every column to [0, 1] in place (columns with zero
  /// spread map to 0.5).  Returns the per-column (min, max) used, so callers
  /// can map query points or epsilon into the normalised space.
  struct NormalizationInfo {
    std::vector<float> min;
    std::vector<float> max;
  };
  NormalizationInfo NormalizeToUnitCube();

  /// True if every coordinate lies within [lo, hi].
  bool AllWithin(float lo, float hi) const;

  /// Approximate heap footprint in bytes.
  uint64_t MemoryUsageBytes() const;

 private:
  size_t dims_ = 0;
  std::vector<float> values_;
};

}  // namespace simjoin

#endif  // SIMJOIN_COMMON_DATASET_H_
