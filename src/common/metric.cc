#include "common/metric.h"

#include <algorithm>
#include <cctype>
#include <cmath>

namespace simjoin {

const char* MetricName(Metric metric) {
  switch (metric) {
    case Metric::kL1:
      return "l1";
    case Metric::kL2:
      return "l2";
    case Metric::kLinf:
      return "linf";
  }
  return "unknown";
}

Result<Metric> ParseMetric(const std::string& name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "l1") return Metric::kL1;
  if (lower == "l2") return Metric::kL2;
  if (lower == "linf" || lower == "lmax" || lower == "chebyshev") {
    return Metric::kLinf;
  }
  return Status::InvalidArgument("unknown metric name: " + name);
}

double L1Distance(const float* a, const float* b, size_t dims) {
  double acc = 0.0;
  for (size_t i = 0; i < dims; ++i) acc += std::fabs(static_cast<double>(a[i]) - b[i]);
  return acc;
}

double L2DistanceSquared(const float* a, const float* b, size_t dims) {
  double acc = 0.0;
  for (size_t i = 0; i < dims; ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    acc += d * d;
  }
  return acc;
}

double L2Distance(const float* a, const float* b, size_t dims) {
  return std::sqrt(L2DistanceSquared(a, b, dims));
}

double LinfDistance(const float* a, const float* b, size_t dims) {
  double acc = 0.0;
  for (size_t i = 0; i < dims; ++i) {
    acc = std::max(acc, std::fabs(static_cast<double>(a[i]) - b[i]));
  }
  return acc;
}

double DistanceKernel::Distance(const float* a, const float* b,
                                size_t dims) const {
  switch (metric_) {
    case Metric::kL1:
      return L1Distance(a, b, dims);
    case Metric::kL2:
      return L2Distance(a, b, dims);
    case Metric::kLinf:
      return LinfDistance(a, b, dims);
  }
  return 0.0;
}

bool DistanceKernel::WithinEpsilon(const float* a, const float* b, size_t dims,
                                   double eps) const {
  switch (metric_) {
    case Metric::kL1: {
      double acc = 0.0;
      for (size_t i = 0; i < dims; ++i) {
        acc += std::fabs(static_cast<double>(a[i]) - b[i]);
        if (acc > eps) return false;
      }
      return true;
    }
    case Metric::kL2: {
      const double eps2 = eps * eps;
      double acc = 0.0;
      size_t i = 0;
      // Check the running sum every kUnrollWidth coordinates: frequent
      // enough to bail early, sparse enough not to throttle the FP pipeline.
      for (; i + kUnrollWidth <= dims; i += kUnrollWidth) {
        for (size_t j = 0; j < kUnrollWidth; ++j) {
          const double d = static_cast<double>(a[i + j]) - b[i + j];
          acc += d * d;
        }
        if (acc > eps2) return false;
      }
      for (; i < dims; ++i) {
        const double d = static_cast<double>(a[i]) - b[i];
        acc += d * d;
      }
      return acc <= eps2;
    }
    case Metric::kLinf: {
      for (size_t i = 0; i < dims; ++i) {
        if (std::fabs(static_cast<double>(a[i]) - b[i]) > eps) return false;
      }
      return true;
    }
  }
  return false;
}

}  // namespace simjoin
