#include "common/dataset.h"

#include <algorithm>

namespace simjoin {

Dataset::Dataset(size_t n, size_t dims) : dims_(dims), values_(n * dims, 0.0f) {
  SIMJOIN_CHECK_GT(dims, 0u) << "Dataset dimensionality must be positive";
}

Dataset Dataset::Borrowed(const float* data, size_t n, size_t dims) {
  SIMJOIN_CHECK_GT(dims, 0u) << "Dataset dimensionality must be positive";
  SIMJOIN_CHECK(data != nullptr || n == 0);
  Dataset ds;
  ds.dims_ = dims;
  ds.borrowed_ = data;
  ds.borrowed_n_ = n;
  return ds;
}

Result<Dataset> Dataset::FromFlat(std::vector<float> values, size_t dims) {
  if (dims == 0) {
    return Status::InvalidArgument("Dataset dimensionality must be positive");
  }
  if (values.size() % dims != 0) {
    return Status::InvalidArgument(
        "flat buffer length " + std::to_string(values.size()) +
        " is not a multiple of dims " + std::to_string(dims));
  }
  Dataset ds;
  ds.dims_ = dims;
  ds.values_ = std::move(values);
  return ds;
}

void Dataset::Append(std::span<const float> row) {
  SIMJOIN_CHECK(!borrowed()) << "borrowed datasets are read-only";
  if (dims_ == 0) {
    SIMJOIN_CHECK_GT(row.size(), 0u);
    dims_ = row.size();
  }
  SIMJOIN_CHECK_EQ(row.size(), dims_) << "row dimensionality mismatch";
  values_.insert(values_.end(), row.begin(), row.end());
}

void Dataset::Reset(size_t n, size_t dims) {
  SIMJOIN_CHECK_GT(dims, 0u);
  dims_ = dims;
  borrowed_ = nullptr;
  borrowed_n_ = 0;
  values_.assign(n * dims, 0.0f);
}

Dataset Dataset::Select(std::span<const PointId> ids) const {
  SIMJOIN_CHECK_GT(dims_, 0u);
  Dataset out(ids.size(), dims_);
  for (size_t i = 0; i < ids.size(); ++i) {
    const float* src = Row(ids[i]);
    std::copy(src, src + dims_, out.MutableRow(static_cast<PointId>(i)));
  }
  return out;
}

void Dataset::Concat(const Dataset& other) {
  SIMJOIN_CHECK(!borrowed()) << "borrowed datasets are read-only";
  if (other.empty()) return;
  if (dims_ == 0) {
    dims_ = other.dims_;
  }
  SIMJOIN_CHECK_EQ(dims_, other.dims_) << "Concat dimensionality mismatch";
  const float* src = other.data();
  values_.insert(values_.end(), src, src + other.size() * other.dims_);
}

std::vector<float> Dataset::ColumnMin() const {
  if (empty()) return {};
  std::vector<float> out(Row(0), Row(0) + dims_);
  const size_t n = size();
  for (size_t i = 1; i < n; ++i) {
    const float* row = Row(static_cast<PointId>(i));
    for (size_t j = 0; j < dims_; ++j) out[j] = std::min(out[j], row[j]);
  }
  return out;
}

std::vector<float> Dataset::ColumnMax() const {
  if (empty()) return {};
  std::vector<float> out(Row(0), Row(0) + dims_);
  const size_t n = size();
  for (size_t i = 1; i < n; ++i) {
    const float* row = Row(static_cast<PointId>(i));
    for (size_t j = 0; j < dims_; ++j) out[j] = std::max(out[j], row[j]);
  }
  return out;
}

Dataset::NormalizationInfo Dataset::NormalizeToUnitCube() {
  NormalizationInfo info;
  info.min = ColumnMin();
  info.max = ColumnMax();
  const size_t n = size();
  for (size_t i = 0; i < n; ++i) {
    float* row = MutableRow(static_cast<PointId>(i));
    for (size_t j = 0; j < dims_; ++j) {
      const float span = info.max[j] - info.min[j];
      row[j] = span > 0.0f ? (row[j] - info.min[j]) / span : 0.5f;
    }
  }
  return info;
}

bool Dataset::AllWithin(float lo, float hi) const {
  const float* begin = data();
  const float* end = begin + size() * dims_;
  return std::all_of(begin, end,
                     [lo, hi](float v) { return v >= lo && v <= hi; });
}

uint64_t Dataset::MemoryUsageBytes() const {
  return sizeof(Dataset) + values_.capacity() * sizeof(float);
}

}  // namespace simjoin
