#include "common/binary_io.h"

#include <cerrno>
#include <cstring>
#include <limits>
#include <vector>

namespace simjoin {
namespace {

constexpr uint32_t kMagic = 0x534a4442;  // "SJDB"
constexpr uint32_t kVersion = 1;
// Dimensionality ceiling for deserialised datasets; far beyond anything the
// library handles, but small enough that dims-derived products cannot wrap.
constexpr uint64_t kMaxDims = 1 << 16;

struct Header {
  uint32_t magic;
  uint32_t version;
  uint64_t num_points;
  uint64_t dims;
};

}  // namespace

Status WriteBinaryDataset(const Dataset& dataset, const std::string& path) {
  if (dataset.dims() == 0) {
    return Status::InvalidArgument("cannot serialise a dimensionless dataset");
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open for writing: " + path + " (" +
                           std::strerror(errno) + ")");
  }
  const Header header{kMagic, kVersion, dataset.size(), dataset.dims()};
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));
  out.write(reinterpret_cast<const char*>(dataset.flat().data()),
            static_cast<std::streamsize>(dataset.flat().size() * sizeof(float)));
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<Dataset> ReadBinaryDataset(const std::string& path) {
  BinaryDatasetReader reader;
  SIMJOIN_RETURN_NOT_OK(reader.Open(path));
  Dataset all(reader.total_points(), reader.dims());
  Dataset batch;
  size_t offset = 0;
  while (!reader.AtEnd()) {
    PointId first_id = 0;
    SIMJOIN_RETURN_NOT_OK(reader.ReadBatch(1 << 16, &batch, &first_id));
    for (size_t i = 0; i < batch.size(); ++i) {
      std::memcpy(all.MutableRow(static_cast<PointId>(offset + i)),
                  batch.Row(static_cast<PointId>(i)),
                  reader.dims() * sizeof(float));
    }
    offset += batch.size();
  }
  return all;
}

Status BinaryDatasetReader::Open(const std::string& path) {
  in_.open(path, std::ios::binary);
  if (!in_) {
    return Status::IoError("cannot open for reading: " + path + " (" +
                           std::strerror(errno) + ")");
  }
  Header header{};
  in_.read(reinterpret_cast<char*>(&header), sizeof(header));
  if (!in_ || header.magic != kMagic) {
    return Status::InvalidArgument("not a simjoin binary dataset: " + path);
  }
  if (header.version != kVersion) {
    return Status::InvalidArgument("unsupported binary dataset version " +
                                   std::to_string(header.version));
  }
  if (header.dims == 0) {
    return Status::InvalidArgument("binary dataset has zero dims: " + path);
  }
  if (header.dims > kMaxDims) {
    return Status::InvalidArgument(
        "binary dataset declares " + std::to_string(header.dims) +
        " dims (limit " + std::to_string(kMaxDims) + "): " + path);
  }
  // Validate the declared sizes against the actual file length before any
  // caller allocates num_points * dims floats off them.  The product is
  // computed with an explicit overflow guard: both fields are attacker- or
  // corruption-controlled u64s.
  if (header.num_points > std::numeric_limits<uint64_t>::max() /
                              (header.dims * sizeof(float))) {
    return Status::InvalidArgument("binary dataset size overflows: " + path);
  }
  const uint64_t payload_bytes = header.num_points * header.dims * sizeof(float);
  in_.seekg(0, std::ios::end);
  const std::streamoff end = in_.tellg();
  in_.seekg(static_cast<std::streamoff>(sizeof(header)), std::ios::beg);
  if (!in_ || end < static_cast<std::streamoff>(sizeof(header))) {
    return Status::IoError("cannot determine file size: " + path);
  }
  const uint64_t actual_bytes =
      static_cast<uint64_t>(end) - sizeof(header);
  if (actual_bytes < payload_bytes) {
    return Status::IoError(
        "truncated binary dataset: " + path + " holds " +
        std::to_string(actual_bytes) + " payload bytes but the header " +
        "declares " + std::to_string(payload_bytes));
  }
  if (actual_bytes > payload_bytes) {
    return Status::InvalidArgument(
        "binary dataset has " + std::to_string(actual_bytes - payload_bytes) +
        " trailing bytes beyond the declared points: " + path);
  }
  total_points_ = header.num_points;
  dims_ = header.dims;
  points_read_ = 0;
  return Status::OK();
}

Status BinaryDatasetReader::OpenRaw(const std::string& path,
                                    uint64_t byte_offset, uint64_t num_points,
                                    size_t dims) {
  if (dims == 0 || dims > kMaxDims) {
    return Status::InvalidArgument("raw dataset region dims out of range");
  }
  if (num_points > std::numeric_limits<uint64_t>::max() /
                       (static_cast<uint64_t>(dims) * sizeof(float))) {
    return Status::InvalidArgument("raw dataset region size overflows");
  }
  in_ = std::ifstream();
  in_.open(path, std::ios::binary);
  if (!in_) {
    return Status::IoError("cannot open for reading: " + path + " (" +
                           std::strerror(errno) + ")");
  }
  in_.seekg(0, std::ios::end);
  const std::streamoff end = in_.tellg();
  const uint64_t payload_bytes =
      num_points * static_cast<uint64_t>(dims) * sizeof(float);
  if (!in_ || end < 0 ||
      byte_offset + payload_bytes > static_cast<uint64_t>(end)) {
    return Status::IoError("raw dataset region [" +
                           std::to_string(byte_offset) + ", +" +
                           std::to_string(payload_bytes) +
                           ") extends past end of file: " + path);
  }
  in_.seekg(static_cast<std::streamoff>(byte_offset), std::ios::beg);
  if (!in_) return Status::IoError("cannot seek to raw dataset region");
  total_points_ = num_points;
  dims_ = dims;
  points_read_ = 0;
  return Status::OK();
}

Status BinaryDatasetReader::ReadBatch(size_t max_points, Dataset* batch,
                                      PointId* first_id) {
  if (batch == nullptr || first_id == nullptr) {
    return Status::InvalidArgument("batch and first_id must not be null");
  }
  if (max_points == 0) {
    return Status::InvalidArgument("max_points must be positive");
  }
  const size_t remaining = total_points_ - points_read_;
  const size_t count = std::min(max_points, remaining);
  *first_id = static_cast<PointId>(points_read_);
  batch->Reset(count, dims_);
  if (count == 0) return Status::OK();
  in_.read(reinterpret_cast<char*>(batch->MutableRow(0)),
           static_cast<std::streamsize>(count * dims_ * sizeof(float)));
  if (!in_) return Status::IoError("truncated binary dataset");
  points_read_ += count;
  return Status::OK();
}

}  // namespace simjoin
