#include "common/pca.h"

#include <algorithm>

#include "common/eigen.h"

namespace simjoin {

double PcaModel::ExplainedVarianceRatio() const {
  if (total_variance <= 0.0) return 0.0;
  double kept = 0.0;
  for (double v : eigenvalues) kept += std::max(0.0, v);
  return kept / total_variance;
}

void PcaModel::Project(const float* in, float* out) const {
  for (size_t k = 0; k < output_dims; ++k) {
    const double* row = components.data() + k * input_dims;
    double acc = 0.0;
    for (size_t d = 0; d < input_dims; ++d) {
      acc += row[d] * (static_cast<double>(in[d]) - mean[d]);
    }
    out[k] = static_cast<float>(acc);
  }
}

Result<PcaModel> FitPca(const Dataset& data, size_t k, size_t max_fit_points) {
  if (data.empty()) return Status::InvalidArgument("dataset is empty");
  if (k == 0 || k > data.dims()) {
    return Status::InvalidArgument("k must be in [1, dims]");
  }
  if (max_fit_points == 0) {
    return Status::InvalidArgument("max_fit_points must be positive");
  }
  const size_t dims = data.dims();

  // Strided subsample (deterministic) for the covariance estimate.
  const size_t stride = std::max<size_t>(1, data.size() / max_fit_points);
  std::vector<double> flat;
  size_t rows = 0;
  for (size_t i = 0; i < data.size(); i += stride) {
    const float* row = data.Row(static_cast<PointId>(i));
    for (size_t d = 0; d < dims; ++d) flat.push_back(row[d]);
    ++rows;
  }

  PcaModel model;
  model.input_dims = dims;
  model.output_dims = k;
  model.mean.assign(dims, 0.0);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t d = 0; d < dims; ++d) model.mean[d] += flat[i * dims + d];
  }
  for (auto& m : model.mean) m /= static_cast<double>(rows);

  const std::vector<double> cov = CovarianceMatrix(flat, rows, dims);
  SIMJOIN_ASSIGN_OR_RETURN(auto eigen, JacobiEigenSymmetric(cov, dims));

  model.total_variance = 0.0;
  for (size_t d = 0; d < dims; ++d) {
    model.total_variance += std::max(0.0, cov[d * dims + d]);
  }
  model.eigenvalues.assign(eigen.values.begin(),
                           eigen.values.begin() + static_cast<ptrdiff_t>(k));
  model.components.assign(eigen.vectors.begin(),
                          eigen.vectors.begin() + static_cast<ptrdiff_t>(k * dims));
  return model;
}

Result<Dataset> ProjectDataset(const PcaModel& model, const Dataset& data) {
  if (data.dims() != model.input_dims) {
    return Status::InvalidArgument("dataset dims do not match the PCA model");
  }
  if (data.empty()) return Status::InvalidArgument("dataset is empty");
  Dataset out(data.size(), model.output_dims);
  for (size_t i = 0; i < data.size(); ++i) {
    model.Project(data.Row(static_cast<PointId>(i)),
                  out.MutableRow(static_cast<PointId>(i)));
  }
  return out;
}

}  // namespace simjoin
