// Batched one-vs-many epsilon filters — the vectorized inner layer every
// join hot path is built on.
//
// The scalar DistanceKernel tests one candidate at a time, widening each
// float coordinate to double.  The BatchDistanceKernel here filters a whole
// tile of candidate rows against one query point in a single call, using
// float accumulation (unrolled portable loop, AVX2+FMA, or AVX-512 — the
// widest tier the CPU supports is picked at runtime) compared against the
// threshold in float space.  Exactness is preserved by a rescue band: a
// candidate whose float score lands within the accumulated rounding-error
// margin of the threshold is re-tested with the exact double-precision
// scalar kernel, so the surviving pair set is bit-identical to
// DistanceKernel::WithinEpsilon for every input — on every dispatch tier,
// which is what lets fused execution mix hosts and paths freely.
//
// Set SIMJOIN_FORCE_SCALAR=1 in the environment to route every test through
// the scalar reference kernel, or SIMJOIN_KERNEL_PATH=scalar|portable|avx2|
// avx512 to pin a specific tier (for debugging and differential testing).

#ifndef SIMJOIN_COMMON_SIMD_KERNEL_H_
#define SIMJOIN_COMMON_SIMD_KERNEL_H_

#include <cstddef>
#include <cstdint>

#include "common/metric.h"
#include "common/pair_sink.h"

namespace simjoin {

/// Which filter implementation a BatchDistanceKernel uses.
enum class KernelPath {
  kAuto,      ///< env override, then the best the CPU supports
  kScalar,    ///< per-candidate exact DistanceKernel reference
  kPortable,  ///< unrolled float loop (compiler auto-vectorization)
  kAvx2,      ///< 8-wide AVX2+FMA float loop (falls back if unsupported)
  kAvx512,    ///< 16-wide AVX-512F float loop (falls back if unsupported)
};

/// One-vs-many epsilon filter bound to (metric, dims, eps).
///
/// Stateful only in its work counters, so each join context owns one and
/// folds the counters into its JoinStats when done.
class BatchDistanceKernel {
 public:
  /// Tile width the join hot loops gather candidates into.  32 keeps the
  /// id/pointer/mask arrays inside one cache line each while amortising the
  /// dispatch and mask-compaction overhead over enough distance tests.
  static constexpr size_t kTileCapacity = 32;

  BatchDistanceKernel(Metric metric, size_t dims, double eps,
                      KernelPath preferred = KernelPath::kAuto);

  /// Sets out_mask[i] = 1 iff dist(query, rows[i]) <= eps (0 otherwise) for
  /// i in [0, count).  Returns the number of surviving candidates.  The
  /// result is bit-identical to calling the scalar WithinEpsilon per row.
  size_t FilterWithinEpsilon(const float* query, const float* const* rows,
                             size_t count, uint8_t* out_mask);

  /// Same filter for candidates laid out at a fixed stride: candidate i is
  /// the row at base + i * stride (stride in floats; stride == dims for a
  /// densely packed arena).  The tile is read with straight streaming loads
  /// — no per-candidate pointer gather — and the scoring arithmetic is the
  /// exact code the gathered path runs, so the mask is bit-identical to
  /// FilterWithinEpsilon over the same rows.  If prefetch is non-null the
  /// first cache lines at that address (typically the next tile,
  /// base + count * stride) are software-prefetched before scoring.
  size_t FilterWithinEpsilonStrided(const float* query, const float* base,
                                    size_t stride, size_t count,
                                    uint8_t* out_mask,
                                    const float* prefetch = nullptr);

  /// Counts candidates within eps without producing a mask.
  size_t CountWithinEpsilon(const float* query, const float* const* rows,
                            size_t count);

  /// Narrows the threshold (the eps-k-d-B query-epsilon override path).
  void SetEpsilon(double eps);

  Metric metric() const { return scalar_.metric(); }
  size_t dims() const { return dims_; }
  double epsilon() const { return eps_; }
  /// Path actually selected after CPU detection and env overrides.
  KernelPath path() const { return path_; }

  /// Batch filter invocations that ran on a vector path.
  uint64_t simd_batches() const { return simd_batches_; }
  /// Candidates decided by the exact scalar kernel: boundary-band rescues
  /// plus every test made while the scalar path is forced.
  uint64_t scalar_fallbacks() const { return scalar_fallbacks_; }

  /// True when the CPU reports AVX2 support at runtime.
  static bool CpuHasAvx2();
  /// True when the CPU reports AVX-512F support at runtime.
  static bool CpuHasAvx512();
  /// True when SIMJOIN_FORCE_SCALAR=1 is set in the environment.
  static bool ForceScalarEnv();
  /// Path requested by SIMJOIN_KERNEL_PATH (scalar | portable | avx2 |
  /// avx512), or kAuto when unset/unrecognised.  Consulted only when a
  /// kernel is constructed with KernelPath::kAuto; an explicit constructor
  /// argument always wins.  Requests the CPU cannot honour degrade exactly
  /// like an explicit constructor request (avx512 -> avx2 -> portable).
  static KernelPath EnvKernelPath();

 private:
  // The filter stages are templated over a row accessor (gathered pointer
  // array vs contiguous base + stride), so both public entry points run the
  // same scoring arithmetic and stay bit-identical by construction.  The
  // templates are defined and instantiated in simd_kernel.cc only.
  template <typename Rows>
  size_t FilterScalarT(const float* query, Rows rows, size_t count,
                       uint8_t* out_mask);
  template <typename Rows>
  size_t FilterPortableT(const float* query, Rows rows, size_t count,
                         uint8_t* out_mask);
  template <typename Rows>
  size_t FilterAvx2T(const float* query, Rows rows, size_t count,
                     uint8_t* out_mask);
  template <typename Rows>
  size_t FilterAvx512T(const float* query, Rows rows, size_t count,
                       uint8_t* out_mask);
  template <typename Rows>
  size_t FilterDispatch(const float* query, Rows rows, size_t count,
                        uint8_t* out_mask);
  /// Resolves one candidate whose float score fell inside the rescue band.
  bool Rescue(const float* query, const float* row);

  DistanceKernel scalar_;
  size_t dims_;
  double eps_;
  float threshold_;  ///< eps in float space (eps^2 for L2)
  float margin_;     ///< half-width of the rescue band around threshold_
  KernelPath path_;
  uint64_t simd_batches_ = 0;
  uint64_t scalar_fallbacks_ = 0;
};

/// Fixed-capacity gather buffer for the leaf-join hot loops: candidate row
/// pointers and ids accumulated until full, then filtered with one
/// batch-kernel call.
class CandidateTile {
 public:
  static constexpr size_t kCapacity = BatchDistanceKernel::kTileCapacity;

  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  bool full() const { return count_ == kCapacity; }

  void Add(PointId id, const float* row) {
    ids_[count_] = id;
    rows_[count_] = row;
    ++count_;
  }
  void Clear() { count_ = 0; }

  const PointId* ids() const { return ids_; }
  const float* const* rows() const { return rows_; }

 private:
  PointId ids_[kCapacity];
  const float* rows_[kCapacity];
  size_t count_ = 0;
};

/// Filters the tile against one query point, emits the survivors to the sink
/// as one EmitBatch, updates candidate/distance/emitted counters, and clears
/// the tile.  With canonical_order set (self-joins) each pair is emitted as
/// (min id, max id); otherwise as (query_id, candidate_id).  Returns the
/// number of pairs emitted.
size_t FilterTileAndEmit(BatchDistanceKernel& kernel, PointId query_id,
                         const float* query_row, CandidateTile& tile,
                         bool canonical_order, PairSink& sink,
                         JoinStats& stats);

/// Filters a contiguous run of candidate rows (candidate i at
/// base + i * stride, id cand_ids[i]) against one query point, tile by
/// tile, emitting survivors and updating counters exactly like
/// FilterTileAndEmit.  This is the flat-arena hot path: a sliding window
/// over a leaf is one contiguous run, so no per-candidate gather happens at
/// all, and each tile prefetches the next.  Returns the number of pairs
/// emitted.
size_t FilterStridedRunAndEmit(BatchDistanceKernel& kernel, PointId query_id,
                               const float* query_row, const float* base,
                               size_t stride, const PointId* cand_ids,
                               size_t count, bool canonical_order,
                               PairSink& sink, JoinStats& stats);

}  // namespace simjoin

#endif  // SIMJOIN_COMMON_SIMD_KERNEL_H_
