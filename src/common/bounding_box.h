// Axis-aligned bounding boxes and the box-to-box minimum-distance lower
// bound used for pruning by both the eps-k-d-B tree and the R-tree join.

#ifndef SIMJOIN_COMMON_BOUNDING_BOX_H_
#define SIMJOIN_COMMON_BOUNDING_BOX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/metric.h"

namespace simjoin {

/// Axis-aligned box in d dimensions.  An empty box (no points folded in yet)
/// has inverted bounds and absorbs anything extended into it.
class BoundingBox {
 public:
  BoundingBox() = default;

  /// Empty (inverted) box of the given dimensionality.
  explicit BoundingBox(size_t dims);

  /// Box spanning exactly one point.
  static BoundingBox FromPoint(const float* p, size_t dims);

  size_t dims() const { return lo_.size(); }
  bool IsEmpty() const { return empty_; }

  const std::vector<float>& lo() const { return lo_; }
  const std::vector<float>& hi() const { return hi_; }
  float lo(size_t d) const { return lo_[d]; }
  float hi(size_t d) const { return hi_[d]; }

  /// Grows the box to include the point.
  void ExtendPoint(const float* p);

  /// Grows the box to include another box.
  void ExtendBox(const BoundingBox& other);

  /// True iff the point lies inside (closed bounds).
  bool ContainsPoint(const float* p) const;

  /// True iff other is fully inside this box (closed bounds).
  bool ContainsBox(const BoundingBox& other) const;

  /// True iff the boxes overlap (closed bounds).
  bool Intersects(const BoundingBox& other) const;

  /// Lower bound on the distance between any point of this box and any
  /// point of other, under the given metric.  Returns 0 for overlapping
  /// boxes.  Comparing MinDistance > eps is a sound prune for the
  /// similarity-join predicate dist <= eps.
  double MinDistance(const BoundingBox& other, Metric metric) const;

  /// Lower bound on the distance from a point to this box.
  double MinDistanceToPoint(const float* p, size_t dims, Metric metric) const;

  /// Sum of side lengths (the "margin"); empty boxes report 0.
  double Margin() const;

  /// Product of side lengths; empty boxes report 0.
  double Volume() const;

  /// Volume of the intersection with other (0 when disjoint).
  double OverlapVolume(const BoundingBox& other) const;

  /// Debug representation "[lo0,hi0]x[lo1,hi1]...".
  std::string ToString() const;

 private:
  bool empty_ = true;
  std::vector<float> lo_;
  std::vector<float> hi_;
};

/// Box-to-box minimum distance on raw lo/hi coordinate arrays — the form the
/// flat (pointer-free) indexes store boxes in.  Both boxes must be non-empty.
/// BoundingBox::MinDistance delegates here, so the two forms prune
/// identically.
double BoxMinDistance(const float* a_lo, const float* a_hi, const float* b_lo,
                      const float* b_hi, size_t dims, Metric metric);

/// Point-to-box minimum distance on raw lo/hi coordinate arrays.
double BoxMinDistanceToPoint(const float* lo, const float* hi, const float* p,
                             size_t dims, Metric metric);

}  // namespace simjoin

#endif  // SIMJOIN_COMMON_BOUNDING_BOX_H_
