#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace simjoin {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits -> uniform in [0,1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

float Rng::UniformFloat() {
  return static_cast<float>(Next() >> 40) * 0x1.0p-24f;
}

uint64_t Rng::UniformInt(uint64_t n) {
  SIMJOIN_CHECK_GT(n, 0u) << "UniformInt(n) requires n > 0";
  // Debiased modulo via rejection (Lemire-style threshold).
  const uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  uint64_t r;
  do {
    r = Next();
  } while (r < threshold);
  return r % n;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  SIMJOIN_CHECK_LE(lo, hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range [lo, hi] covers everything.
  const uint64_t r = (span == 0) ? Next() : UniformInt(span);
  return lo + static_cast<int64_t>(r);
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Polar (Marsaglia) Box-Muller: deterministic given the raw stream.
  double u, v, s;
  do {
    u = Uniform(-1.0, 1.0);
    v = Uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return u * factor;
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

double Rng::Exponential(double lambda) {
  SIMJOIN_CHECK_GT(lambda, 0.0);
  // 1 - Uniform() is in (0, 1]; log of it is finite.
  return -std::log(1.0 - Uniform()) / lambda;
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

uint64_t Rng::Zipf(uint64_t n, double s) {
  SIMJOIN_CHECK_GT(n, 0u);
  if (s <= 0.0) return UniformInt(n);
  // Inverse CDF by linear scan; adequate for the small n used by workload
  // cluster selection.  Weights: 1 / (i+1)^s.
  double total = 0.0;
  for (uint64_t i = 0; i < n; ++i) total += std::pow(static_cast<double>(i + 1), -s);
  double target = Uniform() * total;
  for (uint64_t i = 0; i < n; ++i) {
    target -= std::pow(static_cast<double>(i + 1), -s);
    if (target <= 0.0) return i;
  }
  return n - 1;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xa0761d6478bd642fULL); }

}  // namespace simjoin
