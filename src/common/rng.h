// Deterministic pseudo-random number generation.
//
// All experimental randomness in the library flows through Rng so that
// datasets, workloads, and property tests are bit-reproducible across
// platforms and standard-library versions (std::normal_distribution et al.
// are implementation-defined, so we implement the transforms ourselves).
//
// The generator is xoshiro256++ seeded via SplitMix64, the combination
// recommended by Blackman & Vigna.

#ifndef SIMJOIN_COMMON_RNG_H_
#define SIMJOIN_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace simjoin {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
uint64_t SplitMix64(uint64_t* state);

/// Deterministic xoshiro256++ generator with convenience distributions.
class Rng {
 public:
  /// Seeds the generator; equal seeds yield identical streams everywhere.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform float in [0, 1).
  float UniformFloat();

  /// Uniform integer in [0, n); n must be positive.
  uint64_t UniformInt(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive; lo must not exceed hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via the polar Box-Muller transform (deterministic).
  double Gaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Exponential with the given rate (lambda > 0).
  double Exponential(double lambda);

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Zipf-distributed integer in [0, n) with skew parameter s >= 0
  /// (s == 0 degenerates to uniform).  Uses inverse-CDF over precomputed
  /// weights; intended for modest n (workload cluster selection).
  uint64_t Zipf(uint64_t n, double s);

  /// Fisher-Yates shuffle of v.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      const size_t j = static_cast<size_t>(UniformInt(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Deterministically derives an independent child generator; used to give
  /// each parallel task or dataset column its own stream.
  Rng Fork();

 private:
  uint64_t s_[4];
  // Cached second output of the polar Box-Muller transform.
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace simjoin

#endif  // SIMJOIN_COMMON_RNG_H_
