#include "common/timer.h"

#include <cstdio>

namespace simjoin {

std::string FormatSeconds(double seconds) {
  char buf[64];
  if (seconds < 0) {
    std::snprintf(buf, sizeof(buf), "-%s", FormatSeconds(-seconds).c_str());
  } else if (seconds < 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.0f ns", seconds * 1e9);
  } else if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f s", seconds);
  }
  return buf;
}

std::string FormatBytes(uint64_t bytes) {
  char buf[64];
  const double b = static_cast<double>(bytes);
  if (bytes < (1ULL << 10)) {
    std::snprintf(buf, sizeof(buf), "%llu B", static_cast<unsigned long long>(bytes));
  } else if (bytes < (1ULL << 20)) {
    std::snprintf(buf, sizeof(buf), "%.1f KiB", b / (1ULL << 10));
  } else if (bytes < (1ULL << 30)) {
    std::snprintf(buf, sizeof(buf), "%.1f MiB", b / (1ULL << 20));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f GiB", b / (1ULL << 30));
  }
  return buf;
}

std::string FormatCount(uint64_t count) {
  std::string digits = std::to_string(count);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  size_t lead = digits.size() % 3;
  if (lead == 0) lead = 3;
  for (size_t i = 0; i < digits.size(); ++i) {
    if (i > 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

}  // namespace simjoin
