// Principal component analysis on top of the Jacobi eigensolver — the
// generic dimensionality-reduction counterpart of the time-series DFT
// reduction: project high-dimensional points onto the top-k principal
// directions, join in the small space, verify in the full space.
//
// Because the projection rows are orthonormal, projected L2 distances never
// exceed full-space L2 distances, so a projected-space epsilon join yields
// a candidate superset with no false dismissals (see docs/NOTES.md).

#ifndef SIMJOIN_COMMON_PCA_H_
#define SIMJOIN_COMMON_PCA_H_

#include <cstddef>
#include <vector>

#include "common/dataset.h"
#include "common/status.h"

namespace simjoin {

/// A fitted PCA projection.
struct PcaModel {
  size_t input_dims = 0;
  size_t output_dims = 0;
  std::vector<double> mean;        ///< input_dims
  std::vector<double> components;  ///< output_dims x input_dims, orthonormal rows
  std::vector<double> eigenvalues; ///< top output_dims covariance eigenvalues
  double total_variance = 0.0;     ///< trace of the covariance matrix

  /// Fraction of variance captured by the kept components.
  double ExplainedVarianceRatio() const;

  /// Projects one point: out[k] = components[k] . (in - mean).
  void Project(const float* in, float* out) const;
};

/// Fits PCA with k components on (a strided subsample of) the dataset.
/// k must be in [1, dims].
Result<PcaModel> FitPca(const Dataset& data, size_t k,
                        size_t max_fit_points = 20000);

/// Projects every row of the dataset into the model's k-dimensional space.
Result<Dataset> ProjectDataset(const PcaModel& model, const Dataset& data);

}  // namespace simjoin

#endif  // SIMJOIN_COMMON_PCA_H_
