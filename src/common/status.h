// Status / Result error-handling vocabulary, in the style of database
// engines (Arrow, RocksDB, LevelDB): recoverable errors travel as values,
// never as exceptions, and a Result<T> carries either a payload or a Status.

#ifndef SIMJOIN_COMMON_STATUS_H_
#define SIMJOIN_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "common/logging.h"

namespace simjoin {

/// Machine-readable error category.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kIoError = 4,
  kInternal = 5,
  kUnimplemented = 6,
  kUnavailable = 7,        ///< transient overload; retry later
  kDeadlineExceeded = 8,   ///< request deadline elapsed before completion
};

/// Human-readable name for a status code.
const char* StatusCodeName(StatusCode code);

/// Outcome of an operation: OK, or a code plus message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a T or an error Status.  Accessing the value of an errored Result
/// is a fatal logic error (checked).
template <typename T>
class Result {
 public:
  /// Implicit from value.
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from non-OK status.
  Result(Status status) : payload_(std::move(status)) {  // NOLINT
    SIMJOIN_CHECK(!std::get<Status>(payload_).ok())
        << "Result constructed from OK status without a value";
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(payload_);
  }

  const T& value() const& {
    SIMJOIN_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(payload_);
  }
  T& value() & {
    SIMJOIN_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(payload_);
  }
  T&& value() && {
    SIMJOIN_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(std::move(payload_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> payload_;
};

/// Propagates a non-OK Status out of the enclosing function.
#define SIMJOIN_RETURN_NOT_OK(expr)                \
  do {                                             \
    ::simjoin::Status _st = (expr);                \
    if (!_st.ok()) return _st;                     \
  } while (0)

/// Assigns the value of a Result expression to lhs, or propagates its error.
#define SIMJOIN_ASSIGN_OR_RETURN(lhs, rexpr)       \
  auto SIMJOIN_CONCAT_(_res_, __LINE__) = (rexpr); \
  if (!SIMJOIN_CONCAT_(_res_, __LINE__).ok())      \
    return SIMJOIN_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(SIMJOIN_CONCAT_(_res_, __LINE__)).value()

#define SIMJOIN_CONCAT_IMPL_(a, b) a##b
#define SIMJOIN_CONCAT_(a, b) SIMJOIN_CONCAT_IMPL_(a, b)

}  // namespace simjoin

#endif  // SIMJOIN_COMMON_STATUS_H_
