// Work-stealing worker pool — the substrate for the parallel eps-k-d-B
// builders and join drivers.
//
// Each worker owns a fixed-capacity Chase-Lev-style deque: the owner pushes
// and pops at the bottom, idle workers steal from the top, and a shared
// mutex-protected injection queue takes submissions from non-worker threads
// (and deque overflow).  Workers sleep on a condition variable when no work
// is visible anywhere, so an idle pool costs nothing; ThreadPool::Shared()
// hands out persistent process-lifetime pools so repeated joins don't pay
// thread spawn/teardown per call.
//
// Tasks are void() callables.  WaitIdle() is a reusable barrier over *all*
// outstanding work; TaskGroup scopes completion to one job so independent
// jobs can share a pool.  HasIdleWorkers() is the cheap load-balance signal
// the adaptive task splitter keys off.

#ifndef SIMJOIN_COMMON_THREAD_POOL_H_
#define SIMJOIN_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace simjoin {

/// Fixed set of worker threads draining per-worker work-stealing deques plus
/// a shared injection queue.
class ThreadPool {
 public:
  /// Returned by CurrentWorkerIndex() on threads that are not workers of
  /// this pool.
  static constexpr size_t kNotAWorker = static_cast<size_t>(-1);

  /// Starts num_threads workers (minimum 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding work, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Process-lifetime pool with the given thread count (0 means
  /// hardware_concurrency), created on first use.  Sharing one persistent
  /// pool across joins avoids per-call thread spawn/teardown.
  static ThreadPool& Shared(size_t num_threads = 0);

  /// Enqueues a task.  Never blocks: a worker submits into its own deque
  /// (stealable by the others); any other thread — and deque overflow —
  /// goes through the shared injection queue.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task (including tasks submitted by tasks)
  /// has finished.  Reusable barrier.  Note: on a pool shared between
  /// concurrent jobs this waits for *all* of them; use TaskGroup to wait for
  /// one job's tasks only.
  void WaitIdle();

  size_t num_threads() const { return workers_.size(); }

  /// True when at least one worker is asleep with nothing to do — the
  /// signal adaptive task splitting uses to decide whether finer-grained
  /// tasks would actually buy parallelism.  Racy by nature; callers only
  /// use it as a heuristic.
  bool HasIdleWorkers() const {
    return num_sleeping_.load(std::memory_order_relaxed) > 0;
  }

  /// Index of the calling thread within this pool's workers, or kNotAWorker
  /// when called from any other thread.
  size_t CurrentWorkerIndex() const;

  /// Runs one pending task inline if any is available (own deque, injection
  /// queue, or stolen).  Returns false when no task was found.  Lets
  /// blocked waiters help instead of deadlocking the pool.
  bool TryRunOneTask();

 private:
  /// Fixed-capacity Chase-Lev-style deque of task pointers.  The owner
  /// pushes/pops at the bottom; thieves CAS the top.  Control words use
  /// seq_cst operations (no standalone fences — ThreadSanitizer models
  /// atomics precisely but not fences).  On overflow Push fails and the
  /// caller falls back to the injection queue.
  struct Deque {
    static constexpr size_t kCapacity = 1 << 13;  // must be a power of two

    alignas(64) std::atomic<int64_t> top{0};
    alignas(64) std::atomic<int64_t> bottom{0};
    std::unique_ptr<std::atomic<std::function<void()>*>[]> slots;

    Deque();
    bool Push(std::function<void()>* task);  // owner only
    std::function<void()>* Pop();            // owner only
    std::function<void()>* Steal();          // any thread
    bool LooksEmpty() const;
  };

  void WorkerLoop(size_t index);
  std::function<void()>* TryAcquire(size_t self);
  void RunTask(std::function<void()>* task);
  void NotifyWorkAvailable();
  bool WorkVisible() const;  // requires mu_ held (reads injection_)

  std::vector<std::unique_ptr<Deque>> deques_;
  std::vector<std::thread> workers_;

  mutable std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_idle_;
  std::deque<std::function<void()>*> injection_;  // guarded by mu_
  std::atomic<size_t> num_sleeping_{0};           // modified under mu_
  std::atomic<size_t> pending_{0};  // submitted but not yet finished
  bool shutting_down_ = false;      // guarded by mu_
};

/// Completion scope for one job's tasks on a (possibly shared) pool.  Run()
/// submits a task counted against this group; Wait() blocks until all of
/// them finished.  When Wait() is called from a worker of the same pool it
/// helps — running pending pool tasks inline — instead of deadlocking, so
/// tasks can fan out subtasks and wait on them.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}

  /// Waits for any still-outstanding tasks.
  ~TaskGroup() { Wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Submits fn to the pool, counted against this group.  The group must
  /// outlive the task (Wait() / the destructor guarantees it).
  void Run(std::function<void()> fn);

  /// Blocks until every task Run() so far has completed.
  void Wait();

  ThreadPool* pool() const { return pool_; }

 private:
  ThreadPool* pool_;
  std::atomic<size_t> outstanding_{0};
  std::mutex mu_;
  std::condition_variable cv_;
};

}  // namespace simjoin

#endif  // SIMJOIN_COMMON_THREAD_POOL_H_
