// Fixed-size worker pool with a simple task queue — the substrate for the
// parallel eps-k-d-B join driver.  Tasks are void() callables; WaitIdle()
// gives a barrier without destroying the pool.

#ifndef SIMJOIN_COMMON_THREAD_POOL_H_
#define SIMJOIN_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace simjoin {

/// Fixed set of worker threads draining a FIFO of tasks.
class ThreadPool {
 public:
  /// Starts num_threads workers (minimum 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding work, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task.  Never blocks.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and every worker is idle.
  void WaitIdle();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t active_ = 0;
  bool shutting_down_ = false;
};

}  // namespace simjoin

#endif  // SIMJOIN_COMMON_THREAD_POOL_H_
