// Streaming summary statistics (Welford) and small-sample percentile helper,
// used by the benchmark harness and workload validators.

#ifndef SIMJOIN_COMMON_STATS_H_
#define SIMJOIN_COMMON_STATS_H_

#include <cstdint>
#include <limits>
#include <vector>

namespace simjoin {

/// Single-pass accumulator for count / mean / variance / min / max using
/// Welford's numerically stable update.
class RunningStats {
 public:
  /// Folds one observation into the summary.
  void Add(double x);

  /// Merges another summary into this one (parallel-combine safe).
  void Merge(const RunningStats& other);

  uint64_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Population variance; 0 for fewer than two observations.
  double variance() const { return count_ > 1 ? m2_ / static_cast<double>(count_) : 0.0; }
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Returns the q-quantile (q in [0,1]) of the values by linear interpolation
/// between the two closest ranks of a sorted copy (the "exclusive" estimator
/// used by numpy's default); returns 0 for an empty vector.
double Percentile(std::vector<double> values, double q);

/// Nearest-rank q-quantile: always returns an element of `values` (the
/// smallest value with cumulative frequency >= q), so it never invents a
/// number that was not observed.  Returns 0 for an empty vector.  Agrees with
/// Percentile() at q = 0 and q = 1 and differs by at most one inter-sample
/// gap in between.
double PercentileNearestRank(std::vector<double> values, double q);

}  // namespace simjoin

#endif  // SIMJOIN_COMMON_STATS_H_
