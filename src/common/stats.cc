#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace simjoin {

void RunningStats::Add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(count_ + other.count_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ = (mean_ * static_cast<double>(count_) +
           other.mean_ * static_cast<double>(other.count_)) /
          total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  SIMJOIN_CHECK_GE(q, 0.0);
  SIMJOIN_CHECK_LE(q, 1.0);
  std::sort(values.begin(), values.end());
  const double rank = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double PercentileNearestRank(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  SIMJOIN_CHECK_GE(q, 0.0);
  SIMJOIN_CHECK_LE(q, 1.0);
  std::sort(values.begin(), values.end());
  // Classical nearest-rank: rank = ceil(q * n), clamped to [1, n].
  const double n = static_cast<double>(values.size());
  const size_t rank = static_cast<size_t>(std::ceil(q * n));
  const size_t idx = rank == 0 ? 0 : std::min(rank - 1, values.size() - 1);
  return values[idx];
}

}  // namespace simjoin
