#include "common/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <utility>

#include "obs/metrics.h"
#include "obs/request_context.h"
#include "obs/trace.h"

namespace simjoin {

namespace {

/// Identity of the current thread within its pool, if it is a pool worker.
/// A worker thread belongs to exactly one pool for its whole lifetime.
thread_local ThreadPool* tls_pool = nullptr;
thread_local size_t tls_worker_index = 0;

/// Pool instrumentation, aggregated across all pools in the process (the
/// common case is the single Shared() pool).  Counters cost one relaxed RMW
/// per *task*, never per pair, so they stay on unconditionally.
struct PoolMetrics {
  obs::Counter* tasks_executed;
  obs::Counter* tasks_stolen;
  obs::Counter* tasks_injected;
  obs::Counter* worker_idle_us;
  obs::Gauge* injection_depth;
};

const PoolMetrics& GetPoolMetrics() {
  static const PoolMetrics metrics = [] {
    obs::MetricRegistry& reg = obs::GlobalMetrics();
    return PoolMetrics{reg.GetCounter("pool.tasks_executed"),
                       reg.GetCounter("pool.tasks_stolen"),
                       reg.GetCounter("pool.tasks_injected"),
                       reg.GetCounter("pool.worker_idle_us"),
                       reg.GetGauge("pool.injection_depth")};
  }();
  return metrics;
}

}  // namespace

// ---------------------------------------------------------------------------
// Work-stealing deque
// ---------------------------------------------------------------------------

ThreadPool::Deque::Deque()
    : slots(new std::atomic<std::function<void()>*>[kCapacity]()) {}

bool ThreadPool::Deque::Push(std::function<void()>* task) {
  const int64_t b = bottom.load(std::memory_order_seq_cst);
  const int64_t t = top.load(std::memory_order_seq_cst);
  if (b - t >= static_cast<int64_t>(kCapacity)) return false;  // full
  slots[static_cast<size_t>(b) & (kCapacity - 1)].store(
      task, std::memory_order_relaxed);
  // The seq_cst store publishes the slot write to thieves that subsequently
  // observe the new bottom.
  bottom.store(b + 1, std::memory_order_seq_cst);
  return true;
}

std::function<void()>* ThreadPool::Deque::Pop() {
  const int64_t b = bottom.load(std::memory_order_seq_cst) - 1;
  bottom.store(b, std::memory_order_seq_cst);
  int64_t t = top.load(std::memory_order_seq_cst);
  if (t > b) {  // deque was empty
    bottom.store(b + 1, std::memory_order_seq_cst);
    return nullptr;
  }
  std::function<void()>* task =
      slots[static_cast<size_t>(b) & (kCapacity - 1)].load(
          std::memory_order_relaxed);
  if (t != b) return task;  // more than one item left: no race possible
  // Last item: race thieves for it by advancing top.
  const bool won = top.compare_exchange_strong(
      t, t + 1, std::memory_order_seq_cst, std::memory_order_seq_cst);
  bottom.store(b + 1, std::memory_order_seq_cst);
  return won ? task : nullptr;
}

std::function<void()>* ThreadPool::Deque::Steal() {
  int64_t t = top.load(std::memory_order_seq_cst);
  const int64_t b = bottom.load(std::memory_order_seq_cst);
  if (t >= b) return nullptr;  // empty
  std::function<void()>* task =
      slots[static_cast<size_t>(t) & (kCapacity - 1)].load(
          std::memory_order_relaxed);
  // The CAS succeeding proves top was still t, i.e. the owner cannot have
  // recycled slot t in the meantime (top only moves forward).  A failed CAS
  // counts as "nothing stolen"; the caller's retry loop handles it.
  if (!top.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                   std::memory_order_seq_cst)) {
    return nullptr;
  }
  return task;
}

bool ThreadPool::Deque::LooksEmpty() const {
  return top.load(std::memory_order_seq_cst) >=
         bottom.load(std::memory_order_seq_cst);
}

// ---------------------------------------------------------------------------
// Pool
// ---------------------------------------------------------------------------

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  deques_.reserve(n);
  for (size_t i = 0; i < n; ++i) deques_.push_back(std::make_unique<Deque>());
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

ThreadPool& ThreadPool::Shared(size_t num_threads) {
  // Function-local statics so the pools are destroyed (workers joined) at
  // process exit, keeping leak checkers quiet.
  static std::mutex registry_mu;
  static std::map<size_t, std::unique_ptr<ThreadPool>> registry;
  const size_t n =
      num_threads != 0
          ? num_threads
          : std::max<size_t>(1, std::thread::hardware_concurrency());
  std::lock_guard<std::mutex> lock(registry_mu);
  std::unique_ptr<ThreadPool>& slot = registry[n];
  if (slot == nullptr) slot = std::make_unique<ThreadPool>(n);
  return *slot;
}

size_t ThreadPool::CurrentWorkerIndex() const {
  return tls_pool == this ? tls_worker_index : kNotAWorker;
}

void ThreadPool::Submit(std::function<void()> task) {
  // Propagate the submitting thread's request context (trace id + profile
  // collector) across the task boundary, so spans recorded inside pool
  // tasks — parallel joins, fused sweeps — attribute to the request that
  // spawned them.  The capture-gate check keeps the common case (no
  // tracing, no profiled request in flight) at one relaxed load; the
  // caller guarantees the collector outlives its tasks (request handlers
  // join their TaskGroup before finishing the profile).
  if (obs::internal::CaptureEnabled()) {
    const obs::RequestContext ctx = obs::CurrentRequestContext();
    if (ctx.active()) {
      task = [ctx, inner = std::move(task)] {
        obs::ScopedRequestContext scope(ctx);
        inner();
      };
    }
  }
  auto* t = new std::function<void()>(std::move(task));
  pending_.fetch_add(1, std::memory_order_seq_cst);
  const size_t self = CurrentWorkerIndex();
  if (self != kNotAWorker && deques_[self]->Push(t)) {
    NotifyWorkAvailable();
    return;
  }
  // Non-worker thread, or the owner deque is full: shared injection queue.
  const PoolMetrics& metrics = GetPoolMetrics();
  {
    std::lock_guard<std::mutex> lock(mu_);
    injection_.push_back(t);
    metrics.injection_depth->Set(static_cast<int64_t>(injection_.size()));
  }
  metrics.tasks_injected->Add();
  cv_work_.notify_one();
}

void ThreadPool::NotifyWorkAvailable() {
  // Sleepers register (num_sleeping_) and re-check work visibility under
  // mu_; taking the mutex here — even empty — closes the window between a
  // sleeper's last check and its wait, so the notify cannot be lost.
  if (num_sleeping_.load(std::memory_order_seq_cst) == 0) return;
  { std::lock_guard<std::mutex> lock(mu_); }
  cv_work_.notify_one();
}

bool ThreadPool::WorkVisible() const {
  if (!injection_.empty()) return true;
  for (const auto& d : deques_) {
    if (!d->LooksEmpty()) return true;
  }
  return false;
}

std::function<void()>* ThreadPool::TryAcquire(size_t self) {
  if (self != kNotAWorker) {
    if (std::function<void()>* t = deques_[self]->Pop()) return t;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!injection_.empty()) {
      std::function<void()>* t = injection_.front();
      injection_.pop_front();
      GetPoolMetrics().injection_depth->Set(
          static_cast<int64_t>(injection_.size()));
      return t;
    }
  }
  const size_t n = deques_.size();
  const size_t start = self == kNotAWorker ? 0 : self + 1;
  for (size_t k = 0; k < n; ++k) {
    const size_t victim = (start + k) % n;
    if (victim == self) continue;
    if (std::function<void()>* t = deques_[victim]->Steal()) {
      GetPoolMetrics().tasks_stolen->Add();
      return t;
    }
  }
  return nullptr;
}

void ThreadPool::RunTask(std::function<void()>* task) {
  (*task)();
  delete task;
  GetPoolMetrics().tasks_executed->Add();
  if (pending_.fetch_sub(1, std::memory_order_seq_cst) == 1) {
    bool wake_workers;
    {
      std::lock_guard<std::mutex> lock(mu_);
      wake_workers = shutting_down_;
    }
    cv_idle_.notify_all();
    // Workers only need the pending_ == 0 edge to exit at shutdown.
    if (wake_workers) cv_work_.notify_all();
  }
}

bool ThreadPool::TryRunOneTask() {
  std::function<void()>* task = TryAcquire(CurrentWorkerIndex());
  if (task == nullptr) return false;
  RunTask(task);
  return true;
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] {
    return pending_.load(std::memory_order_seq_cst) == 0;
  });
}

void ThreadPool::WorkerLoop(size_t index) {
  tls_pool = this;
  tls_worker_index = index;
  for (;;) {
    if (std::function<void()>* task = TryAcquire(index)) {
      RunTask(task);
      continue;
    }
    std::unique_lock<std::mutex> lock(mu_);
    const auto should_exit = [this] {
      return shutting_down_ && pending_.load(std::memory_order_seq_cst) == 0;
    };
    if (should_exit()) return;
    num_sleeping_.fetch_add(1, std::memory_order_seq_cst);
    const auto idle_start = std::chrono::steady_clock::now();
    cv_work_.wait(lock, [&] { return should_exit() || WorkVisible(); });
    num_sleeping_.fetch_sub(1, std::memory_order_seq_cst);
    GetPoolMetrics().worker_idle_us->Add(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - idle_start)
            .count()));
    if (should_exit()) return;
  }
}

// ---------------------------------------------------------------------------
// TaskGroup
// ---------------------------------------------------------------------------

void TaskGroup::Run(std::function<void()> fn) {
  outstanding_.fetch_add(1, std::memory_order_seq_cst);
  pool_->Submit([this, fn = std::move(fn)] {
    fn();
    // Decrement under mu_: Wait()'s predicate also runs under mu_, so it
    // cannot observe zero and let the group be destroyed while this task is
    // still about to touch cv_.
    std::lock_guard<std::mutex> lock(mu_);
    if (outstanding_.fetch_sub(1, std::memory_order_seq_cst) == 1) {
      cv_.notify_all();
    }
  });
}

void TaskGroup::Wait() {
  if (pool_->CurrentWorkerIndex() != ThreadPool::kNotAWorker) {
    // Called from a worker of the same pool: blocking would deadlock a
    // 1-thread pool (and waste a worker otherwise), so help instead.
    while (outstanding_.load(std::memory_order_seq_cst) != 0) {
      if (!pool_->TryRunOneTask()) std::this_thread::yield();
    }
    // Synchronize with the final decrementer before the caller may destroy
    // this group: it still holds mu_ while notifying.
    std::lock_guard<std::mutex> lock(mu_);
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] {
    return outstanding_.load(std::memory_order_seq_cst) == 0;
  });
}

}  // namespace simjoin
