#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

namespace simjoin {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  task_available_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  all_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(lock,
                           [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) all_idle_.notify_all();
    }
  }
}

}  // namespace simjoin
