#include "common/bounding_box.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/logging.h"

namespace simjoin {

BoundingBox::BoundingBox(size_t dims)
    : lo_(dims, std::numeric_limits<float>::infinity()),
      hi_(dims, -std::numeric_limits<float>::infinity()) {}

BoundingBox BoundingBox::FromPoint(const float* p, size_t dims) {
  BoundingBox box(dims);
  box.ExtendPoint(p);
  return box;
}

void BoundingBox::ExtendPoint(const float* p) {
  SIMJOIN_CHECK_GT(dims(), 0u);
  for (size_t d = 0; d < lo_.size(); ++d) {
    lo_[d] = std::min(lo_[d], p[d]);
    hi_[d] = std::max(hi_[d], p[d]);
  }
  empty_ = false;
}

void BoundingBox::ExtendBox(const BoundingBox& other) {
  if (other.empty_) return;
  SIMJOIN_CHECK_EQ(dims(), other.dims());
  for (size_t d = 0; d < lo_.size(); ++d) {
    lo_[d] = std::min(lo_[d], other.lo_[d]);
    hi_[d] = std::max(hi_[d], other.hi_[d]);
  }
  empty_ = false;
}

bool BoundingBox::ContainsPoint(const float* p) const {
  if (empty_) return false;
  for (size_t d = 0; d < lo_.size(); ++d) {
    if (p[d] < lo_[d] || p[d] > hi_[d]) return false;
  }
  return true;
}

bool BoundingBox::ContainsBox(const BoundingBox& other) const {
  if (empty_ || other.empty_) return false;
  SIMJOIN_CHECK_EQ(dims(), other.dims());
  for (size_t d = 0; d < lo_.size(); ++d) {
    if (other.lo_[d] < lo_[d] || other.hi_[d] > hi_[d]) return false;
  }
  return true;
}

bool BoundingBox::Intersects(const BoundingBox& other) const {
  if (empty_ || other.empty_) return false;
  SIMJOIN_CHECK_EQ(dims(), other.dims());
  for (size_t d = 0; d < lo_.size(); ++d) {
    if (other.hi_[d] < lo_[d] || other.lo_[d] > hi_[d]) return false;
  }
  return true;
}

double BoundingBox::MinDistance(const BoundingBox& other, Metric metric) const {
  SIMJOIN_CHECK(!empty_ && !other.empty_) << "MinDistance on empty box";
  SIMJOIN_CHECK_EQ(dims(), other.dims());
  return BoxMinDistance(lo_.data(), hi_.data(), other.lo_.data(),
                        other.hi_.data(), lo_.size(), metric);
}

double BoundingBox::MinDistanceToPoint(const float* p, size_t point_dims,
                                       Metric metric) const {
  SIMJOIN_CHECK(!empty_);
  SIMJOIN_CHECK_EQ(dims(), point_dims);
  return BoxMinDistanceToPoint(lo_.data(), hi_.data(), p, lo_.size(), metric);
}

double BoxMinDistance(const float* a_lo, const float* a_hi, const float* b_lo,
                      const float* b_hi, size_t dims, Metric metric) {
  double acc = 0.0;
  for (size_t d = 0; d < dims; ++d) {
    const double gap = std::max({0.0, static_cast<double>(a_lo[d]) - b_hi[d],
                                 static_cast<double>(b_lo[d]) - a_hi[d]});
    switch (metric) {
      case Metric::kL1:
        acc += gap;
        break;
      case Metric::kL2:
        acc += gap * gap;
        break;
      case Metric::kLinf:
        acc = std::max(acc, gap);
        break;
    }
  }
  return metric == Metric::kL2 ? std::sqrt(acc) : acc;
}

double BoxMinDistanceToPoint(const float* lo, const float* hi, const float* p,
                             size_t dims, Metric metric) {
  double acc = 0.0;
  for (size_t d = 0; d < dims; ++d) {
    const double gap = std::max({0.0, static_cast<double>(lo[d]) - p[d],
                                 static_cast<double>(p[d]) - hi[d]});
    switch (metric) {
      case Metric::kL1:
        acc += gap;
        break;
      case Metric::kL2:
        acc += gap * gap;
        break;
      case Metric::kLinf:
        acc = std::max(acc, gap);
        break;
    }
  }
  return metric == Metric::kL2 ? std::sqrt(acc) : acc;
}

double BoundingBox::Margin() const {
  if (empty_) return 0.0;
  double acc = 0.0;
  for (size_t d = 0; d < lo_.size(); ++d) acc += static_cast<double>(hi_[d]) - lo_[d];
  return acc;
}

double BoundingBox::Volume() const {
  if (empty_) return 0.0;
  double acc = 1.0;
  for (size_t d = 0; d < lo_.size(); ++d) acc *= static_cast<double>(hi_[d]) - lo_[d];
  return acc;
}

double BoundingBox::OverlapVolume(const BoundingBox& other) const {
  if (empty_ || other.empty_) return 0.0;
  SIMJOIN_CHECK_EQ(dims(), other.dims());
  double acc = 1.0;
  for (size_t d = 0; d < lo_.size(); ++d) {
    const double side = std::min(static_cast<double>(hi_[d]), static_cast<double>(other.hi_[d])) -
                        std::max(static_cast<double>(lo_[d]), static_cast<double>(other.lo_[d]));
    if (side <= 0.0) return 0.0;
    acc *= side;
  }
  return acc;
}

std::string BoundingBox::ToString() const {
  if (empty_) return "[empty]";
  std::ostringstream os;
  for (size_t d = 0; d < lo_.size(); ++d) {
    if (d > 0) os << "x";
    os << "[" << lo_[d] << "," << hi_[d] << "]";
  }
  return os.str();
}

}  // namespace simjoin
