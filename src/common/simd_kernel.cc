#include "common/simd_kernel.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define SIMJOIN_X86 1
#include <immintrin.h>
#else
#define SIMJOIN_X86 0
#endif

namespace simjoin {
namespace {

// Per-candidate relative rounding bound of the float score versus the exact
// value.  Each subtraction/square rounds at 2^-24 relative and a dims-term
// float sum accumulates at most dims more roundings; (dims + 4) * 2^-22 is a
// >2x over-cover of the worst case (FMA paths round strictly less), so any
// candidate whose exact score and float score straddle the threshold is
// guaranteed to land inside the rescue band.
float RescueMargin(size_t dims) {
  return (static_cast<float>(dims) + 4.0f) * 2.384185791e-7f;  // 2^-22
}

// ---------------------------------------------------------------------------
// Row accessors: how a batch finds candidate row i.  The scorers below are
// templated over these, so the gathered-pointer and contiguous-stride entry
// points execute identical arithmetic (and therefore identical rounding).

/// Tile described by an array of row pointers (the PR-1 gather layout).
struct GatheredRows {
  const float* const* rows;
  const float* row(size_t i) const { return rows[i]; }
  GatheredRows Skip(size_t n) const { return GatheredRows{rows + n}; }
};

/// Tile described by a base pointer + fixed stride (the flat-arena layout);
/// row i is a straight streaming load from base + i * stride.
struct StridedRows {
  const float* base;
  size_t stride;
  const float* row(size_t i) const { return base + i * stride; }
  StridedRows Skip(size_t n) const { return StridedRows{base + n * stride, stride}; }
};

/// Software-prefetches the first few cache lines at p (the next tile).
/// Prefetch instructions never fault, so p may point past the end of the
/// arena on the final tile.
inline void PrefetchTile(const float* p) {
  if (p == nullptr) return;
  const char* c = reinterpret_cast<const char*>(p);
  for (size_t line = 0; line < 8; ++line) {
    __builtin_prefetch(c + line * 64, /*rw=*/0, /*locality=*/3);
  }
}

// ---------------------------------------------------------------------------
// Portable float scoring: plain loops the compiler can auto-vectorize with
// the baseline instruction set.  Scores are: L1 sum, L2 squared sum, Linf max.

float ScorePortableL1(const float* q, const float* r, size_t dims) {
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  size_t i = 0;
  for (; i + 4 <= dims; i += 4) {
    s0 += std::fabs(q[i] - r[i]);
    s1 += std::fabs(q[i + 1] - r[i + 1]);
    s2 += std::fabs(q[i + 2] - r[i + 2]);
    s3 += std::fabs(q[i + 3] - r[i + 3]);
  }
  for (; i < dims; ++i) s0 += std::fabs(q[i] - r[i]);
  return (s0 + s1) + (s2 + s3);
}

float ScorePortableL2(const float* q, const float* r, size_t dims) {
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  size_t i = 0;
  for (; i + 4 <= dims; i += 4) {
    const float d0 = q[i] - r[i];
    const float d1 = q[i + 1] - r[i + 1];
    const float d2 = q[i + 2] - r[i + 2];
    const float d3 = q[i + 3] - r[i + 3];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  for (; i < dims; ++i) {
    const float d = q[i] - r[i];
    s0 += d * d;
  }
  return (s0 + s1) + (s2 + s3);
}

float ScorePortableLinf(const float* q, const float* r, size_t dims) {
  float m = 0.0f;
  for (size_t i = 0; i < dims; ++i) m = std::max(m, std::fabs(q[i] - r[i]));
  return m;
}

// ---------------------------------------------------------------------------
// AVX2+FMA scoring: 8 floats per step, scalar float tail for dims % 8.

#if SIMJOIN_X86 && (defined(__GNUC__) || defined(__clang__))
#define SIMJOIN_HAVE_AVX2_PATH 1

__attribute__((target("avx2,fma"))) float HorizontalSum(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  lo = _mm_add_ps(lo, hi);
  lo = _mm_add_ps(lo, _mm_movehl_ps(lo, lo));
  lo = _mm_add_ss(lo, _mm_shuffle_ps(lo, lo, 1));
  return _mm_cvtss_f32(lo);
}

__attribute__((target("avx2,fma"))) float HorizontalMax(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  lo = _mm_max_ps(lo, hi);
  lo = _mm_max_ps(lo, _mm_movehl_ps(lo, lo));
  lo = _mm_max_ss(lo, _mm_shuffle_ps(lo, lo, 1));
  return _mm_cvtss_f32(lo);
}

// Scores one whole batch per call, four candidates interleaved so the
// independent FMA/add chains hide each other's latency and the query loads
// are shared.  One call per tile keeps the target-attribute function-call
// overhead off the per-candidate cost.  Templated over the row accessor;
// both instantiations run byte-for-byte the same arithmetic.

template <typename Rows>
__attribute__((target("avx2,fma"))) void ScoreBatchAvx2L1(
    const float* q, Rows rows, size_t count, size_t dims, float* scores) {
  const __m256 abs_mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const float* r0 = rows.row(i);
    const float* r1 = rows.row(i + 1);
    const float* r2 = rows.row(i + 2);
    const float* r3 = rows.row(i + 3);
    __m256 a0 = _mm256_setzero_ps(), a1 = _mm256_setzero_ps();
    __m256 a2 = _mm256_setzero_ps(), a3 = _mm256_setzero_ps();
    size_t d = 0;
    for (; d + 8 <= dims; d += 8) {
      const __m256 qv = _mm256_loadu_ps(q + d);
      a0 = _mm256_add_ps(
          a0, _mm256_and_ps(_mm256_sub_ps(qv, _mm256_loadu_ps(r0 + d)), abs_mask));
      a1 = _mm256_add_ps(
          a1, _mm256_and_ps(_mm256_sub_ps(qv, _mm256_loadu_ps(r1 + d)), abs_mask));
      a2 = _mm256_add_ps(
          a2, _mm256_and_ps(_mm256_sub_ps(qv, _mm256_loadu_ps(r2 + d)), abs_mask));
      a3 = _mm256_add_ps(
          a3, _mm256_and_ps(_mm256_sub_ps(qv, _mm256_loadu_ps(r3 + d)), abs_mask));
    }
    float s0 = HorizontalSum(a0), s1 = HorizontalSum(a1);
    float s2 = HorizontalSum(a2), s3 = HorizontalSum(a3);
    for (; d < dims; ++d) {
      s0 += std::fabs(q[d] - r0[d]);
      s1 += std::fabs(q[d] - r1[d]);
      s2 += std::fabs(q[d] - r2[d]);
      s3 += std::fabs(q[d] - r3[d]);
    }
    scores[i] = s0;
    scores[i + 1] = s1;
    scores[i + 2] = s2;
    scores[i + 3] = s3;
  }
  for (; i < count; ++i) {
    const float* r = rows.row(i);
    __m256 acc = _mm256_setzero_ps();
    size_t d = 0;
    for (; d + 8 <= dims; d += 8) {
      const __m256 diff =
          _mm256_sub_ps(_mm256_loadu_ps(q + d), _mm256_loadu_ps(r + d));
      acc = _mm256_add_ps(acc, _mm256_and_ps(diff, abs_mask));
    }
    float s = HorizontalSum(acc);
    for (; d < dims; ++d) s += std::fabs(q[d] - r[d]);
    scores[i] = s;
  }
}

template <typename Rows>
__attribute__((target("avx2,fma"))) void ScoreBatchAvx2L2(
    const float* q, Rows rows, size_t count, size_t dims, float* scores) {
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const float* r0 = rows.row(i);
    const float* r1 = rows.row(i + 1);
    const float* r2 = rows.row(i + 2);
    const float* r3 = rows.row(i + 3);
    __m256 a0 = _mm256_setzero_ps(), a1 = _mm256_setzero_ps();
    __m256 a2 = _mm256_setzero_ps(), a3 = _mm256_setzero_ps();
    size_t d = 0;
    for (; d + 8 <= dims; d += 8) {
      const __m256 qv = _mm256_loadu_ps(q + d);
      const __m256 d0 = _mm256_sub_ps(qv, _mm256_loadu_ps(r0 + d));
      const __m256 d1 = _mm256_sub_ps(qv, _mm256_loadu_ps(r1 + d));
      const __m256 d2 = _mm256_sub_ps(qv, _mm256_loadu_ps(r2 + d));
      const __m256 d3 = _mm256_sub_ps(qv, _mm256_loadu_ps(r3 + d));
      a0 = _mm256_fmadd_ps(d0, d0, a0);
      a1 = _mm256_fmadd_ps(d1, d1, a1);
      a2 = _mm256_fmadd_ps(d2, d2, a2);
      a3 = _mm256_fmadd_ps(d3, d3, a3);
    }
    float s0 = HorizontalSum(a0), s1 = HorizontalSum(a1);
    float s2 = HorizontalSum(a2), s3 = HorizontalSum(a3);
    for (; d < dims; ++d) {
      const float e0 = q[d] - r0[d], e1 = q[d] - r1[d];
      const float e2 = q[d] - r2[d], e3 = q[d] - r3[d];
      s0 += e0 * e0;
      s1 += e1 * e1;
      s2 += e2 * e2;
      s3 += e3 * e3;
    }
    scores[i] = s0;
    scores[i + 1] = s1;
    scores[i + 2] = s2;
    scores[i + 3] = s3;
  }
  for (; i < count; ++i) {
    const float* r = rows.row(i);
    __m256 acc = _mm256_setzero_ps();
    size_t d = 0;
    for (; d + 8 <= dims; d += 8) {
      const __m256 diff =
          _mm256_sub_ps(_mm256_loadu_ps(q + d), _mm256_loadu_ps(r + d));
      acc = _mm256_fmadd_ps(diff, diff, acc);
    }
    float s = HorizontalSum(acc);
    for (; d < dims; ++d) {
      const float e = q[d] - r[d];
      s += e * e;
    }
    scores[i] = s;
  }
}

template <typename Rows>
__attribute__((target("avx2,fma"))) void ScoreBatchAvx2Linf(
    const float* q, Rows rows, size_t count, size_t dims, float* scores) {
  const __m256 abs_mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const float* r0 = rows.row(i);
    const float* r1 = rows.row(i + 1);
    const float* r2 = rows.row(i + 2);
    const float* r3 = rows.row(i + 3);
    __m256 a0 = _mm256_setzero_ps(), a1 = _mm256_setzero_ps();
    __m256 a2 = _mm256_setzero_ps(), a3 = _mm256_setzero_ps();
    size_t d = 0;
    for (; d + 8 <= dims; d += 8) {
      const __m256 qv = _mm256_loadu_ps(q + d);
      a0 = _mm256_max_ps(
          a0, _mm256_and_ps(_mm256_sub_ps(qv, _mm256_loadu_ps(r0 + d)), abs_mask));
      a1 = _mm256_max_ps(
          a1, _mm256_and_ps(_mm256_sub_ps(qv, _mm256_loadu_ps(r1 + d)), abs_mask));
      a2 = _mm256_max_ps(
          a2, _mm256_and_ps(_mm256_sub_ps(qv, _mm256_loadu_ps(r2 + d)), abs_mask));
      a3 = _mm256_max_ps(
          a3, _mm256_and_ps(_mm256_sub_ps(qv, _mm256_loadu_ps(r3 + d)), abs_mask));
    }
    float s0 = HorizontalMax(a0), s1 = HorizontalMax(a1);
    float s2 = HorizontalMax(a2), s3 = HorizontalMax(a3);
    for (; d < dims; ++d) {
      s0 = std::max(s0, std::fabs(q[d] - r0[d]));
      s1 = std::max(s1, std::fabs(q[d] - r1[d]));
      s2 = std::max(s2, std::fabs(q[d] - r2[d]));
      s3 = std::max(s3, std::fabs(q[d] - r3[d]));
    }
    scores[i] = s0;
    scores[i + 1] = s1;
    scores[i + 2] = s2;
    scores[i + 3] = s3;
  }
  for (; i < count; ++i) {
    const float* r = rows.row(i);
    __m256 acc = _mm256_setzero_ps();
    size_t d = 0;
    for (; d + 8 <= dims; d += 8) {
      const __m256 diff =
          _mm256_sub_ps(_mm256_loadu_ps(q + d), _mm256_loadu_ps(r + d));
      acc = _mm256_max_ps(acc, _mm256_and_ps(diff, abs_mask));
    }
    float m = HorizontalMax(acc);
    for (; d < dims; ++d) m = std::max(m, std::fabs(q[d] - r[d]));
    scores[i] = m;
  }
}
#else
#define SIMJOIN_HAVE_AVX2_PATH 0
#endif  // SIMJOIN_X86 && (GNUC || clang)

// ---------------------------------------------------------------------------
// AVX-512F scoring: 16 floats per step — at d=16 one whole candidate per
// vector — with the same 4-candidate interleave as the AVX2 tier.  The
// horizontal reductions order additions differently from the AVX2/portable
// paths, so raw float scores can differ in the last bits; the rescue band
// re-tests every near-threshold candidate with the exact scalar kernel, so
// the *mask* stays bit-identical across all tiers (asserted by the
// differential tests).

#if SIMJOIN_HAVE_AVX2_PATH
#define SIMJOIN_HAVE_AVX512_PATH 1

// GCC's AVX-512 intrinsics expand through _mm512_undefined_ps(), which GCC
// 12 itself flags as maybe-uninitialized (GCC bug 105593).  The "undefined"
// operand is the ignored pass-through lane source of an unmasked operation,
// so the warning is a false positive; silence it for this block only.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

__attribute__((target("avx512f"))) inline __m512 Abs512(__m512 v) {
  return _mm512_abs_ps(v);
}

// Manual horizontal reductions: fold the four 128-bit lanes together with
// cross-lane shuffles, then finish inside one SSE register.  (GCC's
// _mm512_reduce_*_ps helpers expand through _mm256_undefined_pd and trip
// -Wmaybe-uninitialized; these are the same instruction count.)

__attribute__((target("avx512f"))) float Sum512(__m512 v) {
  v = _mm512_add_ps(v, _mm512_shuffle_f32x4(v, v, 0x4E));  // swap 256 halves
  v = _mm512_add_ps(v, _mm512_shuffle_f32x4(v, v, 0xB1));  // swap 128 lanes
  __m128 x = _mm512_castps512_ps128(v);
  x = _mm_add_ps(x, _mm_movehl_ps(x, x));
  x = _mm_add_ss(x, _mm_shuffle_ps(x, x, 1));
  return _mm_cvtss_f32(x);
}

__attribute__((target("avx512f"))) float Max512(__m512 v) {
  v = _mm512_max_ps(v, _mm512_shuffle_f32x4(v, v, 0x4E));
  v = _mm512_max_ps(v, _mm512_shuffle_f32x4(v, v, 0xB1));
  __m128 x = _mm512_castps512_ps128(v);
  x = _mm_max_ps(x, _mm_movehl_ps(x, x));
  x = _mm_max_ss(x, _mm_shuffle_ps(x, x, 1));
  return _mm_cvtss_f32(x);
}

template <typename Rows>
__attribute__((target("avx512f"))) void ScoreBatchAvx512L1(
    const float* q, Rows rows, size_t count, size_t dims, float* scores) {
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const float* r0 = rows.row(i);
    const float* r1 = rows.row(i + 1);
    const float* r2 = rows.row(i + 2);
    const float* r3 = rows.row(i + 3);
    __m512 a0 = _mm512_setzero_ps(), a1 = _mm512_setzero_ps();
    __m512 a2 = _mm512_setzero_ps(), a3 = _mm512_setzero_ps();
    size_t d = 0;
    for (; d + 16 <= dims; d += 16) {
      const __m512 qv = _mm512_loadu_ps(q + d);
      a0 = _mm512_add_ps(a0, Abs512(_mm512_sub_ps(qv, _mm512_loadu_ps(r0 + d))));
      a1 = _mm512_add_ps(a1, Abs512(_mm512_sub_ps(qv, _mm512_loadu_ps(r1 + d))));
      a2 = _mm512_add_ps(a2, Abs512(_mm512_sub_ps(qv, _mm512_loadu_ps(r2 + d))));
      a3 = _mm512_add_ps(a3, Abs512(_mm512_sub_ps(qv, _mm512_loadu_ps(r3 + d))));
    }
    float s0 = Sum512(a0), s1 = Sum512(a1);
    float s2 = Sum512(a2), s3 = Sum512(a3);
    for (; d < dims; ++d) {
      s0 += std::fabs(q[d] - r0[d]);
      s1 += std::fabs(q[d] - r1[d]);
      s2 += std::fabs(q[d] - r2[d]);
      s3 += std::fabs(q[d] - r3[d]);
    }
    scores[i] = s0;
    scores[i + 1] = s1;
    scores[i + 2] = s2;
    scores[i + 3] = s3;
  }
  for (; i < count; ++i) {
    const float* r = rows.row(i);
    __m512 acc = _mm512_setzero_ps();
    size_t d = 0;
    for (; d + 16 <= dims; d += 16) {
      acc = _mm512_add_ps(
          acc, Abs512(_mm512_sub_ps(_mm512_loadu_ps(q + d),
                                    _mm512_loadu_ps(r + d))));
    }
    float s = Sum512(acc);
    for (; d < dims; ++d) s += std::fabs(q[d] - r[d]);
    scores[i] = s;
  }
}

template <typename Rows>
__attribute__((target("avx512f"))) void ScoreBatchAvx512L2(
    const float* q, Rows rows, size_t count, size_t dims, float* scores) {
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const float* r0 = rows.row(i);
    const float* r1 = rows.row(i + 1);
    const float* r2 = rows.row(i + 2);
    const float* r3 = rows.row(i + 3);
    __m512 a0 = _mm512_setzero_ps(), a1 = _mm512_setzero_ps();
    __m512 a2 = _mm512_setzero_ps(), a3 = _mm512_setzero_ps();
    size_t d = 0;
    for (; d + 16 <= dims; d += 16) {
      const __m512 qv = _mm512_loadu_ps(q + d);
      const __m512 d0 = _mm512_sub_ps(qv, _mm512_loadu_ps(r0 + d));
      const __m512 d1 = _mm512_sub_ps(qv, _mm512_loadu_ps(r1 + d));
      const __m512 d2 = _mm512_sub_ps(qv, _mm512_loadu_ps(r2 + d));
      const __m512 d3 = _mm512_sub_ps(qv, _mm512_loadu_ps(r3 + d));
      a0 = _mm512_fmadd_ps(d0, d0, a0);
      a1 = _mm512_fmadd_ps(d1, d1, a1);
      a2 = _mm512_fmadd_ps(d2, d2, a2);
      a3 = _mm512_fmadd_ps(d3, d3, a3);
    }
    float s0 = Sum512(a0), s1 = Sum512(a1);
    float s2 = Sum512(a2), s3 = Sum512(a3);
    for (; d < dims; ++d) {
      const float e0 = q[d] - r0[d], e1 = q[d] - r1[d];
      const float e2 = q[d] - r2[d], e3 = q[d] - r3[d];
      s0 += e0 * e0;
      s1 += e1 * e1;
      s2 += e2 * e2;
      s3 += e3 * e3;
    }
    scores[i] = s0;
    scores[i + 1] = s1;
    scores[i + 2] = s2;
    scores[i + 3] = s3;
  }
  for (; i < count; ++i) {
    const float* r = rows.row(i);
    __m512 acc = _mm512_setzero_ps();
    size_t d = 0;
    for (; d + 16 <= dims; d += 16) {
      const __m512 diff =
          _mm512_sub_ps(_mm512_loadu_ps(q + d), _mm512_loadu_ps(r + d));
      acc = _mm512_fmadd_ps(diff, diff, acc);
    }
    float s = Sum512(acc);
    for (; d < dims; ++d) {
      const float e = q[d] - r[d];
      s += e * e;
    }
    scores[i] = s;
  }
}

template <typename Rows>
__attribute__((target("avx512f"))) void ScoreBatchAvx512Linf(
    const float* q, Rows rows, size_t count, size_t dims, float* scores) {
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const float* r0 = rows.row(i);
    const float* r1 = rows.row(i + 1);
    const float* r2 = rows.row(i + 2);
    const float* r3 = rows.row(i + 3);
    __m512 a0 = _mm512_setzero_ps(), a1 = _mm512_setzero_ps();
    __m512 a2 = _mm512_setzero_ps(), a3 = _mm512_setzero_ps();
    size_t d = 0;
    for (; d + 16 <= dims; d += 16) {
      const __m512 qv = _mm512_loadu_ps(q + d);
      a0 = _mm512_max_ps(a0, Abs512(_mm512_sub_ps(qv, _mm512_loadu_ps(r0 + d))));
      a1 = _mm512_max_ps(a1, Abs512(_mm512_sub_ps(qv, _mm512_loadu_ps(r1 + d))));
      a2 = _mm512_max_ps(a2, Abs512(_mm512_sub_ps(qv, _mm512_loadu_ps(r2 + d))));
      a3 = _mm512_max_ps(a3, Abs512(_mm512_sub_ps(qv, _mm512_loadu_ps(r3 + d))));
    }
    float s0 = Max512(a0), s1 = Max512(a1);
    float s2 = Max512(a2), s3 = Max512(a3);
    for (; d < dims; ++d) {
      s0 = std::max(s0, std::fabs(q[d] - r0[d]));
      s1 = std::max(s1, std::fabs(q[d] - r1[d]));
      s2 = std::max(s2, std::fabs(q[d] - r2[d]));
      s3 = std::max(s3, std::fabs(q[d] - r3[d]));
    }
    scores[i] = s0;
    scores[i + 1] = s1;
    scores[i + 2] = s2;
    scores[i + 3] = s3;
  }
  for (; i < count; ++i) {
    const float* r = rows.row(i);
    __m512 acc = _mm512_setzero_ps();
    size_t d = 0;
    for (; d + 16 <= dims; d += 16) {
      acc = _mm512_max_ps(
          acc, Abs512(_mm512_sub_ps(_mm512_loadu_ps(q + d),
                                    _mm512_loadu_ps(r + d))));
    }
    float m = Max512(acc);
    for (; d < dims; ++d) m = std::max(m, std::fabs(q[d] - r[d]));
    scores[i] = m;
  }
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
#else
#define SIMJOIN_HAVE_AVX512_PATH 0
#endif  // SIMJOIN_HAVE_AVX2_PATH

}  // namespace

bool BatchDistanceKernel::CpuHasAvx2() {
#if SIMJOIN_HAVE_AVX2_PATH
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool BatchDistanceKernel::CpuHasAvx512() {
#if SIMJOIN_HAVE_AVX512_PATH
  return __builtin_cpu_supports("avx512f");
#else
  return false;
#endif
}

bool BatchDistanceKernel::ForceScalarEnv() {
  const char* v = std::getenv("SIMJOIN_FORCE_SCALAR");
  return v != nullptr && v[0] == '1' && v[1] == '\0';
}

KernelPath BatchDistanceKernel::EnvKernelPath() {
  const char* v = std::getenv("SIMJOIN_KERNEL_PATH");
  if (v == nullptr) return KernelPath::kAuto;
  if (std::strcmp(v, "scalar") == 0) return KernelPath::kScalar;
  if (std::strcmp(v, "portable") == 0) return KernelPath::kPortable;
  if (std::strcmp(v, "avx2") == 0) return KernelPath::kAvx2;
  if (std::strcmp(v, "avx512") == 0) return KernelPath::kAvx512;
  return KernelPath::kAuto;
}

namespace {

KernelPath ResolvePath(KernelPath preferred) {
  if (preferred == KernelPath::kAuto) {
    if (BatchDistanceKernel::ForceScalarEnv()) return KernelPath::kScalar;
    preferred = BatchDistanceKernel::EnvKernelPath();
  }
  if (preferred == KernelPath::kAuto) {
    if (BatchDistanceKernel::CpuHasAvx512()) return KernelPath::kAvx512;
    return BatchDistanceKernel::CpuHasAvx2() ? KernelPath::kAvx2
                                             : KernelPath::kPortable;
  }
  // Explicit (or env-pinned) requests the CPU cannot honour degrade one tier
  // at a time: avx512 -> avx2 -> portable.
  if (preferred == KernelPath::kAvx512 &&
      !BatchDistanceKernel::CpuHasAvx512()) {
    preferred = KernelPath::kAvx2;
  }
  if (preferred == KernelPath::kAvx2 && !BatchDistanceKernel::CpuHasAvx2()) {
    return KernelPath::kPortable;
  }
  return preferred;
}

}  // namespace

BatchDistanceKernel::BatchDistanceKernel(Metric metric, size_t dims, double eps,
                                         KernelPath preferred)
    : scalar_(metric),
      dims_(dims),
      eps_(eps),
      margin_(RescueMargin(dims)),
      path_(ResolvePath(preferred)) {
  SetEpsilon(eps);
}

void BatchDistanceKernel::SetEpsilon(double eps) {
  eps_ = eps;
  // L2 scores are squared sums, so the float threshold is eps^2; the scalar
  // reference compares the same way, so the rescue band covers the rounding
  // of both the score and this conversion.
  threshold_ = metric() == Metric::kL2 ? static_cast<float>(eps * eps)
                                       : static_cast<float>(eps);
}

bool BatchDistanceKernel::Rescue(const float* query, const float* row) {
  ++scalar_fallbacks_;
  return scalar_.WithinEpsilon(query, row, dims_, eps_);
}

template <typename Rows>
size_t BatchDistanceKernel::FilterScalarT(const float* query, Rows rows,
                                          size_t count, uint8_t* out_mask) {
  size_t kept = 0;
  for (size_t i = 0; i < count; ++i) {
    const uint8_t in = Rescue(query, rows.row(i)) ? 1 : 0;
    out_mask[i] = in;
    kept += in;
  }
  return kept;
}

template <typename Rows>
size_t BatchDistanceKernel::FilterPortableT(const float* query, Rows rows,
                                            size_t count, uint8_t* out_mask) {
  size_t kept = 0;
  for (size_t i = 0; i < count; ++i) {
    const float* row = rows.row(i);
    float score = 0.0f;
    switch (metric()) {
      case Metric::kL1:
        score = ScorePortableL1(query, row, dims_);
        break;
      case Metric::kL2:
        score = ScorePortableL2(query, row, dims_);
        break;
      case Metric::kLinf:
        score = ScorePortableLinf(query, row, dims_);
        break;
    }
    uint8_t in;
    if (std::fabs(score - threshold_) <= margin_ * (score + threshold_)) {
      in = Rescue(query, row) ? 1 : 0;
    } else {
      in = score <= threshold_ ? 1 : 0;
    }
    out_mask[i] = in;
    kept += in;
  }
  return kept;
}

template <typename Rows>
size_t BatchDistanceKernel::FilterAvx2T(const float* query, Rows rows,
                                        size_t count, uint8_t* out_mask) {
#if SIMJOIN_HAVE_AVX2_PATH
  constexpr size_t kChunk = 128;
  float scores[kChunk];
  size_t kept = 0;
  for (size_t base = 0; base < count; base += kChunk) {
    const size_t n = std::min(kChunk, count - base);
    const Rows chunk = rows.Skip(base);
    switch (metric()) {
      case Metric::kL1:
        ScoreBatchAvx2L1(query, chunk, n, dims_, scores);
        break;
      case Metric::kL2:
        ScoreBatchAvx2L2(query, chunk, n, dims_, scores);
        break;
      case Metric::kLinf:
        ScoreBatchAvx2Linf(query, chunk, n, dims_, scores);
        break;
    }
    for (size_t i = 0; i < n; ++i) {
      const float score = scores[i];
      uint8_t in;
      if (std::fabs(score - threshold_) <= margin_ * (score + threshold_)) {
        in = Rescue(query, chunk.row(i)) ? 1 : 0;
      } else {
        in = score <= threshold_ ? 1 : 0;
      }
      out_mask[base + i] = in;
      kept += in;
    }
  }
  return kept;
#else
  return FilterPortableT(query, rows, count, out_mask);
#endif
}

template <typename Rows>
size_t BatchDistanceKernel::FilterAvx512T(const float* query, Rows rows,
                                          size_t count, uint8_t* out_mask) {
#if SIMJOIN_HAVE_AVX512_PATH
  constexpr size_t kChunk = 128;
  float scores[kChunk];
  size_t kept = 0;
  for (size_t base = 0; base < count; base += kChunk) {
    const size_t n = std::min(kChunk, count - base);
    const Rows chunk = rows.Skip(base);
    switch (metric()) {
      case Metric::kL1:
        ScoreBatchAvx512L1(query, chunk, n, dims_, scores);
        break;
      case Metric::kL2:
        ScoreBatchAvx512L2(query, chunk, n, dims_, scores);
        break;
      case Metric::kLinf:
        ScoreBatchAvx512Linf(query, chunk, n, dims_, scores);
        break;
    }
    for (size_t i = 0; i < n; ++i) {
      const float score = scores[i];
      uint8_t in;
      if (std::fabs(score - threshold_) <= margin_ * (score + threshold_)) {
        in = Rescue(query, chunk.row(i)) ? 1 : 0;
      } else {
        in = score <= threshold_ ? 1 : 0;
      }
      out_mask[base + i] = in;
      kept += in;
    }
  }
  return kept;
#else
  return FilterAvx2T(query, rows, count, out_mask);
#endif
}

template <typename Rows>
size_t BatchDistanceKernel::FilterDispatch(const float* query, Rows rows,
                                           size_t count, uint8_t* out_mask) {
  if (count == 0) return 0;
  switch (path_) {
    case KernelPath::kScalar:
      return FilterScalarT(query, rows, count, out_mask);
    case KernelPath::kAvx512:
      ++simd_batches_;
      return FilterAvx512T(query, rows, count, out_mask);
    case KernelPath::kAvx2:
      ++simd_batches_;
      return FilterAvx2T(query, rows, count, out_mask);
    case KernelPath::kAuto:
    case KernelPath::kPortable:
      ++simd_batches_;
      return FilterPortableT(query, rows, count, out_mask);
  }
  return 0;
}

size_t BatchDistanceKernel::FilterWithinEpsilon(const float* query,
                                                const float* const* rows,
                                                size_t count,
                                                uint8_t* out_mask) {
  return FilterDispatch(query, GatheredRows{rows}, count, out_mask);
}

size_t BatchDistanceKernel::FilterWithinEpsilonStrided(
    const float* query, const float* base, size_t stride, size_t count,
    uint8_t* out_mask, const float* prefetch) {
  PrefetchTile(prefetch);
  return FilterDispatch(query, StridedRows{base, stride}, count, out_mask);
}

size_t BatchDistanceKernel::CountWithinEpsilon(const float* query,
                                               const float* const* rows,
                                               size_t count) {
  uint8_t mask[kTileCapacity];
  size_t kept = 0;
  for (size_t i = 0; i < count; i += kTileCapacity) {
    const size_t chunk = std::min(kTileCapacity, count - i);
    kept += FilterWithinEpsilon(query, rows + i, chunk, mask);
  }
  return kept;
}

size_t FilterTileAndEmit(BatchDistanceKernel& kernel, PointId query_id,
                         const float* query_row, CandidateTile& tile,
                         bool canonical_order, PairSink& sink,
                         JoinStats& stats) {
  if (tile.empty()) return 0;
  const size_t n = tile.size();
  uint8_t mask[CandidateTile::kCapacity];
  stats.candidate_pairs += n;
  stats.distance_calls += n;
  const size_t kept = kernel.FilterWithinEpsilon(query_row, tile.rows(), n, mask);
  if (kept != 0) {
    stats.pairs_emitted += kept;
    IdPair out[CandidateTile::kCapacity];
    size_t m = 0;
    for (size_t i = 0; i < n; ++i) {
      if (!mask[i]) continue;
      PointId a = query_id;
      PointId b = tile.ids()[i];
      if (canonical_order && a > b) std::swap(a, b);
      out[m++] = IdPair(a, b);
    }
    sink.EmitBatch(std::span<const IdPair>(out, m));
  }
  tile.Clear();
  return kept;
}

size_t FilterStridedRunAndEmit(BatchDistanceKernel& kernel, PointId query_id,
                               const float* query_row, const float* base,
                               size_t stride, const PointId* cand_ids,
                               size_t count, bool canonical_order,
                               PairSink& sink, JoinStats& stats) {
  constexpr size_t kTile = BatchDistanceKernel::kTileCapacity;
  uint8_t mask[kTile];
  IdPair out[kTile];
  size_t emitted = 0;
  stats.candidate_pairs += count;
  stats.distance_calls += count;
  for (size_t lo = 0; lo < count; lo += kTile) {
    const size_t n = std::min(kTile, count - lo);
    const float* tile_base = base + lo * stride;
    // The next tile of this run — and, on the last tile, whatever follows
    // the run in the arena (the upcoming window) — is prefetched while this
    // tile is being scored.
    const float* next = tile_base + n * stride;
    const size_t kept = kernel.FilterWithinEpsilonStrided(
        query_row, tile_base, stride, n, mask, next);
    if (kept == 0) continue;
    stats.pairs_emitted += kept;
    emitted += kept;
    size_t m = 0;
    for (size_t i = 0; i < n; ++i) {
      if (!mask[i]) continue;
      PointId a = query_id;
      PointId b = cand_ids[lo + i];
      if (canonical_order && a > b) std::swap(a, b);
      out[m++] = IdPair(a, b);
    }
    sink.EmitBatch(std::span<const IdPair>(out, m));
  }
  return emitted;
}

}  // namespace simjoin
