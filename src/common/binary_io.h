// Binary dataset persistence and streaming reads — the substrate for the
// out-of-core join (core/external_join.h).  The format is a fixed header
// (magic, version, n, dims) followed by row-major float32 payload; it
// round-trips exactly (unlike CSV) and supports batched sequential reads so
// datasets larger than memory can be streamed.

#ifndef SIMJOIN_COMMON_BINARY_IO_H_
#define SIMJOIN_COMMON_BINARY_IO_H_

#include <cstdint>
#include <fstream>
#include <string>

#include "common/dataset.h"
#include "common/status.h"

namespace simjoin {

/// Writes the dataset in simjoin binary format (exact round-trip).
Status WriteBinaryDataset(const Dataset& dataset, const std::string& path);

/// Reads a whole binary dataset into memory.
Result<Dataset> ReadBinaryDataset(const std::string& path);

/// Sequential batched reader over a binary dataset file.  Usage:
///   BinaryDatasetReader reader;
///   RETURN_NOT_OK(reader.Open(path));
///   while (!reader.AtEnd()) { reader.ReadBatch(64 << 10, &batch); ... }
class BinaryDatasetReader {
 public:
  /// Opens the file and parses the header.
  Status Open(const std::string& path);

  /// Opens a headerless row-major float32 region inside an arbitrary file:
  /// `num_points` rows of `dims` floats starting at byte_offset.  Used to
  /// stream the dataset section of an index segment file (core/segment.h)
  /// through the out-of-core join without copying it into a standalone
  /// dataset file first.  The region must lie fully inside the file.
  Status OpenRaw(const std::string& path, uint64_t byte_offset,
                 uint64_t num_points, size_t dims);

  /// Total number of points in the file (valid after Open).
  size_t total_points() const { return total_points_; }
  /// Point dimensionality (valid after Open).
  size_t dims() const { return dims_; }
  /// Number of points consumed so far.
  size_t points_read() const { return points_read_; }
  /// True once every point has been returned.
  bool AtEnd() const { return points_read_ >= total_points_; }

  /// Reads up to max_points into *batch (replacing its contents) and
  /// appends the corresponding global row indices to *first_id (the id of
  /// batch row 0); subsequent rows are consecutive.
  Status ReadBatch(size_t max_points, Dataset* batch, PointId* first_id);

 private:
  std::ifstream in_;
  size_t total_points_ = 0;
  size_t dims_ = 0;
  size_t points_read_ = 0;
};

}  // namespace simjoin

#endif  // SIMJOIN_COMMON_BINARY_IO_H_
