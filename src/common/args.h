// Tiny command-line flag parser used by bench binaries and examples.
// Flags are of the form --name=value or --name value; unknown flags are an
// error so typos never silently run the wrong experiment.

#ifndef SIMJOIN_COMMON_ARGS_H_
#define SIMJOIN_COMMON_ARGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace simjoin {

/// Declarative flag set: declare defaults, Parse(argv), then read values.
class ArgParser {
 public:
  explicit ArgParser(std::string program_description);

  /// Declares a flag with a default and a help string.  Must precede Parse.
  void AddFlag(const std::string& name, const std::string& default_value,
               const std::string& help);

  /// Declares a boolean flag usable in bare form: `--name` means true and
  /// `--name=false` (or 0/no/off) means false.  Unlike value flags, a bare
  /// boolean never consumes the following argv token.
  void AddBoolFlag(const std::string& name, bool default_value,
                   const std::string& help);

  /// Parses argv.  Returns InvalidArgument for unknown flags or missing
  /// values.  "--help" sets help_requested() instead of failing.
  Status Parse(int argc, const char* const* argv);

  bool help_requested() const { return help_requested_; }

  /// Usage text listing every declared flag.
  std::string Help() const;

  /// Accessors; fatal if the flag was never declared.
  std::string GetString(const std::string& name) const;
  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  struct Flag {
    std::string value;
    std::string default_value;
    std::string help;
    bool is_bool = false;  ///< bare `--name` allowed, never eats a token
  };

  const Flag& Find(const std::string& name) const;

  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
  bool help_requested_ = false;
};

}  // namespace simjoin

#endif  // SIMJOIN_COMMON_ARGS_H_
