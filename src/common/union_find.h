// Disjoint-set (union-find) with path compression and union by size —
// substrate for epsilon-connected-components clustering over join output.

#ifndef SIMJOIN_COMMON_UNION_FIND_H_
#define SIMJOIN_COMMON_UNION_FIND_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace simjoin {

/// Disjoint sets over elements 0..n-1.
class UnionFind {
 public:
  /// n singleton sets.
  explicit UnionFind(size_t n);

  /// Representative of x's set (with path compression).
  size_t Find(size_t x);

  /// Merges the sets of a and b; returns true iff they were distinct.
  bool Union(size_t a, size_t b);

  /// Current number of disjoint sets.
  size_t NumComponents() const { return components_; }

  /// Number of elements in x's set.
  size_t ComponentSize(size_t x);

  /// Dense labels 0..NumComponents()-1, assigned in order of first
  /// appearance (deterministic).
  std::vector<uint32_t> DenseLabels();

 private:
  std::vector<uint32_t> parent_;
  std::vector<uint32_t> size_;
  size_t components_;
};

}  // namespace simjoin

#endif  // SIMJOIN_COMMON_UNION_FIND_H_
