#include "common/net.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace simjoin {
namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

Status ResolveIpv4(const std::string& host, uint16_t port,
                   sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  const std::string ip = (host == "localhost" || host.empty())
                             ? std::string("127.0.0.1")
                             : host;
  if (inet_pton(AF_INET, ip.c_str(), &addr->sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  return Status::OK();
}

}  // namespace

TcpSocket& TcpSocket::operator=(TcpSocket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Result<TcpSocket> TcpSocket::Connect(const std::string& host, uint16_t port) {
  sockaddr_in addr;
  SIMJOIN_RETURN_NOT_OK(ResolveIpv4(host, port, &addr));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  TcpSocket sock(fd);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Errno("connect to " + host + ":" + std::to_string(port));
  }
  SIMJOIN_RETURN_NOT_OK(sock.SetNoDelay(true));
  return sock;
}

Status TcpSocket::SendAll(const void* data, size_t len) {
  const char* p = static_cast<const char*>(data);
  size_t left = len;
  while (left > 0) {
    const ssize_t n = ::send(fd_, p, left, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status TcpSocket::RecvAll(void* data, size_t len) {
  char* p = static_cast<char*>(data);
  size_t left = len;
  while (left > 0) {
    const ssize_t n = ::recv(fd_, p, left, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    if (n == 0) return Status::IoError("connection closed");
    p += n;
    left -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status TcpSocket::RecvSome(void* data, size_t cap, size_t* n, bool* eof) {
  *n = 0;
  *eof = false;
  const ssize_t got = ::recv(fd_, data, cap, 0);
  if (got < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      return Status::OK();
    }
    return Errno("recv");
  }
  if (got == 0) {
    *eof = true;
    return Status::OK();
  }
  *n = static_cast<size_t>(got);
  return Status::OK();
}

Status TcpSocket::SendSome(const void* data, size_t len, size_t* sent) {
  *sent = 0;
  const ssize_t n = ::send(fd_, data, len, MSG_NOSIGNAL);
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      return Status::OK();
    }
    return Errno("send");
  }
  *sent = static_cast<size_t>(n);
  return Status::OK();
}

Status TcpSocket::SetNonBlocking(bool on) {
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  const int next = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd_, F_SETFL, next) != 0) return Errno("fcntl(F_SETFL)");
  return Status::OK();
}

Status TcpSocket::SetNoDelay(bool on) {
  const int v = on ? 1 : 0;
  if (::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &v, sizeof(v)) != 0) {
    return Errno("setsockopt(TCP_NODELAY)");
  }
  return Status::OK();
}

void TcpSocket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status TcpListener::Listen(const std::string& host, uint16_t port,
                           int backlog) {
  Close();
  sockaddr_in addr;
  SIMJOIN_RETURN_NOT_OK(ResolveIpv4(host, port, &addr));
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status st = Errno("bind " + host + ":" + std::to_string(port));
    Close();
    return st;
  }
  if (::listen(fd_, backlog) != 0) {
    const Status st = Errno("listen");
    Close();
    return st;
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    const Status st = Errno("getsockname");
    Close();
    return st;
  }
  port_ = ntohs(bound.sin_port);
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) != 0) {
    const Status st = Errno("fcntl(O_NONBLOCK)");
    Close();
    return st;
  }
  return Status::OK();
}

Result<TcpSocket> TcpListener::Accept() {
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
        errno == ECONNABORTED) {
      return TcpSocket();  // nothing pending
    }
    return Errno("accept");
  }
  TcpSocket sock(fd);
  SIMJOIN_RETURN_NOT_OK(sock.SetNonBlocking(true));
  SIMJOIN_RETURN_NOT_OK(sock.SetNoDelay(true));
  return sock;
}

void TcpListener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  port_ = 0;
}

Status WakePipe::Open() {
  Close();
  if (::pipe(fds_) != 0) return Errno("pipe");
  for (int i = 0; i < 2; ++i) {
    const int flags = ::fcntl(fds_[i], F_GETFL, 0);
    if (flags < 0 || ::fcntl(fds_[i], F_SETFL, flags | O_NONBLOCK) != 0) {
      const Status st = Errno("fcntl(O_NONBLOCK)");
      Close();
      return st;
    }
  }
  return Status::OK();
}

void WakePipe::Notify() {
  if (fds_[1] < 0) return;
  const char byte = 1;
  // Non-blocking: if the pipe is full the reader is already signalled.
  [[maybe_unused]] ssize_t n = ::write(fds_[1], &byte, 1);
}

void WakePipe::Drain() {
  if (fds_[0] < 0) return;
  char buf[256];
  while (::read(fds_[0], buf, sizeof(buf)) > 0) {
  }
}

void WakePipe::Close() {
  for (int i = 0; i < 2; ++i) {
    if (fds_[i] >= 0) {
      ::close(fds_[i]);
      fds_[i] = -1;
    }
  }
}

}  // namespace simjoin
