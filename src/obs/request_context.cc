#include "obs/request_context.h"

#include <ctime>
#include <utility>

#include "obs/trace.h"

namespace simjoin {
namespace obs {

uint64_t RequestProfile::ChildWallNanos(uint32_t parent) const {
  uint64_t total = 0;
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].parent == parent) total += nodes[i].wall_ns;
  }
  return total;
}

RequestProfileCollector::RequestProfileCollector(uint64_t trace_id,
                                                 uint64_t epoch_ns)
    : trace_id_(trace_id), epoch_ns_(epoch_ns) {
  nodes_.reserve(16);
  internal::AddProfileCapture(+1);
}

RequestProfileCollector::~RequestProfileCollector() {
  internal::AddProfileCapture(-1);
}

uint32_t RequestProfileCollector::BeginPhase(const char* name, uint32_t parent,
                                             uint64_t start_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  if (nodes_.size() >= kMaxProfileNodes) {
    ++dropped_nodes_;
    return kProfileNoParent;
  }
  ProfileNode node;
  node.parent = parent;
  node.name = name;
  node.start_ns = start_ns > epoch_ns_ ? start_ns - epoch_ns_ : 0;
  nodes_.push_back(std::move(node));
  return static_cast<uint32_t>(nodes_.size() - 1);
}

void RequestProfileCollector::EndPhase(uint32_t node, uint64_t end_ns,
                                       uint64_t cpu_ns) {
  if (node == kProfileNoParent) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (node >= nodes_.size()) return;
  ProfileNode& n = nodes_[node];
  const uint64_t end_rel = end_ns > epoch_ns_ ? end_ns - epoch_ns_ : 0;
  n.wall_ns = end_rel > n.start_ns ? end_rel - n.start_ns : 0;
  n.cpu_ns = cpu_ns;
}

uint32_t RequestProfileCollector::AddPhase(const char* name, uint32_t parent,
                                           uint64_t start_ns, uint64_t wall_ns,
                                           uint64_t cpu_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  if (nodes_.size() >= kMaxProfileNodes) {
    ++dropped_nodes_;
    return kProfileNoParent;
  }
  ProfileNode node;
  node.parent = parent;
  node.name = name;
  node.start_ns = start_ns > epoch_ns_ ? start_ns - epoch_ns_ : 0;
  node.wall_ns = wall_ns;
  node.cpu_ns = cpu_ns;
  nodes_.push_back(std::move(node));
  return static_cast<uint32_t>(nodes_.size() - 1);
}

void RequestProfileCollector::AddCounter(std::string_view name,
                                         uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  for (ProfileCounter& c : counters_) {
    if (c.name == name) {
      c.value += delta;
      return;
    }
  }
  if (counters_.size() >= kMaxProfileCounters) return;
  counters_.push_back({std::string(name), delta});
}

void RequestProfileCollector::SetPlan(std::string plan) {
  std::lock_guard<std::mutex> lock(mu_);
  plan_ = std::move(plan);
}

RequestProfile RequestProfileCollector::Finish(uint64_t end_ns) const {
  std::lock_guard<std::mutex> lock(mu_);
  RequestProfile profile;
  profile.trace_id = trace_id_;
  profile.total_wall_ns = end_ns > epoch_ns_ ? end_ns - epoch_ns_ : 0;
  profile.plan = plan_;
  profile.nodes = nodes_;
  profile.counters = counters_;
  profile.dropped_nodes = dropped_nodes_;
  return profile;
}

namespace internal {

RequestContext& MutableRequestContext() {
  thread_local RequestContext ctx;
  return ctx;
}

}  // namespace internal

RequestContext CurrentRequestContext() {
  return internal::MutableRequestContext();
}

ScopedRequestContext::ScopedRequestContext(const RequestContext& ctx) {
  RequestContext& slot = internal::MutableRequestContext();
  prev_ = slot;
  slot = ctx;
}

ScopedRequestContext::~ScopedRequestContext() {
  internal::MutableRequestContext() = prev_;
}

void AddRequestCounter(std::string_view name, uint64_t delta) {
  const RequestContext& ctx = internal::MutableRequestContext();
  if (ctx.collector != nullptr) ctx.collector->AddCounter(name, delta);
}

uint64_t ThreadCpuNanos() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  struct timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<uint64_t>(ts.tv_nsec);
#else
  return 0;
#endif
}

}  // namespace obs
}  // namespace simjoin
