#include "obs/trace.h"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/request_context.h"

namespace simjoin {
namespace obs {

namespace internal {

std::atomic<uint32_t> g_capture_flags{0};

void AddProfileCapture(int delta) {
  g_capture_flags.fetch_add(static_cast<uint32_t>(delta * 2),
                            std::memory_order_relaxed);
}

uint64_t TraceNowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace internal

namespace {

struct TraceEvent {
  const char* name;
  uint64_t start_ns;
  uint64_t end_ns;
  uint32_t tid;
  uint64_t trace_id;  ///< request trace context, 0 when none
};

/// Bounds memory for runaway traces: ~1M events/thread ≈ 24 MB/thread.
constexpr size_t kMaxEventsPerThread = 1 << 20;

/// Per-thread event buffer.  Owned by the global list (not the thread) so
/// events survive thread exit and can be merged after pool shutdown.  The
/// per-buffer mutex is only ever contended during StopTracing's merge.
struct EventBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
  uint64_t dropped = 0;
};

struct TraceState {
  std::mutex mu;  // guards buffers list membership + path + start/stop
  std::vector<std::unique_ptr<EventBuffer>> buffers;
  std::string out_path;
};

TraceState& State() {
  // Never destroyed for the same reason as GlobalMetrics(): threads may
  // record spans during static teardown.
  static TraceState* const state = new TraceState();
  return *state;
}

EventBuffer& ThreadBuffer() {
  thread_local EventBuffer* buffer = [] {
    auto owned = std::make_unique<EventBuffer>();
    EventBuffer* raw = owned.get();
    TraceState& state = State();
    std::lock_guard<std::mutex> lock(state.mu);
    state.buffers.push_back(std::move(owned));
    return raw;
  }();
  return *buffer;
}

void JsonEscape(std::ostream& os, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          os << "\\u00" << kHex[(c >> 4) & 0xf] << kHex[c & 0xf];
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

namespace internal {

void AppendTraceEvent(const char* name, uint64_t start_ns, uint64_t end_ns,
                      uint64_t trace_id) {
  EventBuffer& buffer = ThreadBuffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  if (buffer.events.size() >= kMaxEventsPerThread) {
    ++buffer.dropped;
    return;
  }
  buffer.events.push_back(
      {name, start_ns, end_ns,
       static_cast<uint32_t>(internal::ThreadShardSlot()), trace_id});
}

}  // namespace internal

void TraceSpan::Begin(const char* name) {
  const uint64_t now = internal::TraceNowNanos();
  const RequestContext& ctx = internal::MutableRequestContext();
  name_ = TracingEnabled() ? name : nullptr;
  trace_id_ = ctx.trace_id;
  start_ns_ = now;
  collector_ = nullptr;
  node_ = kProfileNoParent;
  prev_node_ = kProfileNoParent;
  cpu_start_ns_ = 0;
  if (ctx.collector != nullptr) {
    collector_ = ctx.collector;
    prev_node_ = ctx.node;
    node_ = ctx.collector->BeginPhase(name, ctx.node, now);
    internal::MutableRequestContext().node = node_;
    cpu_start_ns_ = ThreadCpuNanos();
  }
  armed_ = name_ != nullptr || collector_ != nullptr;
}

void TraceSpan::End() {
  const uint64_t now = internal::TraceNowNanos();
  if (name_ != nullptr) {
    internal::AppendTraceEvent(name_, start_ns_, now, trace_id_);
  }
  if (collector_ != nullptr) {
    auto* collector = static_cast<RequestProfileCollector*>(collector_);
    const uint64_t cpu = ThreadCpuNanos();
    collector->EndPhase(node_, now,
                        cpu > cpu_start_ns_ ? cpu - cpu_start_ns_ : 0);
    internal::MutableRequestContext().node = prev_node_;
  }
}

Status StartTracing(const std::string& path) {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  if (TracingEnabled()) {
    return Status::InvalidArgument("tracing already active (writing to '" +
                                   state.out_path + "')");
  }
  if (path.empty()) {
    return Status::InvalidArgument("trace output path must not be empty");
  }
  for (const auto& buffer : state.buffers) {
    std::lock_guard<std::mutex> buf_lock(buffer->mu);
    buffer->events.clear();
    buffer->dropped = 0;
  }
  state.out_path = path;
  internal::g_capture_flags.fetch_or(internal::kCaptureTracingBit,
                                     std::memory_order_relaxed);
  return Status::OK();
}

void WriteTraceJson(std::ostream& os) {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& buffer : state.buffers) {
    std::lock_guard<std::mutex> buf_lock(buffer->mu);
    for (const TraceEvent& ev : buffer->events) {
      if (!first) os << ",";
      first = false;
      // Complete event ("ph":"X"): timestamps and durations are in
      // microseconds per the Chrome trace format.
      os << "\n{\"name\":\"";
      JsonEscape(os, ev.name);
      os << "\",\"cat\":\"simjoin\",\"ph\":\"X\",\"ts\":"
         << static_cast<double>(ev.start_ns) * 1e-3
         << ",\"dur\":" << static_cast<double>(ev.end_ns - ev.start_ns) * 1e-3
         << ",\"pid\":1,\"tid\":" << ev.tid;
      if (ev.trace_id != 0) {
        os << ",\"args\":{\"trace_id\":" << ev.trace_id << "}";
      }
      os << "}";
    }
  }
  os << "\n]}\n";
}

Status StopTracing() {
  if (!TracingEnabled()) {
    return Status::OK();
  }
  internal::g_capture_flags.fetch_and(~internal::kCaptureTracingBit,
                                      std::memory_order_relaxed);
  TraceState& state = State();
  std::string path;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    path = state.out_path;
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open trace output file '" + path + "'");
  }
  WriteTraceJson(out);
  out.flush();
  if (!out) {
    return Status::IoError("failed writing trace output file '" + path + "'");
  }
  const uint64_t events = TraceEventCount();
  const uint64_t dropped = TraceDroppedEventCount();
  SIMJOIN_LOG(Info) << "wrote " << events << " trace events to '" << path
                    << "'" << (dropped > 0
                                   ? " (" + std::to_string(dropped) +
                                         " dropped at per-thread cap)"
                                   : "");
  std::lock_guard<std::mutex> lock(state.mu);
  for (const auto& buffer : state.buffers) {
    std::lock_guard<std::mutex> buf_lock(buffer->mu);
    buffer->events.clear();
    buffer->dropped = 0;
  }
  state.out_path.clear();
  return Status::OK();
}

uint64_t TraceEventCount() {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  uint64_t total = 0;
  for (const auto& buffer : state.buffers) {
    std::lock_guard<std::mutex> buf_lock(buffer->mu);
    total += buffer->events.size();
  }
  return total;
}

uint64_t TraceDroppedEventCount() {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  uint64_t total = 0;
  for (const auto& buffer : state.buffers) {
    std::lock_guard<std::mutex> buf_lock(buffer->mu);
    total += buffer->dropped;
  }
  return total;
}

namespace {

/// SIMJOIN_TRACE=<path> starts a process-lifetime trace flushed at normal
/// exit, mirroring the tools' --trace-out flag for code paths without one.
struct EnvTraceInit {
  EnvTraceInit() {
    const char* path = std::getenv("SIMJOIN_TRACE");
    if (path == nullptr || path[0] == '\0') return;
    const Status st = StartTracing(path);
    if (!st.ok()) {
      SIMJOIN_LOG(Warning) << "SIMJOIN_TRACE: " << st.ToString();
      return;
    }
    std::atexit([] {
      const Status stop = StopTracing();
      if (!stop.ok()) {
        SIMJOIN_LOG(Warning) << "SIMJOIN_TRACE flush: " << stop.ToString();
      }
    });
  }
};
const EnvTraceInit g_env_trace_init;

}  // namespace

}  // namespace obs
}  // namespace simjoin
