// Scoped phase tracing with Chrome-/Perfetto-compatible JSON export.
//
// A TraceSpan records one named phase (partition/build, traversal, SIMD
// filter, emit/merge, ...) as a complete ("ph":"X") trace event.  Tracing
// is off by default: the entire cost of a span with tracing disabled is
// one relaxed atomic load and a predictable branch, so spans can stay
// compiled into release hot paths.  When enabled, each thread appends to
// its own event buffer (one mutex per buffer, uncontended in steady
// state) and StopTracing() merges everything into a `traceEvents` JSON
// array that chrome://tracing and https://ui.perfetto.dev load directly.
//
// Enable programmatically:
//
//   SIMJOIN_RETURN_NOT_OK(obs::StartTracing("join.trace.json"));
//   ... run the join ...
//   SIMJOIN_RETURN_NOT_OK(obs::StopTracing());   // writes the file
//
// or from the environment: SIMJOIN_TRACE=/path/to/trace.json starts
// tracing at process start and flushes at normal process exit.  Tools
// expose the same via --trace-out.
//
// Span names must be string literals (or otherwise outlive tracing):
// spans store the pointer, not a copy, to keep the enabled path cheap.

#ifndef SIMJOIN_OBS_TRACE_H_
#define SIMJOIN_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>

#include "common/status.h"

namespace simjoin {
namespace obs {

namespace internal {
extern std::atomic<bool> g_tracing_enabled;
uint64_t TraceNowNanos();
void AppendTraceEvent(const char* name, uint64_t start_ns, uint64_t end_ns);
}  // namespace internal

/// True while a trace is being collected (one relaxed load).
inline bool TracingEnabled() {
  return internal::g_tracing_enabled.load(std::memory_order_relaxed);
}

/// Starts collecting trace events; StopTracing() will write them to
/// `path`.  Fails if tracing is already active.
Status StartTracing(const std::string& path);

/// Stops collecting, writes the JSON trace to the path given to
/// StartTracing(), and clears the event buffers.  No-op (OK) when
/// tracing was never started.
Status StopTracing();

/// Number of events collected so far (approximate while threads are
/// still recording) and events dropped due to the per-thread cap.
uint64_t TraceEventCount();
uint64_t TraceDroppedEventCount();

/// Serialises collected events as Chrome trace JSON without clearing or
/// stopping.  Exposed for tests; StopTracing() is the normal path.
void WriteTraceJson(std::ostream& os);

/// RAII span: captures the start time if tracing is enabled at
/// construction and appends one complete event at destruction.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name)
      : name_(TracingEnabled() ? name : nullptr),
        start_ns_(name_ != nullptr ? internal::TraceNowNanos() : 0) {}

  ~TraceSpan() {
    if (name_ != nullptr) {
      internal::AppendTraceEvent(name_, start_ns_, internal::TraceNowNanos());
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  uint64_t start_ns_;
};

#define SIMJOIN_TRACE_CONCAT_INNER(a, b) a##b
#define SIMJOIN_TRACE_CONCAT(a, b) SIMJOIN_TRACE_CONCAT_INNER(a, b)

/// Declares a scoped span covering the rest of the enclosing block.
/// `name` must be a string literal.
#define SIMJOIN_TRACE_SPAN(name)                                    \
  ::simjoin::obs::TraceSpan SIMJOIN_TRACE_CONCAT(simjoin_trace_span_, \
                                                 __LINE__)(name)

}  // namespace obs
}  // namespace simjoin

#endif  // SIMJOIN_OBS_TRACE_H_
