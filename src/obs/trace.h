// Scoped phase tracing with Chrome-/Perfetto-compatible JSON export.
//
// A TraceSpan records one named phase (partition/build, traversal, SIMD
// filter, emit/merge, ...) as a complete ("ph":"X") trace event.  Tracing
// is off by default: the entire cost of a span with tracing disabled is
// one relaxed atomic load and a predictable branch, so spans can stay
// compiled into release hot paths.  When enabled, each thread appends to
// its own event buffer (one mutex per buffer, uncontended in steady
// state) and StopTracing() merges everything into a `traceEvents` JSON
// array that chrome://tracing and https://ui.perfetto.dev load directly.
//
// Enable programmatically:
//
//   SIMJOIN_RETURN_NOT_OK(obs::StartTracing("join.trace.json"));
//   ... run the join ...
//   SIMJOIN_RETURN_NOT_OK(obs::StopTracing());   // writes the file
//
// or from the environment: SIMJOIN_TRACE=/path/to/trace.json starts
// tracing at process start and flushes at normal process exit.  Tools
// expose the same via --trace-out.
//
// Span names must be string literals (or otherwise outlive tracing):
// spans store the pointer, not a copy, to keep the enabled path cheap.

#ifndef SIMJOIN_OBS_TRACE_H_
#define SIMJOIN_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>

#include "common/status.h"

namespace simjoin {
namespace obs {

namespace internal {
/// Combined capture gate: bit 0 is "global tracing active"; the remaining
/// bits count live RequestProfileCollectors (each adds 2).  TraceSpan's
/// disabled path is one relaxed load of this word — folding both capture
/// modes into a single atomic keeps that invariant as profiling rides the
/// same spans.
extern std::atomic<uint32_t> g_capture_flags;
inline constexpr uint32_t kCaptureTracingBit = 1u;

inline bool CaptureEnabled() {
  return g_capture_flags.load(std::memory_order_relaxed) != 0;
}

/// Raises/lowers the profile-collector refcount (request_context.cc).
void AddProfileCapture(int delta);

uint64_t TraceNowNanos();
void AppendTraceEvent(const char* name, uint64_t start_ns, uint64_t end_ns,
                      uint64_t trace_id);
}  // namespace internal

/// True while a trace is being collected (one relaxed load).
inline bool TracingEnabled() {
  return (internal::g_capture_flags.load(std::memory_order_relaxed) &
          internal::kCaptureTracingBit) != 0;
}

/// Starts collecting trace events; StopTracing() will write them to
/// `path`.  Fails if tracing is already active.
Status StartTracing(const std::string& path);

/// Stops collecting, writes the JSON trace to the path given to
/// StartTracing(), and clears the event buffers.  No-op (OK) when
/// tracing was never started.
Status StopTracing();

/// Number of events collected so far (approximate while threads are
/// still recording) and events dropped due to the per-thread cap.
uint64_t TraceEventCount();
uint64_t TraceDroppedEventCount();

/// Serialises collected events as Chrome trace JSON without clearing or
/// stopping.  Exposed for tests; StopTracing() is the normal path.
void WriteTraceJson(std::ostream& os);

/// RAII span: captures the start time if any capture mode is active at
/// construction and, at destruction, appends one complete event to the
/// global trace buffers (when tracing) and/or one phase node to the
/// current request's profile collector (when the thread is working for a
/// profiled request — see obs/request_context.h).  Inactive cost is one
/// relaxed atomic load and one store.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) : armed_(false) {
    if (internal::CaptureEnabled()) Begin(name);
  }

  ~TraceSpan() {
    if (armed_) End();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  // Out of line: the armed path touches thread-locals and clocks that
  // would bloat every call site if inlined.
  void Begin(const char* name);
  void End();

  const char* name_;        ///< non-null -> emit a global trace event
  void* collector_;         ///< RequestProfileCollector* when profiling
  uint64_t trace_id_;
  uint64_t start_ns_;
  uint64_t cpu_start_ns_;
  uint32_t node_;           ///< profile node opened by this span
  uint32_t prev_node_;      ///< parent restored when the span closes
  bool armed_;
};

#define SIMJOIN_TRACE_CONCAT_INNER(a, b) a##b
#define SIMJOIN_TRACE_CONCAT(a, b) SIMJOIN_TRACE_CONCAT_INNER(a, b)

/// Declares a scoped span covering the rest of the enclosing block.
/// `name` must be a string literal.
#define SIMJOIN_TRACE_SPAN(name)                                    \
  ::simjoin::obs::TraceSpan SIMJOIN_TRACE_CONCAT(simjoin_trace_span_, \
                                                 __LINE__)(name)

}  // namespace obs
}  // namespace simjoin

#endif  // SIMJOIN_OBS_TRACE_H_
