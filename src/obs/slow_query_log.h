// Structured slow-query log: a bounded in-memory ring of per-request
// profiles plus an optional JSONL file sink.
//
// The service records one SlowQueryEntry for every request that either
// exceeded the configured latency threshold or failed — carrying the same
// RequestProfile the EXPLAIN ANALYZE extension ships, so a slow request
// leaves behind the phase breakdown that explains *why* it was slow, not
// just that it was.  The ring is drainable over the wire (Stats RPC
// extension, `simjoin_client slowlog`); the JSONL sink makes entries
// survive the process.
//
// The sink is rotation-safe: each write opens the path in append mode and
// closes it again, so an external logrotate can move the file at any time
// and the next entry recreates it.  A per-second rate limit bounds the
// sink's cost during incident storms; suppressed writes are counted, and
// the ring (which is cheap) still records every entry regardless.

#ifndef SIMJOIN_OBS_SLOW_QUERY_LOG_H_
#define SIMJOIN_OBS_SLOW_QUERY_LOG_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "obs/request_context.h"

namespace simjoin {
namespace obs {

/// One recorded request.  Times are microseconds; unix_micros is wall
/// clock at record time (stamped by Record when left 0).
struct SlowQueryEntry {
  uint64_t unix_micros = 0;
  uint64_t trace_id = 0;
  uint64_t request_id = 0;
  uint8_t op = 0;  ///< wire frame type of the request
  std::string index;
  uint64_t wall_us = 0;
  uint32_t status_code = 0;  ///< wire StatusCode; 0 = ok
  std::string status_message;
  RequestProfile profile;

  bool operator==(const SlowQueryEntry&) const = default;
};

class SlowQueryLog {
 public:
  struct Options {
    /// Ring entries kept for draining (oldest evicted past this).
    size_t capacity = 512;
    /// JSONL sink path; empty disables the file sink.
    std::string jsonl_path;
    /// Sink writes allowed per second (the ring is unlimited-rate).
    uint64_t sink_max_per_sec = 100;
  };

  explicit SlowQueryLog(Options options);

  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  /// Records one entry: always into the ring, and into the JSONL sink when
  /// configured and under the rate limit.  Thread-safe.
  void Record(SlowQueryEntry entry);

  /// Removes and returns up to `max` entries, oldest first.
  std::vector<SlowQueryEntry> Drain(size_t max);

  /// Entries ever recorded / evicted from the ring before being drained /
  /// sink writes suppressed by the rate limit / sink open-or-write errors.
  uint64_t recorded() const;
  uint64_t evicted() const;
  uint64_t sink_suppressed() const;
  uint64_t sink_errors() const;

  /// One-line JSON rendering used by the sink (exposed for tests/tools).
  static std::string ToJsonLine(const SlowQueryEntry& entry);

 private:
  void WriteSinkLocked(const SlowQueryEntry& entry);

  const Options options_;
  mutable std::mutex mu_;
  std::deque<SlowQueryEntry> ring_;
  uint64_t recorded_ = 0;
  uint64_t evicted_ = 0;
  uint64_t sink_suppressed_ = 0;
  uint64_t sink_errors_ = 0;
  uint64_t window_start_us_ = 0;  ///< current rate-limit second
  uint64_t window_writes_ = 0;
};

}  // namespace obs
}  // namespace simjoin

#endif  // SIMJOIN_OBS_SLOW_QUERY_LOG_H_
