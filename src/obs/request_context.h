// Request-scoped observability context: per-request span trees and the
// thread-propagated context that attributes work back to one request.
//
// A RequestContext is a small value (trace id + optional profile collector
// + current phase node) installed into thread-local storage for a scope by
// ScopedRequestContext.  While installed, every TraceSpan on the thread
// does double duty: it still feeds the global Chrome-trace buffers when
// tracing is on, and it *also* records a phase node (wall + thread-CPU
// time, parent-linked into a tree) into the request's
// RequestProfileCollector when the request asked to be profiled.  The
// ThreadPool captures the submitting thread's context when a task is
// enqueued and restores it around execution, so spans inside pool tasks —
// parallel joins, fused batch sweeps — land in the right request's tree.
//
// The disabled path stays free: TraceSpan's constructor checks one shared
// relaxed atomic (the capture gate in trace.h) that is non-zero only while
// tracing is active or at least one profile collector is alive.  With the
// gate at zero nothing here is ever touched.
//
// A RequestProfile is the finished, serialisable result: a bounded flat
// node tree plus named counters and the planner's decision.  The service
// ships it over the wire as the EXPLAIN ANALYZE response extension and
// into the slow-query log (obs/slow_query_log.h).

#ifndef SIMJOIN_OBS_REQUEST_CONTEXT_H_
#define SIMJOIN_OBS_REQUEST_CONTEXT_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace simjoin {
namespace obs {

/// Parent sentinel for root phase nodes.
inline constexpr uint32_t kProfileNoParent = 0xFFFFFFFFu;
/// Bounds a profile against runaway span recursion (and hostile payloads
/// on the parse side): more phases than this are counted, not stored.
inline constexpr uint32_t kMaxProfileNodes = 4096;
inline constexpr uint32_t kMaxProfileCounters = 256;

/// One phase in a request's span tree.  Times are relative to the
/// collector's epoch (request admission), so profiles from different
/// machines line up without clock agreement.
struct ProfileNode {
  uint32_t parent = kProfileNoParent;  ///< index into nodes; sentinel = root
  std::string name;
  uint64_t start_ns = 0;  ///< offset from the profile epoch
  uint64_t wall_ns = 0;
  uint64_t cpu_ns = 0;  ///< thread CPU time consumed inside the phase

  bool operator==(const ProfileNode&) const = default;
};

struct ProfileCounter {
  std::string name;
  uint64_t value = 0;

  bool operator==(const ProfileCounter&) const = default;
};

/// Finished per-request profile: phase tree + counters + planner decision.
struct RequestProfile {
  uint64_t trace_id = 0;
  uint64_t total_wall_ns = 0;  ///< admission -> response built
  std::string plan;            ///< planner decision, human-readable
  std::vector<ProfileNode> nodes;
  std::vector<ProfileCounter> counters;
  uint64_t dropped_nodes = 0;  ///< phases past kMaxProfileNodes

  bool operator==(const RequestProfile&) const = default;

  /// Sum of wall time over the direct children of `parent` (the coverage
  /// numerator for the root); 0 when the node has no children.
  uint64_t ChildWallNanos(uint32_t parent) const;
};

/// Thread-safe accumulator for one request's profile.  Constructing one
/// raises the shared capture gate (so TraceSpans start recording) and
/// destruction lowers it; keep the collector alive until every task of the
/// request has finished.  All methods may be called from any thread.
class RequestProfileCollector {
 public:
  /// `epoch_ns` anchors node start offsets (pass the admission timestamp
  /// from internal::TraceNowNanos()'s clock).
  RequestProfileCollector(uint64_t trace_id, uint64_t epoch_ns);
  ~RequestProfileCollector();

  RequestProfileCollector(const RequestProfileCollector&) = delete;
  RequestProfileCollector& operator=(const RequestProfileCollector&) = delete;

  uint64_t trace_id() const { return trace_id_; }
  uint64_t epoch_ns() const { return epoch_ns_; }

  /// Opens a phase; returns its node index (or kProfileNoParent when the
  /// node cap is hit — EndPhase on the sentinel is a no-op).
  uint32_t BeginPhase(const char* name, uint32_t parent, uint64_t start_ns);
  void EndPhase(uint32_t node, uint64_t end_ns, uint64_t cpu_ns);

  /// Records a completed phase in one call (retroactive attribution: queue
  /// wait measured from the admission stamp, a fused batch's shared sweep
  /// attributed to every member).  Returns the node index.
  uint32_t AddPhase(const char* name, uint32_t parent, uint64_t start_ns,
                    uint64_t wall_ns, uint64_t cpu_ns);

  /// Accumulates into a named counter (created on first use).
  void AddCounter(std::string_view name, uint64_t delta);

  void SetPlan(std::string plan);

  /// Snapshots the finished profile; total wall is `end_ns - epoch_ns`.
  RequestProfile Finish(uint64_t end_ns) const;

 private:
  const uint64_t trace_id_;
  const uint64_t epoch_ns_;
  mutable std::mutex mu_;
  std::string plan_;
  std::vector<ProfileNode> nodes_;
  std::vector<ProfileCounter> counters_;
  uint64_t dropped_nodes_ = 0;
};

/// The thread-propagated context: which request this thread is currently
/// working for.  `node` is the phase new spans attach under, so spans in a
/// pool task nest beneath the span that submitted the task.
struct RequestContext {
  uint64_t trace_id = 0;
  RequestProfileCollector* collector = nullptr;
  uint32_t node = kProfileNoParent;

  bool active() const { return trace_id != 0 || collector != nullptr; }
};

/// The calling thread's current context (inactive default when none).
RequestContext CurrentRequestContext();

/// Installs `ctx` as the thread's context for the enclosing scope and
/// restores the previous one on destruction.  Used by request handlers and
/// by the ThreadPool around propagated tasks.
class ScopedRequestContext {
 public:
  explicit ScopedRequestContext(const RequestContext& ctx);
  ~ScopedRequestContext();

  ScopedRequestContext(const ScopedRequestContext&) = delete;
  ScopedRequestContext& operator=(const ScopedRequestContext&) = delete;

 private:
  RequestContext prev_;
};

/// Adds to a profile counter of the current request; no-op (one thread-
/// local read) when the thread is not working for a profiled request.
/// Cheap enough for per-batch call sites, not for per-pair loops.
void AddRequestCounter(std::string_view name, uint64_t delta);

/// CLOCK_THREAD_CPUTIME_ID in nanoseconds (0 where unsupported).
uint64_t ThreadCpuNanos();

namespace internal {

/// Raw thread-local slot, exposed for TraceSpan's recording path.
RequestContext& MutableRequestContext();

}  // namespace internal

}  // namespace obs
}  // namespace simjoin

#endif  // SIMJOIN_OBS_REQUEST_CONTEXT_H_
