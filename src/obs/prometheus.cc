#include "obs/prometheus.h"

#include <cctype>
#include <sstream>

namespace simjoin {
namespace obs {

namespace {

std::string Sanitize(const std::string& name) {
  std::string out = "simjoin_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void FmtDouble(std::ostringstream& os, double v) {
  // Prometheus accepts plain decimal or scientific notation; the default
  // ostream formatting of a double satisfies both.
  os << v;
}

}  // namespace

std::string RenderPrometheusText(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  for (const CounterSample& c : snapshot.counters) {
    const std::string name = Sanitize(c.name) + "_total";
    os << "# TYPE " << name << " counter\n";
    os << name << " " << c.value << "\n";
  }
  for (const GaugeSample& g : snapshot.gauges) {
    const std::string name = Sanitize(g.name);
    os << "# TYPE " << name << " gauge\n";
    os << name << " " << g.value << "\n";
  }
  for (const HistogramSample& h : snapshot.histograms) {
    const std::string name = Sanitize(h.name);
    os << "# TYPE " << name << " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.boundaries.size() && i < h.counts.size(); ++i) {
      cumulative += h.counts[i];
      os << name << "_bucket{le=\"";
      FmtDouble(os, h.boundaries[i]);
      os << "\"} " << cumulative << "\n";
    }
    os << name << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    os << name << "_sum ";
    FmtDouble(os, h.sum);
    os << "\n";
    os << name << "_count " << h.count << "\n";
  }
  return os.str();
}

}  // namespace obs
}  // namespace simjoin
