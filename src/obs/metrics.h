// Process-wide metrics registry: monotonic counters, gauges, and
// fixed-boundary latency histograms, lock-free on the hot path.
//
// Hot-path writes never take a lock and never touch shared cache lines
// under normal operation: every Counter and Histogram is sharded into
// kMetricShards cache-line-padded cells, and each thread hashes to one
// shard (relaxed fetch_add on an atomic it effectively owns).  Two threads
// can collide on a shard — the atomic add keeps totals exact either way —
// so the fast path is one relaxed RMW on an almost-always-private line.
// Registration (GetCounter / GetGauge / GetHistogram) is the slow path: it
// takes the registry mutex once and returns a stable pointer callers cache
// for the process lifetime.
//
// Snapshot() merges the shards into plain value structs (the same
// parallel-combine idiom as RunningStats::Merge in common/stats.h): a
// snapshot is an ordinary value object — sortable, diffable (DeltaSince),
// serialisable by the service wire protocol — with percentile extraction
// for histograms via linear interpolation inside the owning bucket.
//
// Counters/histograms are monotonic; concurrent snapshots may therefore be
// torn only *forward* (a later shard read sees newer adds), never report a
// value that was never true of any prefix of the add sequence.

#ifndef SIMJOIN_OBS_METRICS_H_
#define SIMJOIN_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace simjoin {
namespace obs {

/// Shard count for counters and histograms; power of two.  16 padded cells
/// = 1 KiB per counter, small enough to register hundreds of metrics and
/// wide enough that an 8..16-thread pool rarely collides.
inline constexpr size_t kMetricShards = 16;

namespace internal {

/// One cache-line-padded accumulator cell.
struct alignas(64) ShardCell {
  std::atomic<uint64_t> value{0};
};

/// Stable small integer id of the calling thread, assigned on first use.
/// Shared by every metric so one thread always lands on the same shard.
size_t ThreadShardSlot();

inline size_t ShardIndex() { return ThreadShardSlot() & (kMetricShards - 1); }

}  // namespace internal

/// Monotonically increasing counter.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    cells_[internal::ShardIndex()].value.fetch_add(delta,
                                                   std::memory_order_relaxed);
  }

  /// Sum over all shards (snapshot read; exact once writers are quiescent).
  uint64_t Value() const;

 private:
  internal::ShardCell cells_[kMetricShards];
};

/// Point-in-time signed value (queue depths, occupancy).  Unsharded: gauges
/// sit on admission/queue paths that already pay an atomic, not in per-pair
/// loops.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-boundary histogram.  boundaries() holds ascending bucket upper
/// bounds; values land in the first bucket whose bound is >= the value,
/// with one implicit overflow bucket past the last bound (so there are
/// boundaries().size() + 1 buckets).  The value sum is accumulated in
/// nanoscaled integer form so shard merging stays a pure integer add.
class Histogram {
 public:
  /// Bucket upper bounds tuned for microsecond latencies: 1 us .. 10 s in
  /// a 1-2-5 progression.
  static std::span<const double> DefaultLatencyBoundsUs();

  explicit Histogram(std::vector<double> boundaries);

  /// Records one observation (clamped to >= 0).
  void Record(double value);

  const std::vector<double>& boundaries() const { return boundaries_; }

 private:
  friend class MetricRegistry;

  /// Per-shard accumulator: bucket hit counts plus the value sum in
  /// kSumScale-ths (fixed point) so totals merge with integer adds.
  struct Shard {
    explicit Shard(size_t buckets)
        : counts(new std::atomic<uint64_t>[buckets]()) {}
    std::unique_ptr<std::atomic<uint64_t>[]> counts;
    alignas(64) std::atomic<uint64_t> scaled_sum{0};
  };

  static constexpr double kSumScale = 1024.0;

  std::vector<double> boundaries_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

struct CounterSample {
  std::string name;
  uint64_t value = 0;
  bool operator==(const CounterSample&) const = default;
};

struct GaugeSample {
  std::string name;
  int64_t value = 0;
  bool operator==(const GaugeSample&) const = default;
};

/// Merged histogram state.  counts.size() == boundaries.size() + 1 (the
/// trailing bucket counts overflow past the last bound).
struct HistogramSample {
  std::string name;
  std::vector<double> boundaries;
  std::vector<uint64_t> counts;
  uint64_t count = 0;
  double sum = 0.0;

  bool operator==(const HistogramSample&) const = default;

  double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }

  /// Observations past the last finite boundary.  Quantile() clamps ranks
  /// landing there to the last bound, so a nonzero overflow count is the
  /// signal that the reported quantiles are understated.
  uint64_t overflow_count() const { return counts.empty() ? 0 : counts.back(); }

  /// q-quantile (q in [0,1]) by linear interpolation inside the bucket that
  /// holds the target rank — the histogram analogue of Percentile() in
  /// common/stats.h.  The overflow bucket has no upper bound, so ranks that
  /// land there report the last finite boundary.  0 when empty.
  double Quantile(double q) const;
};

/// Point-in-time copy of every registered metric, sorted by name within
/// each kind (registration order never matters, so snapshots of the same
/// state compare equal).
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  bool operator==(const MetricsSnapshot&) const = default;

  /// Counter/histogram deltas since `prev` (names missing from prev count
  /// from zero); gauges keep their current value.  Used by the client's
  /// `stats --watch` to render per-interval rates and latency quantiles.
  MetricsSnapshot DeltaSince(const MetricsSnapshot& prev) const;

  /// Multi-line human-readable dump (one metric per line; histograms with
  /// count/mean/p50/p95/p99/max-bucket).
  std::string RenderText() const;

  /// Looks up one sample by name; nullptr when absent.
  const CounterSample* FindCounter(std::string_view name) const;
  const GaugeSample* FindGauge(std::string_view name) const;
  const HistogramSample* FindHistogram(std::string_view name) const;
};

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Named metric registry.  Get* registers on first use and returns a stable
/// pointer (cache it; lookup takes the registry mutex).  Separate instances
/// are independent — tests use their own; the library instruments
/// GlobalMetrics().
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;
  ~MetricRegistry();

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  /// Registers a histogram with the given ascending bucket upper bounds
  /// (DefaultLatencyBoundsUs() when empty).  A second Get with the same
  /// name returns the existing histogram regardless of boundaries.
  Histogram* GetHistogram(std::string_view name,
                          std::span<const double> boundaries = {});

  MetricsSnapshot Snapshot() const;

 private:
  struct Impl;
  Impl* impl();  // lazily constructed under a local static mutex
  Impl* impl_ = nullptr;
};

/// The process-wide registry every built-in instrumentation point uses.
MetricRegistry& GlobalMetrics();

/// Convenience RAII timer: records elapsed microseconds into a histogram
/// on destruction.
class ScopedLatencyTimer {
 public:
  explicit ScopedLatencyTimer(Histogram* hist);
  ~ScopedLatencyTimer();
  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;

 private:
  Histogram* hist_;
  uint64_t start_ns_;
};

}  // namespace obs
}  // namespace simjoin

#endif  // SIMJOIN_OBS_METRICS_H_
