// Prometheus text exposition (version 0.0.4) rendering of a
// MetricsSnapshot.  Pure formatting — the HTTP endpoint that serves it
// lives in src/service/prom_exporter.h.
//
// Mapping: every metric name is prefixed "simjoin_" and sanitised (any
// character outside [a-zA-Z0-9_] becomes '_', so "service.latency_us.x"
// -> "simjoin_service_latency_us_x").  Counters gain the conventional
// "_total" suffix.  Histograms render the native cumulative form:
// le-labelled buckets (the internal overflow bucket becomes le="+Inf"),
// plus _sum and _count series.

#ifndef SIMJOIN_OBS_PROMETHEUS_H_
#define SIMJOIN_OBS_PROMETHEUS_H_

#include <string>

#include "obs/metrics.h"

namespace simjoin {
namespace obs {

/// Renders the snapshot as a complete /metrics response body.
std::string RenderPrometheusText(const MetricsSnapshot& snapshot);

}  // namespace obs
}  // namespace simjoin

#endif  // SIMJOIN_OBS_PROMETHEUS_H_
