#include "obs/slow_query_log.h"

#include <chrono>
#include <fstream>
#include <sstream>
#include <utility>

namespace simjoin {
namespace obs {

namespace {

uint64_t NowUnixMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

void AppendJsonString(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          os << "\\u00" << kHex[(c >> 4) & 0xf] << kHex[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

SlowQueryLog::SlowQueryLog(Options options) : options_(std::move(options)) {}

void SlowQueryLog::Record(SlowQueryEntry entry) {
  if (entry.unix_micros == 0) entry.unix_micros = NowUnixMicros();
  std::lock_guard<std::mutex> lock(mu_);
  ++recorded_;
  if (!options_.jsonl_path.empty()) WriteSinkLocked(entry);
  ring_.push_back(std::move(entry));
  while (ring_.size() > options_.capacity) {
    ring_.pop_front();
    ++evicted_;
  }
}

void SlowQueryLog::WriteSinkLocked(const SlowQueryEntry& entry) {
  // Token window: at most sink_max_per_sec writes per wall-clock second.
  const uint64_t second = entry.unix_micros / 1'000'000;
  if (second != window_start_us_) {
    window_start_us_ = second;
    window_writes_ = 0;
  }
  if (window_writes_ >= options_.sink_max_per_sec) {
    ++sink_suppressed_;
    return;
  }
  ++window_writes_;
  // Open-append-close per entry: slow queries are rare by definition, and
  // reopening by path is what makes external log rotation safe.
  std::ofstream out(options_.jsonl_path, std::ios::app);
  if (!out) {
    ++sink_errors_;
    return;
  }
  out << ToJsonLine(entry) << "\n";
  out.flush();
  if (!out) ++sink_errors_;
}

std::vector<SlowQueryEntry> SlowQueryLog::Drain(size_t max) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SlowQueryEntry> out;
  const size_t take = ring_.size() < max ? ring_.size() : max;
  out.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    out.push_back(std::move(ring_.front()));
    ring_.pop_front();
  }
  return out;
}

uint64_t SlowQueryLog::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

uint64_t SlowQueryLog::evicted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evicted_;
}

uint64_t SlowQueryLog::sink_suppressed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sink_suppressed_;
}

uint64_t SlowQueryLog::sink_errors() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sink_errors_;
}

std::string SlowQueryLog::ToJsonLine(const SlowQueryEntry& entry) {
  std::ostringstream os;
  os << "{\"ts_us\":" << entry.unix_micros
     << ",\"trace_id\":" << entry.trace_id
     << ",\"request_id\":" << entry.request_id
     << ",\"op\":" << static_cast<unsigned>(entry.op) << ",\"index\":";
  AppendJsonString(os, entry.index);
  os << ",\"wall_us\":" << entry.wall_us
     << ",\"status_code\":" << entry.status_code;
  if (!entry.status_message.empty()) {
    os << ",\"status\":";
    AppendJsonString(os, entry.status_message);
  }
  if (!entry.profile.plan.empty()) {
    os << ",\"plan\":";
    AppendJsonString(os, entry.profile.plan);
  }
  if (!entry.profile.nodes.empty()) {
    os << ",\"phases\":[";
    for (size_t i = 0; i < entry.profile.nodes.size(); ++i) {
      const ProfileNode& n = entry.profile.nodes[i];
      if (i > 0) os << ",";
      os << "{\"name\":";
      AppendJsonString(os, n.name);
      os << ",\"parent\":"
         << (n.parent == kProfileNoParent ? -1
                                          : static_cast<int64_t>(n.parent))
         << ",\"start_ns\":" << n.start_ns << ",\"wall_ns\":" << n.wall_ns
         << ",\"cpu_ns\":" << n.cpu_ns << "}";
    }
    os << "]";
  }
  if (!entry.profile.counters.empty()) {
    os << ",\"counters\":{";
    for (size_t i = 0; i < entry.profile.counters.size(); ++i) {
      if (i > 0) os << ",";
      AppendJsonString(os, entry.profile.counters[i].name);
      os << ":" << entry.profile.counters[i].value;
    }
    os << "}";
  }
  os << "}";
  return os.str();
}

}  // namespace obs
}  // namespace simjoin
