#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <mutex>
#include <sstream>

#include "common/logging.h"

namespace simjoin {
namespace obs {

namespace internal {

size_t ThreadShardSlot() {
  static std::atomic<size_t> next{0};
  thread_local const size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

}  // namespace internal

// ---------------------------------------------------------------------------
// Counter / Histogram
// ---------------------------------------------------------------------------

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const internal::ShardCell& cell : cells_) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

std::span<const double> Histogram::DefaultLatencyBoundsUs() {
  static const double kBounds[] = {
      1,     2,     5,     10,    20,    50,    100,   200,   500,
      1e3,   2e3,   5e3,   1e4,   2e4,   5e4,   1e5,   2e5,   5e5,
      1e6,   2e6,   5e6,   1e7};
  return kBounds;
}

Histogram::Histogram(std::vector<double> boundaries)
    : boundaries_(std::move(boundaries)) {
  if (boundaries_.empty()) {
    const std::span<const double> def = DefaultLatencyBoundsUs();
    boundaries_.assign(def.begin(), def.end());
  }
  for (size_t i = 0; i < boundaries_.size(); ++i) {
    SIMJOIN_CHECK(std::isfinite(boundaries_[i]))
        << "histogram boundaries must be finite";
    if (i > 0) {
      SIMJOIN_CHECK_LT(boundaries_[i - 1], boundaries_[i])
          << "histogram boundaries must be strictly ascending";
    }
  }
  shards_.reserve(kMetricShards);
  for (size_t i = 0; i < kMetricShards; ++i) {
    shards_.push_back(std::make_unique<Shard>(boundaries_.size() + 1));
  }
}

void Histogram::Record(double value) {
  if (!(value >= 0.0)) value = 0.0;  // clamps negatives and NaN
  // Inclusive upper bounds: the first boundary >= value owns it; anything
  // past the last boundary lands in the overflow bucket.
  const size_t idx = static_cast<size_t>(
      std::lower_bound(boundaries_.begin(), boundaries_.end(), value) -
      boundaries_.begin());
  Shard& shard = *shards_[internal::ShardIndex()];
  shard.counts[idx].fetch_add(1, std::memory_order_relaxed);
  shard.scaled_sum.fetch_add(
      static_cast<uint64_t>(std::llround(value * kSumScale)),
      std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// HistogramSample / MetricsSnapshot
// ---------------------------------------------------------------------------

double HistogramSample::Quantile(double q) const {
  if (count == 0 || counts.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    const uint64_t prev = cumulative;
    cumulative += counts[b];
    if (static_cast<double>(cumulative) < target) continue;
    if (b >= boundaries.size()) {
      // Overflow bucket: no upper bound to interpolate against.
      return boundaries.empty() ? 0.0 : boundaries.back();
    }
    const double lo = b == 0 ? 0.0 : boundaries[b - 1];
    const double hi = boundaries[b];
    const double within =
        (target - static_cast<double>(prev)) / static_cast<double>(counts[b]);
    return lo + (hi - lo) * std::clamp(within, 0.0, 1.0);
  }
  return boundaries.empty() ? 0.0 : boundaries.back();
}

namespace {

/// Sorted-vector lookup shared by the Find* accessors and DeltaSince.
template <typename Sample>
const Sample* FindByName(const std::vector<Sample>& samples,
                         std::string_view name) {
  const auto it = std::lower_bound(
      samples.begin(), samples.end(), name,
      [](const Sample& s, std::string_view n) { return s.name < n; });
  return it != samples.end() && it->name == name ? &*it : nullptr;
}

}  // namespace

const CounterSample* MetricsSnapshot::FindCounter(std::string_view name) const {
  return FindByName(counters, name);
}
const GaugeSample* MetricsSnapshot::FindGauge(std::string_view name) const {
  return FindByName(gauges, name);
}
const HistogramSample* MetricsSnapshot::FindHistogram(
    std::string_view name) const {
  return FindByName(histograms, name);
}

MetricsSnapshot MetricsSnapshot::DeltaSince(const MetricsSnapshot& prev) const {
  MetricsSnapshot out;
  out.counters.reserve(counters.size());
  for (const CounterSample& cur : counters) {
    const CounterSample* old = FindByName(prev.counters, cur.name);
    const uint64_t before = old != nullptr ? old->value : 0;
    out.counters.push_back(
        {cur.name, cur.value >= before ? cur.value - before : cur.value});
  }
  out.gauges = gauges;  // gauges are levels, not rates
  out.histograms.reserve(histograms.size());
  for (const HistogramSample& cur : histograms) {
    const HistogramSample* old = FindByName(prev.histograms, cur.name);
    HistogramSample d = cur;
    if (old != nullptr && old->boundaries == cur.boundaries &&
        old->counts.size() == cur.counts.size() && old->count <= cur.count) {
      for (size_t b = 0; b < d.counts.size(); ++b) d.counts[b] -= old->counts[b];
      d.count -= old->count;
      d.sum = std::max(0.0, d.sum - old->sum);
    }
    out.histograms.push_back(std::move(d));
  }
  return out;
}

std::string MetricsSnapshot::RenderText() const {
  std::ostringstream os;
  for (const CounterSample& c : counters) {
    os << "counter " << c.name << " " << c.value << "\n";
  }
  for (const GaugeSample& g : gauges) {
    os << "gauge " << g.name << " " << g.value << "\n";
  }
  for (const HistogramSample& h : histograms) {
    os << "histogram " << h.name << " count=" << h.count;
    if (h.count > 0) {
      os << " mean=" << h.mean() << " p50=" << h.Quantile(0.50)
         << " p95=" << h.Quantile(0.95) << " p99=" << h.Quantile(0.99);
      if (h.overflow_count() > 0) os << " overflow=" << h.overflow_count();
    }
    os << "\n";
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// MetricRegistry
// ---------------------------------------------------------------------------

struct MetricRegistry::Impl {
  mutable std::mutex mu;
  // Node-based maps: pointers into the mapped values stay valid across
  // inserts, which is what makes the returned handles cacheable.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
};

MetricRegistry::Impl* MetricRegistry::impl() {
  // Registration is rare; a lock-protected lazy init keeps the registry
  // usable from static initialisers in any order.
  static std::mutex init_mu;
  std::lock_guard<std::mutex> lock(init_mu);
  if (impl_ == nullptr) impl_ = new Impl();
  return impl_;
}

MetricRegistry::~MetricRegistry() { delete impl_; }

Counter* MetricRegistry::GetCounter(std::string_view name) {
  Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mu);
  auto it = i->counters.find(name);
  if (it == i->counters.end()) {
    it = i->counters
             .emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricRegistry::GetGauge(std::string_view name) {
  Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mu);
  auto it = i->gauges.find(name);
  if (it == i->gauges.end()) {
    it = i->gauges.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricRegistry::GetHistogram(std::string_view name,
                                        std::span<const double> boundaries) {
  Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mu);
  auto it = i->histograms.find(name);
  if (it == i->histograms.end()) {
    it = i->histograms
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::vector<double>(
                          boundaries.begin(), boundaries.end())))
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricRegistry::Snapshot() const {
  MetricsSnapshot out;
  Impl* i = const_cast<MetricRegistry*>(this)->impl();
  std::lock_guard<std::mutex> lock(i->mu);
  out.counters.reserve(i->counters.size());
  for (const auto& [name, counter] : i->counters) {
    out.counters.push_back({name, counter->Value()});
  }
  out.gauges.reserve(i->gauges.size());
  for (const auto& [name, gauge] : i->gauges) {
    out.gauges.push_back({name, gauge->Value()});
  }
  out.histograms.reserve(i->histograms.size());
  for (const auto& [name, hist] : i->histograms) {
    HistogramSample sample;
    sample.name = name;
    sample.boundaries = hist->boundaries_;
    sample.counts.assign(hist->boundaries_.size() + 1, 0);
    uint64_t scaled_sum = 0;
    for (const auto& shard : hist->shards_) {
      for (size_t b = 0; b < sample.counts.size(); ++b) {
        sample.counts[b] +=
            shard->counts[b].load(std::memory_order_relaxed);
      }
      scaled_sum += shard->scaled_sum.load(std::memory_order_relaxed);
    }
    for (const uint64_t c : sample.counts) sample.count += c;
    sample.sum = static_cast<double>(scaled_sum) / Histogram::kSumScale;
    out.histograms.push_back(std::move(sample));
  }
  // std::map iteration is already name-sorted; keep that as the documented
  // snapshot order so equal registry states give equal snapshots.
  return out;
}

MetricRegistry& GlobalMetrics() {
  // Intentionally never destroyed: worker threads of process-lifetime pools
  // may record metrics during static teardown, after function-local static
  // destructors would have run.  The pointer stays reachable, so leak
  // checkers treat it as a live global, not a leak.
  static MetricRegistry* const global = new MetricRegistry();
  return *global;
}

// ---------------------------------------------------------------------------
// ScopedLatencyTimer
// ---------------------------------------------------------------------------

namespace {

uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ScopedLatencyTimer::ScopedLatencyTimer(Histogram* hist)
    : hist_(hist), start_ns_(MonotonicNanos()) {}

ScopedLatencyTimer::~ScopedLatencyTimer() {
  if (hist_ != nullptr) {
    hist_->Record(static_cast<double>(MonotonicNanos() - start_ns_) * 1e-3);
  }
}

}  // namespace obs
}  // namespace simjoin
