#include "workload/profile.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/eigen.h"
#include "common/metric.h"
#include "common/rng.h"
#include "common/stats.h"

namespace simjoin {

std::string DatasetProfile::ToString() const {
  std::ostringstream os;
  os << "points: " << n << ", dims: " << dims << "\n";
  os << "effective dims (participation ratio): " << effective_dims << "\n";
  os << "mean pairwise L2 distance (sampled): " << mean_pairwise_distance
     << "\n";
  os << "mean nearest-neighbour L2 distance (sampled): " << mean_nn_distance
     << "\n";
  os << "top covariance eigenvalues:";
  for (size_t i = 0; i < std::min<size_t>(8, covariance_eigenvalues.size());
       ++i) {
    os << " " << covariance_eigenvalues[i];
  }
  os << "\n";
  return os.str();
}

Result<std::vector<uint32_t>> ColumnHistogram(const Dataset& data,
                                              uint32_t dim, size_t bins) {
  if (data.empty()) return Status::InvalidArgument("dataset is empty");
  if (bins == 0) return Status::InvalidArgument("bins must be positive");
  if (dim >= data.dims()) return Status::InvalidArgument("dim out of range");
  float lo = data.Row(0)[dim];
  float hi = lo;
  for (size_t i = 1; i < data.size(); ++i) {
    const float v = data.Row(static_cast<PointId>(i))[dim];
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  std::vector<uint32_t> counts(bins, 0);
  const double span = static_cast<double>(hi) - lo;
  for (size_t i = 0; i < data.size(); ++i) {
    const double v = data.Row(static_cast<PointId>(i))[dim];
    const size_t bin =
        span > 0.0
            ? std::min(bins - 1, static_cast<size_t>((v - lo) / span *
                                                     static_cast<double>(bins)))
            : 0;
    ++counts[bin];
  }
  return counts;
}

std::string HistogramSparkline(const std::vector<uint32_t>& bins) {
  static constexpr char kRamp[] = " .:-=+*#%@";
  constexpr size_t kLevels = sizeof(kRamp) - 2;  // highest index into kRamp
  if (bins.empty()) return "";
  uint32_t peak = 0;
  for (uint32_t b : bins) peak = std::max(peak, b);
  std::string out;
  out.reserve(bins.size());
  for (uint32_t b : bins) {
    const size_t level =
        peak == 0 ? 0
                  : (b == 0 ? 0
                            : 1 + static_cast<size_t>(
                                      (static_cast<double>(b) / peak) *
                                      static_cast<double>(kLevels - 1)));
    out.push_back(kRamp[std::min(level, kLevels)]);
  }
  return out;
}

Result<DatasetProfile> ProfileDataset(const Dataset& data,
                                      size_t distance_samples, uint64_t seed,
                                      size_t max_cov_points) {
  if (data.empty()) return Status::InvalidArgument("dataset is empty");
  if (max_cov_points == 0) {
    return Status::InvalidArgument("max_cov_points must be positive");
  }
  DatasetProfile profile;
  profile.n = data.size();
  profile.dims = data.dims();

  // Column moments.
  profile.mean.resize(data.dims());
  profile.variance.resize(data.dims());
  for (uint32_t d = 0; d < data.dims(); ++d) {
    RunningStats col;
    for (size_t i = 0; i < data.size(); ++i) {
      col.Add(data.Row(static_cast<PointId>(i))[d]);
    }
    profile.mean[d] = col.mean();
    profile.variance[d] = col.variance();
  }

  // Covariance spectrum on a strided subsample.
  const size_t stride = std::max<size_t>(1, data.size() / max_cov_points);
  std::vector<double> flat;
  size_t rows = 0;
  for (size_t i = 0; i < data.size(); i += stride) {
    const float* row = data.Row(static_cast<PointId>(i));
    for (size_t d = 0; d < data.dims(); ++d) flat.push_back(row[d]);
    ++rows;
  }
  const std::vector<double> cov = CovarianceMatrix(flat, rows, data.dims());
  SIMJOIN_ASSIGN_OR_RETURN(auto eigen, JacobiEigenSymmetric(cov, data.dims()));
  profile.covariance_eigenvalues = eigen.values;
  double sum = 0.0, sum_sq = 0.0;
  for (double v : eigen.values) {
    const double clamped = std::max(0.0, v);
    sum += clamped;
    sum_sq += clamped * clamped;
  }
  profile.effective_dims = sum_sq > 0.0 ? sum * sum / sum_sq : 0.0;

  // Distance scales (sampled).
  Rng rng(seed);
  DistanceKernel l2(Metric::kL2);
  if (data.size() >= 2 && distance_samples > 0) {
    RunningStats pairwise;
    for (size_t s = 0; s < distance_samples; ++s) {
      const PointId a = static_cast<PointId>(rng.UniformInt(data.size()));
      PointId b;
      do {
        b = static_cast<PointId>(rng.UniformInt(data.size()));
      } while (b == a);
      pairwise.Add(l2.Distance(data.Row(a), data.Row(b), data.dims()));
    }
    profile.mean_pairwise_distance = pairwise.mean();

    RunningStats nn;
    const size_t nn_samples = std::min<size_t>(distance_samples, 64);
    for (size_t s = 0; s < nn_samples; ++s) {
      const PointId q = static_cast<PointId>(rng.UniformInt(data.size()));
      double best = std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < data.size(); ++i) {
        if (static_cast<PointId>(i) == q) continue;
        best = std::min(best, l2.Distance(data.Row(q),
                                          data.Row(static_cast<PointId>(i)),
                                          data.dims()));
      }
      nn.Add(best);
    }
    profile.mean_nn_distance = nn.mean();
  }
  return profile;
}

}  // namespace simjoin
