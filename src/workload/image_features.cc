#include "workload/image_features.h"

#include <cmath>
#include <vector>

#include "common/rng.h"

namespace simjoin {
namespace {

// Samples a point from a symmetric Dirichlet-like distribution by drawing
// Gamma(shape) per bin (via the sum of `shape` exponentials for integer
// shape, else Johnk-free simple approximation using exponent of gaussian)
// and normalising.  For our purposes a ratio-of-exponentials mixture is
// adequate and fully deterministic under Rng.
void SampleHistogram(Rng* rng, const std::vector<double>& prototype,
                     double concentration, float* out, size_t bins) {
  double total = 0.0;
  std::vector<double> raw(bins);
  for (size_t b = 0; b < bins; ++b) {
    // Gamma(k) with k = concentration * prototype[b]: approximate with a
    // log-normal matched to the Gamma mean/variance (mean k, var k).  This
    // keeps the sampler simple and deterministic while giving the right
    // "peaked around the prototype" behaviour.
    const double k = std::max(1e-3, concentration * prototype[b]);
    const double sigma2 = std::log(1.0 + 1.0 / k);
    const double mu = std::log(k) - 0.5 * sigma2;
    raw[b] = std::exp(rng->Gaussian(mu, std::sqrt(sigma2)));
    total += raw[b];
  }
  for (size_t b = 0; b < bins; ++b) {
    out[b] = static_cast<float>(raw[b] / total);
  }
}

}  // namespace

Result<ImageArchive> GenerateImageArchive(const ImageArchiveConfig& config) {
  if (config.num_images == 0 || config.bins == 0) {
    return Status::InvalidArgument("archive requires num_images > 0 and bins > 0");
  }
  if (config.prototypes == 0) {
    return Status::InvalidArgument("archive requires prototypes > 0");
  }
  if (config.concentration <= 0.0) {
    return Status::InvalidArgument("concentration must be positive");
  }
  Rng rng(config.seed);

  // Scene prototypes: sparse-ish histograms with a few dominant bins.
  std::vector<std::vector<double>> prototypes(config.prototypes,
                                              std::vector<double>(config.bins));
  for (auto& proto : prototypes) {
    double total = 0.0;
    for (auto& v : proto) {
      v = rng.Exponential(1.0);
      // Square to sharpen dominance of a few bins.
      v *= v;
      total += v;
    }
    for (auto& v : proto) v /= total;
  }

  ImageArchive archive;
  archive.histograms.Reset(config.num_images + config.near_duplicates, config.bins);
  for (size_t i = 0; i < config.num_images; ++i) {
    const size_t p = rng.UniformInt(config.prototypes);
    SampleHistogram(&rng, prototypes[p], config.concentration,
                    archive.histograms.MutableRow(static_cast<PointId>(i)),
                    config.bins);
  }

  archive.duplicate_of.reserve(config.near_duplicates);
  std::vector<double> noisy(config.bins);
  for (size_t dup = 0; dup < config.near_duplicates; ++dup) {
    const PointId src = static_cast<PointId>(rng.UniformInt(config.num_images));
    archive.duplicate_of.push_back(src);
    const float* src_row = archive.histograms.Row(src);
    double total = 0.0;
    for (size_t b = 0; b < config.bins; ++b) {
      const double jitter = 1.0 + rng.Uniform(-config.duplicate_noise,
                                              config.duplicate_noise);
      noisy[b] = std::max(0.0, static_cast<double>(src_row[b]) * jitter);
      total += noisy[b];
    }
    float* dst =
        archive.histograms.MutableRow(static_cast<PointId>(config.num_images + dup));
    for (size_t b = 0; b < config.bins; ++b) {
      dst[b] = static_cast<float>(total > 0.0 ? noisy[b] / total : 0.0);
    }
  }
  return archive;
}

bool IsNormalizedHistogram(const float* row, size_t bins, double tolerance) {
  double total = 0.0;
  for (size_t b = 0; b < bins; ++b) {
    if (row[b] < 0.0f) return false;
    total += row[b];
  }
  return std::fabs(total - 1.0) <= tolerance;
}

}  // namespace simjoin
