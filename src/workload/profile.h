// Dataset profiling: the statistics a join planner (or a curious user)
// wants before committing to an algorithm — per-column moments, the
// covariance spectrum with an effective-dimensionality estimate, and
// sampled distance scales.

#ifndef SIMJOIN_WORKLOAD_PROFILE_H_
#define SIMJOIN_WORKLOAD_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/dataset.h"
#include "common/status.h"

namespace simjoin {

/// Summary statistics of a point dataset.
struct DatasetProfile {
  size_t n = 0;
  size_t dims = 0;
  std::vector<double> mean;      ///< per column
  std::vector<double> variance;  ///< per column (population)

  /// Covariance eigenvalues, descending.
  std::vector<double> covariance_eigenvalues;

  /// Participation ratio (sum λ)^2 / sum λ^2 of the covariance spectrum —
  /// an effective (intrinsic) dimensionality estimate: d for isotropic
  /// clouds, ~k when the data concentrates on a k-dimensional subspace.
  double effective_dims = 0.0;

  /// Mean L2 distance of sampled random pairs.
  double mean_pairwise_distance = 0.0;

  /// Mean L2 distance of each sampled point to its nearest neighbour.
  double mean_nn_distance = 0.0;

  /// Human-readable multi-line rendering.
  std::string ToString() const;
};

/// Profiles the dataset.  Covariance uses at most `max_cov_points` rows (a
/// deterministic prefix-stride subsample); distance statistics use
/// `distance_samples` random pairs / query points.
Result<DatasetProfile> ProfileDataset(const Dataset& data,
                                      size_t distance_samples = 256,
                                      uint64_t seed = 1,
                                      size_t max_cov_points = 20000);

/// Equi-width histogram of one column over the column's [min, max] range;
/// bins must be positive, dim in range.  A constant column puts everything
/// in bin 0.
Result<std::vector<uint32_t>> ColumnHistogram(const Dataset& data,
                                              uint32_t dim, size_t bins);

/// Renders bin counts as a one-line ASCII sparkline (" .:-=+*#%@" ramp,
/// scaled to the largest bin).  Empty input gives an empty string.
std::string HistogramSparkline(const std::vector<uint32_t>& bins);

}  // namespace simjoin

#endif  // SIMJOIN_WORKLOAD_PROFILE_H_
