#include "workload/generators.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"

namespace simjoin {
namespace {

Status ValidateSize(size_t n, size_t dims) {
  if (n == 0) return Status::InvalidArgument("generator requires n > 0");
  if (dims == 0) return Status::InvalidArgument("generator requires dims > 0");
  return Status::OK();
}

inline float Clamp01(double v) {
  return static_cast<float>(std::min(1.0, std::max(0.0, v)));
}

}  // namespace

Result<Dataset> GenerateUniform(const UniformConfig& config) {
  SIMJOIN_RETURN_NOT_OK(ValidateSize(config.n, config.dims));
  Rng rng(config.seed);
  Dataset ds(config.n, config.dims);
  for (size_t i = 0; i < config.n; ++i) {
    float* row = ds.MutableRow(static_cast<PointId>(i));
    for (size_t j = 0; j < config.dims; ++j) row[j] = rng.UniformFloat();
  }
  return ds;
}

Result<Dataset> GenerateClustered(const ClusteredConfig& config) {
  SIMJOIN_RETURN_NOT_OK(ValidateSize(config.n, config.dims));
  if (config.clusters == 0) {
    return Status::InvalidArgument("clustered generator requires clusters > 0");
  }
  if (config.sigma < 0.0) {
    return Status::InvalidArgument("sigma must be non-negative");
  }
  if (config.noise_fraction < 0.0 || config.noise_fraction > 1.0) {
    return Status::InvalidArgument("noise_fraction must be in [0, 1]");
  }
  Rng rng(config.seed);
  // Cluster centres away from the walls so clusters are not clipped flat.
  std::vector<float> centres(config.clusters * config.dims);
  for (auto& c : centres) c = static_cast<float>(rng.Uniform(0.1, 0.9));

  Dataset ds(config.n, config.dims);
  for (size_t i = 0; i < config.n; ++i) {
    float* row = ds.MutableRow(static_cast<PointId>(i));
    if (rng.Bernoulli(config.noise_fraction)) {
      for (size_t j = 0; j < config.dims; ++j) row[j] = rng.UniformFloat();
      continue;
    }
    const uint64_t k = config.zipf_skew > 0.0
                           ? rng.Zipf(config.clusters, config.zipf_skew)
                           : rng.UniformInt(config.clusters);
    const float* centre = centres.data() + k * config.dims;
    for (size_t j = 0; j < config.dims; ++j) {
      row[j] = Clamp01(centre[j] + rng.Gaussian(0.0, config.sigma));
    }
  }
  return ds;
}

Result<Dataset> GenerateCorrelated(const CorrelatedConfig& config) {
  SIMJOIN_RETURN_NOT_OK(ValidateSize(config.n, config.dims));
  if (config.intrinsic_dims == 0 || config.intrinsic_dims > config.dims) {
    return Status::InvalidArgument(
        "intrinsic_dims must be in [1, dims]");
  }
  if (config.noise < 0.0) {
    return Status::InvalidArgument("noise must be non-negative");
  }
  Rng rng(config.seed);
  // Random linear embedding: dims x intrinsic_dims matrix with N(0,1)
  // entries; latent coordinates are uniform in [0,1].
  std::vector<double> embed(config.dims * config.intrinsic_dims);
  for (auto& e : embed) e = rng.Gaussian();

  Dataset ds(config.n, config.dims);
  std::vector<double> latent(config.intrinsic_dims);
  for (size_t i = 0; i < config.n; ++i) {
    for (auto& l : latent) l = rng.Uniform();
    float* row = ds.MutableRow(static_cast<PointId>(i));
    for (size_t j = 0; j < config.dims; ++j) {
      double v = 0.0;
      for (size_t k = 0; k < config.intrinsic_dims; ++k) {
        v += embed[j * config.intrinsic_dims + k] * latent[k];
      }
      row[j] = static_cast<float>(v + rng.Gaussian(0.0, config.noise));
    }
  }
  ds.NormalizeToUnitCube();
  return ds;
}

Result<Dataset> GenerateGridPerturbed(const GridPerturbedConfig& config) {
  SIMJOIN_RETURN_NOT_OK(ValidateSize(config.n, config.dims));
  if (config.cell <= 0.0 || config.cell > 1.0) {
    return Status::InvalidArgument("cell pitch must be in (0, 1]");
  }
  if (config.perturbation < 0.0) {
    return Status::InvalidArgument("perturbation must be non-negative");
  }
  Rng rng(config.seed);
  const long cells_per_dim =
      std::max<long>(1, static_cast<long>(std::floor(1.0 / config.cell)));
  Dataset ds(config.n, config.dims);
  for (size_t i = 0; i < config.n; ++i) {
    float* row = ds.MutableRow(static_cast<PointId>(i));
    for (size_t j = 0; j < config.dims; ++j) {
      const double lattice =
          (static_cast<double>(rng.UniformInt(static_cast<uint64_t>(cells_per_dim))) + 0.5) *
          config.cell;
      const double jitter = rng.Uniform(-config.perturbation, config.perturbation);
      row[j] = Clamp01(lattice + jitter);
    }
  }
  return ds;
}

Result<Dataset> PlantNearDuplicates(const Dataset& base, size_t pairs_to_plant,
                                    double max_displacement, uint64_t seed) {
  if (base.empty()) return Status::InvalidArgument("base dataset is empty");
  if (max_displacement < 0.0) {
    return Status::InvalidArgument("max_displacement must be non-negative");
  }
  Rng rng(seed);
  Dataset out = base;
  std::vector<float> row(base.dims());
  for (size_t p = 0; p < pairs_to_plant; ++p) {
    const PointId src = static_cast<PointId>(rng.UniformInt(base.size()));
    const float* src_row = base.Row(src);
    for (size_t j = 0; j < base.dims(); ++j) {
      const double jitter = rng.Uniform(-max_displacement, max_displacement);
      row[j] = Clamp01(src_row[j] + jitter);
    }
    out.Append(row);
  }
  return out;
}

}  // namespace simjoin
