// Colour-histogram image features — the paper's multimedia workload.
//
// Real image archives are proprietary; this module simulates the statistical
// shape that matters for join behaviour: each "image" is a colour histogram
// drawn from one of a few scene prototypes (beach, forest, night, ...) with
// per-image variation, and a configurable number of near-duplicate images
// (crops / re-encodes) is planted so the join has true positives to find.
// Histograms are non-negative and L1-normalised (they sum to 1), just like
// real colour-histogram descriptors.

#ifndef SIMJOIN_WORKLOAD_IMAGE_FEATURES_H_
#define SIMJOIN_WORKLOAD_IMAGE_FEATURES_H_

#include <cstdint>

#include "common/dataset.h"
#include "common/status.h"

namespace simjoin {

/// Parameters for the synthetic image-histogram archive.
struct ImageArchiveConfig {
  size_t num_images = 0;      ///< archive size (before planted duplicates)
  size_t bins = 32;           ///< histogram dimensionality
  size_t prototypes = 8;      ///< number of scene prototypes
  double concentration = 60;  ///< higher = images closer to their prototype
  size_t near_duplicates = 0; ///< planted near-duplicate images appended
  double duplicate_noise = 0.02;  ///< per-bin relative noise for duplicates
  uint64_t seed = 1;
};

/// Generates the archive.  Planted duplicates occupy the final
/// near_duplicates rows; row i duplicates some original row recorded in
/// duplicate_of (size near_duplicates).
struct ImageArchive {
  Dataset histograms;              ///< num_images + near_duplicates rows
  std::vector<PointId> duplicate_of;  ///< source id of each planted duplicate
};

Result<ImageArchive> GenerateImageArchive(const ImageArchiveConfig& config);

/// True iff the row is a valid histogram: non-negative, sums to 1 within tol.
bool IsNormalizedHistogram(const float* row, size_t bins, double tolerance);

}  // namespace simjoin

#endif  // SIMJOIN_WORKLOAD_IMAGE_FEATURES_H_
