// Drifting-cluster update workload for the live-updatable index tier.
//
// Models the regime the static generators cannot: a clustered point cloud
// whose structure changes over time.  Clusters are born along a random line
// through the unit cube (margin-jittered off it), migrate a fixed step per
// tick, and expire in birth order; every tick also emits cluster-chasing
// range queries, so query traffic follows the dense regions as they move.
// The output is a scripted timeline — an initial build set plus, per step,
// the rows to insert, the ids to remove, and the queries to run — ready to
// replay against UpdatableIndex or the service's Insert/Remove RPCs
// (tools/simjoin_client drift, bench_r24_updates).
//
// Ids in remove_ids are insertion-order indices: the initial dataset's rows
// are 0..initial.size()-1 and every inserted row takes the next index in
// timeline order.  That matches the contiguous id assignment of both
// UpdatableIndex::InsertBatch and the Insert RPC, so a replayer needs no id
// translation as long as it applies steps in order.  Deterministic in the
// seed; every coordinate lies in [0, 1].

#ifndef SIMJOIN_WORKLOAD_DRIFT_H_
#define SIMJOIN_WORKLOAD_DRIFT_H_

#include <cstdint>
#include <vector>

#include "common/dataset.h"
#include "common/status.h"

namespace simjoin {

/// Parameters of one drifting-cluster timeline.
struct DriftConfig {
  size_t dims = 8;
  size_t clusters = 4;           ///< clusters alive at step 0
  size_t points_per_cluster = 64;
  size_t steps = 16;
  size_t births_per_step = 1;    ///< new clusters appearing per step
  size_t deaths_per_step = 1;    ///< oldest clusters expiring per step
  size_t queries_per_step = 8;   ///< cluster-chasing queries per step
  double sigma = 0.01;           ///< per-coordinate std-dev inside a cluster
  double margin = 0.1;           ///< birth jitter off the drift line
  double drift_step = 0.02;      ///< centre migration per step
  uint64_t seed = 42;

  Status Validate() const;
};

/// One timeline tick: apply the removals and inserts, then run the queries.
struct DriftStep {
  std::vector<float> insert_rows;   ///< row-major, inserts() * dims floats
  std::vector<PointId> remove_ids;  ///< insertion-order indices (see header)
  std::vector<float> query_rows;    ///< row-major, queries_per_step * dims

  size_t inserts(size_t dims) const { return insert_rows.size() / dims; }
  size_t queries(size_t dims) const { return query_rows.size() / dims; }
};

/// A full scripted workload: the step-0 build set plus per-step deltas.
struct DriftTimeline {
  size_t dims = 0;
  Dataset initial;
  std::vector<DriftStep> steps;

  /// Rows inserted across every step (excluding the initial build).
  size_t total_inserts() const;
  /// Ids removed across every step.
  size_t total_removes() const;
};

/// Generates the timeline.  At least one cluster always stays alive: deaths
/// are skipped while the live set would otherwise empty out.
Result<DriftTimeline> GenerateDrift(const DriftConfig& config);

}  // namespace simjoin

#endif  // SIMJOIN_WORKLOAD_DRIFT_H_
