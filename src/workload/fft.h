// Radix-2 Cooley-Tukey FFT — the transform behind the paper's motivating
// application of time-series similarity: sequences are reduced to their
// leading DFT coefficients and the similarity join runs in that feature
// space (the classic GEMINI / F-index reduction).

#ifndef SIMJOIN_WORKLOAD_FFT_H_
#define SIMJOIN_WORKLOAD_FFT_H_

#include <complex>
#include <vector>

#include "common/status.h"

namespace simjoin {

/// In-place iterative radix-2 FFT.  The length of data must be a power of
/// two (and non-zero).
Status Fft(std::vector<std::complex<double>>* data);

/// In-place inverse FFT (same length constraint); output is scaled by 1/N.
Status InverseFft(std::vector<std::complex<double>>* data);

/// Smallest power of two that is >= n (n must be non-zero).
size_t NextPowerOfTwo(size_t n);

/// DFT of a real series, zero-padded to the next power of two.
Result<std::vector<std::complex<double>>> RealDft(const std::vector<double>& series);

}  // namespace simjoin

#endif  // SIMJOIN_WORKLOAD_FFT_H_
