// Time-series workload: random-walk sequence families with planted
// co-moving groups, and DFT-coefficient feature extraction.
//
// The paper's headline real workload is stock/mutual-fund time-series
// similarity: each sequence is z-normalised, its first few DFT coefficients
// are kept, and "similar sequences" become "close feature points" joined
// with the eps-k-d-B tree.  The real feeds are proprietary; this module
// simulates them with geometric-random-walk families where a configurable
// fraction of series share a latent driver (so true similar pairs exist),
// exactly the clustered / correlated structure the real data exhibits.

#ifndef SIMJOIN_WORKLOAD_TIMESERIES_H_
#define SIMJOIN_WORKLOAD_TIMESERIES_H_

#include <cstdint>
#include <vector>

#include "common/dataset.h"
#include "common/status.h"

namespace simjoin {

/// One real-valued sequence.
using Series = std::vector<double>;

/// Parameters for a family of random-walk series.
struct SeriesFamilyConfig {
  size_t num_series = 0;   ///< how many sequences
  size_t length = 256;     ///< samples per sequence
  size_t groups = 10;      ///< latent co-movement groups
  double group_weight = 0.7;  ///< share of each series driven by its group walk
  double volatility = 0.01;   ///< per-step idiosyncratic std-dev
  uint64_t seed = 1;
};

/// Generates num_series random walks; series in the same group share a
/// common driver walk mixed with idiosyncratic noise.
Result<std::vector<Series>> GenerateSeriesFamily(const SeriesFamilyConfig& config);

/// Subtracts the mean and divides by the standard deviation in place
/// (constant series become all-zero).
void ZNormalize(Series* series);

/// Extracts a 2k-dimensional feature vector from a series: the real and
/// imaginary parts of DFT coefficients 1..k (the DC term is dropped because
/// z-normalisation zeroes it), scaled by 1/sqrt(length) so that feature
/// distance lower-bounds sequence distance (Parseval).
Result<std::vector<float>> DftFeatures(const Series& series, size_t k);

/// Applies ZNormalize + DftFeatures to every series and stacks the feature
/// vectors into a Dataset (not yet normalised to the unit cube).
Result<Dataset> SeriesToFeatureDataset(const std::vector<Series>& family, size_t k);

/// Euclidean distance between two equal-length series (used by tests to
/// validate the lower-bounding property of the feature reduction).
double SeriesEuclideanDistance(const Series& a, const Series& b);

}  // namespace simjoin

#endif  // SIMJOIN_WORKLOAD_TIMESERIES_H_
