// Synthetic point-cloud generators reproducing the data regimes of the
// paper's evaluation: uniform noise, Gaussian cluster mixtures (the "real
// data is skewed" regime), low-intrinsic-dimensionality correlated clouds,
// and grid-perturbed points.  All generators are deterministic in the seed
// and emit points in [0, 1]^d.

#ifndef SIMJOIN_WORKLOAD_GENERATORS_H_
#define SIMJOIN_WORKLOAD_GENERATORS_H_

#include <cstdint>

#include "common/dataset.h"
#include "common/status.h"

namespace simjoin {

/// Parameters for uniform noise in the unit cube.
struct UniformConfig {
  size_t n = 0;        ///< number of points
  size_t dims = 0;     ///< dimensionality
  uint64_t seed = 1;   ///< RNG seed
};

/// i.i.d. uniform points in [0, 1]^d.
Result<Dataset> GenerateUniform(const UniformConfig& config);

/// Parameters for a Gaussian-mixture cloud.
struct ClusteredConfig {
  size_t n = 0;          ///< number of points
  size_t dims = 0;       ///< dimensionality
  size_t clusters = 10;  ///< number of mixture components
  double sigma = 0.05;   ///< per-coordinate std-dev inside a cluster
  double zipf_skew = 0.0;  ///< 0 = equal-size clusters; >0 = Zipf-sized
  double noise_fraction = 0.0;  ///< fraction of points drawn uniformly instead
  uint64_t seed = 1;
};

/// Mixture of isotropic Gaussians with centres uniform in [0.1, 0.9]^d;
/// coordinates are clamped to [0, 1].  Models the clustered/skewed real
/// feature data (stock DFT features, image histograms) the paper stresses.
Result<Dataset> GenerateClustered(const ClusteredConfig& config);

/// Parameters for a correlated (low intrinsic dimensionality) cloud.
struct CorrelatedConfig {
  size_t n = 0;
  size_t dims = 0;           ///< ambient dimensionality
  size_t intrinsic_dims = 2; ///< dimensionality of the latent subspace
  double noise = 0.01;       ///< per-coordinate additive noise std-dev
  uint64_t seed = 1;
};

/// Points on a random intrinsic_dims-dimensional affine subspace embedded in
/// [0, 1]^dims plus small noise, then min-max normalised.  Models correlated
/// attributes where most ambient dimensions carry little information.
Result<Dataset> GenerateCorrelated(const CorrelatedConfig& config);

/// Parameters for perturbed lattice points.
struct GridPerturbedConfig {
  size_t n = 0;
  size_t dims = 0;
  double cell = 0.1;        ///< lattice pitch
  double perturbation = 0.01;  ///< uniform jitter half-width per coordinate
  uint64_t seed = 1;
};

/// Points snapped to a lattice of the given pitch and jittered; produces
/// exactly-known near-duplicate structure for adversarial boundary tests.
Result<Dataset> GenerateGridPerturbed(const GridPerturbedConfig& config);

/// Takes `pairs_to_plant` random points of base and appends a copy displaced
/// by at most max_displacement (L-inf) — the standard way to plant known
/// join results into any cloud.  Returns the augmented dataset; planted
/// copies occupy ids [base.size(), base.size()+pairs_to_plant).
Result<Dataset> PlantNearDuplicates(const Dataset& base, size_t pairs_to_plant,
                                    double max_displacement, uint64_t seed);

}  // namespace simjoin

#endif  // SIMJOIN_WORKLOAD_GENERATORS_H_
