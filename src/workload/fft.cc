#include "workload/fft.h"

#include <cmath>
#include <numbers>

namespace simjoin {
namespace {

bool IsPowerOfTwo(size_t n) { return n != 0 && (n & (n - 1)) == 0; }

// Core in-place iterative radix-2 transform; sign = -1 forward, +1 inverse.
void Transform(std::vector<std::complex<double>>* data, double sign) {
  auto& a = *data;
  const size_t n = a.size();
  // Bit-reversal permutation.
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (size_t len = 2; len <= n; len <<= 1) {
    const double angle = sign * 2.0 * std::numbers::pi / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (size_t j = 0; j < len / 2; ++j) {
        const std::complex<double> u = a[i + j];
        const std::complex<double> v = a[i + j + len / 2] * w;
        a[i + j] = u + v;
        a[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

}  // namespace

size_t NextPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

Status Fft(std::vector<std::complex<double>>* data) {
  if (data == nullptr || data->empty() || !IsPowerOfTwo(data->size())) {
    return Status::InvalidArgument("FFT length must be a non-zero power of two");
  }
  Transform(data, -1.0);
  return Status::OK();
}

Status InverseFft(std::vector<std::complex<double>>* data) {
  if (data == nullptr || data->empty() || !IsPowerOfTwo(data->size())) {
    return Status::InvalidArgument("FFT length must be a non-zero power of two");
  }
  Transform(data, +1.0);
  const double inv = 1.0 / static_cast<double>(data->size());
  for (auto& v : *data) v *= inv;
  return Status::OK();
}

Result<std::vector<std::complex<double>>> RealDft(const std::vector<double>& series) {
  if (series.empty()) return Status::InvalidArgument("series is empty");
  std::vector<std::complex<double>> buf(NextPowerOfTwo(series.size()));
  for (size_t i = 0; i < series.size(); ++i) buf[i] = series[i];
  SIMJOIN_RETURN_NOT_OK(Fft(&buf));
  return buf;
}

}  // namespace simjoin
