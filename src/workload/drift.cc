#include "workload/drift.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "common/rng.h"

namespace simjoin {
namespace {

inline float Clamp01(double v) {
  return static_cast<float>(std::min(1.0, std::max(0.0, v)));
}

/// One live cluster: its centre migrates along the shared drift line
/// (sign-alternated so the cloud spreads both ways) and remembers the
/// insertion-order indices of its member rows for the expiry step.
struct Cluster {
  std::vector<double> centre;
  double direction = 1.0;  ///< +1 / -1 along the line
  std::vector<PointId> members;
};

class Generator {
 public:
  explicit Generator(const DriftConfig& config)
      : config_(config), rng_(config.seed), line_dir_(config.dims) {
    // Random unit direction for the drift line.  Clusters are born near a
    // random anchor and all migrate parallel to this line (movingTarget
    // style), so drifting density stays spatially coherent.
    double norm = 0.0;
    for (size_t d = 0; d < config_.dims; ++d) {
      line_dir_[d] = rng_.Gaussian();
      norm += line_dir_[d] * line_dir_[d];
    }
    norm = std::sqrt(std::max(norm, 1e-12));
    for (double& v : line_dir_) v /= norm;
  }

  Result<DriftTimeline> Run() {
    DriftTimeline timeline;
    timeline.dims = config_.dims;

    std::vector<float> initial_rows;
    for (size_t c = 0; c < config_.clusters; ++c) {
      BirthCluster(&initial_rows);
    }
    SIMJOIN_ASSIGN_OR_RETURN(
        timeline.initial,
        Dataset::FromFlat(std::move(initial_rows), config_.dims));

    timeline.steps.resize(config_.steps);
    for (size_t s = 0; s < config_.steps; ++s) {
      DriftStep& step = timeline.steps[s];
      Migrate();
      // Expire the oldest clusters first (birth order), but never the last
      // live one — an empty cloud would make the chasing queries moot.
      for (size_t k = 0; k < config_.deaths_per_step && live_.size() > 1;
           ++k) {
        Cluster& dying = live_.front();
        step.remove_ids.insert(step.remove_ids.end(), dying.members.begin(),
                               dying.members.end());
        live_.pop_front();
      }
      for (size_t k = 0; k < config_.births_per_step; ++k) {
        BirthCluster(&step.insert_rows);
      }
      for (size_t q = 0; q < config_.queries_per_step; ++q) {
        const Cluster& target =
            live_[static_cast<size_t>(rng_.UniformInt(live_.size()))];
        SamplePoint(target, &step.query_rows);
      }
    }
    return timeline;
  }

 private:
  void BirthCluster(std::vector<float>* rows) {
    Cluster cluster;
    cluster.centre.resize(config_.dims);
    cluster.direction = rng_.Bernoulli(0.5) ? 1.0 : -1.0;
    // Anchor on the line through the cube centre, jittered off it by at
    // most the margin per coordinate.
    const double t = rng_.Uniform(-0.5, 0.5);
    for (size_t d = 0; d < config_.dims; ++d) {
      cluster.centre[d] = 0.5 + t * line_dir_[d] +
                          rng_.Uniform(-config_.margin, config_.margin);
      cluster.centre[d] = std::min(1.0, std::max(0.0, cluster.centre[d]));
    }
    for (size_t i = 0; i < config_.points_per_cluster; ++i) {
      cluster.members.push_back(next_id_++);
      SamplePoint(cluster, rows);
    }
    live_.push_back(std::move(cluster));
  }

  void Migrate() {
    for (Cluster& cluster : live_) {
      for (size_t d = 0; d < config_.dims; ++d) {
        cluster.centre[d] +=
            cluster.direction * config_.drift_step * line_dir_[d];
      }
      // Reflect at the cube faces so long timelines keep their clusters
      // inside the domain instead of pinning them flat against a wall.
      for (size_t d = 0; d < config_.dims; ++d) {
        if (cluster.centre[d] < 0.0 || cluster.centre[d] > 1.0) {
          cluster.direction = -cluster.direction;
          for (size_t e = 0; e < config_.dims; ++e) {
            cluster.centre[e] = std::min(1.0, std::max(0.0, cluster.centre[e]));
          }
          break;
        }
      }
    }
  }

  void SamplePoint(const Cluster& cluster, std::vector<float>* rows) {
    for (size_t d = 0; d < config_.dims; ++d) {
      rows->push_back(
          Clamp01(cluster.centre[d] + rng_.Gaussian(0.0, config_.sigma)));
    }
  }

  const DriftConfig& config_;
  Rng rng_;
  std::vector<double> line_dir_;
  std::deque<Cluster> live_;  ///< birth order; front expires first
  PointId next_id_ = 0;
};

}  // namespace

Status DriftConfig::Validate() const {
  if (dims == 0) return Status::InvalidArgument("drift requires dims > 0");
  if (clusters == 0) {
    return Status::InvalidArgument("drift requires clusters > 0");
  }
  if (points_per_cluster == 0) {
    return Status::InvalidArgument("drift requires points_per_cluster > 0");
  }
  if (sigma < 0.0) return Status::InvalidArgument("sigma must be >= 0");
  if (margin < 0.0 || margin > 0.5) {
    return Status::InvalidArgument("margin must be in [0, 0.5]");
  }
  if (drift_step < 0.0) {
    return Status::InvalidArgument("drift_step must be >= 0");
  }
  return Status::OK();
}

size_t DriftTimeline::total_inserts() const {
  size_t n = 0;
  for (const DriftStep& step : steps) n += step.inserts(dims);
  return n;
}

size_t DriftTimeline::total_removes() const {
  size_t n = 0;
  for (const DriftStep& step : steps) n += step.remove_ids.size();
  return n;
}

Result<DriftTimeline> GenerateDrift(const DriftConfig& config) {
  SIMJOIN_RETURN_NOT_OK(config.Validate());
  return Generator(config).Run();
}

}  // namespace simjoin
