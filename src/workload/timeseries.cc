#include "workload/timeseries.h"

#include <cmath>

#include "common/rng.h"
#include "workload/fft.h"

namespace simjoin {

Result<std::vector<Series>> GenerateSeriesFamily(const SeriesFamilyConfig& config) {
  if (config.num_series == 0 || config.length < 2) {
    return Status::InvalidArgument(
        "series family requires num_series > 0 and length >= 2");
  }
  if (config.groups == 0) {
    return Status::InvalidArgument("series family requires groups > 0");
  }
  if (config.group_weight < 0.0 || config.group_weight > 1.0) {
    return Status::InvalidArgument("group_weight must be in [0, 1]");
  }
  Rng rng(config.seed);

  // One shared driver walk per group.
  std::vector<Series> drivers(config.groups, Series(config.length, 0.0));
  for (auto& driver : drivers) {
    double level = 0.0;
    for (size_t t = 0; t < config.length; ++t) {
      level += rng.Gaussian(0.0, config.volatility);
      driver[t] = level;
    }
  }

  std::vector<Series> family(config.num_series, Series(config.length, 0.0));
  for (size_t s = 0; s < config.num_series; ++s) {
    const Series& driver = drivers[s % config.groups];
    double own = 0.0;
    for (size_t t = 0; t < config.length; ++t) {
      own += rng.Gaussian(0.0, config.volatility);
      family[s][t] = config.group_weight * driver[t] +
                     (1.0 - config.group_weight) * own;
    }
  }
  return family;
}

void ZNormalize(Series* series) {
  if (series == nullptr || series->empty()) return;
  const double n = static_cast<double>(series->size());
  double mean = 0.0;
  for (double v : *series) mean += v;
  mean /= n;
  double var = 0.0;
  for (double v : *series) var += (v - mean) * (v - mean);
  var /= n;
  const double stddev = std::sqrt(var);
  for (double& v : *series) {
    v = stddev > 0.0 ? (v - mean) / stddev : 0.0;
  }
}

Result<std::vector<float>> DftFeatures(const Series& series, size_t k) {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (series.size() < 2 * k + 1) {
    return Status::InvalidArgument(
        "series too short for k=" + std::to_string(k) +
        " coefficients (need length >= 2k+1)");
  }
  SIMJOIN_ASSIGN_OR_RETURN(auto spectrum, RealDft(series));
  const double scale = 1.0 / std::sqrt(static_cast<double>(spectrum.size()));
  std::vector<float> features;
  features.reserve(2 * k);
  // Coefficient 0 (DC) is dropped: z-normalisation makes it ~0 anyway.
  for (size_t c = 1; c <= k; ++c) {
    features.push_back(static_cast<float>(spectrum[c].real() * scale));
    features.push_back(static_cast<float>(spectrum[c].imag() * scale));
  }
  return features;
}

Result<Dataset> SeriesToFeatureDataset(const std::vector<Series>& family, size_t k) {
  if (family.empty()) return Status::InvalidArgument("empty series family");
  Dataset ds;
  for (const Series& raw : family) {
    Series s = raw;
    ZNormalize(&s);
    SIMJOIN_ASSIGN_OR_RETURN(auto features, DftFeatures(s, k));
    ds.Append(features);
  }
  return ds;
}

double SeriesEuclideanDistance(const Series& a, const Series& b) {
  SIMJOIN_CHECK_EQ(a.size(), b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

}  // namespace simjoin
