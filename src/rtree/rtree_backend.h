// IndexBackend adapter over the bulk-loaded R-tree.
//
// The paper's evaluation pits the eps-k-d-B tree against the R-tree family;
// this adapter makes that comparison a routing decision instead of a
// separate code path: an STR bulk-loaded R-tree answers the same epsilon
// range queries behind the same IndexBackend interface the planner and the
// service dispatch through.  It is a forced-routing / differential-testing
// tier — BackendKindBuildable(kRTree) stays false, so it is never an index
// primary; the planner materialises it on demand exactly like brute-SIMD.

#ifndef SIMJOIN_RTREE_RTREE_BACKEND_H_
#define SIMJOIN_RTREE_RTREE_BACKEND_H_

#include <memory>

#include "core/index_backend.h"
#include "rtree/rtree.h"

namespace simjoin {

/// Exact R-tree backend: STR bulk load at construction, best-first MBR
/// pruning per query.  Ids are emitted in ascending order (sorted after
/// collection) so differential tests can compare against other exact
/// backends without a canonicalisation step.
class RTreeBackend final : public IndexBackend {
 public:
  static Result<std::unique_ptr<RTreeBackend>> Build(
      const Dataset& dataset, const EkdbConfig& config,
      const RTreeConfig& rtree_config = {});

  BackendKind kind() const override { return BackendKind::kRTree; }
  const EkdbConfig& config() const override { return config_; }
  const Dataset& dataset() const override { return tree_.dataset(); }
  uint64_t index_bytes() const override { return memory_bytes_; }
  bool exact() const override { return true; }
  Status ValidateQueryEpsilon(double eps_query) const override;
  Status RangeQuery(const float* query, double eps_query,
                    std::vector<PointId>* out, JoinStats* stats,
                    double* recall_est) const override;
  Status RangeQueryBatch(const RangeQuerySpec* specs, size_t count,
                         std::vector<std::vector<PointId>>* results,
                         std::vector<JoinStats>* stats,
                         std::vector<double>* recall_ests) const override;
  double EstimatedQueryCost(double eps_query,
                            double expected_neighbors) const override;

  const RTree& rtree() const { return tree_; }

 private:
  RTreeBackend(RTree tree, const EkdbConfig& config, uint64_t memory_bytes)
      : tree_(std::move(tree)), config_(config), memory_bytes_(memory_bytes) {}

  RTree tree_;
  EkdbConfig config_;
  uint64_t memory_bytes_ = 0;
};

}  // namespace simjoin

#endif  // SIMJOIN_RTREE_RTREE_BACKEND_H_
