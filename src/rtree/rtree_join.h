// Epsilon-similarity joins over R-trees via synchronised MBR traversal —
// the spatial-join comparator of the paper's evaluation.
//
// Two subtrees are joined only if the minimum distance between their MBRs
// is at most epsilon; leaf pairs sweep their (dimension-0 sorted, when bulk
// loaded) entry lists with a window filter plus the early-exit distance
// test.  The algorithm is the point-data specialisation of the classic
// R-tree spatial join of Brinkhoff et al.

#ifndef SIMJOIN_RTREE_RTREE_JOIN_H_
#define SIMJOIN_RTREE_RTREE_JOIN_H_

#include "common/pair_sink.h"
#include "common/status.h"
#include "rtree/rtree.h"

namespace simjoin {

/// Self-join of the tree's dataset: canonical (min, max) pairs, each once.
Status RTreeSelfJoin(const RTree& tree, double epsilon, PairSink* sink,
                     Metric metric = Metric::kL2, JoinStats* stats = nullptr);

/// Join across two trees (which may index different datasets of equal
/// dimensionality).  Pairs are (id in a, id in b).
Status RTreeJoin(const RTree& a, const RTree& b, double epsilon, PairSink* sink,
                 Metric metric = Metric::kL2, JoinStats* stats = nullptr);

}  // namespace simjoin

#endif  // SIMJOIN_RTREE_RTREE_JOIN_H_
