#include "rtree/rtree.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <numeric>
#include <queue>
#include <utility>

namespace simjoin {
namespace {

/// Recursively applies Sort-Tile-Recursive partitioning: items[begin, end)
/// are sorted by coord(item, dim) and cut into slabs, each slab recursing on
/// the next dimension, until runs of at most `cap` items remain.  Emits the
/// [begin, end) bounds of each final group.
template <typename Item, typename CoordFn>
void StrTile(std::vector<Item>* items, size_t begin, size_t end, size_t dim,
             size_t dims, size_t cap, const CoordFn& coord,
             std::vector<std::pair<size_t, size_t>>* groups) {
  const size_t n = end - begin;
  if (n <= cap) {
    groups->emplace_back(begin, end);
    return;
  }
  std::sort(items->begin() + static_cast<ptrdiff_t>(begin),
            items->begin() + static_cast<ptrdiff_t>(end),
            [&](const Item& a, const Item& b) { return coord(a, dim) < coord(b, dim); });
  if (dim + 1 >= dims) {
    for (size_t g = begin; g < end; g += cap) {
      groups->emplace_back(g, std::min(g + cap, end));
    }
    return;
  }
  const auto pages = static_cast<double>((n + cap - 1) / cap);
  const auto dims_left = static_cast<double>(dims - dim);
  const size_t slabs = std::max<size_t>(
      1, static_cast<size_t>(std::ceil(std::pow(pages, 1.0 / dims_left))));
  const size_t slab_size = (n + slabs - 1) / slabs;
  for (size_t s = begin; s < end; s += slab_size) {
    StrTile(items, s, std::min(s + slab_size, end), dim + 1, dims, cap, coord,
            groups);
  }
}

}  // namespace

Status RTreeConfig::Validate() const {
  if (max_entries < 2) {
    return Status::InvalidArgument("max_entries must be at least 2");
  }
  if (min_entries < 1 || min_entries > max_entries / 2) {
    return Status::InvalidArgument(
        "min_entries must be in [1, max_entries/2]");
  }
  if (reinsert_fraction <= 0.0 || reinsert_fraction >= 1.0) {
    return Status::InvalidArgument("reinsert_fraction must be in (0, 1)");
  }
  return Status::OK();
}

RTree::RTree(const Dataset* dataset, RTreeConfig config)
    : dataset_(dataset), config_(config) {}

BoundingBox RTree::PointBox(PointId id) const {
  return BoundingBox::FromPoint(dataset_->Row(id), dataset_->dims());
}

void RTree::RecomputeMbr(RTreeNode* node) const {
  node->mbr = BoundingBox(dataset_->dims());
  if (node->is_leaf()) {
    for (PointId id : node->entries) node->mbr.ExtendPoint(dataset_->Row(id));
  } else {
    for (const auto& child : node->children) node->mbr.ExtendBox(child->mbr);
  }
}

Result<RTree> RTree::BulkLoad(const Dataset& dataset, const RTreeConfig& config) {
  SIMJOIN_RETURN_NOT_OK(config.Validate());
  if (dataset.empty()) {
    return Status::InvalidArgument("cannot bulk-load an empty dataset");
  }
  RTree tree(&dataset, config);
  const size_t dims = dataset.dims();
  const size_t cap = config.max_entries;

  // Pack points into leaves.
  std::vector<PointId> ids(dataset.size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<PointId>(i);
  std::vector<std::pair<size_t, size_t>> groups;
  StrTile(&ids, 0, ids.size(), 0, dims, cap,
          [&dataset](PointId id, size_t d) { return dataset.Row(id)[d]; },
          &groups);

  std::vector<std::unique_ptr<RTreeNode>> level;
  level.reserve(groups.size());
  for (const auto& [begin, end] : groups) {
    auto leaf = std::make_unique<RTreeNode>();
    leaf->level = 0;
    leaf->entries.assign(ids.begin() + static_cast<ptrdiff_t>(begin),
                         ids.begin() + static_cast<ptrdiff_t>(end));
    // Keep leaf entries sorted on dimension 0 so the join sweep can window.
    std::sort(leaf->entries.begin(), leaf->entries.end(),
              [&dataset](PointId a, PointId b) {
                return dataset.Row(a)[0] < dataset.Row(b)[0];
              });
    tree.RecomputeMbr(leaf.get());
    level.push_back(std::move(leaf));
  }

  // Pack nodes upward until one root remains.
  uint32_t current_level = 0;
  while (level.size() > 1) {
    ++current_level;
    std::vector<uint32_t> order(level.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<uint32_t>(i);
    groups.clear();
    StrTile(&order, 0, order.size(), 0, dims, cap,
            [&level](uint32_t idx, size_t d) {
              const BoundingBox& mbr = level[idx]->mbr;
              return 0.5 * (static_cast<double>(mbr.lo(d)) + mbr.hi(d));
            },
            &groups);
    std::vector<std::unique_ptr<RTreeNode>> next;
    next.reserve(groups.size());
    for (const auto& [begin, end] : groups) {
      auto node = std::make_unique<RTreeNode>();
      node->level = current_level;
      for (size_t i = begin; i < end; ++i) {
        node->children.push_back(std::move(level[order[i]]));
      }
      tree.RecomputeMbr(node.get());
      next.push_back(std::move(node));
    }
    level = std::move(next);
  }
  tree.root_ = std::move(level.front());
  return tree;
}

Result<RTree> RTree::BuildByInsertion(const Dataset& dataset,
                                      const RTreeConfig& config) {
  SIMJOIN_RETURN_NOT_OK(config.Validate());
  if (dataset.empty()) {
    return Status::InvalidArgument("cannot build on an empty dataset");
  }
  RTree tree(&dataset, config);
  tree.root_ = std::make_unique<RTreeNode>();
  tree.root_->level = 0;
  tree.root_->mbr = BoundingBox(dataset.dims());
  for (size_t i = 0; i < dataset.size(); ++i) {
    SIMJOIN_RETURN_NOT_OK(tree.Insert(static_cast<PointId>(i)));
  }
  return tree;
}

Status RTree::Insert(PointId id) {
  if (root_ == nullptr) {
    return Status::Internal("Insert requires an insertion-built tree");
  }
  if (static_cast<size_t>(id) >= dataset_->size()) {
    return Status::OutOfRange("point id out of range");
  }
  // Forced reinsertion fires at most once per public insert; entries it
  // evicts are re-driven through the normal path (and may split).
  reinsert_used_ = false;
  InsertTopLevel(id);
  while (!pending_reinserts_.empty()) {
    const PointId evicted = pending_reinserts_.back();
    pending_reinserts_.pop_back();
    InsertTopLevel(evicted);
  }
  return Status::OK();
}

void RTree::InsertTopLevel(PointId id) {
  std::unique_ptr<RTreeNode> sibling = InsertRecursive(root_.get(), id);
  if (sibling != nullptr) {
    // Root split: grow the tree by one level.
    auto new_root = std::make_unique<RTreeNode>();
    new_root->level = root_->level + 1;
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(sibling));
    RecomputeMbr(new_root.get());
    root_ = std::move(new_root);
  }
}

std::unique_ptr<RTreeNode> RTree::InsertRecursive(RTreeNode* node, PointId id) {
  const float* row = dataset_->Row(id);
  if (node->is_leaf()) {
    node->entries.push_back(id);
    if (node->mbr.IsEmpty()) node->mbr = BoundingBox(dataset_->dims());
    node->mbr.ExtendPoint(row);
    if (node->entries.size() <= config_.max_entries) return nullptr;
    if (config_.forced_reinsert && !reinsert_used_ && node != root_.get()) {
      // Evict the entries farthest from the leaf centre instead of
      // splitting; they re-enter through Insert()'s drain loop.
      reinsert_used_ = true;
      const size_t dims = dataset_->dims();
      std::vector<double> centre(dims);
      for (size_t d = 0; d < dims; ++d) {
        centre[d] = 0.5 * (static_cast<double>(node->mbr.lo(d)) + node->mbr.hi(d));
      }
      auto centre_dist = [&](PointId p) {
        const float* r = dataset_->Row(p);
        double acc = 0.0;
        for (size_t d = 0; d < dims; ++d) {
          const double g = r[d] - centre[d];
          acc += g * g;
        }
        return acc;
      };
      std::sort(node->entries.begin(), node->entries.end(),
                [&](PointId a, PointId b) { return centre_dist(a) < centre_dist(b); });
      const size_t evict = std::max<size_t>(
          1, static_cast<size_t>(config_.reinsert_fraction *
                                 static_cast<double>(node->entries.size())));
      pending_reinserts_.insert(
          pending_reinserts_.end(),
          node->entries.end() - static_cast<ptrdiff_t>(evict),
          node->entries.end());
      node->entries.resize(node->entries.size() - evict);
      RecomputeMbr(node);
      return nullptr;
    }
    return SplitNode(node);
  }

  // ChooseSubtree.  R* at the level above the leaves: least *overlap*
  // enlargement (ties: least volume enlargement).  Otherwise (and for the
  // classic variant): least volume enlargement, ties by smallest volume.
  size_t best = 0;
  if (config_.split == RTreeSplitAlgorithm::kRStar && node->level == 1) {
    double best_overlap_delta = std::numeric_limits<double>::infinity();
    double best_enlargement = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < node->children.size(); ++i) {
      const BoundingBox& mbr = node->children[i]->mbr;
      BoundingBox enlarged = mbr;
      enlarged.ExtendPoint(row);
      double overlap_delta = 0.0;
      for (size_t j = 0; j < node->children.size(); ++j) {
        if (j == i) continue;
        const BoundingBox& other = node->children[j]->mbr;
        overlap_delta +=
            enlarged.OverlapVolume(other) - mbr.OverlapVolume(other);
      }
      const double enlargement = enlarged.Volume() - mbr.Volume();
      if (overlap_delta < best_overlap_delta ||
          (overlap_delta == best_overlap_delta &&
           enlargement < best_enlargement)) {
        best = i;
        best_overlap_delta = overlap_delta;
        best_enlargement = enlargement;
      }
    }
  } else {
    double best_enlargement = std::numeric_limits<double>::infinity();
    double best_volume = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < node->children.size(); ++i) {
      const BoundingBox& mbr = node->children[i]->mbr;
      BoundingBox enlarged = mbr;
      enlarged.ExtendPoint(row);
      const double enlargement = enlarged.Volume() - mbr.Volume();
      if (enlargement < best_enlargement ||
          (enlargement == best_enlargement && mbr.Volume() < best_volume)) {
        best = i;
        best_enlargement = enlargement;
        best_volume = mbr.Volume();
      }
    }
  }

  std::unique_ptr<RTreeNode> child_sibling =
      InsertRecursive(node->children[best].get(), id);
  if (child_sibling != nullptr) {
    node->children.push_back(std::move(child_sibling));
  }
  if (config_.forced_reinsert) {
    // A forced reinsert below may have *shrunk* the child; keep ancestor
    // MBRs exact rather than only growing them.
    RecomputeMbr(node);
  } else {
    node->mbr.ExtendPoint(row);
  }
  if (node->children.size() > config_.max_entries) return SplitNode(node);
  return nullptr;
}

namespace {

/// Guttman's quadratic split over abstract items.  Returns the item indices
/// assigned to the new sibling; the rest stay in the original node.
template <typename BoxFn>
std::vector<size_t> QuadraticSplitAssign(size_t count, size_t min_entries,
                                         const BoxFn& box_of) {
  // PickSeeds: pair with the most dead space when covered together.
  size_t seed_a = 0, seed_b = 1;
  double worst = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < count; ++i) {
    for (size_t j = i + 1; j < count; ++j) {
      BoundingBox joint = box_of(i);
      joint.ExtendBox(box_of(j));
      const double dead = joint.Volume() - box_of(i).Volume() - box_of(j).Volume();
      if (dead > worst) {
        worst = dead;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  BoundingBox group_a = box_of(seed_a);
  BoundingBox group_b = box_of(seed_b);
  std::vector<size_t> in_b;
  std::vector<bool> assigned(count, false);
  assigned[seed_a] = assigned[seed_b] = true;
  in_b.push_back(seed_b);
  size_t count_a = 1, count_b = 1;
  size_t remaining = count - 2;

  while (remaining > 0) {
    // If one group must take everything left to reach min_entries, do so.
    if (count_a + remaining == min_entries) {
      for (size_t i = 0; i < count; ++i) {
        if (!assigned[i]) {
          assigned[i] = true;
          group_a.ExtendBox(box_of(i));
          ++count_a;
        }
      }
      remaining = 0;
      break;
    }
    if (count_b + remaining == min_entries) {
      for (size_t i = 0; i < count; ++i) {
        if (!assigned[i]) {
          assigned[i] = true;
          in_b.push_back(i);
          group_b.ExtendBox(box_of(i));
          ++count_b;
        }
      }
      remaining = 0;
      break;
    }

    // PickNext: the item with the largest preference between groups.
    size_t next = count;
    double best_diff = -1.0;
    double next_enlarge_a = 0.0, next_enlarge_b = 0.0;
    for (size_t i = 0; i < count; ++i) {
      if (assigned[i]) continue;
      BoundingBox ea = group_a;
      ea.ExtendBox(box_of(i));
      BoundingBox eb = group_b;
      eb.ExtendBox(box_of(i));
      const double da = ea.Volume() - group_a.Volume();
      const double db = eb.Volume() - group_b.Volume();
      const double diff = std::fabs(da - db);
      if (diff > best_diff) {
        best_diff = diff;
        next = i;
        next_enlarge_a = da;
        next_enlarge_b = db;
      }
    }
    // Assign to the group needing less enlargement; ties to smaller volume,
    // then to fewer entries.
    bool to_a;
    if (next_enlarge_a != next_enlarge_b) {
      to_a = next_enlarge_a < next_enlarge_b;
    } else if (group_a.Volume() != group_b.Volume()) {
      to_a = group_a.Volume() < group_b.Volume();
    } else {
      to_a = count_a <= count_b;
    }
    assigned[next] = true;
    if (to_a) {
      group_a.ExtendBox(box_of(next));
      ++count_a;
    } else {
      in_b.push_back(next);
      group_b.ExtendBox(box_of(next));
      ++count_b;
    }
    --remaining;
  }
  return in_b;
}

/// R*-style split over abstract items: pick the axis whose candidate
/// distributions have the smallest summed margin, then on that axis the
/// distribution with the least overlap (ties: least combined volume).
/// Returns the item indices assigned to the new sibling.
template <typename BoxFn>
std::vector<size_t> RStarSplitAssign(size_t count, size_t min_entries,
                                     size_t dims, const BoxFn& box_of) {
  // Precompute item boxes once.
  std::vector<BoundingBox> boxes;
  boxes.reserve(count);
  for (size_t i = 0; i < count; ++i) boxes.push_back(box_of(i));

  struct Candidate {
    std::vector<size_t> order;  // item indices in sort order
    size_t split_at = 0;        // first `split_at` go to group A
    double overlap = 0.0;
    double volume = 0.0;
  };
  Candidate best;
  double best_axis_margin = std::numeric_limits<double>::infinity();

  std::vector<size_t> order(count);
  for (size_t axis = 0; axis < dims; ++axis) {
    // Two sort keys per axis (R* uses both lower and upper bounds).
    for (int key = 0; key < 2; ++key) {
      std::iota(order.begin(), order.end(), size_t{0});
      std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return key == 0 ? boxes[a].lo(axis) < boxes[b].lo(axis)
                        : boxes[a].hi(axis) < boxes[b].hi(axis);
      });
      // Prefix/suffix bounding boxes.
      std::vector<BoundingBox> prefix(count, BoundingBox(dims));
      std::vector<BoundingBox> suffix(count, BoundingBox(dims));
      prefix[0] = boxes[order[0]];
      for (size_t i = 1; i < count; ++i) {
        prefix[i] = prefix[i - 1];
        prefix[i].ExtendBox(boxes[order[i]]);
      }
      suffix[count - 1] = boxes[order[count - 1]];
      for (size_t i = count - 1; i-- > 0;) {
        suffix[i] = suffix[i + 1];
        suffix[i].ExtendBox(boxes[order[i]]);
      }
      double margin_sum = 0.0;
      Candidate axis_best;
      double axis_best_overlap = std::numeric_limits<double>::infinity();
      double axis_best_volume = std::numeric_limits<double>::infinity();
      for (size_t k = min_entries; k + min_entries <= count; ++k) {
        const BoundingBox& a = prefix[k - 1];
        const BoundingBox& b = suffix[k];
        margin_sum += a.Margin() + b.Margin();
        const double overlap = a.OverlapVolume(b);
        const double volume = a.Volume() + b.Volume();
        if (overlap < axis_best_overlap ||
            (overlap == axis_best_overlap && volume < axis_best_volume)) {
          axis_best_overlap = overlap;
          axis_best_volume = volume;
          axis_best.order = order;
          axis_best.split_at = k;
          axis_best.overlap = overlap;
          axis_best.volume = volume;
        }
      }
      if (margin_sum < best_axis_margin) {
        best_axis_margin = margin_sum;
        best = std::move(axis_best);
      }
    }
  }

  std::vector<size_t> in_b(best.order.begin() +
                               static_cast<ptrdiff_t>(best.split_at),
                           best.order.end());
  return in_b;
}

}  // namespace

std::unique_ptr<RTreeNode> RTree::SplitNode(RTreeNode* node) {
  auto sibling = std::make_unique<RTreeNode>();
  sibling->level = node->level;
  const size_t dims = dataset_->dims();

  const bool rstar = config_.split == RTreeSplitAlgorithm::kRStar;
  if (node->is_leaf()) {
    const std::vector<PointId> items = std::move(node->entries);
    node->entries.clear();
    auto box_of = [&](size_t i) {
      return BoundingBox::FromPoint(dataset_->Row(items[i]), dims);
    };
    std::vector<size_t> to_b =
        rstar ? RStarSplitAssign(items.size(), config_.min_entries, dims, box_of)
              : QuadraticSplitAssign(items.size(), config_.min_entries, box_of);
    std::vector<bool> is_b(items.size(), false);
    for (size_t i : to_b) is_b[i] = true;
    for (size_t i = 0; i < items.size(); ++i) {
      (is_b[i] ? sibling->entries : node->entries).push_back(items[i]);
    }
  } else {
    std::vector<std::unique_ptr<RTreeNode>> items = std::move(node->children);
    node->children.clear();
    auto box_of = [&](size_t i) { return items[i]->mbr; };
    std::vector<size_t> to_b =
        rstar ? RStarSplitAssign(items.size(), config_.min_entries, dims, box_of)
              : QuadraticSplitAssign(items.size(), config_.min_entries, box_of);
    std::vector<bool> is_b(items.size(), false);
    for (size_t i : to_b) is_b[i] = true;
    for (size_t i = 0; i < items.size(); ++i) {
      (is_b[i] ? sibling->children : node->children).push_back(std::move(items[i]));
    }
  }
  RecomputeMbr(node);
  RecomputeMbr(sibling.get());
  return sibling;
}

namespace {

/// Appends every point id below node to *out.
void CollectPoints(const RTreeNode* node, std::vector<PointId>* out) {
  if (node->is_leaf()) {
    out->insert(out->end(), node->entries.begin(), node->entries.end());
    return;
  }
  for (const auto& child : node->children) CollectPoints(child.get(), out);
}

}  // namespace

bool RTree::RemoveRecursive(RTreeNode* node, PointId id, const float* row,
                            std::vector<PointId>* orphans) {
  if (node->is_leaf()) {
    auto it = std::find(node->entries.begin(), node->entries.end(), id);
    if (it == node->entries.end()) return false;
    node->entries.erase(it);
    RecomputeMbr(node);
    return true;
  }
  for (size_t i = 0; i < node->children.size(); ++i) {
    RTreeNode* child = node->children[i].get();
    if (child->mbr.IsEmpty() || !child->mbr.ContainsPoint(row)) continue;
    if (!RemoveRecursive(child, id, row, orphans)) continue;
    const size_t child_fill =
        child->is_leaf() ? child->entries.size() : child->children.size();
    if (child_fill < config_.min_entries) {
      // Condense: dissolve the underflowing child, reinsert its points.
      CollectPoints(child, orphans);
      node->children.erase(node->children.begin() +
                           static_cast<ptrdiff_t>(i));
    }
    RecomputeMbr(node);
    return true;
  }
  return false;
}

Status RTree::Remove(PointId id) {
  if (root_ == nullptr) return Status::Internal("tree has no root");
  if (static_cast<size_t>(id) >= dataset_->size()) {
    return Status::OutOfRange("point id out of range");
  }
  std::vector<PointId> orphans;
  if (!RemoveRecursive(root_.get(), id, dataset_->Row(id), &orphans)) {
    return Status::NotFound("point id " + std::to_string(id) +
                            " is not in the tree");
  }
  // Collapse a chain of single-child internal roots.
  while (!root_->is_leaf() && root_->children.size() == 1) {
    root_ = std::move(root_->children.front());
  }
  // An internal root that lost every child degenerates to an empty leaf.
  if (!root_->is_leaf() && root_->children.empty()) {
    root_->level = 0;
    root_->mbr = BoundingBox(dataset_->dims());
  }
  for (PointId orphan : orphans) {
    SIMJOIN_RETURN_NOT_OK(Insert(orphan));
  }
  return Status::OK();
}

Status RTree::RangeQuery(const float* query, double epsilon, Metric metric,
                         std::vector<PointId>* out) const {
  if (out == nullptr) return Status::InvalidArgument("out must not be null");
  if (!(epsilon > 0.0)) return Status::InvalidArgument("epsilon must be positive");
  if (root_ == nullptr) return Status::Internal("tree has no root");
  DistanceKernel kernel(metric);
  const size_t dims = dataset_->dims();

  std::vector<const RTreeNode*> stack = {root_.get()};
  while (!stack.empty()) {
    const RTreeNode* node = stack.back();
    stack.pop_back();
    if (node->mbr.IsEmpty() ||
        node->mbr.MinDistanceToPoint(query, dims, metric) > epsilon) {
      continue;
    }
    if (node->is_leaf()) {
      for (PointId id : node->entries) {
        if (kernel.WithinEpsilon(query, dataset_->Row(id), dims, epsilon)) {
          out->push_back(id);
        }
      }
    } else {
      for (const auto& child : node->children) stack.push_back(child.get());
    }
  }
  return Status::OK();
}

Status RTree::KnnQuery(const float* query, size_t k, Metric metric,
                       std::vector<Neighbor>* out) const {
  if (out == nullptr) return Status::InvalidArgument("out must not be null");
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (root_ == nullptr) return Status::Internal("tree has no root");
  DistanceKernel kernel(metric);
  const size_t dims = dataset_->dims();

  using HeapEntry = std::pair<double, PointId>;  // max-heap of best k
  std::vector<HeapEntry> heap;
  using QueueEntry = std::pair<double, const RTreeNode*>;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>>
      queue;
  if (!root_->mbr.IsEmpty()) {
    queue.emplace(root_->mbr.MinDistanceToPoint(query, dims, metric),
                  root_.get());
  }
  while (!queue.empty()) {
    const auto [lower_bound, node] = queue.top();
    queue.pop();
    if (heap.size() == k && lower_bound > heap.front().first) break;
    if (node->is_leaf()) {
      for (PointId p : node->entries) {
        const HeapEntry cand{kernel.Distance(query, dataset_->Row(p), dims), p};
        if (heap.size() < k) {
          heap.push_back(cand);
          std::push_heap(heap.begin(), heap.end());
        } else if (cand < heap.front()) {
          heap.push_back(cand);
          std::push_heap(heap.begin(), heap.end());
          std::pop_heap(heap.begin(), heap.end());
          heap.pop_back();
        }
      }
      continue;
    }
    for (const auto& child : node->children) {
      if (child->mbr.IsEmpty()) continue;
      queue.emplace(child->mbr.MinDistanceToPoint(query, dims, metric),
                    child.get());
    }
  }
  std::sort(heap.begin(), heap.end());
  out->clear();
  out->reserve(heap.size());
  for (const auto& [dist, id] : heap) out->push_back(Neighbor{id, dist});
  return Status::OK();
}

namespace {

void WalkStats(const RTreeNode* node, size_t max_entries, size_t dims,
               RTreeStats* stats, double* fill_sum) {
  ++stats->nodes;
  stats->height = std::max<uint64_t>(stats->height, node->level + 1);
  stats->memory_bytes += sizeof(RTreeNode);
  stats->memory_bytes += node->entries.capacity() * sizeof(PointId);
  stats->memory_bytes +=
      node->children.capacity() * sizeof(std::unique_ptr<RTreeNode>);
  stats->memory_bytes += 2 * dims * sizeof(float);
  if (node->is_leaf()) {
    ++stats->leaves;
    stats->total_points += node->entries.size();
    *fill_sum += static_cast<double>(node->entries.size()) /
                 static_cast<double>(max_entries);
    return;
  }
  for (const auto& child : node->children) {
    WalkStats(child.get(), max_entries, dims, stats, fill_sum);
  }
}

Status CheckNode(const RTreeNode* node, const Dataset& data,
                 const RTreeConfig& config, bool is_root) {
  if (node->is_leaf()) {
    if (!node->children.empty()) {
      return Status::Internal("leaf node has children");
    }
    if (!is_root && node->entries.empty()) {
      return Status::Internal("non-root leaf is empty");
    }
    BoundingBox exact(data.dims());
    for (PointId id : node->entries) {
      if (static_cast<size_t>(id) >= data.size()) {
        return Status::Internal("leaf entry id out of range");
      }
      exact.ExtendPoint(data.Row(id));
    }
    if (!node->entries.empty() &&
        (!node->mbr.ContainsBox(exact) || !exact.ContainsBox(node->mbr))) {
      return Status::Internal("leaf MBR is not exact");
    }
    if (node->entries.size() > config.max_entries) {
      return Status::Internal("leaf exceeds max_entries");
    }
    return Status::OK();
  }
  if (!node->entries.empty()) {
    return Status::Internal("internal node has point entries");
  }
  if (node->children.empty()) {
    return Status::Internal("internal node has no children");
  }
  if (node->children.size() > config.max_entries) {
    return Status::Internal("internal node exceeds max_entries");
  }
  BoundingBox exact(data.dims());
  for (const auto& child : node->children) {
    if (child->level + 1 != node->level) {
      return Status::Internal("child level mismatch");
    }
    exact.ExtendBox(child->mbr);
    SIMJOIN_RETURN_NOT_OK(CheckNode(child.get(), data, config, false));
  }
  if (!node->mbr.ContainsBox(exact) || !exact.ContainsBox(node->mbr)) {
    return Status::Internal("internal MBR is not exact");
  }
  return Status::OK();
}

}  // namespace

RTreeStats RTree::ComputeStats() const {
  RTreeStats stats;
  double fill_sum = 0.0;
  WalkStats(root_.get(), config_.max_entries, dataset_->dims(), &stats, &fill_sum);
  stats.avg_leaf_fill =
      stats.leaves > 0 ? fill_sum / static_cast<double>(stats.leaves) : 0.0;
  return stats;
}

Status RTree::CheckInvariants() const {
  if (root_ == nullptr) return Status::Internal("tree has no root");
  return CheckNode(root_.get(), *dataset_, config_, /*is_root=*/true);
}

}  // namespace simjoin
