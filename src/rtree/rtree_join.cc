#include "rtree/rtree_join.h"

#include <algorithm>

#include "common/simd_kernel.h"

namespace simjoin {
namespace {

/// Traversal state shared by the self- and cross-join entry points.
class RTreeJoinContext {
 public:
  RTreeJoinContext(const Dataset& a_data, const Dataset& b_data, double epsilon,
                   Metric metric, bool self_mode, PairSink* sink)
      : a_data_(a_data),
        b_data_(b_data),
        kernel_(metric),
        epsilon_(epsilon),
        self_mode_(self_mode),
        batch_(metric, a_data.dims(), epsilon),
        buffered_(sink) {}

  void SelfJoinNode(const RTreeNode* node) {
    if (node->is_leaf()) {
      LeafSelfJoin(node);
      return;
    }
    const auto& kids = node->children;
    for (size_t i = 0; i < kids.size(); ++i) {
      SelfJoinNode(kids[i].get());
      for (size_t j = i + 1; j < kids.size(); ++j) {
        JoinNodes(kids[i].get(), kids[j].get());
      }
    }
  }

  void JoinNodes(const RTreeNode* a, const RTreeNode* b) {
    ++stats_.node_pairs_visited;
    if (a->mbr.IsEmpty() || b->mbr.IsEmpty() ||
        a->mbr.MinDistance(b->mbr, kernel_.metric()) > epsilon_) {
      ++stats_.node_pairs_pruned;
      return;
    }
    if (a->is_leaf() && b->is_leaf()) {
      LeafCrossJoin(a, b);
      return;
    }
    // Descend the taller side (or the internal side) so levels converge.
    if (!a->is_leaf() && (b->is_leaf() || a->level >= b->level)) {
      for (const auto& child : a->children) JoinNodes(child.get(), b);
    } else {
      for (const auto& child : b->children) JoinNodes(a, child.get());
    }
  }

  /// Pushes buffered result pairs through to the sink.  Must be called after
  /// the last traversal call and before results are consumed.
  void Flush() { buffered_.Flush(); }

  /// Work counters, including the batch kernel's SIMD/fallback tallies.
  JoinStats stats() const {
    JoinStats s = stats_;
    s.simd_batches = batch_.simd_batches();
    s.scalar_fallbacks = batch_.scalar_fallbacks();
    return s;
  }

 private:
  /// Filters the gathered candidate tile against one query row and emits the
  /// survivors (in canonical order for self-joins).
  void FlushTile(PointId query_id, const float* query_row) {
    FilterTileAndEmit(batch_, query_id, query_row, tile_, self_mode_,
                      buffered_, stats_);
  }

  void LeafSelfJoin(const RTreeNode* leaf) {
    const auto& ids = leaf->entries;
    const bool sorted = IsSortedOnDim0(ids, a_data_);
    for (size_t i = 0; i < ids.size(); ++i) {
      const float* row_i = a_data_.Row(ids[i]);
      for (size_t j = i + 1; j < ids.size(); ++j) {
        const float* row_j = a_data_.Row(ids[j]);
        if (sorted && static_cast<double>(row_j[0]) - row_i[0] > epsilon_) break;
        tile_.Add(ids[j], row_j);
        if (tile_.full()) FlushTile(ids[i], row_i);
      }
      FlushTile(ids[i], row_i);
    }
  }

  void LeafCrossJoin(const RTreeNode* a, const RTreeNode* b) {
    const bool sweep = IsSortedOnDim0(a->entries, a_data_) &&
                       IsSortedOnDim0(b->entries, b_data_);
    if (!sweep) {
      for (PointId a_id : a->entries) {
        const float* a_row = a_data_.Row(a_id);
        for (PointId b_id : b->entries) {
          tile_.Add(b_id, b_data_.Row(b_id));
          if (tile_.full()) FlushTile(a_id, a_row);
        }
        FlushTile(a_id, a_row);
      }
      return;
    }
    size_t window_start = 0;
    for (PointId a_id : a->entries) {
      const float* a_row = a_data_.Row(a_id);
      const double lo = static_cast<double>(a_row[0]) - epsilon_;
      const double hi = static_cast<double>(a_row[0]) + epsilon_;
      while (window_start < b->entries.size() &&
             static_cast<double>(b_data_.Row(b->entries[window_start])[0]) < lo) {
        ++window_start;
      }
      for (size_t j = window_start; j < b->entries.size(); ++j) {
        const float* b_row = b_data_.Row(b->entries[j]);
        if (static_cast<double>(b_row[0]) > hi) break;
        tile_.Add(b->entries[j], b_row);
        if (tile_.full()) FlushTile(a_id, a_row);
      }
      FlushTile(a_id, a_row);
    }
  }

  static bool IsSortedOnDim0(const std::vector<PointId>& ids, const Dataset& data) {
    return std::is_sorted(ids.begin(), ids.end(), [&data](PointId x, PointId y) {
      return data.Row(x)[0] < data.Row(y)[0];
    });
  }

  const Dataset& a_data_;
  const Dataset& b_data_;
  DistanceKernel kernel_;
  double epsilon_;
  bool self_mode_;
  BatchDistanceKernel batch_;
  BufferedSink buffered_;
  CandidateTile tile_;
  JoinStats stats_;
};

Status ValidateJoin(const Dataset& a, const Dataset& b, double epsilon,
                    PairSink* sink) {
  if (sink == nullptr) return Status::InvalidArgument("sink must not be null");
  if (a.dims() != b.dims()) {
    return Status::InvalidArgument("joined trees index different dimensionalities");
  }
  if (!(epsilon > 0.0)) return Status::InvalidArgument("epsilon must be positive");
  return Status::OK();
}

}  // namespace

Status RTreeSelfJoin(const RTree& tree, double epsilon, PairSink* sink,
                     Metric metric, JoinStats* stats) {
  SIMJOIN_RETURN_NOT_OK(
      ValidateJoin(tree.dataset(), tree.dataset(), epsilon, sink));
  RTreeJoinContext ctx(tree.dataset(), tree.dataset(), epsilon, metric,
                       /*self_mode=*/true, sink);
  ctx.SelfJoinNode(tree.root());
  ctx.Flush();
  if (stats != nullptr) stats->Merge(ctx.stats());
  return Status::OK();
}

Status RTreeJoin(const RTree& a, const RTree& b, double epsilon, PairSink* sink,
                 Metric metric, JoinStats* stats) {
  SIMJOIN_RETURN_NOT_OK(ValidateJoin(a.dataset(), b.dataset(), epsilon, sink));
  RTreeJoinContext ctx(a.dataset(), b.dataset(), epsilon, metric,
                       /*self_mode=*/false, sink);
  ctx.JoinNodes(a.root(), b.root());
  ctx.Flush();
  if (stats != nullptr) stats->Merge(ctx.stats());
  return Status::OK();
}

}  // namespace simjoin
