#include "rtree/rtree_join.h"

#include <algorithm>

namespace simjoin {
namespace {

/// Traversal state shared by the self- and cross-join entry points.
class RTreeJoinContext {
 public:
  RTreeJoinContext(const Dataset& a_data, const Dataset& b_data, double epsilon,
                   Metric metric, bool self_mode, PairSink* sink)
      : a_data_(a_data),
        b_data_(b_data),
        kernel_(metric),
        epsilon_(epsilon),
        self_mode_(self_mode),
        sink_(sink) {}

  void SelfJoinNode(const RTreeNode* node) {
    if (node->is_leaf()) {
      LeafSelfJoin(node);
      return;
    }
    const auto& kids = node->children;
    for (size_t i = 0; i < kids.size(); ++i) {
      SelfJoinNode(kids[i].get());
      for (size_t j = i + 1; j < kids.size(); ++j) {
        JoinNodes(kids[i].get(), kids[j].get());
      }
    }
  }

  void JoinNodes(const RTreeNode* a, const RTreeNode* b) {
    ++stats_.node_pairs_visited;
    if (a->mbr.IsEmpty() || b->mbr.IsEmpty() ||
        a->mbr.MinDistance(b->mbr, kernel_.metric()) > epsilon_) {
      ++stats_.node_pairs_pruned;
      return;
    }
    if (a->is_leaf() && b->is_leaf()) {
      LeafCrossJoin(a, b);
      return;
    }
    // Descend the taller side (or the internal side) so levels converge.
    if (!a->is_leaf() && (b->is_leaf() || a->level >= b->level)) {
      for (const auto& child : a->children) JoinNodes(child.get(), b);
    } else {
      for (const auto& child : b->children) JoinNodes(a, child.get());
    }
  }

  const JoinStats& stats() const { return stats_; }

 private:
  void TestAndEmit(PointId a, const float* a_row, PointId b, const float* b_row) {
    ++stats_.candidate_pairs;
    ++stats_.distance_calls;
    if (!kernel_.WithinEpsilon(a_row, b_row, a_data_.dims(), epsilon_)) return;
    ++stats_.pairs_emitted;
    if (self_mode_ && a > b) std::swap(a, b);
    sink_->Emit(a, b);
  }

  void LeafSelfJoin(const RTreeNode* leaf) {
    const auto& ids = leaf->entries;
    const bool sorted = IsSortedOnDim0(ids, a_data_);
    for (size_t i = 0; i < ids.size(); ++i) {
      const float* row_i = a_data_.Row(ids[i]);
      for (size_t j = i + 1; j < ids.size(); ++j) {
        const float* row_j = a_data_.Row(ids[j]);
        if (sorted && static_cast<double>(row_j[0]) - row_i[0] > epsilon_) break;
        TestAndEmit(ids[i], row_i, ids[j], row_j);
      }
    }
  }

  void LeafCrossJoin(const RTreeNode* a, const RTreeNode* b) {
    const bool sweep = IsSortedOnDim0(a->entries, a_data_) &&
                       IsSortedOnDim0(b->entries, b_data_);
    if (!sweep) {
      for (PointId a_id : a->entries) {
        const float* a_row = a_data_.Row(a_id);
        for (PointId b_id : b->entries) {
          TestAndEmit(a_id, a_row, b_id, b_data_.Row(b_id));
        }
      }
      return;
    }
    size_t window_start = 0;
    for (PointId a_id : a->entries) {
      const float* a_row = a_data_.Row(a_id);
      const double lo = static_cast<double>(a_row[0]) - epsilon_;
      const double hi = static_cast<double>(a_row[0]) + epsilon_;
      while (window_start < b->entries.size() &&
             static_cast<double>(b_data_.Row(b->entries[window_start])[0]) < lo) {
        ++window_start;
      }
      for (size_t j = window_start; j < b->entries.size(); ++j) {
        const float* b_row = b_data_.Row(b->entries[j]);
        if (static_cast<double>(b_row[0]) > hi) break;
        TestAndEmit(a_id, a_row, b->entries[j], b_row);
      }
    }
  }

  static bool IsSortedOnDim0(const std::vector<PointId>& ids, const Dataset& data) {
    return std::is_sorted(ids.begin(), ids.end(), [&data](PointId x, PointId y) {
      return data.Row(x)[0] < data.Row(y)[0];
    });
  }

  const Dataset& a_data_;
  const Dataset& b_data_;
  DistanceKernel kernel_;
  double epsilon_;
  bool self_mode_;
  PairSink* sink_;
  JoinStats stats_;
};

Status ValidateJoin(const Dataset& a, const Dataset& b, double epsilon,
                    PairSink* sink) {
  if (sink == nullptr) return Status::InvalidArgument("sink must not be null");
  if (a.dims() != b.dims()) {
    return Status::InvalidArgument("joined trees index different dimensionalities");
  }
  if (!(epsilon > 0.0)) return Status::InvalidArgument("epsilon must be positive");
  return Status::OK();
}

}  // namespace

Status RTreeSelfJoin(const RTree& tree, double epsilon, PairSink* sink,
                     Metric metric, JoinStats* stats) {
  SIMJOIN_RETURN_NOT_OK(
      ValidateJoin(tree.dataset(), tree.dataset(), epsilon, sink));
  RTreeJoinContext ctx(tree.dataset(), tree.dataset(), epsilon, metric,
                       /*self_mode=*/true, sink);
  ctx.SelfJoinNode(tree.root());
  if (stats != nullptr) stats->Merge(ctx.stats());
  return Status::OK();
}

Status RTreeJoin(const RTree& a, const RTree& b, double epsilon, PairSink* sink,
                 Metric metric, JoinStats* stats) {
  SIMJOIN_RETURN_NOT_OK(ValidateJoin(a.dataset(), b.dataset(), epsilon, sink));
  RTreeJoinContext ctx(a.dataset(), b.dataset(), epsilon, metric,
                       /*self_mode=*/false, sink);
  ctx.JoinNodes(a.root(), b.root());
  if (stats != nullptr) stats->Merge(ctx.stats());
  return Status::OK();
}

}  // namespace simjoin
