// R-tree over a point dataset — the spatial-index comparator family of the
// paper's evaluation.
//
// Two construction paths are provided:
//   * BulkLoad: Sort-Tile-Recursive (STR) packing.  For a static point set
//     STR yields tightly packed, near-disjoint leaves — the behaviour the
//     paper sought from the R+-tree — and is the variant the benchmark
//     harness uses as the "R-tree join" comparator.
//   * BuildByInsertion / Insert: classic Guttman insertion with quadratic
//     split, provided for dynamic workloads and to exercise the textbook
//     algorithms in tests.
//
// The tree indexes points of a Dataset it does not own; entries are point
// ids, node MBRs are exact bounding boxes.

#ifndef SIMJOIN_RTREE_RTREE_H_
#define SIMJOIN_RTREE_RTREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/bounding_box.h"
#include "common/dataset.h"
#include "common/metric.h"
#include "common/status.h"

namespace simjoin {

/// Node-split algorithm used by the insertion path.
enum class RTreeSplitAlgorithm {
  kQuadratic,  ///< Guttman's quadratic split (the classic R-tree).
  kRStar,      ///< R*-style topological split: margin-minimal axis, then
               ///< overlap-minimal distribution.
};

/// Capacity parameters of an R-tree.
struct RTreeConfig {
  /// Maximum entries per node (leaf points or internal children).
  size_t max_entries = 32;
  /// Minimum entries per node after a split (Guttman's m); must satisfy
  /// 1 <= min_entries <= max_entries / 2.
  size_t min_entries = 8;
  /// Split algorithm for dynamic insertion (BulkLoad never splits).
  RTreeSplitAlgorithm split = RTreeSplitAlgorithm::kQuadratic;

  /// R*-style forced reinsertion: the first leaf overflow of each insert
  /// evicts the `reinsert_fraction` entries farthest from the leaf centre
  /// and re-inserts them instead of splitting, letting entries migrate to
  /// better-fitting leaves.
  bool forced_reinsert = false;

  /// Fraction of a leaf evicted by forced reinsertion (R* recommends 0.3).
  double reinsert_fraction = 0.3;

  Status Validate() const;
};

/// One R-tree node.  level == 0 is a leaf holding point ids; higher levels
/// hold child nodes.
struct RTreeNode {
  BoundingBox mbr;
  uint32_t level = 0;
  std::vector<std::unique_ptr<RTreeNode>> children;  ///< level > 0
  std::vector<PointId> entries;                      ///< level == 0

  bool is_leaf() const { return level == 0; }
};

/// Aggregate structural statistics.
struct RTreeStats {
  uint64_t nodes = 0;
  uint64_t leaves = 0;
  uint64_t height = 0;  ///< root level + 1
  uint64_t total_points = 0;
  double avg_leaf_fill = 0.0;  ///< mean leaf entries / max_entries
  uint64_t memory_bytes = 0;
};

/// R-tree over a dataset that must outlive the tree.
class RTree {
 public:
  /// STR bulk load of the full dataset.
  static Result<RTree> BulkLoad(const Dataset& dataset, const RTreeConfig& config);

  /// Builds by repeated insertion (Guttman, quadratic split).
  static Result<RTree> BuildByInsertion(const Dataset& dataset,
                                        const RTreeConfig& config);

  /// Inserts one point of the dataset (by id) into the tree.
  Status Insert(PointId id);

  /// Removes one indexed point (by id), Guttman-style: the entry is deleted
  /// from its leaf, underflowing nodes are dissolved and their points
  /// reinserted (condense-tree), and a single-child root is collapsed.  The
  /// dataset row must still hold the point's coordinates.  Returns NotFound
  /// if the id is not in the tree.
  Status Remove(PointId id);

  /// Collects ids of all points within epsilon of the query point under the
  /// metric (an epsilon-range query).
  Status RangeQuery(const float* query, double epsilon, Metric metric,
                    std::vector<PointId>* out) const;

  /// One k-nearest-neighbours result.
  struct Neighbor {
    PointId id;
    double distance;
  };

  /// The k nearest indexed points to the query, ascending by
  /// (distance, id); fewer than k when the tree holds fewer points.
  /// Best-first branch-and-bound over MBR min-distances.
  Status KnnQuery(const float* query, size_t k, Metric metric,
                  std::vector<Neighbor>* out) const;

  const RTreeNode* root() const { return root_.get(); }
  const Dataset& dataset() const { return *dataset_; }
  const RTreeConfig& config() const { return config_; }

  RTreeStats ComputeStats() const;

  /// Verifies structural invariants (exact MBRs, level consistency, entry
  /// bounds); used by tests.
  Status CheckInvariants() const;

  RTree(RTree&&) = default;
  RTree& operator=(RTree&&) = default;
  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;

 private:
  RTree(const Dataset* dataset, RTreeConfig config);

  BoundingBox PointBox(PointId id) const;

  /// Recursive insert; returns a split-off sibling when the child overflowed.
  std::unique_ptr<RTreeNode> InsertRecursive(RTreeNode* node, PointId id);

  /// Recursive delete; collects points of dissolved (underflowing) nodes
  /// into *orphans.  Returns true iff the id was found and removed below.
  bool RemoveRecursive(RTreeNode* node, PointId id, const float* row,
                       std::vector<PointId>* orphans);

  /// Quadratic split of an overflowing node; returns the new sibling.
  std::unique_ptr<RTreeNode> SplitNode(RTreeNode* node);

  /// Recomputes node->mbr from its children/entries.
  void RecomputeMbr(RTreeNode* node) const;

  /// Runs one id through ChooseSubtree + overflow handling + root split.
  void InsertTopLevel(PointId id);

  const Dataset* dataset_;
  RTreeConfig config_;
  std::unique_ptr<RTreeNode> root_;
  // Forced-reinsertion state, only live inside one public Insert() call.
  bool reinsert_used_ = false;
  std::vector<PointId> pending_reinserts_;
};

}  // namespace simjoin

#endif  // SIMJOIN_RTREE_RTREE_H_
