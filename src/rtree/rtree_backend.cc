#include "rtree/rtree_backend.h"

#include <algorithm>
#include <utility>

namespace simjoin {

Result<std::unique_ptr<RTreeBackend>> RTreeBackend::Build(
    const Dataset& dataset, const EkdbConfig& config,
    const RTreeConfig& rtree_config) {
  SIMJOIN_RETURN_NOT_OK(config.Validate(dataset.dims()));
  SIMJOIN_ASSIGN_OR_RETURN(RTree tree, RTree::BulkLoad(dataset, rtree_config));
  const uint64_t bytes = tree.ComputeStats().memory_bytes;
  return std::unique_ptr<RTreeBackend>(
      new RTreeBackend(std::move(tree), config, bytes));
}

Status RTreeBackend::ValidateQueryEpsilon(double eps_query) const {
  // Same contract as the structured backends so the planner can swap them
  // freely (the R-tree itself would accept any radius).
  if (!(eps_query > 0.0) || eps_query > config_.epsilon) {
    return Status::InvalidArgument(
        "eps_query must be in (0, built epsilon]");
  }
  return Status::OK();
}

Status RTreeBackend::RangeQuery(const float* query, double eps_query,
                                std::vector<PointId>* out, JoinStats* stats,
                                double* recall_est) const {
  if (out == nullptr) return Status::InvalidArgument("out must not be null");
  SIMJOIN_RETURN_NOT_OK(ValidateQueryEpsilon(eps_query));
  if (recall_est != nullptr) *recall_est = 1.0;
  const size_t before = out->size();
  SIMJOIN_RETURN_NOT_OK(
      tree_.RangeQuery(query, eps_query, config_.metric, out));
  // R-tree traversal order depends on STR tiling; sort the appended window
  // so the emission order is a stable property of the answer set.
  std::sort(out->begin() + static_cast<std::ptrdiff_t>(before), out->end());
  if (stats != nullptr) {
    const uint64_t emitted = out->size() - before;
    stats->pairs_emitted += emitted;
    stats->candidate_pairs += emitted;
    stats->distance_calls += emitted;
  }
  return Status::OK();
}

Status RTreeBackend::RangeQueryBatch(const RangeQuerySpec* specs, size_t count,
                                     std::vector<std::vector<PointId>>* results,
                                     std::vector<JoinStats>* stats,
                                     std::vector<double>* recall_ests) const {
  if (results == nullptr) {
    return Status::InvalidArgument("results must not be null");
  }
  if (count > 0 && specs == nullptr) {
    return Status::InvalidArgument("specs must not be null");
  }
  results->assign(count, {});
  if (stats != nullptr) stats->assign(count, JoinStats{});
  if (recall_ests != nullptr) recall_ests->assign(count, 1.0);
  for (size_t i = 0; i < count; ++i) {
    SIMJOIN_RETURN_NOT_OK(RangeQuery(specs[i].query, specs[i].epsilon,
                                     &(*results)[i],
                                     stats != nullptr ? &(*stats)[i] : nullptr,
                                     nullptr));
  }
  return Status::OK();
}

double RTreeBackend::EstimatedQueryCost(double /*eps_query*/,
                                        double expected_neighbors) const {
  // Like the flat tree's prior but with a steeper structure constant: MBRs
  // overlap where epsilon stripes do not, so more subtrees survive pruning
  // per reported neighbour.
  const double n = static_cast<double>(tree_.dataset().size());
  return std::min(n, 96.0 + 12.0 * expected_neighbors);
}

}  // namespace simjoin
