#include "approx/lsh_index.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "common/metric.h"
#include "common/rng.h"
#include "common/simd_kernel.h"

namespace simjoin {
namespace {

constexpr double kPi = 3.14159265358979323846;

/// FNV-style combine of one bucket coordinate into a running hash.
inline uint64_t HashCombine(uint64_t h, int64_t v) {
  h ^= static_cast<uint64_t>(v);
  h *= 0x100000001b3ULL;
  return h;
}

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;

/// Standard normal CDF.
inline double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

}  // namespace

Status LshIndexParams::Validate(Metric metric) const {
  if (tables == 0) return Status::InvalidArgument("tables must be positive");
  if (hashes_per_table == 0) {
    return Status::InvalidArgument("hashes_per_table must be positive");
  }
  if (bucket_width < 0.0) {
    return Status::InvalidArgument("bucket_width must be non-negative");
  }
  if (metric == Metric::kLinf) {
    return Status::InvalidArgument(
        "p-stable LSH supports L1 (Cauchy) and L2 (Gaussian), not L-inf");
  }
  return Status::OK();
}

double PStableCollisionProbability(Metric metric, double distance,
                                   double width) {
  if (!(distance > 0.0)) return 1.0;
  const double r = width / distance;
  if (metric == Metric::kL1) {
    // Cauchy projections (Datar et al., eq. for the 1-stable case):
    // p(c) = 2 atan(w/c)/pi - ln(1 + (w/c)^2) / (pi w / c).
    return 2.0 * std::atan(r) / kPi -
           std::log1p(r * r) / (kPi * r);
  }
  // Gaussian projections (2-stable):
  // p(c) = 1 - 2 Phi(-w/c) - 2/(sqrt(2 pi) w/c) (1 - exp(-(w/c)^2 / 2)).
  return 1.0 - 2.0 * NormalCdf(-r) -
         2.0 / (std::sqrt(2.0 * kPi) * r) * (1.0 - std::exp(-r * r / 2.0));
}

size_t LshTablesForRecall(double recall, double p_single_table,
                          size_t max_tables) {
  if (max_tables == 0) max_tables = 1;
  if (!(p_single_table > 0.0) || p_single_table >= 1.0) {
    return p_single_table >= 1.0 ? 1 : max_tables;
  }
  if (!(recall > 0.0)) return 1;
  if (recall >= 1.0) return max_tables;
  const double tables =
      std::ceil(std::log1p(-recall) / std::log1p(-p_single_table));
  if (!(tables >= 1.0)) return 1;
  if (tables >= static_cast<double>(max_tables)) return max_tables;
  return static_cast<size_t>(tables);
}

Result<LshIndex> LshIndex::Build(const Dataset& dataset,
                                 const EkdbConfig& config,
                                 const LshIndexParams& params) {
  SIMJOIN_RETURN_NOT_OK(config.Validate(dataset.dims()));
  if (dataset.empty()) {
    return Status::InvalidArgument("dataset must not be empty");
  }
  SIMJOIN_RETURN_NOT_OK(params.Validate(config.metric));

  LshIndex index;
  index.dataset_ = &dataset;
  index.config_ = config;
  index.dims_ = dataset.dims();
  index.tables_ = params.tables;
  index.hashes_ = params.hashes_per_table;
  index.width_ = params.bucket_width > 0.0 ? params.bucket_width
                                           : 4.0 * config.epsilon;

  const size_t n = dataset.size();
  const size_t dims = index.dims_;
  Rng rng(params.seed);
  auto sample_projection = [&rng, &config]() {
    if (config.metric == Metric::kL1) {
      // Standard Cauchy via the tangent transform.
      return std::tan(kPi * (rng.Uniform() - 0.5));
    }
    return rng.Gaussian();
  };
  index.projections_.resize(index.tables_ * index.hashes_ * dims);
  index.offsets_.resize(index.tables_ * index.hashes_);
  for (auto& v : index.projections_) v = sample_projection();
  for (auto& b : index.offsets_) b = rng.Uniform(0.0, index.width_);

  index.table_keys_.resize(index.tables_);
  index.table_ids_.resize(index.tables_);
  double expected = 0.0;
  std::vector<uint64_t> keys(n);
  std::vector<uint32_t> order(n);
  for (size_t t = 0; t < index.tables_; ++t) {
    for (size_t i = 0; i < n; ++i) {
      keys[i] = index.KeyOf(dataset.Row(static_cast<PointId>(i)), t);
    }
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(),
                     [&keys](uint32_t a, uint32_t b) {
                       return keys[a] < keys[b];
                     });
    auto& tk = index.table_keys_[t];
    auto& ti = index.table_ids_[t];
    tk.resize(n);
    ti.resize(n);
    for (size_t i = 0; i < n; ++i) {
      tk[i] = keys[order[i]];
      ti[i] = static_cast<PointId>(order[i]);
    }
    // Expected candidates a random data point pulls from this table: the
    // mean size of its own bucket, sum(s_b^2) / n.
    size_t run_begin = 0;
    for (size_t i = 1; i <= n; ++i) {
      if (i == n || tk[i] != tk[run_begin]) {
        const double s = static_cast<double>(i - run_begin);
        expected += s * s / static_cast<double>(n);
        run_begin = i;
      }
    }
  }
  index.expected_candidates_ = expected;
  return index;
}

uint64_t LshIndex::KeyOf(const float* row, size_t table) const {
  uint64_t h = kFnvOffset;
  const size_t base = table * hashes_;
  for (size_t k = 0; k < hashes_; ++k) {
    const double* a = projections_.data() + (base + k) * dims_;
    double dot = offsets_[base + k];
    for (size_t d = 0; d < dims_; ++d) dot += a[d] * row[d];
    h = HashCombine(h, static_cast<int64_t>(std::floor(dot / width_)));
  }
  return h;
}

Status LshIndex::ValidateQueryEpsilon(double eps_query) const {
  // Same serving contract as the exact backends, so the planner can swap
  // them freely.
  if (!(eps_query > 0.0) || eps_query > config_.epsilon) {
    return Status::InvalidArgument(
        "eps_query must be in (0, built epsilon]; the stripe grid only "
        "supports radii up to the build epsilon");
  }
  return Status::OK();
}

double LshIndex::FindProbability(double distance) const {
  const double p1 = PStableCollisionProbability(config_.metric, distance,
                                                width_);
  const double per_table = std::pow(p1, static_cast<double>(hashes_));
  const double p = 1.0 - std::pow(1.0 - per_table,
                                  static_cast<double>(tables_));
  return std::clamp(p, 0.0, 1.0);
}

Status LshIndex::RangeQuery(const float* query, double eps_query,
                            std::vector<PointId>* out, JoinStats* stats,
                            double* recall_est) const {
  if (out == nullptr) return Status::InvalidArgument("out must not be null");
  SIMJOIN_RETURN_NOT_OK(ValidateQueryEpsilon(eps_query));

  // Candidate generation: the query's bucket in every table.
  std::vector<PointId> candidates;
  for (size_t t = 0; t < tables_; ++t) {
    const uint64_t key = KeyOf(query, t);
    const auto& tk = table_keys_[t];
    const auto range = std::equal_range(tk.begin(), tk.end(), key);
    const size_t begin = static_cast<size_t>(range.first - tk.begin());
    const size_t end = static_cast<size_t>(range.second - tk.begin());
    const auto& ti = table_ids_[t];
    candidates.insert(candidates.end(), ti.begin() + begin, ti.begin() + end);
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  // Exact verification (precision 1): batch-kernel tiles over gathered
  // rows; candidates are sorted, so survivors emit in ascending id order.
  BatchDistanceKernel kernel(config_.metric, dims_, eps_query);
  DistanceKernel scalar(config_.metric);
  const float* rows[BatchDistanceKernel::kTileCapacity];
  uint8_t mask[BatchDistanceKernel::kTileCapacity];
  const size_t emitted_before = out->size();
  double sum_inverse_find = 0.0;
  for (size_t begin = 0; begin < candidates.size();
       begin += BatchDistanceKernel::kTileCapacity) {
    const size_t count = std::min(BatchDistanceKernel::kTileCapacity,
                                  candidates.size() - begin);
    for (size_t i = 0; i < count; ++i) {
      rows[i] = dataset_->Row(candidates[begin + i]);
    }
    kernel.FilterWithinEpsilon(query, rows, count, mask);
    for (size_t i = 0; i < count; ++i) {
      if (!mask[i]) continue;
      const PointId id = candidates[begin + i];
      out->push_back(id);
      // Horvitz-Thompson: each found neighbour at distance d stands for
      // 1/P(d) true neighbours (P(d) = its probability of being found).
      const double d = scalar.Distance(query, dataset_->Row(id), dims_);
      sum_inverse_find += 1.0 / std::max(FindProbability(d), 1e-9);
    }
  }
  const size_t found = out->size() - emitted_before;
  if (recall_est != nullptr) {
    *recall_est = found > 0 ? std::clamp(static_cast<double>(found) /
                                             sum_inverse_find,
                                         0.0, 1.0)
                            : FindProbability(eps_query);
  }
  if (stats != nullptr) {
    stats->candidate_pairs += candidates.size();
    // Verification filters plus the per-survivor exact distance for the
    // recall estimator.
    stats->distance_calls += candidates.size() + found;
    stats->node_pairs_visited += tables_;  // one bucket probe per table
    stats->pairs_emitted += found;
    stats->simd_batches += kernel.simd_batches();
    stats->scalar_fallbacks += kernel.scalar_fallbacks();
  }
  return Status::OK();
}

uint64_t LshIndex::total_bytes() const {
  uint64_t bytes =
      static_cast<uint64_t>(projections_.capacity()) * sizeof(double) +
      static_cast<uint64_t>(offsets_.capacity()) * sizeof(double);
  for (size_t t = 0; t < table_keys_.size(); ++t) {
    bytes += static_cast<uint64_t>(table_keys_[t].capacity()) *
                 sizeof(uint64_t) +
             static_cast<uint64_t>(table_ids_[t].capacity()) *
                 sizeof(PointId);
  }
  return bytes;
}

// ---------------------------------------------------------------------------
// LshBackend
// ---------------------------------------------------------------------------

Result<std::unique_ptr<LshBackend>> LshBackend::Build(
    const Dataset& dataset, const EkdbConfig& config,
    const LshIndexParams& params) {
  SIMJOIN_ASSIGN_OR_RETURN(LshIndex index,
                           LshIndex::Build(dataset, config, params));
  return std::unique_ptr<LshBackend>(new LshBackend(std::move(index)));
}

Status LshBackend::RangeQueryBatch(const RangeQuerySpec* specs, size_t count,
                                   std::vector<std::vector<PointId>>* results,
                                   std::vector<JoinStats>* stats,
                                   std::vector<double>* recall_ests) const {
  if (results == nullptr) {
    return Status::InvalidArgument("results must not be null");
  }
  if (count != 0 && specs == nullptr) {
    return Status::InvalidArgument("specs must not be null");
  }
  for (size_t i = 0; i < count; ++i) {
    if (specs[i].query == nullptr) {
      return Status::InvalidArgument("spec query must not be null");
    }
    SIMJOIN_RETURN_NOT_OK(ValidateQueryEpsilon(specs[i].epsilon));
  }
  results->assign(count, {});
  if (stats != nullptr) stats->assign(count, JoinStats{});
  if (recall_ests != nullptr) recall_ests->assign(count, 1.0);
  // Buckets are per-query point lookups; there is no cross-query window
  // plan to fuse, so per-query execution is the batch semantics.
  for (size_t i = 0; i < count; ++i) {
    SIMJOIN_RETURN_NOT_OK(index_.RangeQuery(
        specs[i].query, specs[i].epsilon, &(*results)[i],
        stats != nullptr ? &(*stats)[i] : nullptr,
        recall_ests != nullptr ? &(*recall_ests)[i] : nullptr));
  }
  return Status::OK();
}

double LshBackend::EstimatedQueryCost(double /*eps_query*/,
                                      double /*expected_neighbors*/) const {
  // Hashing: one K-dot per table is K row-equivalents of arithmetic.
  // Verification: the measured expected bucket load, with a small factor
  // for the gather + sort/dedup overhead, plus a fixed floor.
  const double hash_cost =
      static_cast<double>(index_.tables() * index_.hashes_per_table());
  return hash_cost + 1.3 * index_.expected_candidates_per_query() + 8.0;
}

}  // namespace simjoin
