// Recall-controlled p-stable LSH range-query index (the approximate tier
// behind the query service's planner).
//
// CPSJoin-style contract (PAPERS.md): LSH buckets generate candidates,
// the exact batch kernel re-verifies every one, so precision is always 1
// and only recall is traded for speed.  Hashing follows Datar et al.'s
// p-stable scheme — h(x) = floor((a.x + b) / w) with Gaussian projections
// for L2 and Cauchy for L1, K concatenated hashes per table, L tables —
// which makes the per-point find probability analytically known:
//
//   p1(c)   = collision probability of one hash at distance c
//   P(c)    = 1 - (1 - p1(c)^K)^L     (found in at least one table)
//
// Two consequences the service builds on:
//  * the planner can size L for a recall target r at the worst case
//    (distance == epsilon): L = ceil(ln(1-r) / ln(1 - p1(eps)^K)), so
//    E[recall] >= r for every query;
//  * each query can report an *achieved-recall estimate*: the verified
//    neighbours' exact distances d_i are known, so the Horvitz-Thompson
//    estimator  found / sum_i 1/P(d_i)  is an unbiased-denominator
//    estimate of the true neighbour count, usually much tighter than the
//    worst-case bound (most neighbours sit well inside epsilon).
//
// Tables are sorted (key, id) arrays — binary-searched, cache-friendly,
// and deterministic for a fixed seed — not hash maps.  Candidate ids are
// sorted and deduplicated before verification, so results come out in
// ascending id order.

#ifndef SIMJOIN_APPROX_LSH_INDEX_H_
#define SIMJOIN_APPROX_LSH_INDEX_H_

#include <cstdint>
#include <vector>

#include "common/dataset.h"
#include "common/pair_sink.h"
#include "common/status.h"
#include "core/ekdb_config.h"
#include "core/index_backend.h"

namespace simjoin {

/// Tuning knobs of one LSH index build.
struct LshIndexParams {
  size_t tables = 8;           ///< L: independent hash tables
  size_t hashes_per_table = 4; ///< K: concatenated hashes per table
  /// Bucket width w; 0 picks 4 * build-epsilon (the Datar et al. sweet
  /// spot for radius-epsilon queries).
  double bucket_width = 0.0;
  uint64_t seed = 0x51e55;

  Status Validate(Metric metric) const;
};

/// One p-stable hash's collision probability for two points at the given
/// distance under the metric (L2: Gaussian projections, L1: Cauchy).
/// Monotonically decreasing in distance; 1 at distance 0.
double PStableCollisionProbability(Metric metric, double distance,
                                   double width);

/// Smallest table count L with 1 - (1 - p_single_table)^L >= recall,
/// clamped to [1, max_tables].  p_single_table is p1(eps)^K.
size_t LshTablesForRecall(double recall, double p_single_table,
                          size_t max_tables);

/// Immutable LSH index over a dataset it does not own; safe for
/// unsynchronised concurrent const queries.
class LshIndex {
 public:
  static Result<LshIndex> Build(const Dataset& dataset,
                                const EkdbConfig& config,
                                const LshIndexParams& params);

  const EkdbConfig& config() const { return config_; }
  const Dataset& dataset() const { return *dataset_; }
  size_t tables() const { return tables_; }
  size_t hashes_per_table() const { return hashes_; }
  double bucket_width() const { return width_; }

  /// Verified epsilon neighbours of the query (ascending id order; a
  /// subset of the true neighbourhood — precision 1, recall < 1).
  /// recall_est (optional) receives the Horvitz-Thompson achieved-recall
  /// estimate for this query; with zero hits it falls back to the
  /// worst-case model bound FindProbability(eps_query).
  Status RangeQuery(const float* query, double eps_query,
                    std::vector<PointId>* out, JoinStats* stats = nullptr,
                    double* recall_est = nullptr) const;

  Status ValidateQueryEpsilon(double eps_query) const;

  /// P(found in >= 1 table) for a neighbour at the given distance.
  double FindProbability(double distance) const;

  /// Mean candidate rows one query verifies, measured from the built
  /// tables' bucket loads (sum of squared bucket sizes / n, summed over
  /// tables) — the planner's data-driven cost term.
  double expected_candidates_per_query() const { return expected_candidates_; }

  uint64_t total_bytes() const;

 private:
  LshIndex() = default;

  /// Bucket key of one row in one table.
  uint64_t KeyOf(const float* row, size_t table) const;

  const Dataset* dataset_ = nullptr;
  EkdbConfig config_;
  size_t dims_ = 0;
  size_t tables_ = 0;
  size_t hashes_ = 0;
  double width_ = 0.0;

  std::vector<double> projections_;  ///< tables * hashes * dims
  std::vector<double> offsets_;      ///< tables * hashes
  /// Per table: bucket keys sorted ascending, with the parallel id array.
  std::vector<std::vector<uint64_t>> table_keys_;
  std::vector<std::vector<PointId>> table_ids_;
  double expected_candidates_ = 0.0;
};

/// IndexBackend adapter over LshIndex (the planner's recall < 1 tier).
class LshBackend final : public IndexBackend {
 public:
  static Result<std::unique_ptr<LshBackend>> Build(
      const Dataset& dataset, const EkdbConfig& config,
      const LshIndexParams& params);

  BackendKind kind() const override { return BackendKind::kLsh; }
  const EkdbConfig& config() const override { return index_.config(); }
  const Dataset& dataset() const override { return index_.dataset(); }
  uint64_t index_bytes() const override { return index_.total_bytes(); }
  bool exact() const override { return false; }
  Status ValidateQueryEpsilon(double eps_query) const override {
    return index_.ValidateQueryEpsilon(eps_query);
  }
  Status RangeQuery(const float* query, double eps_query,
                    std::vector<PointId>* out, JoinStats* stats,
                    double* recall_est) const override {
    return index_.RangeQuery(query, eps_query, out, stats, recall_est);
  }
  Status RangeQueryBatch(const RangeQuerySpec* specs, size_t count,
                         std::vector<std::vector<PointId>>* results,
                         std::vector<JoinStats>* stats,
                         std::vector<double>* recall_ests) const override;
  double EstimatedQueryCost(double eps_query,
                            double expected_neighbors) const override;
  double ExpectedRecall(double eps_query) const override {
    return index_.FindProbability(eps_query);
  }

  const LshIndex& index() const { return index_; }

 private:
  explicit LshBackend(LshIndex index) : index_(std::move(index)) {}

  LshIndex index_;
};

}  // namespace simjoin

#endif  // SIMJOIN_APPROX_LSH_INDEX_H_
