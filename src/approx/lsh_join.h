// Approximate epsilon self-join via locality-sensitive hashing (p-stable
// projections, Datar et al. scheme for L2).
//
// The exact algorithms in this library pay for exactness with work that
// grows as epsilon becomes less selective or the intrinsic dimensionality
// rises.  The LSH join trades recall for speed: L independent hash tables,
// each hashing a point with K concatenated projections
// h(x) = floor((a.x + b) / w), generate candidate pairs from co-located
// bucket members; candidates are verified with the exact distance test, so
// *every emitted pair is a true result* (precision 1) while some true pairs
// may be missed (recall < 1, increasing with L and decreasing with K).
//
// This is the natural "approximate variant" extension of the paper's
// similarity-join toolbox; experiment R15 measures its recall/time
// trade-off against the exact eps-k-d-B join.

#ifndef SIMJOIN_APPROX_LSH_JOIN_H_
#define SIMJOIN_APPROX_LSH_JOIN_H_

#include <cstdint>

#include "common/dataset.h"
#include "common/metric.h"
#include "common/pair_sink.h"
#include "common/status.h"

namespace simjoin {

/// Tuning parameters of the LSH join (L1 and L2 metrics).
struct LshConfig {
  /// Join metric.  kL2 uses Gaussian (2-stable) projections, kL1 Cauchy
  /// (1-stable) projections; kLinf is not supported by this scheme.
  Metric metric = Metric::kL2;

  /// Number of independent hash tables (L).  More tables raise recall and
  /// cost linearly.
  size_t tables = 8;

  /// Concatenated projections per table (K).  More hashes sharpen buckets:
  /// fewer false candidates, lower per-table recall.
  size_t hashes_per_table = 4;

  /// Quantisation width w of each projection; 0 picks 4 * epsilon, a
  /// standard operating point for the p-stable scheme.
  double bucket_width = 0.0;

  /// Seed for the projection directions and offsets.
  uint64_t seed = 1;

  Status Validate() const;
};

/// Work counters of an LSH join run.
struct LshJoinReport {
  uint64_t bucket_candidate_pairs = 0;  ///< within-bucket pairs before dedup
  uint64_t unique_candidates = 0;       ///< deduped pairs actually verified
  uint64_t emitted_pairs = 0;           ///< verified true pairs
};

/// Approximate self-join under L2: emits a subset of the true pair set,
/// each pair canonical and exactly once.
Status LshApproximateSelfJoin(const Dataset& data, double epsilon,
                              const LshConfig& config, PairSink* sink,
                              LshJoinReport* report = nullptr);

}  // namespace simjoin

#endif  // SIMJOIN_APPROX_LSH_JOIN_H_
