#include "approx/lsh_join.h"

#include <cmath>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/metric.h"
#include "common/rng.h"

namespace simjoin {
namespace {

/// FNV-style hash of a K-vector of bucket coordinates.
uint64_t HashKey(const std::vector<int64_t>& key) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (int64_t v : key) {
    h ^= static_cast<uint64_t>(v);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

Status LshConfig::Validate() const {
  if (tables == 0) return Status::InvalidArgument("tables must be positive");
  if (hashes_per_table == 0) {
    return Status::InvalidArgument("hashes_per_table must be positive");
  }
  if (bucket_width < 0.0) {
    return Status::InvalidArgument("bucket_width must be non-negative");
  }
  if (metric == Metric::kLinf) {
    return Status::InvalidArgument(
        "p-stable LSH supports L1 (Cauchy) and L2 (Gaussian), not L-inf");
  }
  return Status::OK();
}

Status LshApproximateSelfJoin(const Dataset& data, double epsilon,
                              const LshConfig& config, PairSink* sink,
                              LshJoinReport* report) {
  if (sink == nullptr) return Status::InvalidArgument("sink must not be null");
  if (data.size() < 2) {
    return Status::InvalidArgument("need at least two points to join");
  }
  if (!(epsilon > 0.0)) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  SIMJOIN_RETURN_NOT_OK(config.Validate());

  const size_t n = data.size();
  const size_t dims = data.dims();
  const double w =
      config.bucket_width > 0.0 ? config.bucket_width : 4.0 * epsilon;
  Rng rng(config.seed);
  DistanceKernel kernel(config.metric);
  LshJoinReport local;
  // p-stable projection sampler: Gaussian for L2, Cauchy for L1.
  auto sample_projection = [&rng, &config]() {
    if (config.metric == Metric::kL1) {
      // Standard Cauchy via the tangent transform.
      return std::tan(3.14159265358979323846 * (rng.Uniform() - 0.5));
    }
    return rng.Gaussian();
  };

  // Canonical packed pair -> seen set (dedup across buckets and tables).
  std::unordered_set<uint64_t> seen;
  std::vector<int64_t> key(config.hashes_per_table);
  std::vector<double> projections(config.hashes_per_table * dims);
  std::vector<double> offsets(config.hashes_per_table);

  for (size_t table = 0; table < config.tables; ++table) {
    // Fresh projection family per table.
    for (auto& v : projections) v = sample_projection();
    for (auto& b : offsets) b = rng.Uniform(0.0, w);

    std::unordered_map<uint64_t, std::vector<PointId>> buckets;
    buckets.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      const float* row = data.Row(static_cast<PointId>(i));
      for (size_t k = 0; k < config.hashes_per_table; ++k) {
        double dot = offsets[k];
        const double* a = projections.data() + k * dims;
        for (size_t d = 0; d < dims; ++d) dot += a[d] * row[d];
        key[k] = static_cast<int64_t>(std::floor(dot / w));
      }
      buckets[HashKey(key)].push_back(static_cast<PointId>(i));
    }

    for (const auto& [bucket_hash, ids] : buckets) {
      if (ids.size() < 2) continue;
      for (size_t i = 0; i < ids.size(); ++i) {
        for (size_t j = i + 1; j < ids.size(); ++j) {
          ++local.bucket_candidate_pairs;
          const PointId a = std::min(ids[i], ids[j]);
          const PointId b = std::max(ids[i], ids[j]);
          const uint64_t packed = (static_cast<uint64_t>(a) << 32) | b;
          if (!seen.insert(packed).second) continue;
          ++local.unique_candidates;
          if (kernel.WithinEpsilon(data.Row(a), data.Row(b), dims, epsilon)) {
            ++local.emitted_pairs;
            sink->Emit(a, b);
          }
        }
      }
    }
  }
  if (report != nullptr) *report = local;
  return Status::OK();
}

}  // namespace simjoin
