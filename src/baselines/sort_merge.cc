#include "baselines/sort_merge.h"

#include <algorithm>
#include <vector>

#include "common/simd_kernel.h"
#include "common/stats.h"

namespace simjoin {
namespace {

Status ValidateArgs(const Dataset& a, const Dataset& b, double epsilon,
                    PairSink* sink, uint32_t sort_dim) {
  if (sink == nullptr) return Status::InvalidArgument("sink must not be null");
  if (a.empty() || b.empty()) {
    return Status::InvalidArgument("join inputs must be non-empty");
  }
  if (a.dims() != b.dims()) {
    return Status::InvalidArgument("join inputs have different dimensionality");
  }
  if (!(epsilon > 0.0)) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  if (sort_dim != SortMergeConfig::kAutoDim && sort_dim >= a.dims()) {
    return Status::InvalidArgument("sort_dim out of range");
  }
  return Status::OK();
}

std::vector<PointId> SortedIds(const Dataset& data, uint32_t dim) {
  std::vector<PointId> ids(data.size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<PointId>(i);
  std::sort(ids.begin(), ids.end(), [&data, dim](PointId a, PointId b) {
    return data.Row(a)[dim] < data.Row(b)[dim];
  });
  return ids;
}

}  // namespace

uint32_t MaxVarianceDim(const Dataset& data) {
  uint32_t best_dim = 0;
  double best_var = -1.0;
  for (uint32_t d = 0; d < data.dims(); ++d) {
    RunningStats col;
    for (size_t i = 0; i < data.size(); ++i) {
      col.Add(data.Row(static_cast<PointId>(i))[d]);
    }
    if (col.variance() > best_var) {
      best_var = col.variance();
      best_dim = d;
    }
  }
  return best_dim;
}

Status SortMergeSelfJoin(const Dataset& data, double epsilon, Metric metric,
                         const SortMergeConfig& config, PairSink* sink,
                         JoinStats* stats) {
  SIMJOIN_RETURN_NOT_OK(ValidateArgs(data, data, epsilon, sink, config.sort_dim));
  const uint32_t dim = config.sort_dim == SortMergeConfig::kAutoDim
                           ? MaxVarianceDim(data)
                           : config.sort_dim;
  const std::vector<PointId> ids = SortedIds(data, dim);
  BatchDistanceKernel batch(metric, data.dims(), epsilon);
  BufferedSink buffered(sink);
  CandidateTile tile;
  JoinStats local;
  for (size_t i = 0; i < ids.size(); ++i) {
    const float* row_i = data.Row(ids[i]);
    for (size_t j = i + 1; j < ids.size(); ++j) {
      const float* row_j = data.Row(ids[j]);
      if (static_cast<double>(row_j[dim]) - row_i[dim] > epsilon) break;
      tile.Add(ids[j], row_j);
      if (tile.full()) {
        FilterTileAndEmit(batch, ids[i], row_i, tile, /*canonical_order=*/true,
                          buffered, local);
      }
    }
    FilterTileAndEmit(batch, ids[i], row_i, tile, /*canonical_order=*/true,
                      buffered, local);
  }
  buffered.Flush();
  local.simd_batches = batch.simd_batches();
  local.scalar_fallbacks = batch.scalar_fallbacks();
  if (stats != nullptr) stats->Merge(local);
  return Status::OK();
}

Status SortMergeJoin(const Dataset& a, const Dataset& b, double epsilon,
                     Metric metric, const SortMergeConfig& config, PairSink* sink,
                     JoinStats* stats) {
  SIMJOIN_RETURN_NOT_OK(ValidateArgs(a, b, epsilon, sink, config.sort_dim));
  const uint32_t dim = config.sort_dim == SortMergeConfig::kAutoDim
                           ? MaxVarianceDim(a)
                           : config.sort_dim;
  const std::vector<PointId> a_ids = SortedIds(a, dim);
  const std::vector<PointId> b_ids = SortedIds(b, dim);
  BatchDistanceKernel batch(metric, a.dims(), epsilon);
  BufferedSink buffered(sink);
  CandidateTile tile;
  JoinStats local;
  size_t window_start = 0;
  for (PointId a_id : a_ids) {
    const float* a_row = a.Row(a_id);
    const double lo = static_cast<double>(a_row[dim]) - epsilon;
    const double hi = static_cast<double>(a_row[dim]) + epsilon;
    while (window_start < b_ids.size() &&
           static_cast<double>(b.Row(b_ids[window_start])[dim]) < lo) {
      ++window_start;
    }
    for (size_t j = window_start; j < b_ids.size(); ++j) {
      const float* b_row = b.Row(b_ids[j]);
      if (static_cast<double>(b_row[dim]) > hi) break;
      tile.Add(b_ids[j], b_row);
      if (tile.full()) {
        FilterTileAndEmit(batch, a_id, a_row, tile, /*canonical_order=*/false,
                          buffered, local);
      }
    }
    FilterTileAndEmit(batch, a_id, a_row, tile, /*canonical_order=*/false,
                      buffered, local);
  }
  buffered.Flush();
  local.simd_batches = batch.simd_batches();
  local.scalar_fallbacks = batch.scalar_fallbacks();
  if (stats != nullptr) stats->Merge(local);
  return Status::OK();
}

}  // namespace simjoin
