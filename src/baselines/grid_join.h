// Epsilon-grid hash join.
//
// Points are hashed into axis-aligned cells of side epsilon over the first
// `grid_dims` dimensions; joining pairs can only live in identical or
// neighbouring cells, so each cell is joined with its 3^grid_dims
// neighbourhood.  A strong baseline at low dimensionality that degrades
// combinatorially as grid_dims grows — the contrast that motivates the
// eps-k-d-B tree's one-dimension-per-level striping.

#ifndef SIMJOIN_BASELINES_GRID_JOIN_H_
#define SIMJOIN_BASELINES_GRID_JOIN_H_

#include <cstdint>

#include "common/dataset.h"
#include "common/metric.h"
#include "common/pair_sink.h"
#include "common/status.h"

namespace simjoin {

/// Options for the grid join.
struct GridJoinConfig {
  /// Number of leading dimensions to grid on; 0 means min(dims, 6).  The
  /// cap exists because the neighbourhood size is 3^grid_dims.
  size_t grid_dims = 0;
};

/// Self-join via the epsilon grid; emits canonical (min, max) pairs.
Status GridSelfJoin(const Dataset& data, double epsilon, Metric metric,
                    const GridJoinConfig& config, PairSink* sink,
                    JoinStats* stats = nullptr);

/// Two-dataset join: grids B, probes each point of A against its
/// neighbourhood.  Emits (id in A, id in B).
Status GridJoin(const Dataset& a, const Dataset& b, double epsilon,
                Metric metric, const GridJoinConfig& config, PairSink* sink,
                JoinStats* stats = nullptr);

}  // namespace simjoin

#endif  // SIMJOIN_BASELINES_GRID_JOIN_H_
