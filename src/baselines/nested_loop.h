// Brute-force (block nested loop) similarity join — the paper's lower
// baseline and the correctness oracle for every other algorithm's tests.

#ifndef SIMJOIN_BASELINES_NESTED_LOOP_H_
#define SIMJOIN_BASELINES_NESTED_LOOP_H_

#include "common/dataset.h"
#include "common/metric.h"
#include "common/pair_sink.h"
#include "common/status.h"

namespace simjoin {

/// All unordered pairs {a, b}, a != b, with dist(a, b) <= epsilon, emitted
/// once in (min, max) order.  O(n^2) distance tests with early exit.
Status NestedLoopSelfJoin(const Dataset& data, double epsilon, Metric metric,
                          PairSink* sink, JoinStats* stats = nullptr);

/// All (a in A, b in B) pairs with dist(a, b) <= epsilon.  O(|A|*|B|).
Status NestedLoopJoin(const Dataset& a, const Dataset& b, double epsilon,
                      Metric metric, PairSink* sink, JoinStats* stats = nullptr);

}  // namespace simjoin

#endif  // SIMJOIN_BASELINES_NESTED_LOOP_H_
