#include "baselines/grid_join.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "common/simd_kernel.h"

namespace simjoin {
namespace {

constexpr size_t kDefaultGridDimsCap = 6;

using CellKey = std::vector<int32_t>;

struct CellKeyHash {
  size_t operator()(const CellKey& key) const {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (int32_t v : key) {
      h ^= static_cast<uint64_t>(static_cast<uint32_t>(v));
      h *= 0x100000001b3ULL;
    }
    return static_cast<size_t>(h);
  }
};

using CellMap = std::unordered_map<CellKey, std::vector<PointId>, CellKeyHash>;

Status ValidateArgs(const Dataset& a, const Dataset& b, double epsilon,
                    PairSink* sink) {
  if (sink == nullptr) return Status::InvalidArgument("sink must not be null");
  if (a.empty() || b.empty()) {
    return Status::InvalidArgument("join inputs must be non-empty");
  }
  if (a.dims() != b.dims()) {
    return Status::InvalidArgument("join inputs have different dimensionality");
  }
  if (!(epsilon > 0.0)) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  return Status::OK();
}

size_t ResolveGridDims(const GridJoinConfig& config, size_t dims) {
  if (config.grid_dims == 0) return std::min(dims, kDefaultGridDimsCap);
  return std::min(config.grid_dims, dims);
}

CellKey KeyOf(const float* row, size_t grid_dims, double epsilon) {
  CellKey key(grid_dims);
  for (size_t d = 0; d < grid_dims; ++d) {
    key[d] = static_cast<int32_t>(std::floor(static_cast<double>(row[d]) / epsilon));
  }
  return key;
}

CellMap BuildGrid(const Dataset& data, size_t grid_dims, double epsilon) {
  CellMap grid;
  grid.reserve(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    grid[KeyOf(data.Row(static_cast<PointId>(i)), grid_dims, epsilon)]
        .push_back(static_cast<PointId>(i));
  }
  return grid;
}

/// Invokes fn(neighbor_key) for every cell in the 3^grid_dims neighbourhood
/// of key (including key itself).
template <typename Fn>
void ForEachNeighbor(const CellKey& key, Fn&& fn) {
  CellKey neighbor = key;
  const size_t g = key.size();
  // Enumerate offsets in {-1,0,1}^g by counting in base 3.
  size_t total = 1;
  for (size_t i = 0; i < g; ++i) total *= 3;
  for (size_t code = 0; code < total; ++code) {
    size_t c = code;
    for (size_t d = 0; d < g; ++d) {
      neighbor[d] = key[d] + static_cast<int32_t>(c % 3) - 1;
      c /= 3;
    }
    fn(neighbor);
  }
}

}  // namespace

Status GridSelfJoin(const Dataset& data, double epsilon, Metric metric,
                    const GridJoinConfig& config, PairSink* sink,
                    JoinStats* stats) {
  SIMJOIN_RETURN_NOT_OK(ValidateArgs(data, data, epsilon, sink));
  const size_t grid_dims = ResolveGridDims(config, data.dims());
  const CellMap grid = BuildGrid(data, grid_dims, epsilon);
  BatchDistanceKernel batch(metric, data.dims(), epsilon);
  BufferedSink buffered(sink);
  CandidateTile tile;
  JoinStats local;

  for (const auto& [key, ids] : grid) {
    // Within-cell pairs.
    for (size_t i = 0; i < ids.size(); ++i) {
      const float* row_i = data.Row(ids[i]);
      for (size_t j = i + 1; j < ids.size(); ++j) {
        tile.Add(ids[j], data.Row(ids[j]));
        if (tile.full()) {
          FilterTileAndEmit(batch, ids[i], row_i, tile,
                            /*canonical_order=*/true, buffered, local);
        }
      }
      FilterTileAndEmit(batch, ids[i], row_i, tile, /*canonical_order=*/true,
                        buffered, local);
    }
    // Cross-cell pairs: only the lexicographically larger neighbour joins,
    // so each unordered cell pair is processed exactly once.
    ForEachNeighbor(key, [&](const CellKey& neighbor) {
      ++local.node_pairs_visited;
      if (!(key < neighbor)) return;
      auto it = grid.find(neighbor);
      if (it == grid.end()) {
        ++local.node_pairs_pruned;
        return;
      }
      for (PointId a : ids) {
        const float* row_a = data.Row(a);
        for (PointId b : it->second) {
          tile.Add(b, data.Row(b));
          if (tile.full()) {
            FilterTileAndEmit(batch, a, row_a, tile, /*canonical_order=*/true,
                              buffered, local);
          }
        }
        FilterTileAndEmit(batch, a, row_a, tile, /*canonical_order=*/true,
                          buffered, local);
      }
    });
  }
  buffered.Flush();
  local.simd_batches = batch.simd_batches();
  local.scalar_fallbacks = batch.scalar_fallbacks();
  if (stats != nullptr) stats->Merge(local);
  return Status::OK();
}

Status GridJoin(const Dataset& a, const Dataset& b, double epsilon,
                Metric metric, const GridJoinConfig& config, PairSink* sink,
                JoinStats* stats) {
  SIMJOIN_RETURN_NOT_OK(ValidateArgs(a, b, epsilon, sink));
  const size_t grid_dims = ResolveGridDims(config, a.dims());
  const CellMap grid = BuildGrid(b, grid_dims, epsilon);
  BatchDistanceKernel batch(metric, a.dims(), epsilon);
  BufferedSink buffered(sink);
  CandidateTile tile;
  JoinStats local;

  for (size_t i = 0; i < a.size(); ++i) {
    const PointId a_id = static_cast<PointId>(i);
    const float* row_a = a.Row(a_id);
    const CellKey key = KeyOf(row_a, grid_dims, epsilon);
    ForEachNeighbor(key, [&](const CellKey& neighbor) {
      ++local.node_pairs_visited;
      auto it = grid.find(neighbor);
      if (it == grid.end()) {
        ++local.node_pairs_pruned;
        return;
      }
      for (PointId b_id : it->second) {
        tile.Add(b_id, b.Row(b_id));
        if (tile.full()) {
          FilterTileAndEmit(batch, a_id, row_a, tile,
                            /*canonical_order=*/false, buffered, local);
        }
      }
      FilterTileAndEmit(batch, a_id, row_a, tile, /*canonical_order=*/false,
                        buffered, local);
    });
  }
  buffered.Flush();
  local.simd_batches = batch.simd_batches();
  local.scalar_fallbacks = batch.scalar_fallbacks();
  if (stats != nullptr) stats->Merge(local);
  return Status::OK();
}

}  // namespace simjoin
