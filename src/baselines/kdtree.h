// k-d tree baseline: median-split binary space partitioning with epsilon
// range queries and a synchronised-traversal similarity join.
//
// The k-d tree is the other classical main-memory comparator for point
// data: unlike the eps-k-d-B tree it is epsilon-agnostic (median splits,
// not epsilon stripes), so the join traversal must rely purely on
// bounding-box distance pruning — the contrast the paper's index exploits.

#ifndef SIMJOIN_BASELINES_KDTREE_H_
#define SIMJOIN_BASELINES_KDTREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/bounding_box.h"
#include "common/dataset.h"
#include "common/metric.h"
#include "common/pair_sink.h"
#include "common/status.h"

namespace simjoin {

/// Construction parameters.
struct KdTreeConfig {
  /// A node with at most this many points stays a leaf.
  size_t leaf_size = 32;

  Status Validate() const;
};

/// One k-d tree node: internal nodes split on (dim, value); leaves hold
/// point ids sorted on dimension 0 (for the join's window sweep).
struct KdTreeNode {
  BoundingBox bbox;
  uint32_t split_dim = 0;
  float split_value = 0.0f;
  std::unique_ptr<KdTreeNode> left;   ///< coords[split_dim] <= split_value
  std::unique_ptr<KdTreeNode> right;  ///< coords[split_dim] >  split_value
  std::vector<PointId> points;        ///< leaf payload

  bool is_leaf() const { return left == nullptr && right == nullptr; }
};

/// Structural statistics.
struct KdTreeStats {
  uint64_t nodes = 0;
  uint64_t leaves = 0;
  uint64_t max_depth = 0;
  uint64_t total_points = 0;
  uint64_t memory_bytes = 0;
};

/// Median-split k-d tree over a dataset it does not own.
class KdTree {
 public:
  /// Builds by recursive median split on the widest dimension.
  static Result<KdTree> Build(const Dataset& dataset, const KdTreeConfig& config);

  /// Ids of all points within epsilon of the query under the metric.
  Status RangeQuery(const float* query, double epsilon, Metric metric,
                    std::vector<PointId>* out) const;

  /// One k-nearest-neighbours result.
  struct Neighbor {
    PointId id;
    double distance;
  };

  /// The k nearest indexed points to the query under the metric, ascending
  /// by distance (ties broken by id).  Returns fewer than k when the tree
  /// holds fewer points.  Branch-and-bound with bbox min-distance pruning.
  Status KnnQuery(const float* query, size_t k, Metric metric,
                  std::vector<Neighbor>* out) const;

  const KdTreeNode* root() const { return root_.get(); }
  const Dataset& dataset() const { return *dataset_; }

  KdTreeStats ComputeStats() const;

  KdTree(KdTree&&) = default;
  KdTree& operator=(KdTree&&) = default;
  KdTree(const KdTree&) = delete;
  KdTree& operator=(const KdTree&) = delete;

 private:
  KdTree(const Dataset* dataset, KdTreeConfig config);

  std::unique_ptr<KdTreeNode> BuildNode(std::vector<PointId>* ids, size_t begin,
                                        size_t end, uint32_t depth);

  const Dataset* dataset_;
  KdTreeConfig config_;
  std::unique_ptr<KdTreeNode> root_;
};

/// Self-join via synchronised traversal with bbox min-distance pruning;
/// canonical (min, max) pairs, each exactly once.
Status KdTreeSelfJoin(const KdTree& tree, double epsilon, Metric metric,
                      PairSink* sink, JoinStats* stats = nullptr);

/// Two-tree join; pairs are (id in a, id in b).
Status KdTreeJoin(const KdTree& a, const KdTree& b, double epsilon,
                  Metric metric, PairSink* sink, JoinStats* stats = nullptr);

}  // namespace simjoin

#endif  // SIMJOIN_BASELINES_KDTREE_H_
