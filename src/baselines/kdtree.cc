#include "baselines/kdtree.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <queue>
#include <utility>

namespace simjoin {

Status KdTreeConfig::Validate() const {
  if (leaf_size == 0) return Status::InvalidArgument("leaf_size must be positive");
  return Status::OK();
}

KdTree::KdTree(const Dataset* dataset, KdTreeConfig config)
    : dataset_(dataset), config_(config) {}

Result<KdTree> KdTree::Build(const Dataset& dataset, const KdTreeConfig& config) {
  SIMJOIN_RETURN_NOT_OK(config.Validate());
  if (dataset.empty()) {
    return Status::InvalidArgument("cannot build k-d tree on empty dataset");
  }
  KdTree tree(&dataset, config);
  std::vector<PointId> ids(dataset.size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<PointId>(i);
  tree.root_ = tree.BuildNode(&ids, 0, ids.size(), 0);
  return tree;
}

std::unique_ptr<KdTreeNode> KdTree::BuildNode(std::vector<PointId>* ids,
                                              size_t begin, size_t end,
                                              uint32_t depth) {
  auto node = std::make_unique<KdTreeNode>();
  node->bbox = BoundingBox(dataset_->dims());
  for (size_t i = begin; i < end; ++i) {
    node->bbox.ExtendPoint(dataset_->Row((*ids)[i]));
  }

  const size_t count = end - begin;
  // Split on the widest bbox side; a zero-width box (all duplicates) cannot
  // be partitioned and stays a leaf regardless of size.
  uint32_t widest = 0;
  double width = -1.0;
  for (size_t d = 0; d < dataset_->dims(); ++d) {
    const double side = static_cast<double>(node->bbox.hi(d)) - node->bbox.lo(d);
    if (side > width) {
      width = side;
      widest = static_cast<uint32_t>(d);
    }
  }
  if (count <= config_.leaf_size || width <= 0.0) {
    node->points.assign(ids->begin() + static_cast<ptrdiff_t>(begin),
                        ids->begin() + static_cast<ptrdiff_t>(end));
    const Dataset& data = *dataset_;
    std::sort(node->points.begin(), node->points.end(),
              [&data](PointId a, PointId b) {
                return data.Row(a)[0] < data.Row(b)[0];
              });
    return node;
  }

  const size_t mid = begin + count / 2;
  const Dataset& data = *dataset_;
  std::nth_element(ids->begin() + static_cast<ptrdiff_t>(begin),
                   ids->begin() + static_cast<ptrdiff_t>(mid),
                   ids->begin() + static_cast<ptrdiff_t>(end),
                   [&data, widest](PointId a, PointId b) {
                     return data.Row(a)[widest] < data.Row(b)[widest];
                   });
  node->split_dim = widest;
  node->split_value = data.Row((*ids)[mid])[widest];
  // Guard against a degenerate partition when many points share the median
  // coordinate: shift the boundary so both sides are non-empty.
  size_t split_at = mid;
  // nth_element only guarantees a partition around mid; move duplicates of
  // the split value to the left side so the predicate (<= goes left) holds.
  split_at = static_cast<size_t>(
      std::partition(ids->begin() + static_cast<ptrdiff_t>(begin),
                     ids->begin() + static_cast<ptrdiff_t>(end),
                     [&data, widest, node = node.get()](PointId p) {
                       return data.Row(p)[widest] <= node->split_value;
                     }) -
      ids->begin());
  if (split_at == begin || split_at == end) {
    // All points on one side (can happen when split_value is the maximum):
    // fall back to a leaf; width > 0 makes this rare.
    node->points.assign(ids->begin() + static_cast<ptrdiff_t>(begin),
                        ids->begin() + static_cast<ptrdiff_t>(end));
    std::sort(node->points.begin(), node->points.end(),
              [&data](PointId a, PointId b) {
                return data.Row(a)[0] < data.Row(b)[0];
              });
    return node;
  }
  node->left = BuildNode(ids, begin, split_at, depth + 1);
  node->right = BuildNode(ids, split_at, end, depth + 1);
  return node;
}

Status KdTree::RangeQuery(const float* query, double epsilon, Metric metric,
                          std::vector<PointId>* out) const {
  if (out == nullptr) return Status::InvalidArgument("out must not be null");
  if (!(epsilon > 0.0)) return Status::InvalidArgument("epsilon must be positive");
  DistanceKernel kernel(metric);
  const size_t dims = dataset_->dims();
  std::vector<const KdTreeNode*> stack = {root_.get()};
  while (!stack.empty()) {
    const KdTreeNode* node = stack.back();
    stack.pop_back();
    if (node->bbox.MinDistanceToPoint(query, dims, metric) > epsilon) continue;
    if (node->is_leaf()) {
      for (PointId p : node->points) {
        if (kernel.WithinEpsilon(query, dataset_->Row(p), dims, epsilon)) {
          out->push_back(p);
        }
      }
      continue;
    }
    stack.push_back(node->left.get());
    stack.push_back(node->right.get());
  }
  return Status::OK();
}

Status KdTree::KnnQuery(const float* query, size_t k, Metric metric,
                        std::vector<Neighbor>* out) const {
  if (out == nullptr) return Status::InvalidArgument("out must not be null");
  if (k == 0) return Status::InvalidArgument("k must be positive");
  DistanceKernel kernel(metric);
  const size_t dims = dataset_->dims();

  // Max-heap of the best k found so far, keyed by (distance, id) so the
  // result is deterministic under distance ties.
  using HeapEntry = std::pair<double, PointId>;
  std::vector<HeapEntry> heap;
  heap.reserve(k + 1);
  auto worst = [&heap, k]() {
    return heap.size() < k ? std::numeric_limits<double>::infinity()
                           : heap.front().first;
  };

  // Best-first traversal ordered by bbox min-distance.
  using QueueEntry = std::pair<double, const KdTreeNode*>;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>>
      queue;
  queue.emplace(root_->bbox.MinDistanceToPoint(query, dims, metric),
                root_.get());
  while (!queue.empty()) {
    const auto [lower_bound, node] = queue.top();
    queue.pop();
    if (lower_bound > worst()) break;  // nothing closer remains
    if (node->is_leaf()) {
      for (PointId p : node->points) {
        const HeapEntry cand{kernel.Distance(query, dataset_->Row(p), dims), p};
        if (heap.size() < k) {
          heap.push_back(cand);
          std::push_heap(heap.begin(), heap.end());
        } else if (cand < heap.front()) {
          heap.push_back(cand);
          std::push_heap(heap.begin(), heap.end());
          std::pop_heap(heap.begin(), heap.end());
          heap.pop_back();
        }
      }
      continue;
    }
    queue.emplace(node->left->bbox.MinDistanceToPoint(query, dims, metric),
                  node->left.get());
    queue.emplace(node->right->bbox.MinDistanceToPoint(query, dims, metric),
                  node->right.get());
  }

  std::sort(heap.begin(), heap.end());
  out->clear();
  out->reserve(heap.size());
  for (const auto& [dist, id] : heap) out->push_back(Neighbor{id, dist});
  return Status::OK();
}

namespace {

void WalkStats(const KdTreeNode* node, uint64_t depth, size_t dims,
               KdTreeStats* stats) {
  ++stats->nodes;
  stats->max_depth = std::max(stats->max_depth, depth);
  stats->memory_bytes += sizeof(KdTreeNode) +
                         node->points.capacity() * sizeof(PointId) +
                         2 * dims * sizeof(float);
  if (node->is_leaf()) {
    ++stats->leaves;
    stats->total_points += node->points.size();
    return;
  }
  WalkStats(node->left.get(), depth + 1, dims, stats);
  WalkStats(node->right.get(), depth + 1, dims, stats);
}

/// Shared traversal for self- and cross-joins.
class KdJoinContext {
 public:
  KdJoinContext(const Dataset& a_data, const Dataset& b_data, double epsilon,
                Metric metric, bool self_mode, PairSink* sink)
      : a_data_(a_data),
        b_data_(b_data),
        kernel_(metric),
        epsilon_(epsilon),
        self_mode_(self_mode),
        sink_(sink) {}

  void SelfJoinNode(const KdTreeNode* node) {
    if (node->is_leaf()) {
      LeafSelfJoin(node);
      return;
    }
    SelfJoinNode(node->left.get());
    SelfJoinNode(node->right.get());
    JoinNodes(node->left.get(), node->right.get());
  }

  void JoinNodes(const KdTreeNode* a, const KdTreeNode* b) {
    ++stats_.node_pairs_visited;
    if (a->bbox.IsEmpty() || b->bbox.IsEmpty() ||
        a->bbox.MinDistance(b->bbox, kernel_.metric()) > epsilon_) {
      ++stats_.node_pairs_pruned;
      return;
    }
    if (a->is_leaf() && b->is_leaf()) {
      LeafCrossJoin(a, b);
      return;
    }
    // Descend the node with the larger bbox volume (or the internal one).
    const bool descend_a =
        !a->is_leaf() && (b->is_leaf() || a->bbox.Volume() >= b->bbox.Volume());
    if (descend_a) {
      JoinNodes(a->left.get(), b);
      JoinNodes(a->right.get(), b);
    } else {
      JoinNodes(a, b->left.get());
      JoinNodes(a, b->right.get());
    }
  }

  const JoinStats& stats() const { return stats_; }

 private:
  void TestAndEmit(PointId a, const float* a_row, PointId b, const float* b_row) {
    ++stats_.candidate_pairs;
    ++stats_.distance_calls;
    if (!kernel_.WithinEpsilon(a_row, b_row, a_data_.dims(), epsilon_)) return;
    ++stats_.pairs_emitted;
    if (self_mode_ && a > b) std::swap(a, b);
    sink_->Emit(a, b);
  }

  void LeafSelfJoin(const KdTreeNode* leaf) {
    const auto& ids = leaf->points;  // sorted on dim 0
    for (size_t i = 0; i < ids.size(); ++i) {
      const float* row_i = a_data_.Row(ids[i]);
      for (size_t j = i + 1; j < ids.size(); ++j) {
        const float* row_j = a_data_.Row(ids[j]);
        if (static_cast<double>(row_j[0]) - row_i[0] > epsilon_) break;
        TestAndEmit(ids[i], row_i, ids[j], row_j);
      }
    }
  }

  void LeafCrossJoin(const KdTreeNode* a, const KdTreeNode* b) {
    size_t window_start = 0;
    for (PointId a_id : a->points) {
      const float* a_row = a_data_.Row(a_id);
      const double lo = static_cast<double>(a_row[0]) - epsilon_;
      const double hi = static_cast<double>(a_row[0]) + epsilon_;
      while (window_start < b->points.size() &&
             static_cast<double>(b_data_.Row(b->points[window_start])[0]) < lo) {
        ++window_start;
      }
      for (size_t j = window_start; j < b->points.size(); ++j) {
        const float* b_row = b_data_.Row(b->points[j]);
        if (static_cast<double>(b_row[0]) > hi) break;
        TestAndEmit(a_id, a_row, b->points[j], b_row);
      }
    }
  }

  const Dataset& a_data_;
  const Dataset& b_data_;
  DistanceKernel kernel_;
  double epsilon_;
  bool self_mode_;
  PairSink* sink_;
  JoinStats stats_;
};

Status ValidateJoin(const Dataset& a, const Dataset& b, double epsilon,
                    PairSink* sink) {
  if (sink == nullptr) return Status::InvalidArgument("sink must not be null");
  if (a.dims() != b.dims()) {
    return Status::InvalidArgument("joined trees index different dimensionalities");
  }
  if (!(epsilon > 0.0)) return Status::InvalidArgument("epsilon must be positive");
  return Status::OK();
}

}  // namespace

KdTreeStats KdTree::ComputeStats() const {
  KdTreeStats stats;
  WalkStats(root_.get(), 0, dataset_->dims(), &stats);
  return stats;
}

Status KdTreeSelfJoin(const KdTree& tree, double epsilon, Metric metric,
                      PairSink* sink, JoinStats* stats) {
  SIMJOIN_RETURN_NOT_OK(
      ValidateJoin(tree.dataset(), tree.dataset(), epsilon, sink));
  KdJoinContext ctx(tree.dataset(), tree.dataset(), epsilon, metric,
                    /*self_mode=*/true, sink);
  ctx.SelfJoinNode(tree.root());
  if (stats != nullptr) stats->Merge(ctx.stats());
  return Status::OK();
}

Status KdTreeJoin(const KdTree& a, const KdTree& b, double epsilon,
                  Metric metric, PairSink* sink, JoinStats* stats) {
  SIMJOIN_RETURN_NOT_OK(ValidateJoin(a.dataset(), b.dataset(), epsilon, sink));
  KdJoinContext ctx(a.dataset(), b.dataset(), epsilon, metric,
                    /*self_mode=*/false, sink);
  ctx.JoinNodes(a.root(), b.root());
  if (stats != nullptr) stats->Merge(ctx.stats());
  return Status::OK();
}

}  // namespace simjoin
