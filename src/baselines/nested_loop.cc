#include "baselines/nested_loop.h"

namespace simjoin {
namespace {

Status ValidateJoinArgs(const Dataset& a, const Dataset& b, double epsilon,
                        PairSink* sink) {
  if (sink == nullptr) return Status::InvalidArgument("sink must not be null");
  if (a.empty() || b.empty()) {
    return Status::InvalidArgument("join inputs must be non-empty");
  }
  if (a.dims() != b.dims()) {
    return Status::InvalidArgument("join inputs have different dimensionality");
  }
  if (!(epsilon > 0.0)) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  return Status::OK();
}

}  // namespace

Status NestedLoopSelfJoin(const Dataset& data, double epsilon, Metric metric,
                          PairSink* sink, JoinStats* stats) {
  SIMJOIN_RETURN_NOT_OK(ValidateJoinArgs(data, data, epsilon, sink));
  DistanceKernel kernel(metric);
  JoinStats local;
  const size_t n = data.size();
  const size_t dims = data.dims();
  for (size_t i = 0; i < n; ++i) {
    const float* row_i = data.Row(static_cast<PointId>(i));
    for (size_t j = i + 1; j < n; ++j) {
      ++local.candidate_pairs;
      ++local.distance_calls;
      if (kernel.WithinEpsilon(row_i, data.Row(static_cast<PointId>(j)), dims,
                               epsilon)) {
        ++local.pairs_emitted;
        sink->Emit(static_cast<PointId>(i), static_cast<PointId>(j));
      }
    }
  }
  if (stats != nullptr) stats->Merge(local);
  return Status::OK();
}

Status NestedLoopJoin(const Dataset& a, const Dataset& b, double epsilon,
                      Metric metric, PairSink* sink, JoinStats* stats) {
  SIMJOIN_RETURN_NOT_OK(ValidateJoinArgs(a, b, epsilon, sink));
  DistanceKernel kernel(metric);
  JoinStats local;
  const size_t na = a.size();
  const size_t nb = b.size();
  const size_t dims = a.dims();
  for (size_t i = 0; i < na; ++i) {
    const float* row_i = a.Row(static_cast<PointId>(i));
    for (size_t j = 0; j < nb; ++j) {
      ++local.candidate_pairs;
      ++local.distance_calls;
      if (kernel.WithinEpsilon(row_i, b.Row(static_cast<PointId>(j)), dims,
                               epsilon)) {
        ++local.pairs_emitted;
        sink->Emit(static_cast<PointId>(i), static_cast<PointId>(j));
      }
    }
  }
  if (stats != nullptr) stats->Merge(local);
  return Status::OK();
}

}  // namespace simjoin
