#include "baselines/nested_loop.h"

#include "common/simd_kernel.h"

namespace simjoin {
namespace {

Status ValidateJoinArgs(const Dataset& a, const Dataset& b, double epsilon,
                        PairSink* sink) {
  if (sink == nullptr) return Status::InvalidArgument("sink must not be null");
  if (a.empty() || b.empty()) {
    return Status::InvalidArgument("join inputs must be non-empty");
  }
  if (a.dims() != b.dims()) {
    return Status::InvalidArgument("join inputs have different dimensionality");
  }
  if (!(epsilon > 0.0)) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  return Status::OK();
}

}  // namespace

Status NestedLoopSelfJoin(const Dataset& data, double epsilon, Metric metric,
                          PairSink* sink, JoinStats* stats) {
  SIMJOIN_RETURN_NOT_OK(ValidateJoinArgs(data, data, epsilon, sink));
  BatchDistanceKernel batch(metric, data.dims(), epsilon);
  BufferedSink buffered(sink);
  CandidateTile tile;
  JoinStats local;
  const size_t n = data.size();
  for (size_t i = 0; i < n; ++i) {
    const PointId a_id = static_cast<PointId>(i);
    const float* row_i = data.Row(a_id);
    for (size_t j = i + 1; j < n; ++j) {
      tile.Add(static_cast<PointId>(j), data.Row(static_cast<PointId>(j)));
      if (tile.full()) {
        FilterTileAndEmit(batch, a_id, row_i, tile, /*canonical_order=*/true,
                          buffered, local);
      }
    }
    FilterTileAndEmit(batch, a_id, row_i, tile, /*canonical_order=*/true,
                      buffered, local);
  }
  buffered.Flush();
  local.simd_batches = batch.simd_batches();
  local.scalar_fallbacks = batch.scalar_fallbacks();
  if (stats != nullptr) stats->Merge(local);
  return Status::OK();
}

Status NestedLoopJoin(const Dataset& a, const Dataset& b, double epsilon,
                      Metric metric, PairSink* sink, JoinStats* stats) {
  SIMJOIN_RETURN_NOT_OK(ValidateJoinArgs(a, b, epsilon, sink));
  BatchDistanceKernel batch(metric, a.dims(), epsilon);
  BufferedSink buffered(sink);
  CandidateTile tile;
  JoinStats local;
  const size_t na = a.size();
  const size_t nb = b.size();
  for (size_t i = 0; i < na; ++i) {
    const PointId a_id = static_cast<PointId>(i);
    const float* row_i = a.Row(a_id);
    for (size_t j = 0; j < nb; ++j) {
      tile.Add(static_cast<PointId>(j), b.Row(static_cast<PointId>(j)));
      if (tile.full()) {
        FilterTileAndEmit(batch, a_id, row_i, tile, /*canonical_order=*/false,
                          buffered, local);
      }
    }
    FilterTileAndEmit(batch, a_id, row_i, tile, /*canonical_order=*/false,
                      buffered, local);
  }
  buffered.Flush();
  local.simd_batches = batch.simd_batches();
  local.scalar_fallbacks = batch.scalar_fallbacks();
  if (stats != nullptr) stats->Merge(local);
  return Status::OK();
}

}  // namespace simjoin
