// One-dimensional projection sort-merge (band) join.
//
// The classical pre-spatial-index approach: sort all points on a single
// dimension, then for each point test only the points whose projection lies
// within epsilon (a sliding window over the sorted order).  The window
// filter is sound for every L_p metric because a single coordinate
// difference lower-bounds the full distance — but the filter's selectivity
// collapses as dimensionality grows, which is precisely the effect the
// paper's dimensionality experiment (R3) demonstrates.

#ifndef SIMJOIN_BASELINES_SORT_MERGE_H_
#define SIMJOIN_BASELINES_SORT_MERGE_H_

#include <cstdint>

#include "common/dataset.h"
#include "common/metric.h"
#include "common/pair_sink.h"
#include "common/status.h"

namespace simjoin {

/// Options for the sort-merge join.
struct SortMergeConfig {
  /// Dimension to sort on.  kAutoDim picks the column with maximum variance
  /// (the most selective 1-D filter).
  static constexpr uint32_t kAutoDim = UINT32_MAX;
  uint32_t sort_dim = kAutoDim;
};

/// Self-join via a 1-D sorted sweep; emits canonical (min, max) pairs.
Status SortMergeSelfJoin(const Dataset& data, double epsilon, Metric metric,
                         const SortMergeConfig& config, PairSink* sink,
                         JoinStats* stats = nullptr);

/// Two-dataset join via a shared 1-D sorted sweep; emits (id in A, id in B).
Status SortMergeJoin(const Dataset& a, const Dataset& b, double epsilon,
                     Metric metric, const SortMergeConfig& config, PairSink* sink,
                     JoinStats* stats = nullptr);

/// Picks the dimension with maximum variance (what kAutoDim resolves to).
uint32_t MaxVarianceDim(const Dataset& data);

}  // namespace simjoin

#endif  // SIMJOIN_BASELINES_SORT_MERGE_H_
