#include "service/protocol.h"

#include <atomic>
#include <bit>
#include <cstring>
#include <random>

#include "common/logging.h"

namespace simjoin {
namespace {

// Hard caps on repeated elements, under the per-frame payload cap, so a
// hostile count field cannot trigger a huge allocation before the byte
// bounds check catches it: every cap is checked against remaining() first.

constexpr uint32_t kWireDimOrderMax = 4096;

uint64_t ToBits(double v) { return std::bit_cast<uint64_t>(v); }
double FromBits(uint64_t v) { return std::bit_cast<double>(v); }

Status ParseMetricTag(uint8_t tag, Metric* out) {
  switch (tag) {
    case static_cast<uint8_t>(Metric::kL1):
      *out = Metric::kL1;
      return Status::OK();
    case static_cast<uint8_t>(Metric::kL2):
      *out = Metric::kL2;
      return Status::OK();
    case static_cast<uint8_t>(Metric::kLinf):
      *out = Metric::kLinf;
      return Status::OK();
    default:
      return Status::InvalidArgument("unknown metric tag " +
                                     std::to_string(tag));
  }
}

Status ParseStatusCodeTag(uint16_t tag, StatusCode* out) {
  if (tag > static_cast<uint16_t>(StatusCode::kDeadlineExceeded) ||
      tag == static_cast<uint16_t>(StatusCode::kOk)) {
    // Unknown or nonsensical (an error frame carrying OK) collapses to
    // kInternal rather than being rejected: the message text survives.
    *out = StatusCode::kInternal;
    return Status::OK();
  }
  *out = static_cast<StatusCode>(tag);
  return Status::OK();
}

}  // namespace

bool IsKnownFrameType(uint8_t tag) {
  switch (static_cast<FrameType>(tag)) {
    case FrameType::kBuildIndex:
    case FrameType::kRangeQuery:
    case FrameType::kSimilarityJoin:
    case FrameType::kStats:
    case FrameType::kShutdown:
    case FrameType::kDropIndex:
    case FrameType::kPing:
    case FrameType::kInsert:
    case FrameType::kRemove:
    case FrameType::kFlush:
    case FrameType::kBuildIndexOk:
    case FrameType::kRangeQueryResult:
    case FrameType::kJoinChunk:
    case FrameType::kJoinDone:
    case FrameType::kStatsResult:
    case FrameType::kShutdownOk:
    case FrameType::kDropIndexOk:
    case FrameType::kPong:
    case FrameType::kInsertOk:
    case FrameType::kRemoveOk:
    case FrameType::kFlushOk:
    case FrameType::kError:
    case FrameType::kRetryAfter:
      return true;
  }
  return false;
}

bool IsRequestFrameType(FrameType type) {
  return static_cast<uint8_t>(type) < 64;
}

// --------------------------------------------------------------------------
// WireWriter
// --------------------------------------------------------------------------

void WireWriter::U16(uint16_t v) {
  buf_.push_back(static_cast<uint8_t>(v));
  buf_.push_back(static_cast<uint8_t>(v >> 8));
}

void WireWriter::U32(uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void WireWriter::U64(uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void WireWriter::F32(float v) { U32(std::bit_cast<uint32_t>(v)); }

void WireWriter::F64(double v) { U64(ToBits(v)); }

void WireWriter::Bytes(const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + len);
}

void WireWriter::String(const std::string& s) {
  U32(static_cast<uint32_t>(s.size()));
  Bytes(s.data(), s.size());
}

void WireWriter::FloatArray(std::span<const float> values) {
  // Floats go on the wire as little-endian u32 bit patterns; on LE hosts
  // this is a straight memcpy.
  if (values.empty()) return;  // empty span's data() may be null
  const size_t start = buf_.size();
  buf_.resize(start + values.size() * 4);
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(buf_.data() + start, values.data(), values.size() * 4);
  } else {
    uint8_t* out = buf_.data() + start;
    for (const float v : values) {
      const uint32_t bits = std::bit_cast<uint32_t>(v);
      for (int i = 0; i < 4; ++i) *out++ = static_cast<uint8_t>(bits >> (8 * i));
    }
  }
}

// --------------------------------------------------------------------------
// WireReader
// --------------------------------------------------------------------------

Status WireReader::Need(size_t n) const {
  if (data_.size() - pos_ < n) {
    return Status::OutOfRange("payload truncated: need " + std::to_string(n) +
                              " bytes, have " +
                              std::to_string(data_.size() - pos_));
  }
  return Status::OK();
}

Status WireReader::U8(uint8_t* v) {
  SIMJOIN_RETURN_NOT_OK(Need(1));
  *v = data_[pos_++];
  return Status::OK();
}

Status WireReader::U16(uint16_t* v) {
  SIMJOIN_RETURN_NOT_OK(Need(2));
  *v = static_cast<uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
  pos_ += 2;
  return Status::OK();
}

Status WireReader::U32(uint32_t* v) {
  SIMJOIN_RETURN_NOT_OK(Need(4));
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) out |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  *v = out;
  return Status::OK();
}

Status WireReader::U64(uint64_t* v) {
  SIMJOIN_RETURN_NOT_OK(Need(8));
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) out |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  *v = out;
  return Status::OK();
}

Status WireReader::F32(float* v) {
  uint32_t bits = 0;
  SIMJOIN_RETURN_NOT_OK(U32(&bits));
  *v = std::bit_cast<float>(bits);
  return Status::OK();
}

Status WireReader::F64(double* v) {
  uint64_t bits = 0;
  SIMJOIN_RETURN_NOT_OK(U64(&bits));
  *v = FromBits(bits);
  return Status::OK();
}

Status WireReader::String(std::string* s, uint32_t max_len) {
  uint32_t len = 0;
  SIMJOIN_RETURN_NOT_OK(U32(&len));
  if (len > max_len) {
    return Status::OutOfRange("string length " + std::to_string(len) +
                              " exceeds limit " + std::to_string(max_len));
  }
  SIMJOIN_RETURN_NOT_OK(Need(len));
  s->assign(reinterpret_cast<const char*>(data_.data() + pos_), len);
  pos_ += len;
  return Status::OK();
}

Status WireReader::FloatArray(size_t count, std::vector<float>* out) {
  // Divide instead of multiplying so a hostile count cannot wrap the
  // byte-size computation.
  if (count > (data_.size() - pos_) / 4) {
    return Status::OutOfRange("float array of " + std::to_string(count) +
                              " elements exceeds payload");
  }
  out->resize(count);
  if (count == 0) return Status::OK();  // out->data() may be null when empty
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(out->data(), data_.data() + pos_, count * 4);
  } else {
    for (size_t i = 0; i < count; ++i) {
      uint32_t bits = 0;
      for (int b = 0; b < 4; ++b) {
        bits |= static_cast<uint32_t>(data_[pos_ + i * 4 + b]) << (8 * b);
      }
      (*out)[i] = std::bit_cast<float>(bits);
    }
  }
  pos_ += count * 4;
  return Status::OK();
}

Status WireReader::ExpectEnd() const {
  if (pos_ != data_.size()) {
    return Status::InvalidArgument(
        std::to_string(data_.size() - pos_) +
        " trailing bytes after a complete message");
  }
  return Status::OK();
}

// --------------------------------------------------------------------------
// Frame encode / decode
// --------------------------------------------------------------------------

std::vector<uint8_t> EncodeFrame(FrameType type, uint64_t request_id,
                                 uint32_t deadline_ms,
                                 std::span<const uint8_t> payload) {
  // The size field is u32; silently truncating it would desync the stream
  // while still writing every payload byte.  Callers bound payloads first
  // (the server caps responses at max_frame_payload), so tripping this is
  // a local logic bug, not an attacker-reachable path.
  SIMJOIN_CHECK_LE(payload.size(), UINT32_MAX) << "frame payload too large";
  WireWriter w;
  w.U32(kWireMagic);
  w.U8(kWireVersion);
  w.U8(static_cast<uint8_t>(type));
  w.U16(0);  // reserved
  w.U32(static_cast<uint32_t>(payload.size()));
  w.U32(deadline_ms);
  w.U64(request_id);
  w.Bytes(payload.data(), payload.size());
  return w.Take();
}

Status DecodeFrameHeader(std::span<const uint8_t> bytes, uint32_t max_payload,
                         FrameHeader* out) {
  if (bytes.size() < kFrameHeaderSize) {
    return Status::OutOfRange("frame header needs " +
                              std::to_string(kFrameHeaderSize) + " bytes");
  }
  WireReader r(bytes.subspan(0, kFrameHeaderSize));
  uint32_t magic = 0;
  uint8_t version = 0, type = 0;
  uint16_t reserved = 0;
  // Header reads from a 24-byte span cannot fail; statuses folded away.
  (void)r.U32(&magic);
  (void)r.U8(&version);
  (void)r.U8(&type);
  (void)r.U16(&reserved);
  if (magic != kWireMagic) {
    return Status::InvalidArgument("bad frame magic");
  }
  if (version != kWireVersion) {
    return Status::InvalidArgument("unsupported protocol version " +
                                   std::to_string(version));
  }
  if (!IsKnownFrameType(type)) {
    return Status::InvalidArgument("unknown frame type " +
                                   std::to_string(type));
  }
  if (reserved != 0) {
    return Status::InvalidArgument("reserved header bits set");
  }
  out->type = static_cast<FrameType>(type);
  (void)r.U32(&out->payload_size);
  (void)r.U32(&out->deadline_ms);
  (void)r.U64(&out->request_id);
  if (out->payload_size > max_payload) {
    return Status::OutOfRange("frame payload " +
                              std::to_string(out->payload_size) +
                              " exceeds limit " + std::to_string(max_payload));
  }
  return Status::OK();
}

void FrameDecoder::Append(const uint8_t* data, size_t len) {
  if (!error_.ok()) return;  // stream already condemned
  // Compact the consumed prefix before growing, so long-lived connections
  // don't accumulate every frame they ever received.
  if (consumed_ > 0 && consumed_ == buf_.size()) {
    buf_.clear();
    consumed_ = 0;
  } else if (consumed_ > (64u << 10) && consumed_ > buf_.size() / 2) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buf_.insert(buf_.end(), data, data + len);
}

Status FrameDecoder::Next(Frame* out, bool* got) {
  *got = false;
  if (!error_.ok()) return error_;
  const size_t avail = buf_.size() - consumed_;
  if (avail < kFrameHeaderSize) return Status::OK();
  FrameHeader header;
  const Status st = DecodeFrameHeader(
      std::span<const uint8_t>(buf_.data() + consumed_, kFrameHeaderSize),
      max_payload_, &header);
  if (!st.ok()) {
    error_ = st;
    return error_;
  }
  if (avail < kFrameHeaderSize + header.payload_size) return Status::OK();
  out->header = header;
  const uint8_t* body = buf_.data() + consumed_ + kFrameHeaderSize;
  out->payload.assign(body, body + header.payload_size);
  consumed_ += kFrameHeaderSize + header.payload_size;
  *got = true;
  return Status::OK();
}

// --------------------------------------------------------------------------
// JoinStats
// --------------------------------------------------------------------------

void EncodeJoinStats(const JoinStats& stats, WireWriter* w) {
  w->U64(stats.candidate_pairs);
  w->U64(stats.distance_calls);
  w->U64(stats.node_pairs_visited);
  w->U64(stats.node_pairs_pruned);
  w->U64(stats.pairs_emitted);
  w->U64(stats.simd_batches);
  w->U64(stats.scalar_fallbacks);
}

Status ParseJoinStats(WireReader* r, JoinStats* out) {
  SIMJOIN_RETURN_NOT_OK(r->U64(&out->candidate_pairs));
  SIMJOIN_RETURN_NOT_OK(r->U64(&out->distance_calls));
  SIMJOIN_RETURN_NOT_OK(r->U64(&out->node_pairs_visited));
  SIMJOIN_RETURN_NOT_OK(r->U64(&out->node_pairs_pruned));
  SIMJOIN_RETURN_NOT_OK(r->U64(&out->pairs_emitted));
  SIMJOIN_RETURN_NOT_OK(r->U64(&out->simd_batches));
  SIMJOIN_RETURN_NOT_OK(r->U64(&out->scalar_fallbacks));
  return Status::OK();
}

// --------------------------------------------------------------------------
// Trace-context extension
// --------------------------------------------------------------------------

uint64_t GenerateTraceId() {
  // Random process base plus a counter, finalised with a splitmix64 mix so
  // concurrent ids from the same process are well spread.  Zero is the
  // "no trace" sentinel, so it is remapped.
  static const uint64_t base = [] {
    std::random_device rd;
    return (static_cast<uint64_t>(rd()) << 32) ^ rd();
  }();
  static std::atomic<uint64_t> counter{0};
  uint64_t x = base + counter.fetch_add(1, std::memory_order_relaxed);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x == 0 ? 1 : x;
}

namespace {

/// Appends the trace suffix to a request payload under construction.
void EncodeTraceContext(const TraceContext& ctx, WireWriter* w) {
  if (!ctx.present) return;
  w->U64(ctx.trace_id);
  w->U8(ctx.flags);
  w->U8(kWireTraceMagic);
}

/// Consumes the kWireTraceExtBytes suffix the caller has size-detected at
/// the cursor, validating the trailing magic byte.
Status ParseTraceSuffix(WireReader* r, TraceContext* out) {
  SIMJOIN_RETURN_NOT_OK(r->U64(&out->trace_id));
  SIMJOIN_RETURN_NOT_OK(r->U8(&out->flags));
  uint8_t magic = 0;
  SIMJOIN_RETURN_NOT_OK(r->U8(&magic));
  if (magic != kWireTraceMagic) {
    return Status::InvalidArgument("trace-context suffix magic mismatch");
  }
  out->present = true;
  return Status::OK();
}

}  // namespace

void AppendTraceContext(const TraceContext& ctx,
                        std::vector<uint8_t>* payload) {
  if (!ctx.present) return;
  WireWriter w;
  EncodeTraceContext(ctx, &w);
  payload->insert(payload->end(), w.buffer().begin(), w.buffer().end());
}

// --------------------------------------------------------------------------
// BuildIndex
// --------------------------------------------------------------------------

std::vector<uint8_t> EncodeBuildIndexRequest(const BuildIndexRequest& req) {
  WireWriter w;
  w.String(req.name);
  w.F64(req.config.epsilon);
  w.U8(static_cast<uint8_t>(req.config.metric));
  w.U32(static_cast<uint32_t>(req.config.leaf_threshold));
  w.U8(req.config.bbox_pruning ? 1 : 0);
  w.U8(req.config.sliding_window_leaf_join ? 1 : 0);
  w.U32(static_cast<uint32_t>(req.config.dim_order.size()));
  for (const uint32_t d : req.config.dim_order) w.U32(d);
  w.U32(req.num_threads);
  w.U32(req.dims);
  w.U32(req.dims == 0 ? 0
                      : static_cast<uint32_t>(req.points.size() / req.dims));
  w.FloatArray(req.points);
  // Trailing extension bytes: [backend] or [backend, on_disk].  The
  // on_disk byte requires the backend byte before it so the parser can
  // distinguish the tails by remaining() % 4.
  if (req.on_disk) {
    w.U8(static_cast<uint8_t>(req.backend));
    w.U8(1);
  } else if (req.backend != BackendKind::kEkdbFlat) {
    w.U8(static_cast<uint8_t>(req.backend));
  }
  EncodeTraceContext(req.trace, &w);
  return w.Take();
}

Status ParseBuildIndexRequest(std::span<const uint8_t> payload,
                              BuildIndexRequest* out) {
  WireReader r(payload);
  SIMJOIN_RETURN_NOT_OK(r.String(&out->name, kMaxIndexNameLen));
  if (out->name.empty()) {
    return Status::InvalidArgument("index name must not be empty");
  }
  SIMJOIN_RETURN_NOT_OK(r.F64(&out->config.epsilon));
  uint8_t metric_tag = 0;
  SIMJOIN_RETURN_NOT_OK(r.U8(&metric_tag));
  SIMJOIN_RETURN_NOT_OK(ParseMetricTag(metric_tag, &out->config.metric));
  uint32_t leaf_threshold = 0;
  SIMJOIN_RETURN_NOT_OK(r.U32(&leaf_threshold));
  out->config.leaf_threshold = leaf_threshold;
  uint8_t bbox = 0, sliding = 0;
  SIMJOIN_RETURN_NOT_OK(r.U8(&bbox));
  SIMJOIN_RETURN_NOT_OK(r.U8(&sliding));
  out->config.bbox_pruning = bbox != 0;
  out->config.sliding_window_leaf_join = sliding != 0;
  uint32_t order_len = 0;
  SIMJOIN_RETURN_NOT_OK(r.U32(&order_len));
  if (order_len > kWireDimOrderMax) {
    return Status::OutOfRange("dim_order length " +
                              std::to_string(order_len) + " exceeds limit");
  }
  out->config.dim_order.clear();
  out->config.dim_order.reserve(order_len);
  for (uint32_t i = 0; i < order_len; ++i) {
    uint32_t d = 0;
    SIMJOIN_RETURN_NOT_OK(r.U32(&d));
    out->config.dim_order.push_back(d);
  }
  SIMJOIN_RETURN_NOT_OK(r.U32(&out->num_threads));
  uint32_t n = 0;
  SIMJOIN_RETURN_NOT_OK(r.U32(&out->dims));
  SIMJOIN_RETURN_NOT_OK(r.U32(&n));
  if (out->dims == 0) {
    return Status::InvalidArgument("BuildIndex dims must be positive");
  }
  // The float payload must match n * dims exactly, modulo the optional
  // trailing extensions appended by newer clients: backend byte, backend +
  // on_disk bytes, each optionally followed by the trace-context suffix.
  // The surplus candidates are distinct values of (remaining - 4 * want),
  // so at most one matches; dividing instead of multiplying `want` keeps
  // the arithmetic overflow-safe against hostile n / dims fields.
  const uint64_t want = static_cast<uint64_t>(n) * out->dims;
  size_t surplus = SIZE_MAX;
  for (const size_t s :
       {size_t{0}, size_t{1}, size_t{2}, kWireTraceExtBytes,
        kWireTraceExtBytes + 1, kWireTraceExtBytes + 2}) {
    if (r.remaining() >= s && (r.remaining() - s) % 4 == 0 &&
        (r.remaining() - s) / 4 == want) {
      surplus = s;
      break;
    }
  }
  if (surplus == SIZE_MAX) {
    return Status::InvalidArgument(
        "BuildIndex point payload mismatch: header says " +
        std::to_string(want) + " floats, payload holds " +
        std::to_string(r.remaining()) + " bytes");
  }
  SIMJOIN_RETURN_NOT_OK(r.FloatArray(want, &out->points));
  out->backend = BackendKind::kEkdbFlat;
  out->on_disk = false;
  out->trace = TraceContext{};
  const bool has_trace = surplus >= kWireTraceExtBytes;
  const size_t trailing = has_trace ? surplus - kWireTraceExtBytes : surplus;
  if (trailing >= 1) {
    uint8_t backend_byte = 0;
    SIMJOIN_RETURN_NOT_OK(r.U8(&backend_byte));
    SIMJOIN_ASSIGN_OR_RETURN(out->backend, BackendKindFromWire(backend_byte));
  }
  if (trailing == 2) {
    uint8_t on_disk_byte = 0;
    SIMJOIN_RETURN_NOT_OK(r.U8(&on_disk_byte));
    out->on_disk = on_disk_byte != 0;
  }
  if (has_trace) {
    SIMJOIN_RETURN_NOT_OK(ParseTraceSuffix(&r, &out->trace));
  }
  return r.ExpectEnd();
}

std::vector<uint8_t> EncodeBuildIndexResponse(const BuildIndexResponse& resp) {
  WireWriter w;
  w.U32(resp.num_points);
  w.U32(resp.dims);
  w.U64(resp.index_bytes);
  w.U64(resp.registry_bytes);
  w.U32(resp.evicted);
  w.F64(resp.build_seconds);
  return w.Take();
}

Status ParseBuildIndexResponse(std::span<const uint8_t> payload,
                               BuildIndexResponse* out) {
  WireReader r(payload);
  SIMJOIN_RETURN_NOT_OK(r.U32(&out->num_points));
  SIMJOIN_RETURN_NOT_OK(r.U32(&out->dims));
  SIMJOIN_RETURN_NOT_OK(r.U64(&out->index_bytes));
  SIMJOIN_RETURN_NOT_OK(r.U64(&out->registry_bytes));
  SIMJOIN_RETURN_NOT_OK(r.U32(&out->evicted));
  SIMJOIN_RETURN_NOT_OK(r.F64(&out->build_seconds));
  return r.ExpectEnd();
}

// --------------------------------------------------------------------------
// RangeQuery
// --------------------------------------------------------------------------

// Trailing planner-extension sizes (see the struct docs in protocol.h).
constexpr size_t kRangeQueryPlannerExtBytes = 9;    // recall f64 + backend u8
constexpr size_t kRangeResponsePlannerExtBytes = 10;  // f64 + u8 + u8

std::vector<uint8_t> EncodeRangeQueryRequest(const RangeQueryRequest& req) {
  WireWriter w;
  w.String(req.name);
  w.F64(req.epsilon);
  w.U32(req.dims);
  w.U32(req.dims == 0 ? 0
                      : static_cast<uint32_t>(req.queries.size() / req.dims));
  w.FloatArray(req.queries);
  if (req.has_planner) {
    w.F64(req.recall);
    w.U8(req.backend);
  }
  EncodeTraceContext(req.trace, &w);
  return w.Take();
}

Status ParseRangeQueryRequest(std::span<const uint8_t> payload,
                              RangeQueryRequest* out) {
  WireReader r(payload);
  SIMJOIN_RETURN_NOT_OK(r.String(&out->name, kMaxIndexNameLen));
  SIMJOIN_RETURN_NOT_OK(r.F64(&out->epsilon));
  uint32_t count = 0;
  SIMJOIN_RETURN_NOT_OK(r.U32(&out->dims));
  SIMJOIN_RETURN_NOT_OK(r.U32(&count));
  if (out->dims == 0) {
    return Status::InvalidArgument("RangeQuery dims must be positive");
  }
  if (count == 0) {
    return Status::InvalidArgument("RangeQuery needs at least one query");
  }
  // The query count is explicit, so the float block's size is known and
  // any surplus must be exactly the planner extension, the trace suffix,
  // or both — the sizes {0, 9, 10, 19} are pairwise distinct, so the tail
  // shape is unambiguous; anything else is a framing error.  Semantic
  // checks (recall range, known backend byte) belong to the server so a
  // kError response can name the field.  Dividing remaining() instead of
  // multiplying `want` keeps hostile count / dims fields overflow-safe.
  const uint64_t want = static_cast<uint64_t>(count) * out->dims;
  const size_t surplus =
      want <= r.remaining() / 4
          ? r.remaining() - static_cast<size_t>(want) * 4
          : SIZE_MAX;
  bool has_trace = false;
  if (surplus == 0) {
    out->has_planner = false;
  } else if (surplus == kRangeQueryPlannerExtBytes) {
    out->has_planner = true;
  } else if (surplus == kWireTraceExtBytes) {
    out->has_planner = false;
    has_trace = true;
  } else if (surplus == kRangeQueryPlannerExtBytes + kWireTraceExtBytes) {
    out->has_planner = true;
    has_trace = true;
  } else {
    return Status::InvalidArgument(
        "RangeQuery payload mismatch: header says " + std::to_string(want) +
        " floats, payload holds " + std::to_string(r.remaining()) + " bytes");
  }
  SIMJOIN_RETURN_NOT_OK(r.FloatArray(want, &out->queries));
  if (out->has_planner) {
    SIMJOIN_RETURN_NOT_OK(r.F64(&out->recall));
    SIMJOIN_RETURN_NOT_OK(r.U8(&out->backend));
  } else {
    out->recall = 1.0;
    out->backend = kWireBackendAuto;
  }
  out->trace = TraceContext{};
  if (has_trace) {
    SIMJOIN_RETURN_NOT_OK(ParseTraceSuffix(&r, &out->trace));
  }
  return r.ExpectEnd();
}

std::vector<uint8_t> EncodeRangeQueryResponse(const RangeQueryResponse& resp) {
  WireWriter w;
  w.U32(static_cast<uint32_t>(resp.results.size()));
  for (const auto& ids : resp.results) {
    w.U32(static_cast<uint32_t>(ids.size()));
    for (const PointId id : ids) w.U32(id);
  }
  EncodeJoinStats(resp.stats, &w);
  if (resp.has_planner) {
    w.F64(resp.achieved_recall);
    w.U8(resp.backend_used);
    w.U8(resp.plan_cache_hit ? 1 : 0);
  }
  if (resp.has_profile) {
    const size_t profile_start = w.buffer().size();
    EncodeRequestProfile(resp.profile, &w);
    w.U32(static_cast<uint32_t>(w.buffer().size() - profile_start));
    w.U8(kWireProfileMagic);
  }
  return w.Take();
}

Status ParseRangeQueryResponse(std::span<const uint8_t> payload,
                               RangeQueryResponse* out) {
  WireReader r(payload);
  uint32_t count = 0;
  SIMJOIN_RETURN_NOT_OK(r.U32(&count));
  if (static_cast<uint64_t>(count) * 4 > r.remaining()) {
    return Status::OutOfRange("result count exceeds payload");
  }
  out->results.clear();
  out->results.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t m = 0;
    SIMJOIN_RETURN_NOT_OK(r.U32(&m));
    if (static_cast<uint64_t>(m) * 4 > r.remaining()) {
      return Status::OutOfRange("id list exceeds payload");
    }
    out->results[i].resize(m);
    for (uint32_t j = 0; j < m; ++j) {
      SIMJOIN_RETURN_NOT_OK(r.U32(&out->results[i][j]));
    }
  }
  SIMJOIN_RETURN_NOT_OK(ParseJoinStats(&r, &out->stats));
  // Extension region: what remains after the stats is [planner ext?]
  // [profile ext?].  The profile is detected from the payload *tail*
  // (trailing magic byte + the u32 length before it); the planner
  // extension's final byte is a 0/1 cache-hit flag, never the magic, so a
  // trailing 'P' can only mean a profile block.
  size_t profile_total = 0;  // bytes of [profile][len:u32][magic]
  if (r.remaining() >= kWireProfileFrameBytes &&
      payload[payload.size() - 1] == kWireProfileMagic) {
    const size_t len_off = payload.size() - kWireProfileFrameBytes;
    const uint32_t profile_len =
        static_cast<uint32_t>(payload[len_off]) |
        (static_cast<uint32_t>(payload[len_off + 1]) << 8) |
        (static_cast<uint32_t>(payload[len_off + 2]) << 16) |
        (static_cast<uint32_t>(payload[len_off + 3]) << 24);
    profile_total = static_cast<size_t>(profile_len) + kWireProfileFrameBytes;
    if (profile_total > r.remaining()) {
      return Status::InvalidArgument(
          "profile extension length exceeds payload");
    }
  }
  const size_t rest = r.remaining() - profile_total;
  out->has_planner = rest == kRangeResponsePlannerExtBytes;
  if (out->has_planner) {
    SIMJOIN_RETURN_NOT_OK(r.F64(&out->achieved_recall));
    SIMJOIN_RETURN_NOT_OK(r.U8(&out->backend_used));
    uint8_t cache_hit = 0;
    SIMJOIN_RETURN_NOT_OK(r.U8(&cache_hit));
    out->plan_cache_hit = cache_hit != 0;
  } else if (rest != 0) {
    return Status::InvalidArgument(
        "RangeQueryResult has unrecognised trailing bytes");
  } else {
    out->achieved_recall = 1.0;
    out->backend_used = 0;
    out->plan_cache_hit = false;
  }
  out->has_profile = profile_total != 0;
  if (out->has_profile) {
    SIMJOIN_RETURN_NOT_OK(ParseRequestProfile(&r, &out->profile));
    if (r.remaining() != kWireProfileFrameBytes) {
      return Status::InvalidArgument("profile extension length mismatch");
    }
    uint32_t profile_len = 0;
    uint8_t magic = 0;
    SIMJOIN_RETURN_NOT_OK(r.U32(&profile_len));
    SIMJOIN_RETURN_NOT_OK(r.U8(&magic));
  } else {
    out->profile = obs::RequestProfile{};
  }
  return r.ExpectEnd();
}

// --------------------------------------------------------------------------
// SimilarityJoin
// --------------------------------------------------------------------------

std::vector<uint8_t> EncodeSimilarityJoinRequest(
    const SimilarityJoinRequest& req) {
  WireWriter w;
  w.String(req.name_a);
  w.String(req.name_b);
  w.F64(req.epsilon);
  w.U32(req.num_threads);
  w.U32(req.chunk_pairs);
  EncodeTraceContext(req.trace, &w);
  return w.Take();
}

Status ParseSimilarityJoinRequest(std::span<const uint8_t> payload,
                                  SimilarityJoinRequest* out) {
  WireReader r(payload);
  SIMJOIN_RETURN_NOT_OK(r.String(&out->name_a, kMaxIndexNameLen));
  SIMJOIN_RETURN_NOT_OK(r.String(&out->name_b, kMaxIndexNameLen));
  if (out->name_a.empty()) {
    return Status::InvalidArgument("join needs a left index name");
  }
  SIMJOIN_RETURN_NOT_OK(r.F64(&out->epsilon));
  SIMJOIN_RETURN_NOT_OK(r.U32(&out->num_threads));
  SIMJOIN_RETURN_NOT_OK(r.U32(&out->chunk_pairs));
  out->trace = TraceContext{};
  if (r.remaining() == kWireTraceExtBytes) {
    SIMJOIN_RETURN_NOT_OK(ParseTraceSuffix(&r, &out->trace));
  }
  return r.ExpectEnd();
}

std::vector<uint8_t> EncodeJoinChunk(std::span<const IdPair> pairs) {
  WireWriter w;
  w.U32(static_cast<uint32_t>(pairs.size()));
  for (const IdPair& p : pairs) {
    w.U32(p.first);
    w.U32(p.second);
  }
  return w.Take();
}

Status ParseJoinChunk(std::span<const uint8_t> payload, JoinChunk* out) {
  WireReader r(payload);
  uint32_t count = 0;
  SIMJOIN_RETURN_NOT_OK(r.U32(&count));
  if (r.remaining() % 8 != 0 ||
      static_cast<uint64_t>(count) != r.remaining() / 8) {
    return Status::InvalidArgument("join chunk count/payload mismatch");
  }
  out->pairs.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    SIMJOIN_RETURN_NOT_OK(r.U32(&out->pairs[i].first));
    SIMJOIN_RETURN_NOT_OK(r.U32(&out->pairs[i].second));
  }
  return r.ExpectEnd();
}

std::vector<uint8_t> EncodeJoinDone(const JoinDone& done) {
  WireWriter w;
  w.U64(done.total_pairs);
  EncodeJoinStats(done.stats, &w);
  return w.Take();
}

Status ParseJoinDone(std::span<const uint8_t> payload, JoinDone* out) {
  WireReader r(payload);
  SIMJOIN_RETURN_NOT_OK(r.U64(&out->total_pairs));
  SIMJOIN_RETURN_NOT_OK(ParseJoinStats(&r, &out->stats));
  return r.ExpectEnd();
}

// --------------------------------------------------------------------------
// Insert / Remove / Flush (live-update RPCs, docs/updates.md)
// --------------------------------------------------------------------------

std::vector<uint8_t> EncodeInsertRequest(const InsertRequest& req) {
  WireWriter w;
  w.String(req.name);
  w.U32(req.dims);
  w.U32(req.dims == 0 ? 0
                      : static_cast<uint32_t>(req.rows.size() / req.dims));
  w.FloatArray(req.rows);
  EncodeTraceContext(req.trace, &w);
  return w.Take();
}

Status ParseInsertRequest(std::span<const uint8_t> payload,
                          InsertRequest* out) {
  WireReader r(payload);
  SIMJOIN_RETURN_NOT_OK(r.String(&out->name, kMaxIndexNameLen));
  if (out->name.empty()) {
    return Status::InvalidArgument("index name must not be empty");
  }
  uint32_t count = 0;
  SIMJOIN_RETURN_NOT_OK(r.U32(&out->dims));
  SIMJOIN_RETURN_NOT_OK(r.U32(&count));
  if (out->dims == 0) {
    return Status::InvalidArgument("Insert dims must be positive");
  }
  if (count == 0) {
    return Status::InvalidArgument("Insert needs at least one row");
  }
  // Division keeps the comparison overflow-safe against hostile fields;
  // the float block is a multiple of 4 bytes and the trace suffix is not,
  // so the two surplus candidates cannot collide.
  const uint64_t want = static_cast<uint64_t>(count) * out->dims;
  size_t surplus = SIZE_MAX;
  for (const size_t s : {size_t{0}, kWireTraceExtBytes}) {
    if (r.remaining() >= s && (r.remaining() - s) % 4 == 0 &&
        (r.remaining() - s) / 4 == want) {
      surplus = s;
      break;
    }
  }
  if (surplus == SIZE_MAX) {
    return Status::InvalidArgument(
        "Insert row payload mismatch: header says " + std::to_string(want) +
        " floats, payload holds " + std::to_string(r.remaining()) + " bytes");
  }
  SIMJOIN_RETURN_NOT_OK(r.FloatArray(want, &out->rows));
  out->trace = TraceContext{};
  if (surplus == kWireTraceExtBytes) {
    SIMJOIN_RETURN_NOT_OK(ParseTraceSuffix(&r, &out->trace));
  }
  return r.ExpectEnd();
}

std::vector<uint8_t> EncodeInsertResponse(const InsertResponse& resp) {
  WireWriter w;
  w.U32(resp.first_id);
  w.U32(resp.count);
  w.U64(resp.delta_points);
  w.U64(resp.tombstones);
  return w.Take();
}

Status ParseInsertResponse(std::span<const uint8_t> payload,
                           InsertResponse* out) {
  WireReader r(payload);
  SIMJOIN_RETURN_NOT_OK(r.U32(&out->first_id));
  SIMJOIN_RETURN_NOT_OK(r.U32(&out->count));
  SIMJOIN_RETURN_NOT_OK(r.U64(&out->delta_points));
  SIMJOIN_RETURN_NOT_OK(r.U64(&out->tombstones));
  return r.ExpectEnd();
}

std::vector<uint8_t> EncodeRemoveRequest(const RemoveRequest& req) {
  WireWriter w;
  w.String(req.name);
  w.U32(static_cast<uint32_t>(req.ids.size()));
  for (const PointId id : req.ids) w.U32(id);
  EncodeTraceContext(req.trace, &w);
  return w.Take();
}

Status ParseRemoveRequest(std::span<const uint8_t> payload,
                          RemoveRequest* out) {
  WireReader r(payload);
  SIMJOIN_RETURN_NOT_OK(r.String(&out->name, kMaxIndexNameLen));
  if (out->name.empty()) {
    return Status::InvalidArgument("index name must not be empty");
  }
  uint32_t count = 0;
  SIMJOIN_RETURN_NOT_OK(r.U32(&count));
  if (count == 0) {
    return Status::InvalidArgument("Remove needs at least one id");
  }
  // The id block is a multiple of 4 bytes and the trace suffix is not, so
  // the two surplus candidates cannot collide.
  size_t surplus = SIZE_MAX;
  for (const size_t s : {size_t{0}, kWireTraceExtBytes}) {
    if (r.remaining() >= s && (r.remaining() - s) % 4 == 0 &&
        (r.remaining() - s) / 4 == count) {
      surplus = s;
      break;
    }
  }
  if (surplus == SIZE_MAX) {
    return Status::InvalidArgument("Remove id count/payload mismatch");
  }
  out->ids.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    SIMJOIN_RETURN_NOT_OK(r.U32(&out->ids[i]));
  }
  out->trace = TraceContext{};
  if (surplus == kWireTraceExtBytes) {
    SIMJOIN_RETURN_NOT_OK(ParseTraceSuffix(&r, &out->trace));
  }
  return r.ExpectEnd();
}

std::vector<uint8_t> EncodeRemoveResponse(const RemoveResponse& resp) {
  WireWriter w;
  w.U32(resp.removed);
  w.U32(resp.missing);
  w.U64(resp.delta_points);
  w.U64(resp.tombstones);
  return w.Take();
}

Status ParseRemoveResponse(std::span<const uint8_t> payload,
                           RemoveResponse* out) {
  WireReader r(payload);
  SIMJOIN_RETURN_NOT_OK(r.U32(&out->removed));
  SIMJOIN_RETURN_NOT_OK(r.U32(&out->missing));
  SIMJOIN_RETURN_NOT_OK(r.U64(&out->delta_points));
  SIMJOIN_RETURN_NOT_OK(r.U64(&out->tombstones));
  return r.ExpectEnd();
}

std::vector<uint8_t> EncodeFlushRequest(const FlushRequest& req) {
  WireWriter w;
  w.String(req.name);
  EncodeTraceContext(req.trace, &w);
  return w.Take();
}

Status ParseFlushRequest(std::span<const uint8_t> payload, FlushRequest* out) {
  WireReader r(payload);
  SIMJOIN_RETURN_NOT_OK(r.String(&out->name, kMaxIndexNameLen));
  if (out->name.empty()) {
    return Status::InvalidArgument("index name must not be empty");
  }
  out->trace = TraceContext{};
  if (r.remaining() == kWireTraceExtBytes) {
    SIMJOIN_RETURN_NOT_OK(ParseTraceSuffix(&r, &out->trace));
  }
  return r.ExpectEnd();
}

std::vector<uint8_t> EncodeFlushResponse(const FlushResponse& resp) {
  WireWriter w;
  w.U8(resp.compacted ? 1 : 0);
  w.U64(resp.base_points);
  w.U64(resp.delta_points);
  w.U64(resp.tombstones);
  w.U64(resp.index_bytes);
  return w.Take();
}

Status ParseFlushResponse(std::span<const uint8_t> payload,
                          FlushResponse* out) {
  WireReader r(payload);
  uint8_t compacted = 0;
  SIMJOIN_RETURN_NOT_OK(r.U8(&compacted));
  out->compacted = compacted != 0;
  SIMJOIN_RETURN_NOT_OK(r.U64(&out->base_points));
  SIMJOIN_RETURN_NOT_OK(r.U64(&out->delta_points));
  SIMJOIN_RETURN_NOT_OK(r.U64(&out->tombstones));
  SIMJOIN_RETURN_NOT_OK(r.U64(&out->index_bytes));
  return r.ExpectEnd();
}

// --------------------------------------------------------------------------
// DropIndex / Stats / Error / RetryAfter
// --------------------------------------------------------------------------

std::vector<uint8_t> EncodeDropIndexRequest(const DropIndexRequest& req) {
  WireWriter w;
  w.String(req.name);
  return w.Take();
}

Status ParseDropIndexRequest(std::span<const uint8_t> payload,
                             DropIndexRequest* out) {
  WireReader r(payload);
  SIMJOIN_RETURN_NOT_OK(r.String(&out->name, kMaxIndexNameLen));
  if (out->name.empty()) {
    return Status::InvalidArgument("index name must not be empty");
  }
  return r.ExpectEnd();
}

std::vector<uint8_t> EncodeDropIndexResponse(const DropIndexResponse& resp) {
  WireWriter w;
  w.U8(resp.found ? 1 : 0);
  return w.Take();
}

Status ParseDropIndexResponse(std::span<const uint8_t> payload,
                              DropIndexResponse* out) {
  WireReader r(payload);
  uint8_t found = 0;
  SIMJOIN_RETURN_NOT_OK(r.U8(&found));
  out->found = found != 0;
  return r.ExpectEnd();
}

std::vector<uint8_t> EncodeStatsRequest(const StatsRequest& req) {
  WireWriter w;
  // Legacy shape is an empty payload; the flags byte appears only when a
  // flag is set, so old servers keep accepting plain stats requests.
  if (req.drain_slowlog) w.U8(0x01);
  return w.Take();
}

Status ParseStatsRequest(std::span<const uint8_t> payload, StatsRequest* out) {
  *out = StatsRequest{};
  if (payload.empty()) return Status::OK();  // legacy request
  WireReader r(payload);
  uint8_t flags = 0;
  SIMJOIN_RETURN_NOT_OK(r.U8(&flags));
  out->drain_slowlog = (flags & 0x01) != 0;
  return r.ExpectEnd();
}

std::vector<uint8_t> EncodeStatsResponse(const StatsResponse& resp) {
  WireWriter w;
  w.U64(resp.accepted_connections);
  w.U64(resp.active_connections);
  w.U64(resp.requests_admitted);
  w.U64(resp.requests_rejected);
  w.U64(resp.deadline_expired);
  w.U64(resp.decode_errors);
  w.U64(resp.pairs_streamed);
  w.U64(resp.registry_byte_budget);
  w.U64(resp.registry_bytes);
  w.U64(resp.registry_evictions);
  w.U32(static_cast<uint32_t>(resp.indexes.size()));
  for (const IndexInfo& info : resp.indexes) {
    w.String(info.name);
    w.U32(info.num_points);
    w.U32(info.dims);
    w.U64(info.bytes);
    w.U64(info.hits);
    w.F64(info.epsilon);
    w.U8(static_cast<uint8_t>(info.metric));
  }
  // Rev 2: metrics block appended after the index list (rev-1 parsers stop
  // at ExpectEnd and treat its absence as legacy; see StatsResponse).
  EncodeMetricsSnapshot(resp.metrics, &w);
  // Rev 3: slow-query drain block, only when the request asked for it
  // (absent block == legacy, same rule as the metrics block).
  if (resp.has_slowlog) {
    w.U32(static_cast<uint32_t>(resp.slowlog.size()));
    for (const obs::SlowQueryEntry& e : resp.slowlog) {
      EncodeSlowQueryEntry(e, &w);
    }
    w.U64(resp.slowlog_recorded);
    w.U64(resp.slowlog_evicted);
  }
  return w.Take();
}

void EncodeMetricsSnapshot(const obs::MetricsSnapshot& snapshot,
                           WireWriter* w) {
  w->U32(static_cast<uint32_t>(snapshot.counters.size()));
  for (const obs::CounterSample& c : snapshot.counters) {
    w->String(c.name);
    w->U64(c.value);
  }
  w->U32(static_cast<uint32_t>(snapshot.gauges.size()));
  for (const obs::GaugeSample& g : snapshot.gauges) {
    w->String(g.name);
    w->U64(static_cast<uint64_t>(g.value));  // two's-complement bit pattern
  }
  w->U32(static_cast<uint32_t>(snapshot.histograms.size()));
  for (const obs::HistogramSample& h : snapshot.histograms) {
    w->String(h.name);
    w->U32(static_cast<uint32_t>(h.boundaries.size()));
    for (const double b : h.boundaries) w->F64(b);
    w->U64(h.count);
    w->F64(h.sum);
    for (const uint64_t c : h.counts) w->U64(c);
  }
}

Status ParseMetricsSnapshot(WireReader* r, obs::MetricsSnapshot* out) {
  out->counters.clear();
  out->gauges.clear();
  out->histograms.clear();
  uint32_t count = 0;
  SIMJOIN_RETURN_NOT_OK(r->U32(&count));
  if (count > kMaxMetricsPerKind ||
      static_cast<uint64_t>(count) * 12 > r->remaining()) {
    return Status::OutOfRange("counter count exceeds payload");
  }
  out->counters.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    SIMJOIN_RETURN_NOT_OK(
        r->String(&out->counters[i].name, kMaxMetricNameLen));
    SIMJOIN_RETURN_NOT_OK(r->U64(&out->counters[i].value));
  }
  SIMJOIN_RETURN_NOT_OK(r->U32(&count));
  if (count > kMaxMetricsPerKind ||
      static_cast<uint64_t>(count) * 12 > r->remaining()) {
    return Status::OutOfRange("gauge count exceeds payload");
  }
  out->gauges.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    SIMJOIN_RETURN_NOT_OK(r->String(&out->gauges[i].name, kMaxMetricNameLen));
    uint64_t bits = 0;
    SIMJOIN_RETURN_NOT_OK(r->U64(&bits));
    out->gauges[i].value = static_cast<int64_t>(bits);
  }
  SIMJOIN_RETURN_NOT_OK(r->U32(&count));
  if (count > kMaxMetricsPerKind ||
      static_cast<uint64_t>(count) * 24 > r->remaining()) {
    return Status::OutOfRange("histogram count exceeds payload");
  }
  out->histograms.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    obs::HistogramSample& h = out->histograms[i];
    SIMJOIN_RETURN_NOT_OK(r->String(&h.name, kMaxMetricNameLen));
    uint32_t num_bounds = 0;
    SIMJOIN_RETURN_NOT_OK(r->U32(&num_bounds));
    if (num_bounds > kMaxHistogramBoundaries ||
        static_cast<uint64_t>(num_bounds) * 16 + 16 > r->remaining()) {
      return Status::OutOfRange("histogram boundary count exceeds payload");
    }
    h.boundaries.resize(num_bounds);
    for (uint32_t b = 0; b < num_bounds; ++b) {
      SIMJOIN_RETURN_NOT_OK(r->F64(&h.boundaries[b]));
    }
    SIMJOIN_RETURN_NOT_OK(r->U64(&h.count));
    SIMJOIN_RETURN_NOT_OK(r->F64(&h.sum));
    h.counts.resize(static_cast<size_t>(num_bounds) + 1);
    for (size_t b = 0; b < h.counts.size(); ++b) {
      SIMJOIN_RETURN_NOT_OK(r->U64(&h.counts[b]));
    }
  }
  return Status::OK();
}

Status ParseStatsResponse(std::span<const uint8_t> payload,
                          StatsResponse* out) {
  WireReader r(payload);
  SIMJOIN_RETURN_NOT_OK(r.U64(&out->accepted_connections));
  SIMJOIN_RETURN_NOT_OK(r.U64(&out->active_connections));
  SIMJOIN_RETURN_NOT_OK(r.U64(&out->requests_admitted));
  SIMJOIN_RETURN_NOT_OK(r.U64(&out->requests_rejected));
  SIMJOIN_RETURN_NOT_OK(r.U64(&out->deadline_expired));
  SIMJOIN_RETURN_NOT_OK(r.U64(&out->decode_errors));
  SIMJOIN_RETURN_NOT_OK(r.U64(&out->pairs_streamed));
  SIMJOIN_RETURN_NOT_OK(r.U64(&out->registry_byte_budget));
  SIMJOIN_RETURN_NOT_OK(r.U64(&out->registry_bytes));
  SIMJOIN_RETURN_NOT_OK(r.U64(&out->registry_evictions));
  uint32_t count = 0;
  SIMJOIN_RETURN_NOT_OK(r.U32(&count));
  if (static_cast<uint64_t>(count) * 4 > r.remaining()) {
    return Status::OutOfRange("index count exceeds payload");
  }
  out->indexes.clear();
  out->indexes.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    IndexInfo& info = out->indexes[i];
    SIMJOIN_RETURN_NOT_OK(r.String(&info.name, kMaxIndexNameLen));
    SIMJOIN_RETURN_NOT_OK(r.U32(&info.num_points));
    SIMJOIN_RETURN_NOT_OK(r.U32(&info.dims));
    SIMJOIN_RETURN_NOT_OK(r.U64(&info.bytes));
    SIMJOIN_RETURN_NOT_OK(r.U64(&info.hits));
    SIMJOIN_RETURN_NOT_OK(r.F64(&info.epsilon));
    uint8_t metric_tag = 0;
    SIMJOIN_RETURN_NOT_OK(r.U8(&metric_tag));
    SIMJOIN_RETURN_NOT_OK(ParseMetricTag(metric_tag, &info.metric));
  }
  // Rev 1 payloads end here; rev 2 appends a metrics snapshot.
  out->has_metrics = r.remaining() > 0;
  if (out->has_metrics) {
    SIMJOIN_RETURN_NOT_OK(ParseMetricsSnapshot(&r, &out->metrics));
  } else {
    out->metrics = obs::MetricsSnapshot{};
  }
  // Rev 2 payloads end here; rev 3 appends the slow-query drain block.
  out->has_slowlog = r.remaining() > 0;
  if (out->has_slowlog) {
    uint32_t n = 0;
    SIMJOIN_RETURN_NOT_OK(r.U32(&n));
    // Every entry is at least 8 bytes on the wire (far more in practice);
    // the cap stops hostile counts before the per-entry parses would.
    if (n > 65536 || static_cast<uint64_t>(n) * 8 > r.remaining()) {
      return Status::OutOfRange("slowlog entry count exceeds payload");
    }
    out->slowlog.clear();
    out->slowlog.resize(n);
    for (uint32_t i = 0; i < n; ++i) {
      SIMJOIN_RETURN_NOT_OK(ParseSlowQueryEntry(&r, &out->slowlog[i]));
    }
    SIMJOIN_RETURN_NOT_OK(r.U64(&out->slowlog_recorded));
    SIMJOIN_RETURN_NOT_OK(r.U64(&out->slowlog_evicted));
  } else {
    out->slowlog.clear();
    out->slowlog_recorded = 0;
    out->slowlog_evicted = 0;
  }
  return r.ExpectEnd();
}

std::vector<uint8_t> EncodeErrorResponse(const Status& status) {
  WireWriter w;
  w.U16(static_cast<uint16_t>(status.code()));
  w.String(status.message());
  return w.Take();
}

Status ParseErrorResponse(std::span<const uint8_t> payload, Status* out) {
  WireReader r(payload);
  uint16_t code_tag = 0;
  SIMJOIN_RETURN_NOT_OK(r.U16(&code_tag));
  std::string message;
  SIMJOIN_RETURN_NOT_OK(r.String(&message, 64 << 10));
  SIMJOIN_RETURN_NOT_OK(r.ExpectEnd());
  StatusCode code = StatusCode::kInternal;
  SIMJOIN_RETURN_NOT_OK(ParseStatusCodeTag(code_tag, &code));
  *out = Status(code, std::move(message));
  return Status::OK();
}

std::vector<uint8_t> EncodeRetryAfterResponse(uint32_t retry_after_ms) {
  WireWriter w;
  w.U32(retry_after_ms);
  return w.Take();
}

Status ParseRetryAfterResponse(std::span<const uint8_t> payload,
                               RetryAfterResponse* out) {
  WireReader r(payload);
  SIMJOIN_RETURN_NOT_OK(r.U32(&out->retry_after_ms));
  return r.ExpectEnd();
}

// --------------------------------------------------------------------------
// EXPLAIN ANALYZE profile / slow-query entries
// --------------------------------------------------------------------------

void EncodeRequestProfile(const obs::RequestProfile& profile, WireWriter* w) {
  w->U32(static_cast<uint32_t>(profile.nodes.size()));
  for (const obs::ProfileNode& n : profile.nodes) {
    w->U32(n.parent);
    w->String(n.name);
    w->U64(n.start_ns);
    w->U64(n.wall_ns);
    w->U64(n.cpu_ns);
  }
  w->U32(static_cast<uint32_t>(profile.counters.size()));
  for (const obs::ProfileCounter& c : profile.counters) {
    w->String(c.name);
    w->U64(c.value);
  }
  w->U64(profile.trace_id);
  w->U64(profile.total_wall_ns);
  w->String(profile.plan);
  w->U64(profile.dropped_nodes);
}

Status ParseRequestProfile(WireReader* r, obs::RequestProfile* out) {
  *out = obs::RequestProfile{};
  uint32_t count = 0;
  SIMJOIN_RETURN_NOT_OK(r->U32(&count));
  // A node is at least 32 wire bytes (parent + empty name + three u64s).
  if (count > obs::kMaxProfileNodes ||
      static_cast<uint64_t>(count) * 32 > r->remaining()) {
    return Status::OutOfRange("profile node count exceeds payload");
  }
  out->nodes.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    obs::ProfileNode& n = out->nodes[i];
    SIMJOIN_RETURN_NOT_OK(r->U32(&n.parent));
    SIMJOIN_RETURN_NOT_OK(r->String(&n.name, kMaxProfileNameLen));
    SIMJOIN_RETURN_NOT_OK(r->U64(&n.start_ns));
    SIMJOIN_RETURN_NOT_OK(r->U64(&n.wall_ns));
    SIMJOIN_RETURN_NOT_OK(r->U64(&n.cpu_ns));
  }
  SIMJOIN_RETURN_NOT_OK(r->U32(&count));
  if (count > obs::kMaxProfileCounters ||
      static_cast<uint64_t>(count) * 12 > r->remaining()) {
    return Status::OutOfRange("profile counter count exceeds payload");
  }
  out->counters.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    SIMJOIN_RETURN_NOT_OK(
        r->String(&out->counters[i].name, kMaxProfileNameLen));
    SIMJOIN_RETURN_NOT_OK(r->U64(&out->counters[i].value));
  }
  SIMJOIN_RETURN_NOT_OK(r->U64(&out->trace_id));
  SIMJOIN_RETURN_NOT_OK(r->U64(&out->total_wall_ns));
  SIMJOIN_RETURN_NOT_OK(r->String(&out->plan, kMaxProfilePlanLen));
  SIMJOIN_RETURN_NOT_OK(r->U64(&out->dropped_nodes));
  return Status::OK();
}

void EncodeSlowQueryEntry(const obs::SlowQueryEntry& entry, WireWriter* w) {
  w->U64(entry.unix_micros);
  w->U64(entry.trace_id);
  w->U64(entry.request_id);
  w->U8(entry.op);
  w->String(entry.index);
  w->U64(entry.wall_us);
  w->U32(entry.status_code);
  w->String(entry.status_message);
  EncodeRequestProfile(entry.profile, w);
}

Status ParseSlowQueryEntry(WireReader* r, obs::SlowQueryEntry* out) {
  SIMJOIN_RETURN_NOT_OK(r->U64(&out->unix_micros));
  SIMJOIN_RETURN_NOT_OK(r->U64(&out->trace_id));
  SIMJOIN_RETURN_NOT_OK(r->U64(&out->request_id));
  SIMJOIN_RETURN_NOT_OK(r->U8(&out->op));
  SIMJOIN_RETURN_NOT_OK(r->String(&out->index, kMaxIndexNameLen));
  SIMJOIN_RETURN_NOT_OK(r->U64(&out->wall_us));
  SIMJOIN_RETURN_NOT_OK(r->U32(&out->status_code));
  SIMJOIN_RETURN_NOT_OK(r->String(&out->status_message, 64 << 10));
  return ParseRequestProfile(r, &out->profile);
}

}  // namespace simjoin
