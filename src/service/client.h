// Synchronous client for the similarity-join query service.
//
// One Client owns one TCP connection and speaks the frame protocol of
// service/protocol.h: each call sends a request frame and blocks until the
// terminal response arrives (SimilarityJoin additionally streams every
// kJoinChunk into a caller-supplied PairSink first).  Backpressure is
// handled transparently — a kRetryAfter rejection sleeps for the server's
// hint and resends, up to ClientConfig::max_retries times, with the retry
// count observable via retry_count().  kError responses come back as the
// Status the server put on the wire.

#ifndef SIMJOIN_SERVICE_CLIENT_H_
#define SIMJOIN_SERVICE_CLIENT_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/net.h"
#include "common/pair_sink.h"
#include "common/status.h"
#include "service/protocol.h"

namespace simjoin {

/// Connection + retry policy for one Client.
struct ClientConfig {
  std::string host = "127.0.0.1";
  uint16_t port = 0;

  /// Deadline stamped on every request frame (0 = none).  A request that
  /// expires server-side returns DEADLINE_EXCEEDED.
  uint32_t deadline_ms = 0;

  /// How many kRetryAfter rejections to absorb per call before giving up
  /// and surfacing Unavailable to the caller.
  size_t max_retries = 8;

  /// Ceiling on one response frame's payload.
  uint32_t max_frame_payload = kDefaultMaxFramePayload;
};

/// Blocking, single-connection service client.  Not thread-safe: wrap in a
/// mutex or give each thread its own Client (connections are cheap).
///
/// Every request that supports the trace-context extension leaves the
/// client with one attached: the caller's (request.trace) when set, a
/// freshly generated trace id otherwise — so server-side spans, slow-query
/// entries, and EXPLAIN ANALYZE profiles always correlate back to a
/// client-visible id.  Set request.trace.flags |= kTraceFlagProfile to get
/// the phase tree back in the response (docs/observability.md).
class Client {
 public:
  static Result<Client> Connect(const ClientConfig& config);

  Client(Client&&) noexcept = default;
  Client& operator=(Client&&) noexcept = default;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Uploads points and builds a named index on the server.
  Result<BuildIndexResponse> BuildIndex(const BuildIndexRequest& request);

  /// Batched eps-range queries; results[i] answers queries row i.
  Result<RangeQueryResponse> RangeQuery(const RangeQueryRequest& request);

  /// Single-query convenience wrapper over RangeQuery.
  Result<std::vector<PointId>> RangeQueryOne(const std::string& name,
                                             std::span<const float> query,
                                             double epsilon = 0.0);

  /// Runs a join on the server, feeding every streamed pair into *sink in
  /// arrival order (which is the sequential in-process pair order).
  Result<JoinDone> SimilarityJoin(const SimilarityJoinRequest& request,
                                  PairSink* sink);

  /// Appends rows to an updatable index's delta tier; the response carries
  /// the contiguous id range the server assigned.
  Result<InsertResponse> Insert(const InsertRequest& request);

  /// Tombstones ids in an updatable index.  Unknown or already-removed ids
  /// are counted as missing, not errors.
  Result<RemoveResponse> Remove(const RemoveRequest& request);

  /// Forces a synchronous compaction of an updatable index's delta tier.
  Result<FlushResponse> Flush(const std::string& name);

  Result<DropIndexResponse> DropIndex(const std::string& name);
  /// With drain_slowlog the response also carries (and removes) the
  /// server's slow-query ring entries (`simjoin_client slowlog`).
  Result<StatsResponse> GetStats(bool drain_slowlog = false);
  Status Ping();
  /// Asks the server to stop (it still flushes every pending response).
  Status Shutdown();

  /// kRetryAfter rejections absorbed over this client's lifetime.
  uint64_t retry_count() const { return retries_; }

 private:
  explicit Client(ClientConfig config) : config_(std::move(config)) {}

  /// Sends one request and returns the first response frame for its id,
  /// transparently retrying kRetryAfter and converting kError to Status.
  Result<Frame> Roundtrip(FrameType type, std::span<const uint8_t> payload);

  Status SendRequest(FrameType type, uint64_t request_id,
                     std::span<const uint8_t> payload);
  Result<Frame> ReadFrame(uint64_t expect_request_id);

  ClientConfig config_;
  TcpSocket sock_;
  uint64_t next_request_id_ = 1;
  uint64_t retries_ = 0;
};

}  // namespace simjoin

#endif  // SIMJOIN_SERVICE_CLIENT_H_
