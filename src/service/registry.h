// Named, immutable index snapshots behind shared_ptr refcounts, with
// byte-budgeted LRU eviction — the state the query service serves from.
//
// The concurrency contract is copy-out, not lock-across: Get() returns a
// shared_ptr<const IndexSnapshot> under a brief registry lock, and queries
// then run against that snapshot with no lock held at all.  Builds insert
// *new* snapshots (Put replaces the name atomically), and eviction merely
// drops the registry's own reference — a snapshot stays fully queryable for
// as long as any in-flight request still holds it.  Concurrent const access
// to any IndexBackend is safe (all are immutable after construction), so
// readers never block builders and builders never invalidate readers.
//
// Beyond its primary structure, a snapshot lazily materialises *auxiliary*
// backends on planner demand: the exact alternatives (ekdb-flat, grid,
// brute-SIMD) are built at most once each and kept for the snapshot's
// lifetime, while recall-controlled LSH builds are cached per
// (epsilon, tables, hashes) with a small FIFO cap.  Aux backends are
// handed out as shared_ptr, so an evicted cache entry stays alive for any
// request still querying it.

#ifndef SIMJOIN_SERVICE_REGISTRY_H_
#define SIMJOIN_SERVICE_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/dataset.h"
#include "common/status.h"
#include "core/ekdb_flat.h"
#include "core/epsilon_grid.h"
#include "core/index_backend.h"
#include "core/planner.h"
#include "core/segment_backend.h"

namespace simjoin {

class UpdatableIndex;

/// One planner decision for a (epsilon, recall) pair on one snapshot.
struct RangePlan {
  BackendKind kind = BackendKind::kEkdbFlat;
  /// Row-filter-equivalent cost per query the plan expects (probed for the
  /// chosen exact backend, model-estimated for LSH).
  double est_cost = 0.0;
  /// Model lower bound on per-query recall (1.0 for exact routes).
  double expected_recall = 1.0;
  /// Sampled expectation of true epsilon-neighbours per query.
  double est_avg_neighbors = 0.0;
  /// Engaged only when kind == kLsh.
  size_t lsh_tables = 0;
  size_t lsh_hashes = 0;
  std::string rationale;
};

/// A resolved plan plus the backend that executes it.
struct PlannedRange {
  std::shared_ptr<const IndexBackend> backend;
  RangePlan plan;
  bool cache_hit = false;      ///< decision came from the plan cache
  bool built_backend = false;  ///< this call materialised a new aux backend
};

/// One immutable, self-contained index: the dataset (owned, at a stable
/// heap address) plus the primary index structure built over it — the flat
/// eps-k-d-B tree by default, or the epsilon grid when the build request
/// selects that backend.  Construct via Build; after that the snapshot is
/// logically const and safe to share across threads (lazy aux-backend and
/// plan caches are internally synchronised).
class IndexSnapshot {
 public:
  /// Builds the selected primary backend over the dataset (for the tree
  /// backend: pointer tree — parallel when num_threads != 1 — then
  /// flattened) and wraps it with the dataset into an immutable snapshot.
  /// Fails if the config is invalid for the data, coordinates leave
  /// [0, 1], or the kind is not buildable as a primary (LSH, brute-SIMD).
  static Result<std::shared_ptr<const IndexSnapshot>> Build(
      std::string name, Dataset dataset, const EkdbConfig& config,
      size_t num_threads = 1, BackendKind backend = BackendKind::kEkdbFlat);

  /// Opens a segment file (core/segment.h) as a mapped snapshot: the
  /// primary is an MmapEkdbBackend whose structure and dataset are views
  /// into the mapping.  Nothing is rebuilt and no data pages are read
  /// eagerly, so this is the fault-in path — memory_bytes() reports only
  /// the heap bookkeeping, not the mapped file.
  static Result<std::shared_ptr<const IndexSnapshot>> OpenMapped(
      std::string name, const std::string& segment_path,
      const MmapBackendOptions& options = {});

  const std::string& name() const { return name_; }
  const Dataset& dataset() const { return *data_; }
  BackendKind backend() const { return primary_->kind(); }
  const IndexBackend& primary() const { return *primary_; }
  /// The primary as the updatable index when backend() == kUpdatable
  /// (the Insert/Remove/Flush RPCs mutate through this); nullptr for every
  /// other backend.
  const UpdatableIndex* updatable() const;
  /// Valid only when the primary is tree-backed (backend() == kEkdbFlat).
  const FlatEkdbTree& tree() const { return *primary_->flat_tree(); }
  const EkdbConfig& config() const { return primary_->config(); }

  /// Range-query entry points that dispatch to the primary backend; the
  /// contract (validation, id order, stats tally, fused bit-identity) is
  /// identical across backends.  These serve the legacy (plannerless)
  /// request path byte-for-byte unchanged.
  Status ValidateQueryEpsilon(double eps_query) const;
  Status RangeQuery(const float* query, double eps_query,
                    std::vector<PointId>* out,
                    JoinStats* stats = nullptr) const;
  Status RangeQueryBatch(const RangeQuerySpec* specs, size_t count,
                         std::vector<std::vector<PointId>>* results,
                         std::vector<JoinStats>* stats = nullptr) const;

  /// Returns (building and caching on first use) the exact auxiliary
  /// backend of the given kind; the primary is returned directly when the
  /// kind matches.  Errors for kLsh (use PlanRange, which sizes LSH from
  /// the recall target) and for kinds the dataset cannot support (e.g.
  /// grid beyond its binning cap).  *built (optional) is set when this
  /// call materialised the structure.
  Result<std::shared_ptr<const IndexBackend>> Backend(
      BackendKind kind, bool* built = nullptr) const;

  /// The backend similarity joins run on: the primary when it implements
  /// SelfJoin natively, else a lazily built ekdb-flat auxiliary (this is
  /// how grid-primary indexes serve joins instead of erroring).
  Result<std::shared_ptr<const IndexBackend>> JoinBackend(
      bool* built = nullptr) const;

  /// Cost-based routing for one (epsilon, recall) request.  recall must be
  /// in (0, 1]; forced_backend is a BackendKind wire byte or
  /// kWireBackendAuto.  Auto decisions are cached per (epsilon, recall)
  /// bits, so repeated requests skip the probe/selectivity sampling.
  /// Deterministic: all cost signals are work counters, never wall time.
  Result<PlannedRange> PlanRange(double eps_query, double recall,
                                 uint8_t forced_backend,
                                 const RangePlannerOptions& options) const;

  /// Heap footprint charged against the registry budget: dataset rows plus
  /// the primary structure's arrays.  Aux backends are planner working
  /// state and tracked separately (aux_bytes) — charging them against the
  /// LRU budget would make eviction depend on query traffic.  For an
  /// updatable primary this is *dynamic* (the delta memtable and
  /// tombstones grow with updates and fold away on compaction); the
  /// registry re-reads it via RefreshCharge after every update RPC.
  uint64_t memory_bytes() const {
    if (backend() == BackendKind::kUpdatable) {
      return data_bytes_ + primary_->index_bytes();
    }
    return memory_bytes_;
  }
  /// Current heap footprint of lazily built aux backends (telemetry).
  uint64_t aux_bytes() const;
  double build_seconds() const { return build_seconds_; }

  /// True when the primary serves out of a memory-mapped segment file.
  bool mapped() const { return primary_->mapped(); }
  /// The backing segment file of a mapped snapshot; empty otherwise.
  const std::string& segment_path() const { return segment_path_; }

  /// Writes the primary flat tree (and its dataset) as a segment file —
  /// how the registry spills a heap-built snapshot to its cold tier.
  /// InvalidArgument when the primary is not tree-backed.
  Status WriteSegmentFile(const std::string& path) const;

  /// The plan cache as a value, and its re-import on a replacement
  /// snapshot.  Both are keyed only by (epsilon, recall) bits, so a cache
  /// must never migrate across *different* index builds — the registry
  /// guards that with its per-name version counter.  const because the
  /// cache is planner working state on a logically immutable snapshot.
  using PlanCache = std::map<std::pair<uint64_t, uint64_t>, RangePlan>;
  PlanCache ExportPlanCache() const;
  void ImportPlanCache(const PlanCache& cache) const;

  IndexSnapshot(const IndexSnapshot&) = delete;
  IndexSnapshot& operator=(const IndexSnapshot&) = delete;

 private:
  IndexSnapshot() = default;

  /// LSH builds cached beyond this count are evicted FIFO (each is
  /// O(n * L) ids plus keys; in-flight queries keep evictees alive via
  /// their shared_ptr).
  static constexpr size_t kMaxCachedLshBackends = 8;

  struct LshCacheEntry {
    uint64_t eps_bits = 0;
    size_t tables = 0;
    size_t hashes = 0;
    std::shared_ptr<const IndexBackend> backend;
  };

  /// Returns (building and FIFO-caching) the LSH backend for the given
  /// query epsilon and table/hash counts.  Requires plan_mu_ NOT held.
  Result<std::shared_ptr<const IndexBackend>> LshBackendFor(
      double eps_query, size_t tables, size_t hashes, uint64_t seed,
      bool* built) const;

  std::string name_;
  // shared_ptr keeps the Dataset at a stable address (the index structures
  // point into it) and lets an updatable primary co-own it: background
  // compaction reads the build rows after this snapshot may already be
  // dead (DropIndex, LRU eviction).  Null for mapped snapshots, whose
  // dataset is a borrowed view owned by the primary backend's mapping.
  std::shared_ptr<const Dataset> dataset_;
  // The snapshot's dataset regardless of ownership: dataset_.get() for
  // built snapshots, &primary_->dataset() for mapped ones.
  const Dataset* data_ = nullptr;
  std::shared_ptr<const IndexBackend> primary_;
  std::string segment_path_;
  uint64_t memory_bytes_ = 0;
  uint64_t data_bytes_ = 0;  ///< initial dataset rows (updatable accounting)
  double build_seconds_ = 0.0;

  // Planner state, lazily populated under plan_mu_.  Backends are handed
  // out as shared_ptr copies, so the lock is never held across a query.
  mutable std::mutex plan_mu_;
  mutable std::shared_ptr<const IndexBackend> aux_[kNumBackendKinds];
  mutable std::deque<LshCacheEntry> lsh_cache_;
  mutable std::map<std::pair<uint64_t, uint64_t>, RangePlan> plan_cache_;
};

/// Listing row for one registry entry (hot or cold).
struct RegistryEntryInfo {
  std::string name;
  uint64_t bytes = 0;
  uint64_t hits = 0;
  size_t num_points = 0;
  size_t dims = 0;
  double epsilon = 0.0;
  Metric metric = Metric::kL2;
  /// Monotone per-registry build generation; a faulted-in snapshot keeps
  /// the version of the build that wrote its segment file.
  uint64_t version = 0;
  /// Served out of a memory-mapped segment file (bytes counts heap
  /// bookkeeping only).
  bool mapped = false;
  /// Evicted to a segment file; the next Get faults it back in.
  bool cold = false;
};

/// Thread-safe name -> snapshot map with LRU eviction against a byte
/// budget.  All operations take one short mutex; nothing blocks while an
/// index is being built or queried.
///
/// With a spill directory configured, eviction demotes instead of
/// destroys: each admitted tree-backed snapshot is written through to a
/// versioned segment file (off-lock), EvictLocked moves the entry to a
/// cold map holding only {path, version, exported plan cache}, and a Get
/// on a cold name re-opens the segment memory-mapped (IndexSnapshot::
/// OpenMapped) — fault-in instead of rebuild — and re-imports the plan
/// cache, which stays valid because the version proves it is the same
/// build.  Mapped snapshots charge only their heap bookkeeping against
/// the byte budget (their data lives in the OS page cache), which is what
/// lets the registry serve indexes far larger than the budget.
class IndexRegistry {
 public:
  /// spill_dir empty disables the cold tier (eviction destroys, as
  /// before).  When set, it must be an existing writable directory;
  /// mmap_options configures snapshots faulted back in from it.
  explicit IndexRegistry(uint64_t byte_budget, std::string spill_dir = "",
                         MmapBackendOptions mmap_options = {})
      : byte_budget_(byte_budget),
        spill_dir_(std::move(spill_dir)),
        mmap_options_(std::move(mmap_options)) {}

  /// Inserts (or atomically replaces) the snapshot under its name, then
  /// evicts least-recently-used *other* entries until the budget holds.
  /// A snapshot that alone exceeds the whole budget is rejected with
  /// InvalidArgument.  With spilling enabled, a tree-backed snapshot is
  /// first written through to a versioned segment file so later eviction
  /// is a demotion; a failed spill write only disables the cold tier for
  /// this entry.  *evicted (optional) receives how many entries were
  /// dropped to admit it.
  Status Put(std::shared_ptr<const IndexSnapshot> snapshot,
             size_t* evicted = nullptr);

  /// Looks up a snapshot and marks it most-recently-used.  A cold entry is
  /// faulted back in from its segment file (and re-admitted, possibly
  /// demoting others).  The returned reference stays valid after any later
  /// eviction or replacement.
  Result<std::shared_ptr<const IndexSnapshot>> Get(const std::string& name);

  /// Removes one entry, hot or cold (unlinking any registry-written
  /// segment file); false when the name is unknown.
  bool Erase(const std::string& name);

  /// Re-reads a hot entry's current memory_bytes() and adjusts the budget
  /// accounting by the difference — the hook the update RPCs call after
  /// mutating an updatable index, whose delta/tombstone footprint moves
  /// under the entry.  Growth past the budget evicts LRU *other* entries
  /// (the refreshed index itself is never evicted by its own growth).
  /// No-op for unknown or cold names.
  void RefreshCharge(const std::string& name);

  /// Hot entries in most-recently-used-first order, then cold entries.
  std::vector<RegistryEntryInfo> List() const;

  uint64_t byte_budget() const { return byte_budget_; }
  bool spill_enabled() const { return !spill_dir_.empty(); }
  uint64_t bytes_in_use() const;
  uint64_t evictions() const;
  size_t size() const;

  // -- cold-tier telemetry (mirrored in registry.segment.* metrics) --------
  size_t cold_size() const;
  uint64_t segment_writes() const;
  uint64_t segment_write_errors() const;
  uint64_t cold_evictions() const;
  uint64_t faults_in() const;

 private:
  struct Entry {
    std::shared_ptr<const IndexSnapshot> snapshot;
    uint64_t hits = 0;
    uint64_t version = 0;
    /// Bytes this entry currently holds against bytes_in_use_.  Captured at
    /// admission and moved by RefreshCharge; eviction returns exactly this
    /// amount, so accounting stays balanced even when memory_bytes() is
    /// dynamic (updatable indexes).
    uint64_t charged = 0;
    /// Segment file backing this entry ("" = not spillable: demotion
    /// disabled, eviction destroys).
    std::string segment_path;
    /// The registry wrote segment_path and owns its lifetime (unlinked on
    /// erase/replace).  False for externally built segments (on-disk
    /// builds), which are durable artifacts the registry only borrows.
    bool owns_file = false;
  };

  /// An evicted-but-recoverable index: everything needed to fault it back
  /// in without touching the data, plus the planner state worth keeping.
  struct ColdEntry {
    std::string segment_path;
    uint64_t version = 0;
    bool owns_file = false;
    uint64_t hits = 0;
    IndexSnapshot::PlanCache plan_cache;
    // Shape for listings (a cold index should still show up in List()).
    size_t num_points = 0;
    size_t dims = 0;
    double epsilon = 0.0;
    Metric metric = Metric::kL2;
  };

  /// Drops LRU entries (back of lru_) until bytes_in_use_ <= byte_budget_,
  /// never evicting `keep`.  Entries with a segment file demote to cold_;
  /// the rest are destroyed.  Requires mu_ held.
  void EvictLocked(const IndexSnapshot* keep, size_t* evicted);

  /// Removes a hot entry from lru_/by_name_ and returns its byte charge to
  /// the budget.  Requires mu_ held.
  void RemoveHotLocked(std::unordered_map<
                       std::string, std::list<Entry>::iterator>::iterator it);

  const uint64_t byte_budget_;
  const std::string spill_dir_;
  const MmapBackendOptions mmap_options_;
  std::atomic<uint64_t> next_version_{0};
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> by_name_;
  std::unordered_map<std::string, ColdEntry> cold_;
  uint64_t bytes_in_use_ = 0;
  uint64_t evictions_ = 0;
  uint64_t segment_writes_ = 0;
  uint64_t segment_write_errors_ = 0;
  uint64_t cold_evictions_ = 0;
  uint64_t faults_in_ = 0;
};

}  // namespace simjoin

#endif  // SIMJOIN_SERVICE_REGISTRY_H_
