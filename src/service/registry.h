// Named, immutable index snapshots behind shared_ptr refcounts, with
// byte-budgeted LRU eviction — the state the query service serves from.
//
// The concurrency contract is copy-out, not lock-across: Get() returns a
// shared_ptr<const IndexSnapshot> under a brief registry lock, and queries
// then run against that snapshot with no lock held at all.  Builds insert
// *new* snapshots (Put replaces the name atomically), and eviction merely
// drops the registry's own reference — a snapshot stays fully queryable for
// as long as any in-flight request still holds it.  Concurrent const access
// to any IndexBackend is safe (all are immutable after construction), so
// readers never block builders and builders never invalidate readers.
//
// Beyond its primary structure, a snapshot lazily materialises *auxiliary*
// backends on planner demand: the exact alternatives (ekdb-flat, grid,
// brute-SIMD) are built at most once each and kept for the snapshot's
// lifetime, while recall-controlled LSH builds are cached per
// (epsilon, tables, hashes) with a small FIFO cap.  Aux backends are
// handed out as shared_ptr, so an evicted cache entry stays alive for any
// request still querying it.

#ifndef SIMJOIN_SERVICE_REGISTRY_H_
#define SIMJOIN_SERVICE_REGISTRY_H_

#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/dataset.h"
#include "common/status.h"
#include "core/ekdb_flat.h"
#include "core/epsilon_grid.h"
#include "core/index_backend.h"
#include "core/planner.h"

namespace simjoin {

/// One planner decision for a (epsilon, recall) pair on one snapshot.
struct RangePlan {
  BackendKind kind = BackendKind::kEkdbFlat;
  /// Row-filter-equivalent cost per query the plan expects (probed for the
  /// chosen exact backend, model-estimated for LSH).
  double est_cost = 0.0;
  /// Model lower bound on per-query recall (1.0 for exact routes).
  double expected_recall = 1.0;
  /// Sampled expectation of true epsilon-neighbours per query.
  double est_avg_neighbors = 0.0;
  /// Engaged only when kind == kLsh.
  size_t lsh_tables = 0;
  size_t lsh_hashes = 0;
  std::string rationale;
};

/// A resolved plan plus the backend that executes it.
struct PlannedRange {
  std::shared_ptr<const IndexBackend> backend;
  RangePlan plan;
  bool cache_hit = false;      ///< decision came from the plan cache
  bool built_backend = false;  ///< this call materialised a new aux backend
};

/// One immutable, self-contained index: the dataset (owned, at a stable
/// heap address) plus the primary index structure built over it — the flat
/// eps-k-d-B tree by default, or the epsilon grid when the build request
/// selects that backend.  Construct via Build; after that the snapshot is
/// logically const and safe to share across threads (lazy aux-backend and
/// plan caches are internally synchronised).
class IndexSnapshot {
 public:
  /// Builds the selected primary backend over the dataset (for the tree
  /// backend: pointer tree — parallel when num_threads != 1 — then
  /// flattened) and wraps it with the dataset into an immutable snapshot.
  /// Fails if the config is invalid for the data, coordinates leave
  /// [0, 1], or the kind is not buildable as a primary (LSH, brute-SIMD).
  static Result<std::shared_ptr<const IndexSnapshot>> Build(
      std::string name, Dataset dataset, const EkdbConfig& config,
      size_t num_threads = 1, BackendKind backend = BackendKind::kEkdbFlat);

  const std::string& name() const { return name_; }
  const Dataset& dataset() const { return *dataset_; }
  BackendKind backend() const { return primary_->kind(); }
  const IndexBackend& primary() const { return *primary_; }
  /// Valid only when the primary is tree-backed (backend() == kEkdbFlat).
  const FlatEkdbTree& tree() const { return *primary_->flat_tree(); }
  const EkdbConfig& config() const { return primary_->config(); }

  /// Range-query entry points that dispatch to the primary backend; the
  /// contract (validation, id order, stats tally, fused bit-identity) is
  /// identical across backends.  These serve the legacy (plannerless)
  /// request path byte-for-byte unchanged.
  Status ValidateQueryEpsilon(double eps_query) const;
  Status RangeQuery(const float* query, double eps_query,
                    std::vector<PointId>* out,
                    JoinStats* stats = nullptr) const;
  Status RangeQueryBatch(const RangeQuerySpec* specs, size_t count,
                         std::vector<std::vector<PointId>>* results,
                         std::vector<JoinStats>* stats = nullptr) const;

  /// Returns (building and caching on first use) the exact auxiliary
  /// backend of the given kind; the primary is returned directly when the
  /// kind matches.  Errors for kLsh (use PlanRange, which sizes LSH from
  /// the recall target) and for kinds the dataset cannot support (e.g.
  /// grid beyond its binning cap).  *built (optional) is set when this
  /// call materialised the structure.
  Result<std::shared_ptr<const IndexBackend>> Backend(
      BackendKind kind, bool* built = nullptr) const;

  /// The backend similarity joins run on: the primary when it implements
  /// SelfJoin natively, else a lazily built ekdb-flat auxiliary (this is
  /// how grid-primary indexes serve joins instead of erroring).
  Result<std::shared_ptr<const IndexBackend>> JoinBackend(
      bool* built = nullptr) const;

  /// Cost-based routing for one (epsilon, recall) request.  recall must be
  /// in (0, 1]; forced_backend is a BackendKind wire byte or
  /// kWireBackendAuto.  Auto decisions are cached per (epsilon, recall)
  /// bits, so repeated requests skip the probe/selectivity sampling.
  /// Deterministic: all cost signals are work counters, never wall time.
  Result<PlannedRange> PlanRange(double eps_query, double recall,
                                 uint8_t forced_backend,
                                 const RangePlannerOptions& options) const;

  /// Heap footprint charged against the registry budget: dataset rows plus
  /// the primary structure's arrays.  Aux backends are planner working
  /// state and tracked separately (aux_bytes) — charging them against the
  /// LRU budget would make eviction depend on query traffic.
  uint64_t memory_bytes() const { return memory_bytes_; }
  /// Current heap footprint of lazily built aux backends (telemetry).
  uint64_t aux_bytes() const;
  double build_seconds() const { return build_seconds_; }

  IndexSnapshot(const IndexSnapshot&) = delete;
  IndexSnapshot& operator=(const IndexSnapshot&) = delete;

 private:
  IndexSnapshot() = default;

  /// LSH builds cached beyond this count are evicted FIFO (each is
  /// O(n * L) ids plus keys; in-flight queries keep evictees alive via
  /// their shared_ptr).
  static constexpr size_t kMaxCachedLshBackends = 8;

  struct LshCacheEntry {
    uint64_t eps_bits = 0;
    size_t tables = 0;
    size_t hashes = 0;
    std::shared_ptr<const IndexBackend> backend;
  };

  /// Returns (building and FIFO-caching) the LSH backend for the given
  /// query epsilon and table/hash counts.  Requires plan_mu_ NOT held.
  Result<std::shared_ptr<const IndexBackend>> LshBackendFor(
      double eps_query, size_t tables, size_t hashes, uint64_t seed,
      bool* built) const;

  std::string name_;
  // unique_ptr keeps the Dataset at a stable address: the index structures
  // point into it.
  std::unique_ptr<Dataset> dataset_;
  std::shared_ptr<const IndexBackend> primary_;
  uint64_t memory_bytes_ = 0;
  double build_seconds_ = 0.0;

  // Planner state, lazily populated under plan_mu_.  Backends are handed
  // out as shared_ptr copies, so the lock is never held across a query.
  mutable std::mutex plan_mu_;
  mutable std::shared_ptr<const IndexBackend> aux_[kNumBackendKinds];
  mutable std::deque<LshCacheEntry> lsh_cache_;
  mutable std::map<std::pair<uint64_t, uint64_t>, RangePlan> plan_cache_;
};

/// Listing row for one registry entry.
struct RegistryEntryInfo {
  std::string name;
  uint64_t bytes = 0;
  uint64_t hits = 0;
  size_t num_points = 0;
  size_t dims = 0;
  double epsilon = 0.0;
  Metric metric = Metric::kL2;
};

/// Thread-safe name -> snapshot map with LRU eviction against a byte
/// budget.  All operations take one short mutex; nothing blocks while an
/// index is being built or queried.
class IndexRegistry {
 public:
  explicit IndexRegistry(uint64_t byte_budget) : byte_budget_(byte_budget) {}

  /// Inserts (or atomically replaces) the snapshot under its name, then
  /// evicts least-recently-used *other* entries until the budget holds.
  /// A snapshot that alone exceeds the whole budget is rejected with
  /// InvalidArgument.  *evicted (optional) receives how many entries were
  /// dropped to admit it.
  Status Put(std::shared_ptr<const IndexSnapshot> snapshot,
             size_t* evicted = nullptr);

  /// Looks up a snapshot and marks it most-recently-used.  The returned
  /// reference stays valid after any later eviction or replacement.
  Result<std::shared_ptr<const IndexSnapshot>> Get(const std::string& name);

  /// Removes one entry; false when the name is unknown.
  bool Erase(const std::string& name);

  /// Entries in most-recently-used-first order.
  std::vector<RegistryEntryInfo> List() const;

  uint64_t byte_budget() const { return byte_budget_; }
  uint64_t bytes_in_use() const;
  uint64_t evictions() const;
  size_t size() const;

 private:
  struct Entry {
    std::shared_ptr<const IndexSnapshot> snapshot;
    uint64_t hits = 0;
  };

  /// Drops LRU entries (back of lru_) until bytes_in_use_ <= byte_budget_,
  /// never evicting `keep`.  Requires mu_ held.
  void EvictLocked(const IndexSnapshot* keep, size_t* evicted);

  const uint64_t byte_budget_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> by_name_;
  uint64_t bytes_in_use_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace simjoin

#endif  // SIMJOIN_SERVICE_REGISTRY_H_
