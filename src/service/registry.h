// Named, immutable index snapshots behind shared_ptr refcounts, with
// byte-budgeted LRU eviction — the state the query service serves from.
//
// The concurrency contract is copy-out, not lock-across: Get() returns a
// shared_ptr<const IndexSnapshot> under a brief registry lock, and queries
// then run against that snapshot with no lock held at all.  Builds insert
// *new* snapshots (Put replaces the name atomically), and eviction merely
// drops the registry's own reference — a snapshot stays fully queryable for
// as long as any in-flight request still holds it.  Concurrent const access
// to a FlatEkdbTree is safe (it is immutable after construction), so readers
// never block builders and builders never invalidate readers.

#ifndef SIMJOIN_SERVICE_REGISTRY_H_
#define SIMJOIN_SERVICE_REGISTRY_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/dataset.h"
#include "common/status.h"
#include "core/ekdb_flat.h"
#include "core/epsilon_grid.h"

namespace simjoin {

/// One immutable, self-contained index: the dataset (owned, at a stable
/// heap address) plus the index structure built over it — the flat
/// eps-k-d-B tree by default, or the epsilon grid when the build request
/// selects that backend.  Construct via Build; after that every member is
/// const and safe to share across threads.
class IndexSnapshot {
 public:
  /// Builds the selected backend over the dataset (for the tree backend:
  /// pointer tree — parallel when num_threads != 1 — then flattened) and
  /// wraps it with the dataset into an immutable snapshot.  Fails if the
  /// config is invalid for the data or coordinates leave [0, 1].
  static Result<std::shared_ptr<const IndexSnapshot>> Build(
      std::string name, Dataset dataset, const EkdbConfig& config,
      size_t num_threads = 1,
      IndexBackend backend = IndexBackend::kEkdbFlat);

  const std::string& name() const { return name_; }
  const Dataset& dataset() const { return *dataset_; }
  IndexBackend backend() const { return backend_; }
  /// Valid only when backend() == kEkdbFlat (joins require the tree).
  const FlatEkdbTree& tree() const { return *tree_; }
  /// Valid only when backend() == kEpsilonGrid.
  const EpsilonGrid& grid() const { return *grid_; }
  const EkdbConfig& config() const {
    return tree_.has_value() ? tree_->config() : grid_->config();
  }

  /// Range-query entry points that dispatch to whichever backend this
  /// snapshot holds; contract (validation, id order, stats tally, fused
  /// bit-identity) is identical across backends.
  Status ValidateQueryEpsilon(double eps_query) const;
  Status RangeQuery(const float* query, double eps_query,
                    std::vector<PointId>* out,
                    JoinStats* stats = nullptr) const;
  Status RangeQueryBatch(const RangeQuerySpec* specs, size_t count,
                         std::vector<std::vector<PointId>>* results,
                         std::vector<JoinStats>* stats = nullptr) const;

  /// Heap footprint charged against the registry budget: dataset rows plus
  /// the flat tree's node array, bbox planes, arena, and id remap.
  uint64_t memory_bytes() const { return memory_bytes_; }
  double build_seconds() const { return build_seconds_; }

  IndexSnapshot(const IndexSnapshot&) = delete;
  IndexSnapshot& operator=(const IndexSnapshot&) = delete;

 private:
  IndexSnapshot() = default;

  std::string name_;
  // unique_ptr keeps the Dataset at a stable address: the index structures
  // point into it.
  std::unique_ptr<Dataset> dataset_;
  IndexBackend backend_ = IndexBackend::kEkdbFlat;
  std::optional<FlatEkdbTree> tree_;  // engaged iff backend_ == kEkdbFlat
  std::optional<EpsilonGrid> grid_;   // engaged iff backend_ == kEpsilonGrid
  uint64_t memory_bytes_ = 0;
  double build_seconds_ = 0.0;
};

/// Listing row for one registry entry.
struct RegistryEntryInfo {
  std::string name;
  uint64_t bytes = 0;
  uint64_t hits = 0;
  size_t num_points = 0;
  size_t dims = 0;
  double epsilon = 0.0;
  Metric metric = Metric::kL2;
};

/// Thread-safe name -> snapshot map with LRU eviction against a byte
/// budget.  All operations take one short mutex; nothing blocks while an
/// index is being built or queried.
class IndexRegistry {
 public:
  explicit IndexRegistry(uint64_t byte_budget) : byte_budget_(byte_budget) {}

  /// Inserts (or atomically replaces) the snapshot under its name, then
  /// evicts least-recently-used *other* entries until the budget holds.
  /// A snapshot that alone exceeds the whole budget is rejected with
  /// InvalidArgument.  *evicted (optional) receives how many entries were
  /// dropped to admit it.
  Status Put(std::shared_ptr<const IndexSnapshot> snapshot,
             size_t* evicted = nullptr);

  /// Looks up a snapshot and marks it most-recently-used.  The returned
  /// reference stays valid after any later eviction or replacement.
  Result<std::shared_ptr<const IndexSnapshot>> Get(const std::string& name);

  /// Removes one entry; false when the name is unknown.
  bool Erase(const std::string& name);

  /// Entries in most-recently-used-first order.
  std::vector<RegistryEntryInfo> List() const;

  uint64_t byte_budget() const { return byte_budget_; }
  uint64_t bytes_in_use() const;
  uint64_t evictions() const;
  size_t size() const;

 private:
  struct Entry {
    std::shared_ptr<const IndexSnapshot> snapshot;
    uint64_t hits = 0;
  };

  /// Drops LRU entries (back of lru_) until bytes_in_use_ <= byte_budget_,
  /// never evicting `keep`.  Requires mu_ held.
  void EvictLocked(const IndexSnapshot* keep, size_t* evicted);

  const uint64_t byte_budget_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> by_name_;
  uint64_t bytes_in_use_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace simjoin

#endif  // SIMJOIN_SERVICE_REGISTRY_H_
