#include "service/registry.h"

#include <unistd.h>

#include <cmath>
#include <cstring>
#include <utility>

#include "approx/lsh_index.h"
#include "common/timer.h"
#include "core/delta_index.h"
#include "core/segment.h"
#include "obs/metrics.h"
#include "rtree/rtree_backend.h"

namespace simjoin {
namespace {

uint64_t DoubleBits(double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value), "double must be 64-bit");
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

size_t AuxSlot(BackendKind kind) { return static_cast<size_t>(kind); }

struct SegmentTierMetrics {
  obs::Counter* writes;
  obs::Counter* write_errors;
  obs::Counter* cold_evictions;
  obs::Counter* faults_in;

  static SegmentTierMetrics& Get() {
    static SegmentTierMetrics m{
        obs::GlobalMetrics().GetCounter("registry.segment.writes"),
        obs::GlobalMetrics().GetCounter("registry.segment.write_errors"),
        obs::GlobalMetrics().GetCounter("registry.segment.cold_evictions"),
        obs::GlobalMetrics().GetCounter("registry.segment.faults_in")};
    return m;
  }
};

/// Spill-file name for an index: the name with every character outside
/// [A-Za-z0-9._-] replaced (client names are arbitrary bytes and must not
/// traverse out of the spill directory); the version suffix keeps
/// replacements from colliding after sanitisation.
std::string SpillFileName(const std::string& name, uint64_t version) {
  std::string safe = name;
  for (char& c : safe) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) c = '_';
  }
  return safe + ".v" + std::to_string(version) + ".seg";
}

/// True when the mapped backend has not served a query yet — its first
/// traversals pay page faults on top of arithmetic, which the planner
/// prices in before probing (probing itself would warm the mapping and
/// hide the cost it is trying to measure).
bool MappedAndCold(const IndexBackend& backend) {
  if (!backend.mapped()) return false;
  const auto* mmap_backend = dynamic_cast<const MmapEkdbBackend*>(&backend);
  return mmap_backend != nullptr && mmap_backend->queries_served() == 0;
}

}  // namespace

Result<std::shared_ptr<const IndexSnapshot>> IndexSnapshot::Build(
    std::string name, Dataset dataset, const EkdbConfig& config,
    size_t num_threads, BackendKind backend) {
  if (!BackendKindBuildable(backend)) {
    return Status::InvalidArgument(
        std::string("backend '") + BackendKindName(backend) +
        "' cannot be built as an index primary; it is a per-query tier the "
        "planner materialises on demand");
  }
  Timer timer;
  auto owned = std::make_shared<const Dataset>(std::move(dataset));
  auto snapshot = std::shared_ptr<IndexSnapshot>(new IndexSnapshot());
  snapshot->name_ = std::move(name);
  std::shared_ptr<const IndexBackend> primary;
  if (backend == BackendKind::kEpsilonGrid) {
    SIMJOIN_ASSIGN_OR_RETURN(auto grid,
                             EpsilonGridBackend::Build(*owned, config));
    primary = std::move(grid);
  } else if (backend == BackendKind::kUpdatable) {
    // The updatable index co-owns the dataset: its background compaction
    // can outlive this snapshot and still read the build rows.
    SIMJOIN_ASSIGN_OR_RETURN(
        auto updatable, UpdatableIndex::Build(owned, config, num_threads));
    primary = std::move(updatable);
  } else {
    SIMJOIN_ASSIGN_OR_RETURN(
        auto tree, EkdbFlatBackend::Build(*owned, config, num_threads));
    primary = std::move(tree);
  }
  snapshot->data_bytes_ = owned->MemoryUsageBytes();
  snapshot->memory_bytes_ =
      owned->MemoryUsageBytes() + primary->index_bytes();
  // The primary doubles as its own aux slot, so Backend(primary kind) and
  // planner routing back to the primary are lookups, not builds.
  snapshot->aux_[AuxSlot(primary->kind())] = primary;
  snapshot->primary_ = std::move(primary);
  snapshot->dataset_ = std::move(owned);
  snapshot->data_ = snapshot->dataset_.get();
  snapshot->build_seconds_ = timer.Seconds();
  return std::shared_ptr<const IndexSnapshot>(std::move(snapshot));
}

Result<std::shared_ptr<const IndexSnapshot>> IndexSnapshot::OpenMapped(
    std::string name, const std::string& segment_path,
    const MmapBackendOptions& options) {
  Timer timer;
  SIMJOIN_ASSIGN_OR_RETURN(auto mapped,
                           MmapEkdbBackend::Open(segment_path, options));
  auto snapshot = std::shared_ptr<IndexSnapshot>(new IndexSnapshot());
  snapshot->name_ = std::move(name);
  snapshot->segment_path_ = segment_path;
  std::shared_ptr<const IndexBackend> primary(std::move(mapped));
  // Heap bookkeeping only: the structure and the dataset live in the
  // mapping and are accounted to the OS page cache, not the byte budget.
  snapshot->memory_bytes_ = primary->index_bytes();
  snapshot->data_ = &primary->dataset();
  snapshot->aux_[AuxSlot(primary->kind())] = primary;
  snapshot->primary_ = std::move(primary);
  snapshot->build_seconds_ = timer.Seconds();
  return std::shared_ptr<const IndexSnapshot>(std::move(snapshot));
}

const UpdatableIndex* IndexSnapshot::updatable() const {
  if (primary_->kind() != BackendKind::kUpdatable) return nullptr;
  return static_cast<const UpdatableIndex*>(primary_.get());
}

Status IndexSnapshot::WriteSegmentFile(const std::string& path) const {
  const FlatEkdbTree* tree = primary_->flat_tree();
  if (tree == nullptr) {
    return Status::InvalidArgument(
        "index '" + name_ + "' has a " +
        std::string(BackendKindName(primary_->kind())) +
        " primary; only tree-backed indexes can be spilled to a segment");
  }
  return WriteSegment(*tree, path);
}

IndexSnapshot::PlanCache IndexSnapshot::ExportPlanCache() const {
  std::lock_guard<std::mutex> lock(plan_mu_);
  return plan_cache_;
}

void IndexSnapshot::ImportPlanCache(const PlanCache& cache) const {
  std::lock_guard<std::mutex> lock(plan_mu_);
  plan_cache_.insert(cache.begin(), cache.end());
}

Status IndexSnapshot::ValidateQueryEpsilon(double eps_query) const {
  return primary_->ValidateQueryEpsilon(eps_query);
}

Status IndexSnapshot::RangeQuery(const float* query, double eps_query,
                                 std::vector<PointId>* out,
                                 JoinStats* stats) const {
  return primary_->RangeQuery(query, eps_query, out, stats, nullptr);
}

Status IndexSnapshot::RangeQueryBatch(
    const RangeQuerySpec* specs, size_t count,
    std::vector<std::vector<PointId>>* results,
    std::vector<JoinStats>* stats) const {
  return primary_->RangeQueryBatch(specs, count, results, stats, nullptr);
}

Result<std::shared_ptr<const IndexBackend>> IndexSnapshot::Backend(
    BackendKind kind, bool* built) const {
  if (built != nullptr) *built = false;
  if (kind == BackendKind::kLsh) {
    return Status::InvalidArgument(
        "LSH backends are sized from a recall target; route through "
        "PlanRange");
  }
  // The build runs under the lock: it happens at most once per kind per
  // snapshot lifetime, and holding the lock keeps a second planner thread
  // from duplicating a multi-second tree build.  Query execution never
  // takes this lock.
  std::lock_guard<std::mutex> lock(plan_mu_);
  std::shared_ptr<const IndexBackend>& slot = aux_[AuxSlot(kind)];
  if (slot != nullptr) return slot;
  switch (kind) {
    case BackendKind::kEkdbFlat: {
      SIMJOIN_ASSIGN_OR_RETURN(
          auto backend, EkdbFlatBackend::Build(*data_, primary_->config(),
                                               /*num_threads=*/1));
      slot = std::move(backend);
      break;
    }
    case BackendKind::kEpsilonGrid: {
      SIMJOIN_ASSIGN_OR_RETURN(
          auto backend,
          EpsilonGridBackend::Build(*data_, primary_->config()));
      slot = std::move(backend);
      break;
    }
    case BackendKind::kBruteSimd: {
      SIMJOIN_ASSIGN_OR_RETURN(
          auto backend, BruteSimdBackend::Build(*data_,
                                                primary_->config()));
      slot = std::move(backend);
      break;
    }
    case BackendKind::kRTree: {
      SIMJOIN_ASSIGN_OR_RETURN(
          auto backend, RTreeBackend::Build(*data_, primary_->config()));
      slot = std::move(backend);
      break;
    }
    case BackendKind::kUpdatable:
      // Reached only when the primary is NOT updatable (an updatable
      // primary sits in its own aux slot): a static mutable tier over an
      // immutable snapshot cannot be conjured after the fact.
      return Status::InvalidArgument(
          "updatable is a primary-only backend; build the index with it");
    case BackendKind::kLsh:
      return Status::Internal("unreachable");
  }
  if (built != nullptr) *built = true;
  return slot;
}

Result<std::shared_ptr<const IndexBackend>> IndexSnapshot::JoinBackend(
    bool* built) const {
  if (built != nullptr) *built = false;
  if (primary_->supports_self_join()) return primary_;
  return Backend(BackendKind::kEkdbFlat, built);
}

Result<std::shared_ptr<const IndexBackend>> IndexSnapshot::LshBackendFor(
    double eps_query, size_t tables, size_t hashes, uint64_t seed,
    bool* built) const {
  if (built != nullptr) *built = false;
  const uint64_t eps_bits = DoubleBits(eps_query);
  std::lock_guard<std::mutex> lock(plan_mu_);
  for (const LshCacheEntry& entry : lsh_cache_) {
    if (entry.eps_bits == eps_bits && entry.tables == tables &&
        entry.hashes == hashes) {
      return entry.backend;
    }
  }
  // The LSH structure is built *at the query epsilon*: bucket width and the
  // recall bound both key off the radius actually served, not the primary's
  // build epsilon.
  EkdbConfig config = primary_->config();
  config.epsilon = eps_query;
  LshIndexParams params;
  params.tables = tables;
  params.hashes_per_table = hashes;
  params.seed = seed;
  SIMJOIN_ASSIGN_OR_RETURN(auto backend,
                           LshBackend::Build(*data_, config, params));
  if (lsh_cache_.size() >= kMaxCachedLshBackends) lsh_cache_.pop_front();
  lsh_cache_.push_back(
      LshCacheEntry{eps_bits, tables, hashes, std::move(backend)});
  if (built != nullptr) *built = true;
  return lsh_cache_.back().backend;
}

Result<PlannedRange> IndexSnapshot::PlanRange(
    double eps_query, double recall, uint8_t forced_backend,
    const RangePlannerOptions& options) const {
  if (!(recall > 0.0) || recall > 1.0 || !std::isfinite(recall)) {
    return Status::InvalidArgument("recall target must be in (0, 1]");
  }
  SIMJOIN_RETURN_NOT_OK(primary_->ValidateQueryEpsilon(eps_query));
  const Metric metric = primary_->config().metric;
  const double n = static_cast<double>(data_->size());

  // -- updatable primary: always the merged delta+base view -----------------
  // Aux backends and LSH tiers are built over the *initial* dataset and
  // would answer a stale point set, so routing away from the primary is
  // never sound here.  No plan cache either: the cost moves with every
  // insert (the delta-size term), and caching it would freeze a transient.
  if (primary_->kind() == BackendKind::kUpdatable) {
    if (forced_backend != kWireBackendAuto) {
      SIMJOIN_ASSIGN_OR_RETURN(BackendKind kind,
                               BackendKindFromWire(forced_backend));
      if (kind != BackendKind::kUpdatable) {
        return Status::InvalidArgument(
            std::string("index is updatable; backend '") +
            BackendKindName(kind) +
            "' would serve a stale point set (use auto or updatable)");
      }
    }
    PlannedRange out;
    out.backend = primary_;
    out.plan.kind = BackendKind::kUpdatable;
    out.plan.est_cost = primary_->EstimatedQueryCost(eps_query, 0.0);
    out.plan.expected_recall = 1.0;
    out.plan.rationale =
        "updatable primary: merged delta+base view (cost carries the "
        "delta-size term)";
    return out;
  }

  // -- forced backend: no costing, no cache ---------------------------------
  if (forced_backend != kWireBackendAuto) {
    SIMJOIN_ASSIGN_OR_RETURN(BackendKind kind,
                             BackendKindFromWire(forced_backend));
    PlannedRange out;
    out.plan.kind = kind;
    out.plan.rationale = "forced by request";
    if (kind == BackendKind::kLsh) {
      const double width = 4.0 * eps_query;  // LshIndexParams default
      const double p1 =
          PStableCollisionProbability(metric, eps_query, width);
      const size_t hashes = options.lsh_hashes_per_table;
      const double p_table = std::pow(p1, static_cast<double>(hashes));
      const size_t tables =
          LshTablesForRecall(recall, p_table, options.lsh_max_tables);
      SIMJOIN_ASSIGN_OR_RETURN(
          out.backend, LshBackendFor(eps_query, tables, hashes, options.seed,
                                     &out.built_backend));
      out.plan.lsh_tables = tables;
      out.plan.lsh_hashes = hashes;
    } else {
      SIMJOIN_ASSIGN_OR_RETURN(out.backend,
                               Backend(kind, &out.built_backend));
    }
    out.plan.expected_recall = out.backend->ExpectedRecall(eps_query);
    out.plan.est_cost = out.backend->EstimatedQueryCost(eps_query, 0.0);
    return out;
  }

  // -- plan cache -----------------------------------------------------------
  const std::pair<uint64_t, uint64_t> cache_key{DoubleBits(eps_query),
                                                DoubleBits(recall)};
  {
    // Copy the hit out, then resolve the backend with the lock released —
    // Backend()/LshBackendFor() take plan_mu_ themselves.
    RangePlan cached;
    bool hit = false;
    {
      std::lock_guard<std::mutex> lock(plan_mu_);
      auto it = plan_cache_.find(cache_key);
      if (it != plan_cache_.end()) {
        cached = it->second;
        hit = true;
      }
    }
    if (hit) {
      PlannedRange out;
      out.plan = cached;
      out.cache_hit = true;
      if (cached.kind == BackendKind::kLsh) {
        SIMJOIN_ASSIGN_OR_RETURN(
            out.backend,
            LshBackendFor(eps_query, cached.lsh_tables, cached.lsh_hashes,
                          options.seed, &out.built_backend));
      } else {
        SIMJOIN_ASSIGN_OR_RETURN(out.backend,
                                 Backend(cached.kind, &out.built_backend));
      }
      return out;
    }
  }

  // -- cold planning: sampled selectivity + probed primary cost -------------
  // A mapped primary's coldness must be captured *before* probing: the
  // probe queries themselves fault pages in and would erase the very
  // penalty the plan should carry.
  const bool primary_was_cold = MappedAndCold(*primary_);
  SIMJOIN_ASSIGN_OR_RETURN(
      const double est_avg,
      EstimateAvgNeighbors(*data_, eps_query, metric, options));
  SIMJOIN_ASSIGN_OR_RETURN(
      double primary_cost,
      ProbeRangeQueryCost(*primary_, eps_query, options));
  if (primary_was_cold) primary_cost *= options.cold_read_penalty;

  PlannedRange out;
  out.backend = primary_;
  out.plan.kind = primary_->kind();
  out.plan.est_cost = primary_cost;
  out.plan.est_avg_neighbors = est_avg;
  out.plan.rationale = std::string("primary ") +
                       BackendKindName(primary_->kind()) +
                       (primary_was_cold ? " probed cheapest (cold-mapped)"
                                         : " probed cheapest");
  const double margin = options.switch_margin;

  // Brute scan: free to materialise, pointless to probe (its cost is by
  // construction one discounted pass over every row).
  {
    SIMJOIN_ASSIGN_OR_RETURN(auto brute,
                             Backend(BackendKind::kBruteSimd, nullptr));
    const double brute_cost = brute->EstimatedQueryCost(eps_query, est_avg);
    if (brute_cost * margin < out.plan.est_cost) {
      out.backend = std::move(brute);
      out.plan.kind = BackendKind::kBruteSimd;
      out.plan.est_cost = brute_cost;
      out.plan.rationale =
          "brute scan beats structure traversal at this selectivity";
    }
  }

  // Exact structured alternative to the primary.  Gate the (possibly
  // expensive) aux build behind the backend's own static prior so a
  // clearly-losing candidate is never materialised.
  const BackendKind alt = primary_->kind() == BackendKind::kEpsilonGrid
                              ? BackendKind::kEkdbFlat
                              : BackendKind::kEpsilonGrid;
  bool alt_plausible;
  if (alt == BackendKind::kEpsilonGrid) {
    // The grid only prunes on the dims it bins; past its cap every cell
    // window degenerates toward a full scan (same rule the join planner
    // derives its grid_max_dims from).
    alt_plausible = data_->dims() <= EpsilonGrid::kMaxBinnedDims;
  } else {
    // Mirrors EkdbFlatBackend::EstimatedQueryCost's prior.
    const double prior = std::min(n, 64.0 + 8.0 * est_avg);
    alt_plausible = prior * margin < out.plan.est_cost;
  }
  if (alt_plausible) {
    bool built = false;
    auto alt_backend = Backend(alt, &built);
    // A failed aux build (e.g. grid cell cap) just removes the candidate.
    if (alt_backend.ok()) {
      out.built_backend = out.built_backend || built;
      SIMJOIN_ASSIGN_OR_RETURN(
          const double alt_cost,
          ProbeRangeQueryCost(**alt_backend, eps_query, options));
      if (alt_cost * margin < out.plan.est_cost) {
        out.backend = *alt_backend;
        out.plan.kind = alt;
        out.plan.est_cost = alt_cost;
        out.plan.rationale = std::string(BackendKindName(alt)) +
                             " probed cheaper than the primary";
      }
    }
  }

  // Approximate tier: only admissible when the request tolerates recall
  // below 1 and the metric has a p-stable family.
  if (recall < 1.0 &&
      (metric == Metric::kL1 || metric == Metric::kL2)) {
    const double width = 4.0 * eps_query;  // LshIndexParams default
    const double p1 = PStableCollisionProbability(metric, eps_query, width);
    const size_t hashes = options.lsh_hashes_per_table;
    const double p_table = std::pow(p1, static_cast<double>(hashes));
    const size_t tables =
        LshTablesForRecall(recall, p_table, options.lsh_max_tables);
    const double bound =
        1.0 - std::pow(1.0 - p_table, static_cast<double>(tables));
    // Most optimistic LSH cost: hashing plus verifying just the true
    // neighbours.  If even that loses to the exact route, skip the build.
    const double optimistic =
        static_cast<double>(tables * hashes) + 1.3 * est_avg + 8.0;
    if (bound >= recall && optimistic * margin < out.plan.est_cost) {
      bool built = false;
      SIMJOIN_ASSIGN_OR_RETURN(
          auto lsh, LshBackendFor(eps_query, tables, hashes, options.seed,
                                  &built));
      out.built_backend = out.built_backend || built;
      const double lsh_cost = lsh->EstimatedQueryCost(eps_query, est_avg);
      if (lsh_cost * margin < out.plan.est_cost) {
        out.backend = std::move(lsh);
        out.plan.kind = BackendKind::kLsh;
        out.plan.est_cost = lsh_cost;
        out.plan.lsh_tables = tables;
        out.plan.lsh_hashes = hashes;
        out.plan.rationale =
            "lsh (L=" + std::to_string(tables) +
            ", K=" + std::to_string(hashes) + ") meets recall " +
            std::to_string(recall) + " below the exact cost";
      }
    }
  }
  out.plan.expected_recall = out.backend->ExpectedRecall(eps_query);

  {
    std::lock_guard<std::mutex> lock(plan_mu_);
    plan_cache_.emplace(cache_key, out.plan);
  }
  return out;
}

uint64_t IndexSnapshot::aux_bytes() const {
  std::lock_guard<std::mutex> lock(plan_mu_);
  uint64_t total = 0;
  for (const auto& slot : aux_) {
    if (slot != nullptr && slot.get() != primary_.get()) {
      total += slot->index_bytes();
    }
  }
  for (const LshCacheEntry& entry : lsh_cache_) {
    total += entry.backend->index_bytes();
  }
  return total;
}

Status IndexRegistry::Put(std::shared_ptr<const IndexSnapshot> snapshot,
                          size_t* evicted) {
  if (evicted != nullptr) *evicted = 0;
  if (snapshot == nullptr) {
    return Status::InvalidArgument("null snapshot");
  }
  if (snapshot->memory_bytes() > byte_budget_) {
    return Status::InvalidArgument(
        "index '" + snapshot->name() + "' (" +
        std::to_string(snapshot->memory_bytes()) +
        " bytes) exceeds the registry budget of " +
        std::to_string(byte_budget_) + " bytes");
  }
  const std::string& name = snapshot->name();
  const uint64_t version = next_version_.fetch_add(1) + 1;

  // Write-through spill happens before the lock: segment writes stream the
  // whole index to disk and must not stall every other registry operation.
  // The versioned filename keeps concurrent Puts of the same name from
  // colliding — whichever insert lands later wins the map, and the loser's
  // file is unlinked when its entry is replaced below.
  std::string segment_path;
  bool owns_file = false;
  if (snapshot->mapped()) {
    // Already segment-backed: eviction can demote to the existing file.
    // The file belongs to whoever built it (an on-disk build artifact);
    // the registry never unlinks it.
    segment_path = snapshot->segment_path();
  } else if (spill_enabled() && snapshot->primary().flat_tree() != nullptr) {
    std::string path = spill_dir_ + "/" + SpillFileName(name, version);
    const Status written = snapshot->WriteSegmentFile(path);
    if (written.ok()) {
      segment_path = std::move(path);
      owns_file = true;
      SegmentTierMetrics::Get().writes->Add(1);
      std::lock_guard<std::mutex> lock(mu_);
      ++segment_writes_;
    } else {
      // Degrade to the old destroy-on-evict behaviour for this entry; the
      // index itself is fine.
      SegmentTierMetrics::Get().write_errors->Add(1);
      std::lock_guard<std::mutex> lock(mu_);
      ++segment_write_errors_;
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_name_.find(name);
  if (it != by_name_.end()) RemoveHotLocked(it);
  auto cold_it = cold_.find(name);
  if (cold_it != cold_.end()) {
    if (cold_it->second.owns_file) ::unlink(cold_it->second.segment_path.c_str());
    cold_.erase(cold_it);
  }
  const uint64_t charge = snapshot->memory_bytes();
  bytes_in_use_ += charge;
  const IndexSnapshot* keep = snapshot.get();
  lru_.push_front(Entry{std::move(snapshot), 0, version, charge,
                        std::move(segment_path), owns_file});
  by_name_[name] = lru_.begin();
  EvictLocked(keep, evicted);
  return Status::OK();
}

Result<std::shared_ptr<const IndexSnapshot>> IndexRegistry::Get(
    const std::string& name) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    ++it->second->hits;
    lru_.splice(lru_.begin(), lru_, it->second);  // iterator stays valid
    return it->second->snapshot;
  }
  auto cold_it = cold_.find(name);
  if (cold_it == cold_.end()) {
    return Status::NotFound("no index named '" + name + "'");
  }

  // Fault-in: re-open the segment memory-mapped, off-lock (it touches the
  // filesystem).  No data is read and nothing is rebuilt — the mapping
  // populates lazily as queries traverse it.
  ColdEntry cold = cold_it->second;
  lock.unlock();
  auto opened = IndexSnapshot::OpenMapped(name, cold.segment_path,
                                          mmap_options_);
  if (!opened.ok()) {
    return Status::IoError("index '" + name +
                           "' is cold and its segment file could not be "
                           "faulted back in: " +
                           opened.status().message());
  }
  std::shared_ptr<const IndexSnapshot> snapshot = std::move(*opened);
  // The plan cache survives the evict/fault cycle: same version, same
  // build, so every cached (epsilon, recall) decision still holds.
  snapshot->ImportPlanCache(cold.plan_cache);

  lock.lock();
  it = by_name_.find(name);
  if (it != by_name_.end()) {
    // Raced with another fault-in or a fresh build; theirs is the entry of
    // record (and if we raced a fault-in, both map the same immutable file).
    ++it->second->hits;
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->snapshot;
  }
  cold_it = cold_.find(name);
  if (cold_it == cold_.end() || cold_it->second.version != cold.version) {
    return Status::NotFound("index '" + name +
                            "' was removed while faulting in");
  }
  cold_.erase(cold_it);
  ++faults_in_;
  SegmentTierMetrics::Get().faults_in->Add(1);
  const uint64_t charge = snapshot->memory_bytes();
  bytes_in_use_ += charge;
  const IndexSnapshot* keep = snapshot.get();
  lru_.push_front(Entry{snapshot, cold.hits + 1, cold.version, charge,
                        cold.segment_path, cold.owns_file});
  by_name_[name] = lru_.begin();
  EvictLocked(keep, nullptr);
  return snapshot;
}

bool IndexRegistry::Erase(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    RemoveHotLocked(it);
    return true;
  }
  auto cold_it = cold_.find(name);
  if (cold_it == cold_.end()) return false;
  if (cold_it->second.owns_file) {
    ::unlink(cold_it->second.segment_path.c_str());
  }
  cold_.erase(cold_it);
  return true;
}

void IndexRegistry::RefreshCharge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return;
  Entry& entry = *it->second;
  const uint64_t now = entry.snapshot->memory_bytes();
  bytes_in_use_ = bytes_in_use_ - entry.charged + now;
  entry.charged = now;
  EvictLocked(entry.snapshot.get(), nullptr);
}

std::vector<RegistryEntryInfo> IndexRegistry::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RegistryEntryInfo> out;
  out.reserve(lru_.size() + cold_.size());
  for (const Entry& entry : lru_) {
    const IndexSnapshot& snap = *entry.snapshot;
    out.push_back(RegistryEntryInfo{snap.name(), snap.memory_bytes(),
                                    entry.hits, snap.dataset().size(),
                                    snap.dataset().dims(),
                                    snap.config().epsilon,
                                    snap.config().metric, entry.version,
                                    snap.mapped(), /*cold=*/false});
  }
  for (const auto& [name, cold] : cold_) {
    out.push_back(RegistryEntryInfo{name, 0, cold.hits, cold.num_points,
                                    cold.dims, cold.epsilon, cold.metric,
                                    cold.version, /*mapped=*/false,
                                    /*cold=*/true});
  }
  return out;
}

uint64_t IndexRegistry::bytes_in_use() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_in_use_;
}

uint64_t IndexRegistry::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

size_t IndexRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

size_t IndexRegistry::cold_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cold_.size();
}

uint64_t IndexRegistry::segment_writes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return segment_writes_;
}

uint64_t IndexRegistry::segment_write_errors() const {
  std::lock_guard<std::mutex> lock(mu_);
  return segment_write_errors_;
}

uint64_t IndexRegistry::cold_evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cold_evictions_;
}

uint64_t IndexRegistry::faults_in() const {
  std::lock_guard<std::mutex> lock(mu_);
  return faults_in_;
}

void IndexRegistry::RemoveHotLocked(
    std::unordered_map<std::string, std::list<Entry>::iterator>::iterator it) {
  // This is removal, not demotion: the entry's write-through segment file
  // (if the registry owns one) would otherwise leak on replace and erase.
  if (it->second->owns_file) ::unlink(it->second->segment_path.c_str());
  bytes_in_use_ -= it->second->charged;
  lru_.erase(it->second);
  by_name_.erase(it);
}

void IndexRegistry::EvictLocked(const IndexSnapshot* keep, size_t* evicted) {
  auto it = lru_.end();
  while (bytes_in_use_ > byte_budget_ && it != lru_.begin()) {
    --it;  // back of the list = least recently used
    if (it->snapshot.get() == keep) continue;  // never the new arrival
    if (!it->segment_path.empty()) {
      // Demote instead of destroy: keep the path, the version, and the
      // planner's learned decisions; the data itself is already on disk.
      const IndexSnapshot& snap = *it->snapshot;
      ColdEntry cold;
      cold.segment_path = it->segment_path;
      cold.version = it->version;
      cold.owns_file = it->owns_file;
      cold.hits = it->hits;
      cold.plan_cache = snap.ExportPlanCache();
      cold.num_points = snap.dataset().size();
      cold.dims = snap.dataset().dims();
      cold.epsilon = snap.config().epsilon;
      cold.metric = snap.config().metric;
      cold_[snap.name()] = std::move(cold);
      ++cold_evictions_;
      SegmentTierMetrics::Get().cold_evictions->Add(1);
    }
    bytes_in_use_ -= it->charged;
    by_name_.erase(it->snapshot->name());
    // Dropping the shared_ptr here only releases the registry's reference;
    // requests still holding the snapshot keep it alive and queryable.
    it = lru_.erase(it);
    ++evictions_;
    if (evicted != nullptr) ++*evicted;
  }
}

}  // namespace simjoin
