#include "service/registry.h"

#include <utility>

#include "common/timer.h"
#include "core/ekdb_tree.h"

namespace simjoin {

Result<std::shared_ptr<const IndexSnapshot>> IndexSnapshot::Build(
    std::string name, Dataset dataset, const EkdbConfig& config,
    size_t num_threads, IndexBackend backend) {
  Timer timer;
  auto owned = std::make_unique<Dataset>(std::move(dataset));
  auto snapshot = std::shared_ptr<IndexSnapshot>(new IndexSnapshot());
  snapshot->name_ = std::move(name);
  snapshot->backend_ = backend;
  uint64_t index_bytes = 0;
  if (backend == IndexBackend::kEpsilonGrid) {
    SIMJOIN_ASSIGN_OR_RETURN(EpsilonGrid grid,
                             EpsilonGrid::Build(*owned, config));
    index_bytes = grid.total_bytes();
    snapshot->grid_.emplace(std::move(grid));
  } else {
    SIMJOIN_ASSIGN_OR_RETURN(
        EkdbTree tree,
        num_threads == 1 ? EkdbTree::Build(*owned, config)
                         : EkdbTree::BuildParallel(*owned, config,
                                                   num_threads));
    SIMJOIN_ASSIGN_OR_RETURN(FlatEkdbTree flat,
                             FlatEkdbTree::FromTree(tree, num_threads));
    // The pointer tree is build scaffolding; only the flat form is served.
    index_bytes = flat.total_bytes();
    snapshot->tree_.emplace(std::move(flat));
  }
  snapshot->dataset_ = std::move(owned);
  snapshot->memory_bytes_ = snapshot->dataset_->MemoryUsageBytes() + index_bytes;
  snapshot->build_seconds_ = timer.Seconds();
  return std::shared_ptr<const IndexSnapshot>(std::move(snapshot));
}

Status IndexSnapshot::ValidateQueryEpsilon(double eps_query) const {
  return tree_.has_value() ? tree_->ValidateQueryEpsilon(eps_query)
                           : grid_->ValidateQueryEpsilon(eps_query);
}

Status IndexSnapshot::RangeQuery(const float* query, double eps_query,
                                 std::vector<PointId>* out,
                                 JoinStats* stats) const {
  return tree_.has_value() ? tree_->RangeQuery(query, eps_query, out, stats)
                           : grid_->RangeQuery(query, eps_query, out, stats);
}

Status IndexSnapshot::RangeQueryBatch(
    const RangeQuerySpec* specs, size_t count,
    std::vector<std::vector<PointId>>* results,
    std::vector<JoinStats>* stats) const {
  return tree_.has_value()
             ? tree_->RangeQueryBatch(specs, count, results, stats)
             : grid_->RangeQueryBatch(specs, count, results, stats);
}

Status IndexRegistry::Put(std::shared_ptr<const IndexSnapshot> snapshot,
                          size_t* evicted) {
  if (evicted != nullptr) *evicted = 0;
  if (snapshot == nullptr) {
    return Status::InvalidArgument("null snapshot");
  }
  if (snapshot->memory_bytes() > byte_budget_) {
    return Status::InvalidArgument(
        "index '" + snapshot->name() + "' (" +
        std::to_string(snapshot->memory_bytes()) +
        " bytes) exceeds the registry budget of " +
        std::to_string(byte_budget_) + " bytes");
  }
  std::lock_guard<std::mutex> lock(mu_);
  const std::string& name = snapshot->name();
  auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    bytes_in_use_ -= it->second->snapshot->memory_bytes();
    lru_.erase(it->second);
    by_name_.erase(it);
  }
  bytes_in_use_ += snapshot->memory_bytes();
  const IndexSnapshot* keep = snapshot.get();
  lru_.push_front(Entry{std::move(snapshot), 0});
  by_name_[name] = lru_.begin();
  EvictLocked(keep, evicted);
  return Status::OK();
}

Result<std::shared_ptr<const IndexSnapshot>> IndexRegistry::Get(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no index named '" + name + "'");
  }
  ++it->second->hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // iterator stays valid
  return it->second->snapshot;
}

bool IndexRegistry::Erase(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return false;
  bytes_in_use_ -= it->second->snapshot->memory_bytes();
  lru_.erase(it->second);
  by_name_.erase(it);
  return true;
}

std::vector<RegistryEntryInfo> IndexRegistry::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RegistryEntryInfo> out;
  out.reserve(lru_.size());
  for (const Entry& entry : lru_) {
    const IndexSnapshot& snap = *entry.snapshot;
    out.push_back(RegistryEntryInfo{snap.name(), snap.memory_bytes(),
                                    entry.hits, snap.dataset().size(),
                                    snap.dataset().dims(),
                                    snap.config().epsilon,
                                    snap.config().metric});
  }
  return out;
}

uint64_t IndexRegistry::bytes_in_use() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_in_use_;
}

uint64_t IndexRegistry::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

size_t IndexRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

void IndexRegistry::EvictLocked(const IndexSnapshot* keep, size_t* evicted) {
  auto it = lru_.end();
  while (bytes_in_use_ > byte_budget_ && it != lru_.begin()) {
    --it;  // back of the list = least recently used
    if (it->snapshot.get() == keep) continue;  // never the new arrival
    bytes_in_use_ -= it->snapshot->memory_bytes();
    by_name_.erase(it->snapshot->name());
    // Dropping the shared_ptr here only releases the registry's reference;
    // requests still holding the snapshot keep it alive and queryable.
    it = lru_.erase(it);
    ++evictions_;
    if (evicted != nullptr) ++*evicted;
  }
}

}  // namespace simjoin
