#include "service/server.h"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/binary_io.h"
#include "common/logging.h"
#include "common/net.h"
#include "common/thread_pool.h"
#include "core/delta_index.h"
#include "core/ekdb_flat_join.h"
#include "core/parallel_join.h"
#include "core/segment_builder.h"
#include "obs/metrics.h"
#include "obs/request_context.h"
#include "obs/slow_query_log.h"
#include "obs/trace.h"

namespace simjoin {
namespace {

using Clock = std::chrono::steady_clock;

uint32_t ElapsedMs(Clock::time_point since) {
  return static_cast<uint32_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                            since)
          .count());
}

double ElapsedUs(Clock::time_point since) {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(
                 Clock::now() - since)
                 .count()) *
         1e-3;
}

/// Service-layer registry handles, resolved once.  The per-opcode latency
/// histograms cover admission to terminal-response enqueue; the counters
/// mirror the Impl atomics (which remain the wire-compatible rev-1 fields)
/// so `stats --watch` sees everything through one snapshot.
struct ServiceMetrics {
  obs::Histogram* latency_build_index;
  obs::Histogram* latency_range_query;
  obs::Histogram* latency_similarity_join;
  obs::Histogram* latency_stats;
  obs::Histogram* latency_drop_index;
  obs::Gauge* inflight;
  obs::Counter* bytes_in;
  obs::Counter* bytes_out;
  obs::Counter* requests_admitted;
  obs::Counter* retry_after;
  obs::Counter* deadline_expired;
  obs::Counter* decode_errors;
  obs::Counter* pairs_streamed;
  obs::Counter* write_stall_disconnects;
  obs::Counter* fusion_batches;
  obs::Counter* fusion_fused_queries;
  obs::Counter* fusion_batch_full;
  obs::Counter* fusion_wait_expired;
  obs::Histogram* fusion_batch_size;
  obs::Histogram* fusion_wait_us;  ///< admission -> batch execution start
  obs::Counter* planner_requests;       ///< planner-extension range queries
  obs::Counter* planner_cache_hits;     ///< decision served from plan cache
  obs::Counter* planner_cache_misses;   ///< cold plans (probe + selectivity)
  obs::Counter* planner_forced;         ///< request pinned the backend
  obs::Counter* planner_backend_builds; ///< aux backends materialised
  obs::Counter* planner_routed_ekdb;
  obs::Counter* planner_routed_grid;
  obs::Counter* planner_routed_lsh;
  obs::Counter* planner_routed_brute;
  obs::Counter* planner_join_fallbacks; ///< grid-primary joins run on aux tree
  obs::Histogram* latency_insert;
  obs::Histogram* latency_remove;
  obs::Histogram* latency_flush;
  obs::Counter* updates_inserts;        ///< Insert RPCs served
  obs::Counter* updates_removes;        ///< Remove RPCs served
  obs::Counter* updates_flushes;        ///< Flush RPCs served
  obs::Counter* updates_rows_inserted;  ///< rows appended across all inserts
  obs::Counter* updates_rows_removed;   ///< ids tombstoned across all removes
  obs::Gauge* delta_points;             ///< delta-tier rows (last updated index)
  obs::Gauge* delta_tombstones;         ///< live tombstones
  obs::Gauge* delta_bytes;              ///< delta memtable + tombstone bytes
  obs::Counter* compactions;            ///< delta tiers folded into the base
  obs::Histogram* compaction_us;        ///< per-compaction duration
  obs::Counter* profiled_requests;      ///< requests carrying the profile flag
  obs::Counter* slowlog_recorded;       ///< entries recorded to the slow log

  obs::Counter* RoutedCounterFor(BackendKind kind) const {
    switch (kind) {
      case BackendKind::kEkdbFlat: return planner_routed_ekdb;
      case BackendKind::kEpsilonGrid: return planner_routed_grid;
      case BackendKind::kLsh: return planner_routed_lsh;
      case BackendKind::kBruteSimd: return planner_routed_brute;
    }
    return planner_routed_ekdb;
  }

  obs::Histogram* LatencyFor(FrameType type) const {
    switch (type) {
      case FrameType::kBuildIndex: return latency_build_index;
      case FrameType::kRangeQuery: return latency_range_query;
      case FrameType::kSimilarityJoin: return latency_similarity_join;
      case FrameType::kStats: return latency_stats;
      case FrameType::kDropIndex: return latency_drop_index;
      case FrameType::kInsert: return latency_insert;
      case FrameType::kRemove: return latency_remove;
      case FrameType::kFlush: return latency_flush;
      default: return nullptr;
    }
  }
};

const ServiceMetrics& GetServiceMetrics() {
  static const ServiceMetrics metrics = [] {
    obs::MetricRegistry& reg = obs::GlobalMetrics();
    return ServiceMetrics{
        reg.GetHistogram("service.latency_us.build_index"),
        reg.GetHistogram("service.latency_us.range_query"),
        reg.GetHistogram("service.latency_us.similarity_join"),
        reg.GetHistogram("service.latency_us.stats"),
        reg.GetHistogram("service.latency_us.drop_index"),
        reg.GetGauge("service.inflight"),
        reg.GetCounter("service.bytes_in"),
        reg.GetCounter("service.bytes_out"),
        reg.GetCounter("service.requests_admitted"),
        reg.GetCounter("service.retry_after"),
        reg.GetCounter("service.deadline_expired"),
        reg.GetCounter("service.decode_errors"),
        reg.GetCounter("service.pairs_streamed"),
        reg.GetCounter("service.write_stall_disconnects"),
        reg.GetCounter("service.fusion.batches"),
        reg.GetCounter("service.fusion.fused_queries"),
        reg.GetCounter("service.fusion.batch_full"),
        reg.GetCounter("service.fusion.wait_expired"),
        reg.GetHistogram("service.fusion.batch_size"),
        reg.GetHistogram("service.fusion.wait_us"),
        reg.GetCounter("service.planner.requests"),
        reg.GetCounter("service.planner.cache_hits"),
        reg.GetCounter("service.planner.cache_misses"),
        reg.GetCounter("service.planner.forced"),
        reg.GetCounter("service.planner.backend_builds"),
        reg.GetCounter("service.planner.routed_ekdb_flat"),
        reg.GetCounter("service.planner.routed_grid"),
        reg.GetCounter("service.planner.routed_lsh"),
        reg.GetCounter("service.planner.routed_brute_simd"),
        reg.GetCounter("service.planner.join_tree_fallbacks"),
        reg.GetHistogram("service.latency_us.insert"),
        reg.GetHistogram("service.latency_us.remove"),
        reg.GetHistogram("service.latency_us.flush"),
        reg.GetCounter("service.updates.inserts"),
        reg.GetCounter("service.updates.removes"),
        reg.GetCounter("service.updates.flushes"),
        reg.GetCounter("service.updates.rows_inserted"),
        reg.GetCounter("service.updates.rows_removed"),
        reg.GetGauge("delta.points"),
        reg.GetGauge("delta.tombstones"),
        reg.GetGauge("delta.bytes"),
        reg.GetCounter("compaction.count"),
        reg.GetHistogram("compaction.duration_us"),
        reg.GetCounter("service.trace.profiled_requests"),
        reg.GetCounter("service.slowlog.recorded"),
    };
  }();
  return metrics;
}

/// Trace-span label for one request opcode (string literals only: TraceSpan
/// keeps the pointer).
const char* RequestSpanName(FrameType type) {
  switch (type) {
    case FrameType::kBuildIndex: return "service.build_index";
    case FrameType::kRangeQuery: return "service.range_query";
    case FrameType::kSimilarityJoin: return "service.similarity_join";
    case FrameType::kStats: return "service.stats";
    case FrameType::kDropIndex: return "service.drop_index";
    case FrameType::kInsert: return "service.insert";
    case FrameType::kRemove: return "service.remove";
    case FrameType::kFlush: return "service.flush";
    default: return "service.request";
  }
}

}  // namespace

struct Server::Impl {
  // One client connection.  The socket, decoder, and membership in an io
  // thread's connection list belong to that io thread alone; the write
  // queue is the cross-thread handoff point (workers append response
  // frames, the io thread drains them to the socket).
  struct Conn {
    TcpSocket sock;
    FrameDecoder decoder;
    size_t io_index = 0;

    std::mutex write_mu;
    std::deque<std::vector<uint8_t>> write_queue;  // guarded by write_mu
    size_t write_offset = 0;   // sent bytes of write_queue.front()
    size_t queued_bytes = 0;   // guarded by write_mu: sum of queued frames
    bool dead = false;         // guarded by write_mu: drop further writes
    /// Signalled whenever queued_bytes drops or the conn dies; streaming
    /// workers block on it for write backpressure.
    std::condition_variable write_cv;
    bool close_after_flush = false;  // io thread only

    explicit Conn(TcpSocket s, uint32_t max_payload)
        : sock(std::move(s)), decoder(max_payload) {}
  };

  struct IoThread {
    WakePipe wake;
    std::thread thread;
    std::mutex incoming_mu;
    std::vector<std::shared_ptr<Conn>> incoming;  // guarded by incoming_mu
  };

  ServerConfig config;
  TcpListener listener;
  IndexRegistry registry;
  ThreadPool* pool = nullptr;
  std::unique_ptr<TaskGroup> group;
  std::vector<std::unique_ptr<IoThread>> io;
  std::atomic<size_t> next_io{0};

  std::atomic<bool> stop{false};
  /// Admission gate: slots are freed just BEFORE the terminal response is
  /// enqueued, so a client that pipelines its next request the instant it
  /// reads a response can never be falsely rejected by a stale count.
  std::atomic<size_t> inflight{0};
  /// Dispatched-but-not-fully-finished requests; unlike inflight this only
  /// drops AFTER the terminal response is queued, which is what the
  /// shutdown drain condition needs (pending == 0 => every response byte
  /// is visible to the io threads).
  std::atomic<size_t> pending{0};

  std::atomic<uint64_t> accepted_connections{0};
  std::atomic<uint64_t> active_connections{0};
  std::atomic<uint64_t> requests_admitted{0};
  std::atomic<uint64_t> requests_rejected{0};
  std::atomic<uint64_t> deadline_expired{0};
  std::atomic<uint64_t> decode_errors{0};
  std::atomic<uint64_t> pairs_streamed{0};
  std::atomic<uint64_t> write_stall_disconnects{0};
  std::atomic<uint64_t> fusion_batches{0};
  std::atomic<uint64_t> fusion_fused_queries{0};
  std::atomic<uint64_t> fusion_batch_full{0};
  std::atomic<uint64_t> fusion_wait_expired{0};
  /// Sequence for on-disk build artifact names (a rebuilt name must not
  /// overwrite a segment file the previous snapshot is still mapping).
  std::atomic<uint64_t> on_disk_builds{0};

  /// One admitted range query parked in the fusion buffer.  admitted_at is
  /// the admission-gate timestamp — it anchors both the deadline check and
  /// the latency histogram, exactly as in the unfused path, so the wait
  /// spent in the buffer is charged to the request that waited.
  struct FusionEntry {
    std::shared_ptr<Conn> conn;
    Frame frame;
    Clock::time_point admitted_at;
  };

  std::mutex fusion_mu;
  std::condition_variable fusion_cv;            // guarded by fusion_mu
  std::deque<FusionEntry> fusion_queue;         // guarded by fusion_mu
  /// Fused batches dispatched but not yet finished.  Group-commit flow
  /// control: while one is executing, the collector keeps accumulating past
  /// the wait budget (flushing into a busy pool would only shrink batches),
  /// so under load the previous batch's execution time becomes the batching
  /// window and batch sizes track the offered concurrency.
  std::atomic<size_t> fusion_executing{0};
  /// Set (under fusion_mu) when the collector thread has drained and exited;
  /// frames arriving after that fall back to solo dispatch instead of being
  /// stranded in a buffer nobody will ever flush.
  bool fusion_exited = false;
  std::thread fusion_thread;

  std::mutex join_mu;
  bool joined = false;

  /// Present iff config.slow_query_us > 0; with it absent no request ever
  /// allocates a profile collector unless it asked for one on the wire.
  std::unique_ptr<obs::SlowQueryLog> slow_log;

  explicit Impl(const ServerConfig& cfg)
      : config(cfg),
        registry(cfg.registry_byte_budget, cfg.segment_spill_dir) {
    if (config.slow_query_us > 0) {
      obs::SlowQueryLog::Options opts;
      opts.capacity = config.slow_query_capacity;
      opts.jsonl_path = config.slow_query_log_path;
      opts.sink_max_per_sec = config.slow_query_sink_per_sec;
      slow_log = std::make_unique<obs::SlowQueryLog>(opts);
    }
  }

  // -- response plumbing ----------------------------------------------------

  /// Queue-only half of EnqueueFrame: appends the frame without waking the
  /// connection's io thread.  The fused batch path uses it to scatter many
  /// responses and then notify each io thread once, instead of once per
  /// response.  Callers must wake io[conn->io_index] afterwards.
  void EnqueueFrameNoWake(const std::shared_ptr<Conn>& conn,
                          std::vector<uint8_t> frame) {
    std::lock_guard<std::mutex> lock(conn->write_mu);
    if (conn->dead) return;
    conn->queued_bytes += frame.size();
    conn->write_queue.push_back(std::move(frame));
  }

  /// Queues one encoded frame on the connection and wakes its io thread.
  /// Callable from any thread; silently drops frames for dead connections.
  /// Never blocks — io threads use it too, and an io thread waiting on its
  /// own drain would deadlock.
  void EnqueueFrame(const std::shared_ptr<Conn>& conn,
                    std::vector<uint8_t> frame) {
    EnqueueFrameNoWake(conn, std::move(frame));
    io[conn->io_index]->wake.Notify();
  }

  /// Backpressured variant for streamed join chunks (worker threads only):
  /// blocks while the connection already has max_conn_queued_bytes queued,
  /// so a slow reader throttles the join instead of buffering its entire
  /// result set.  At least one frame is always admitted when the queue is
  /// empty.  A client that stalls past write_stall_timeout_ms is declared
  /// dead (queue discarded, connection closed by its io thread).  Returns
  /// false when the connection is dead and the frame was dropped.
  bool EnqueueStreamFrame(const std::shared_ptr<Conn>& conn,
                          std::vector<uint8_t> frame) {
    {
      std::unique_lock<std::mutex> lock(conn->write_mu);
      const auto give_up =
          Clock::now() + std::chrono::milliseconds(config.write_stall_timeout_ms);
      while (!conn->dead && conn->queued_bytes != 0 &&
             conn->queued_bytes + frame.size() > config.max_conn_queued_bytes) {
        if (conn->write_cv.wait_until(lock, give_up) ==
            std::cv_status::timeout) {
          write_stall_disconnects.fetch_add(1, std::memory_order_relaxed);
          GetServiceMetrics().write_stall_disconnects->Add();
          conn->dead = true;
          conn->write_queue.clear();
          conn->write_offset = 0;
          conn->queued_bytes = 0;
          break;
        }
      }
      if (conn->dead) {
        lock.unlock();
        conn->write_cv.notify_all();
        io[conn->io_index]->wake.Notify();
        return false;
      }
      conn->queued_bytes += frame.size();
      conn->write_queue.push_back(std::move(frame));
    }
    io[conn->io_index]->wake.Notify();
    return true;
  }

  void Reply(const std::shared_ptr<Conn>& conn, FrameType type,
             uint64_t request_id, std::span<const uint8_t> payload) {
    EnqueueFrame(conn, EncodeFrame(type, request_id, 0, payload));
  }

  void ReplyError(const std::shared_ptr<Conn>& conn, uint64_t request_id,
                  const Status& status) {
    Reply(conn, FrameType::kError, request_id, EncodeErrorResponse(status));
  }

  // -- request execution (worker pool) --------------------------------------

  /// Streams join result pairs as kJoinChunk frames while the join runs.
  class ChunkSink : public PairSink {
   public:
    ChunkSink(Impl* impl, std::shared_ptr<Conn> conn, uint64_t request_id,
              size_t chunk_pairs)
        : impl_(impl),
          conn_(std::move(conn)),
          request_id_(request_id),
          chunk_pairs_(std::clamp<size_t>(chunk_pairs, 1, kMaxJoinChunkPairs)) {
      buffer_.reserve(chunk_pairs_);
    }

    void Emit(PointId a, PointId b) override {
      buffer_.emplace_back(a, b);
      if (buffer_.size() >= chunk_pairs_) FlushChunk();
    }

    void EmitBatch(std::span<const IdPair> pairs) override {
      buffer_.insert(buffer_.end(), pairs.begin(), pairs.end());
      if (buffer_.size() >= chunk_pairs_) FlushChunk();
    }

    /// Sends any buffered tail.  Must precede the kJoinDone frame.  Blocks
    /// on write backpressure when the client reads slower than the join
    /// emits; once the connection dies, remaining chunks are discarded
    /// (the join still runs to completion — PairSink has no abort channel —
    /// but its memory stays bounded by one chunk).
    void FlushChunk() {
      if (buffer_.empty()) return;
      if (!dropped_) {
        if (impl_->EnqueueStreamFrame(
                conn_, EncodeFrame(FrameType::kJoinChunk, request_id_, 0,
                                   EncodeJoinChunk(buffer_)))) {
          total_ += buffer_.size();
          impl_->pairs_streamed.fetch_add(buffer_.size(),
                                          std::memory_order_relaxed);
          GetServiceMetrics().pairs_streamed->Add(buffer_.size());
        } else {
          dropped_ = true;
        }
      }
      buffer_.clear();
    }

    uint64_t total_pairs() const { return total_; }

   private:
    Impl* impl_;
    std::shared_ptr<Conn> conn_;
    uint64_t request_id_;
    size_t chunk_pairs_;
    std::vector<IdPair> buffer_;
    uint64_t total_ = 0;
    bool dropped_ = false;  ///< connection died mid-stream; stop encoding
  };

  /// Terminal response of one request, built by the handler and sent by
  /// ExecuteRequest's tail (after the admission slot is released).
  struct Terminal {
    FrameType type = FrameType::kError;
    std::vector<uint8_t> payload;
  };

  /// Maps a client-requested thread count onto the server's resources.
  /// The request is a hint, never a grant: counts are clamped to the
  /// worker-pool size (ThreadPool::Shared keeps a persistent pool per
  /// distinct count, so an unclamped u32 would let one request spawn
  /// millions of OS threads).
  size_t ResolveThreads(uint32_t requested) const {
    const size_t ceiling =
        config.worker_threads != 0
            ? config.worker_threads
            : std::max<size_t>(1, std::thread::hardware_concurrency());
    if (requested == 0) return ceiling;
    return std::min<size_t>(requested, ceiling);
  }

  // -- per-request observability (docs/observability.md) ---------------------

  /// Clock::time_point -> the trace/profile epoch.  Both Clock and
  /// obs::internal::TraceNowNanos() read std::chrono::steady_clock, so the
  /// admission stamp converts to profile-epoch nanoseconds directly.
  static uint64_t TraceStamp(Clock::time_point tp) {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            tp.time_since_epoch())
            .count());
  }

  /// Observability state of one in-flight request.  ExecuteRequest stamps
  /// the timing fields; the handler calls ArmObs once its request has
  /// parsed (the trace context rides the payload tail, so it is only known
  /// post-parse).  When the request asked for a profile — or the slow-query
  /// log wants one for every over-threshold request — ArmObs opens the
  /// phase tree (queue | parse | execute, contiguous by construction) and
  /// installs the collector into the worker thread's request context, so
  /// every TraceSpan below lands in the tree and ThreadPool::Submit carries
  /// it into parallel-join tasks.
  struct RequestObs {
    const char* span_name = "service.request";
    uint64_t epoch_ns = 0;          ///< admission stamp (profile epoch)
    uint64_t handler_start_ns = 0;  ///< worker picked the request up
    uint64_t cpu_start_ns = 0;      ///< worker thread CPU at pickup
    TraceContext trace;
    std::string index;              ///< for the slow-query log
    std::unique_ptr<obs::RequestProfileCollector> collector;
    uint32_t root = obs::kProfileNoParent;
    uint32_t execute_node = obs::kProfileNoParent;
    bool phases_closed = false;
  };

  void ArmObs(RequestObs* ro, const TraceContext& trace, std::string index) {
    ro->trace = trace;
    ro->index = std::move(index);
    const bool collect = trace.profile() || slow_log != nullptr;
    if (!collect) {
      if (trace.present && trace.trace_id != 0 &&
          obs::internal::CaptureEnabled()) {
        // No tree wanted, but global tracing is on: tag this thread's
        // spans with the request's trace id so the Chrome trace can be
        // filtered per request.  ExecuteRequest resets the slot.
        obs::internal::MutableRequestContext().trace_id = trace.trace_id;
      }
      return;
    }
    if (trace.profile()) GetServiceMetrics().profiled_requests->Add();
    ro->collector = std::make_unique<obs::RequestProfileCollector>(
        trace.trace_id, ro->epoch_ns);
    const uint64_t now = obs::internal::TraceNowNanos();
    ro->root =
        ro->collector->BeginPhase(ro->span_name, obs::kProfileNoParent,
                                  ro->epoch_ns);
    ro->collector->AddPhase("queue", ro->root, ro->epoch_ns,
                            ro->handler_start_ns - ro->epoch_ns, 0);
    ro->collector->AddPhase("parse", ro->root, ro->handler_start_ns,
                            now - ro->handler_start_ns, 0);
    ro->execute_node = ro->collector->BeginPhase("execute", ro->root, now);
    obs::RequestContext& tls = obs::internal::MutableRequestContext();
    tls.trace_id = trace.trace_id;
    tls.collector = ro->collector.get();
    tls.node = ro->execute_node;
  }

  /// Closes the execute phase and the root (idempotent); returns the stamp
  /// used, so Finish(stamp) yields a tree whose root ends exactly where
  /// total_wall_ns does.
  uint64_t CloseObsPhases(RequestObs* ro) {
    const uint64_t now = obs::internal::TraceNowNanos();
    if (ro->collector == nullptr || ro->phases_closed) return now;
    ro->phases_closed = true;
    const uint64_t cpu = obs::ThreadCpuNanos();
    ro->collector->EndPhase(
        ro->execute_node, now,
        cpu >= ro->cpu_start_ns ? cpu - ro->cpu_start_ns : 0);
    ro->collector->EndPhase(ro->root, now, 0);
    return now;
  }

  /// Records one finished request into the slow-query log when it is over
  /// the latency threshold or failed.  `collector` may be null (request
  /// parsed too little to arm) — the entry then carries an empty profile.
  void RecordSlowQuery(const TraceContext& trace, const std::string& index,
                       uint64_t request_id, FrameType op, const Status& status,
                       double wall_us, obs::RequestProfileCollector* collector,
                       uint64_t end_ns) {
    if (slow_log == nullptr) return;
    if (status.ok() &&
        wall_us < static_cast<double>(config.slow_query_us)) {
      return;
    }
    obs::SlowQueryEntry entry;
    entry.trace_id = trace.trace_id;
    entry.request_id = request_id;
    entry.op = static_cast<uint8_t>(op);
    entry.index = index;
    entry.wall_us = static_cast<uint64_t>(wall_us);
    entry.status_code = static_cast<uint32_t>(status.code());
    entry.status_message = status.message();
    if (collector != nullptr) entry.profile = collector->Finish(end_ns);
    slow_log->Record(std::move(entry));
    GetServiceMetrics().slowlog_recorded->Add();
  }

  Status HandleBuildIndex(const Frame& frame, RequestObs* ro, Terminal* out) {
    BuildIndexRequest req;
    SIMJOIN_RETURN_NOT_OK(ParseBuildIndexRequest(frame.payload, &req));
    ArmObs(ro, req.trace, req.name);
    SIMJOIN_ASSIGN_OR_RETURN(Dataset data,
                             Dataset::FromFlat(std::move(req.points), req.dims));
    std::shared_ptr<const IndexSnapshot> snapshot;
    if (req.on_disk) {
      SIMJOIN_ASSIGN_OR_RETURN(snapshot, BuildOnDisk(req, data));
    } else {
      SIMJOIN_ASSIGN_OR_RETURN(
          snapshot,
          IndexSnapshot::Build(req.name, std::move(data), req.config,
                               ResolveThreads(req.num_threads), req.backend));
    }
    // Compaction metrics hook: the observer touches only process-lifetime
    // globals (never the registry or Impl), because a background compaction
    // submitted to the shared pool can outlive both — its task holds the
    // index alive via shared_ptr, not the server.
    if (const UpdatableIndex* upd = snapshot->updatable()) {
      upd->SetCompactionObserver([](double seconds) {
        const ServiceMetrics& m = GetServiceMetrics();
        m.compactions->Add();
        m.compaction_us->Record(seconds * 1e6);
      });
    }
    size_t evicted = 0;
    SIMJOIN_RETURN_NOT_OK(registry.Put(snapshot, &evicted));
    BuildIndexResponse resp;
    resp.num_points = static_cast<uint32_t>(snapshot->dataset().size());
    resp.dims = static_cast<uint32_t>(snapshot->dataset().dims());
    resp.index_bytes = snapshot->memory_bytes();
    resp.registry_bytes = registry.bytes_in_use();
    resp.evicted = static_cast<uint32_t>(evicted);
    resp.build_seconds = snapshot->build_seconds();
    out->type = FrameType::kBuildIndexOk;
    out->payload = EncodeBuildIndexResponse(resp);
    return Status::OK();
  }

  /// On-disk build path: stage the uploaded rows as a binary dataset file,
  /// run the external (sort-runs + merge) segment build, and open the
  /// result memory-mapped — the snapshot admitted to the registry charges
  /// only bookkeeping bytes, so indexes far beyond the byte budget serve
  /// fault-in instead of being rejected.
  Result<std::shared_ptr<const IndexSnapshot>> BuildOnDisk(
      const BuildIndexRequest& req, const Dataset& data) {
    if (config.segment_spill_dir.empty()) {
      return Status::InvalidArgument(
          "on-disk builds require a segment spill directory; start the "
          "server with --spill-dir");
    }
    if (req.backend != BackendKind::kEkdbFlat) {
      return Status::InvalidArgument(
          "on-disk builds support only the tree backend (segments are "
          "serialised flat eps-k-d-B trees)");
    }
    std::string safe = req.name;
    for (char& c : safe) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                      c == '-';
      if (!ok) c = '_';
    }
    const uint64_t seq = on_disk_builds.fetch_add(1) + 1;
    const std::string base =
        config.segment_spill_dir + "/" + safe + ".b" + std::to_string(seq);
    const std::string staged = base + ".sjdb";
    const std::string segment = base + ".seg";
    SIMJOIN_RETURN_NOT_OK(WriteBinaryDataset(data, staged));
    ExternalBuildConfig build;
    build.ekdb = req.config;
    build.temp_dir = config.segment_spill_dir;
    auto built = BuildSegmentExternal(staged, segment, build);
    ::unlink(staged.c_str());  // the segment embeds the dataset section
    SIMJOIN_RETURN_NOT_OK(built.status());
    return IndexSnapshot::OpenMapped(req.name, segment, MmapBackendOptions{});
  }

  /// Parses and resolves one range-query request up to the point where it
  /// could execute: snapshot looked up, dims checked, epsilon resolved and
  /// validated.  Shared by the solo and fused paths so both fail with
  /// byte-identical errors.
  struct ResolvedRangeQuery {
    RangeQueryRequest req;
    std::shared_ptr<const IndexSnapshot> snapshot;
    double eps = 0.0;
    size_t count = 0;  ///< query points in the request
    /// Engaged only for planner-extension requests (req.has_planner); the
    /// legacy path executes through the snapshot's primary, untouched.
    PlannedRange planned;
  };

  /// Precondition: out->req is already parsed (the solo and fused paths
  /// both parse first, so the trace context can be armed before resolution
  /// work is attributed to the request).
  Status ResolveRangeQuery(ResolvedRangeQuery* out) {
    SIMJOIN_ASSIGN_OR_RETURN(out->snapshot, registry.Get(out->req.name));
    const size_t index_dims = out->snapshot->dataset().dims();
    if (out->req.dims != index_dims) {
      return Status::InvalidArgument(
          "query dims " + std::to_string(out->req.dims) + " != index dims " +
          std::to_string(index_dims));
    }
    out->eps = out->req.epsilon == 0.0 ? out->snapshot->config().epsilon
                                       : out->req.epsilon;
    out->count = out->req.queries.size() / out->req.dims;
    // Validate up front (the per-query execution would reject the same way)
    // so a bad radius in a fused batch fails only its own request, with the
    // same error text the unfused path produces.
    if (out->count > 0) {
      SIMJOIN_RETURN_NOT_OK(out->snapshot->ValidateQueryEpsilon(out->eps));
    }
    if (out->req.has_planner) {
      SIMJOIN_ASSIGN_OR_RETURN(
          out->planned,
          out->snapshot->PlanRange(out->eps, out->req.recall,
                                   out->req.backend, RangePlannerOptions{}));
      const ServiceMetrics& metrics = GetServiceMetrics();
      metrics.planner_requests->Add();
      if (out->req.backend != kWireBackendAuto) {
        metrics.planner_forced->Add();
      } else if (out->planned.cache_hit) {
        metrics.planner_cache_hits->Add();
      } else {
        metrics.planner_cache_misses->Add();
      }
      if (out->planned.built_backend) metrics.planner_backend_builds->Add();
      metrics.RoutedCounterFor(out->planned.plan.kind)->Add();
    }
    return Status::OK();
  }

  /// The IndexBackend one resolved request executes on: the planner's pick
  /// for extension requests, the snapshot's primary otherwise.  Lifetime is
  /// carried by the ResolvedRangeQuery (snapshot / planned.backend).
  static const IndexBackend* ExecBackend(const ResolvedRangeQuery& rq) {
    return rq.req.has_planner ? rq.planned.backend.get()
                              : &rq.snapshot->primary();
  }

  /// Human-readable planner decision carried in profiles and slow-log
  /// entries: which backend executed, at what radius, and (for planner
  /// requests) whether the decision came from the plan cache.
  static std::string RangePlanString(const ResolvedRangeQuery& rq) {
    std::string plan = "backend=";
    plan += BackendKindName(rq.req.has_planner ? rq.planned.plan.kind
                                               : rq.snapshot->backend());
    plan += " eps=" + std::to_string(rq.eps);
    if (rq.req.has_planner) {
      plan += " recall_target=" + std::to_string(rq.req.recall);
      plan += rq.planned.cache_hit ? " cache=hit" : " cache=miss";
    } else {
      plan += " route=primary";
    }
    return plan;
  }

  /// Finishes one planner-extension response: canonicalises each id list to
  /// ascending order (so answer bytes do not depend on the routed backend)
  /// and aggregates the per-query recall estimates into one batch figure —
  /// each query's estimated true neighbour count is found/recall, so the
  /// batch estimate is total found over the summed estimates.
  static void FinalizePlannedResponse(const ResolvedRangeQuery& rq,
                                      const std::vector<double>& recalls,
                                      size_t recalls_offset,
                                      RangeQueryResponse* resp) {
    double est_true = 0.0;
    uint64_t found = 0;
    for (size_t q = 0; q < resp->results.size(); ++q) {
      std::sort(resp->results[q].begin(), resp->results[q].end());
      const size_t got = resp->results[q].size();
      const double r = recalls[recalls_offset + q];
      if (got > 0 && r > 0.0) {
        found += got;
        est_true += static_cast<double>(got) / r;
      }
    }
    double achieved =
        found > 0 ? static_cast<double>(found) / est_true
                  : rq.planned.backend->ExpectedRecall(rq.eps);
    resp->has_planner = true;
    resp->achieved_recall = std::min(1.0, std::max(0.0, achieved));
    resp->backend_used = static_cast<uint8_t>(rq.planned.plan.kind);
    resp->plan_cache_hit = rq.planned.cache_hit;
  }

  Status HandleRangeQuery(const Frame& frame, RequestObs* ro, Terminal* out) {
    ResolvedRangeQuery rq;
    SIMJOIN_RETURN_NOT_OK(ParseRangeQueryRequest(frame.payload, &rq.req));
    ArmObs(ro, rq.req.trace, rq.req.name);
    {
      SIMJOIN_TRACE_SPAN("service.phase.resolve");
      SIMJOIN_RETURN_NOT_OK(ResolveRangeQuery(&rq));
    }
    if (ro->collector != nullptr) ro->collector->SetPlan(RangePlanString(rq));
    RangeQueryResponse resp;
    resp.results.resize(rq.count);
    {
      SIMJOIN_TRACE_SPAN("service.phase.query");
      if (!rq.req.has_planner) {
        for (size_t i = 0; i < rq.count; ++i) {
          SIMJOIN_RETURN_NOT_OK(rq.snapshot->RangeQuery(
              rq.req.queries.data() + i * rq.req.dims, rq.eps,
              &resp.results[i], &resp.stats));
        }
      } else {
        std::vector<double> recalls(rq.count, 1.0);
        for (size_t i = 0; i < rq.count; ++i) {
          SIMJOIN_RETURN_NOT_OK(rq.planned.backend->RangeQuery(
              rq.req.queries.data() + i * rq.req.dims, rq.eps,
              &resp.results[i], &resp.stats, &recalls[i]));
        }
        FinalizePlannedResponse(rq, recalls, 0, &resp);
      }
    }
    if (ro->collector != nullptr) {
      obs::AddRequestCounter("query_points", rq.count);
      obs::AddRequestCounter("candidates", resp.stats.candidate_pairs);
      obs::AddRequestCounter("distance_calls", resp.stats.distance_calls);
      obs::AddRequestCounter("results", resp.stats.pairs_emitted);
      if (ro->trace.profile()) {
        // Finish the tree BEFORE encoding: the profile rides inside this
        // very payload, so its root must close here (the sliver spent
        // encoding afterwards is the only uncovered wall time).
        resp.has_profile = true;
        resp.profile = ro->collector->Finish(CloseObsPhases(ro));
      }
    }
    out->type = FrameType::kRangeQueryResult;
    out->payload = EncodeRangeQueryResponse(resp);
    return Status::OK();
  }

  Status HandleSimilarityJoin(const std::shared_ptr<Conn>& conn,
                              const Frame& frame, RequestObs* ro,
                              Terminal* out) {
    SimilarityJoinRequest req;
    SIMJOIN_RETURN_NOT_OK(ParseSimilarityJoinRequest(frame.payload, &req));
    ArmObs(ro, req.trace, req.name_a);
    SIMJOIN_ASSIGN_OR_RETURN(std::shared_ptr<const IndexSnapshot> a,
                             registry.Get(req.name_a));
    // A primary without a native join (the epsilon grid) no longer rejects:
    // JoinBackend lazily builds an ekdb-flat auxiliary over the same
    // dataset and the join streams from that, bit-identical to a
    // tree-primary index.
    SIMJOIN_ASSIGN_OR_RETURN(std::shared_ptr<const IndexBackend> a_join,
                             a->JoinBackend());
    if (a_join->kind() != a->backend()) {
      GetServiceMetrics().planner_join_fallbacks->Add();
    }
    // An updatable primary has no flat tree to hand the join drivers — its
    // SelfJoin merges the base tier, the delta memtable, and the tombstone
    // set itself (canonical ascending-id pairs, bit-identical to a fresh
    // rebuild over the live rows).  Cross-joins are rejected: the other
    // side would be joined against a moving point set.
    if (a_join->flat_tree() == nullptr) {
      if (!req.name_b.empty() && req.name_b != req.name_a) {
        return Status::InvalidArgument(
            "index '" + req.name_a + "' is updatable; cross-index joins "
            "require immutable indexes (flush and rebuild to join)");
      }
      const double upd_build_eps = a_join->config().epsilon;
      const double upd_eps = req.epsilon == 0.0 ? upd_build_eps : req.epsilon;
      SIMJOIN_RETURN_NOT_OK(a_join->ValidateQueryEpsilon(upd_eps));
      ChunkSink sink(this, conn, frame.header.request_id,
                     std::min<size_t>(req.chunk_pairs != 0
                                          ? req.chunk_pairs
                                          : config.join_chunk_pairs,
                                      kMaxJoinChunkPairs));
      JoinStats stats;
      SIMJOIN_RETURN_NOT_OK(a_join->SelfJoin(
          upd_eps, ResolveThreads(req.num_threads), &sink, &stats));
      sink.FlushChunk();
      JoinDone done;
      done.total_pairs = sink.total_pairs();
      done.stats = stats;
      out->type = FrameType::kJoinDone;
      out->payload = EncodeJoinDone(done);
      return Status::OK();
    }
    const FlatEkdbTree& a_tree = *a_join->flat_tree();
    std::shared_ptr<const IndexSnapshot> b;
    std::shared_ptr<const IndexBackend> b_join;
    const FlatEkdbTree* b_tree = nullptr;
    if (!req.name_b.empty() && req.name_b != req.name_a) {
      SIMJOIN_ASSIGN_OR_RETURN(b, registry.Get(req.name_b));
      SIMJOIN_ASSIGN_OR_RETURN(b_join, b->JoinBackend());
      if (b_join->kind() != b->backend()) {
        GetServiceMetrics().planner_join_fallbacks->Add();
      }
      b_tree = b_join->flat_tree();
      if (b_tree == nullptr) {
        return Status::InvalidArgument(
            "index '" + req.name_b + "' is updatable; cross-index joins "
            "require immutable indexes (flush and rebuild to join)");
      }
      if (!FlatEkdbTree::JoinCompatible(a_tree, *b_tree)) {
        return Status::InvalidArgument(
            "indexes '" + req.name_a + "' and '" + req.name_b +
            "' are not join-compatible (epsilon/metric/dims/dim order)");
      }
    }
    const double build_eps = a_tree.config().epsilon;
    const double eps = req.epsilon == 0.0 ? build_eps : req.epsilon;
    const size_t threads = ResolveThreads(req.num_threads);
    const size_t chunk = std::min<size_t>(
        req.chunk_pairs != 0 ? req.chunk_pairs : config.join_chunk_pairs,
        kMaxJoinChunkPairs);
    ChunkSink sink(this, conn, frame.header.request_id, chunk);
    JoinStats stats;
    Status st;
    // The parallel driver joins at build epsilon; narrower radii take the
    // sequential radius-override path.  Either way the emitted pair
    // sequence is the sequential sequence (the parallel engine's
    // deterministic-merge guarantee), so clients cannot tell the difference.
    const bool parallel = threads > 1 && eps == build_eps;
    ParallelJoinConfig pcfg;
    pcfg.num_threads = threads;
    if (b == nullptr) {
      st = parallel ? ParallelFlatEkdbSelfJoin(a_tree, pcfg, &sink, &stats)
           : eps == build_eps ? FlatEkdbSelfJoin(a_tree, &sink, &stats)
                              : FlatEkdbSelfJoinWithEpsilon(a_tree, eps,
                                                            &sink, &stats);
    } else {
      st = parallel
               ? ParallelFlatEkdbJoin(a_tree, *b_tree, pcfg, &sink, &stats)
           : eps == build_eps
               ? FlatEkdbJoin(a_tree, *b_tree, &sink, &stats)
               : FlatEkdbJoinWithEpsilon(a_tree, *b_tree, eps, &sink,
                                         &stats);
    }
    SIMJOIN_RETURN_NOT_OK(st);
    sink.FlushChunk();
    JoinDone done;
    done.total_pairs = sink.total_pairs();
    done.stats = stats;
    out->type = FrameType::kJoinDone;
    out->payload = EncodeJoinDone(done);
    return Status::OK();
  }

  Status HandleStats(const Frame& frame, RequestObs* ro, Terminal* out) {
    StatsRequest req;
    SIMJOIN_RETURN_NOT_OK(ParseStatsRequest(frame.payload, &req));
    ArmObs(ro, TraceContext{}, "");
    StatsResponse resp;
    resp.accepted_connections =
        accepted_connections.load(std::memory_order_relaxed);
    resp.active_connections =
        active_connections.load(std::memory_order_relaxed);
    resp.requests_admitted = requests_admitted.load(std::memory_order_relaxed);
    resp.requests_rejected = requests_rejected.load(std::memory_order_relaxed);
    resp.deadline_expired = deadline_expired.load(std::memory_order_relaxed);
    resp.decode_errors = decode_errors.load(std::memory_order_relaxed);
    resp.pairs_streamed = pairs_streamed.load(std::memory_order_relaxed);
    resp.registry_byte_budget = registry.byte_budget();
    resp.registry_bytes = registry.bytes_in_use();
    resp.registry_evictions = registry.evictions();
    for (const RegistryEntryInfo& entry : registry.List()) {
      IndexInfo info;
      info.name = entry.name;
      info.num_points = static_cast<uint32_t>(entry.num_points);
      info.dims = static_cast<uint32_t>(entry.dims);
      info.bytes = entry.bytes;
      info.hits = entry.hits;
      info.epsilon = entry.epsilon;
      info.metric = entry.metric;
      resp.indexes.push_back(std::move(info));
    }
    // Rev 2: the full registry snapshot (pool, join-phase, and service
    // metrics) rides along after the index list.
    resp.metrics = obs::GlobalMetrics().Snapshot();
    // Rev 3: drain the slow-query ring on request.  With no log configured
    // the block still answers (present, empty) so `simjoin_client slowlog`
    // can tell "nothing recorded" from "server predates the extension".
    if (req.drain_slowlog) {
      resp.has_slowlog = true;
      if (slow_log != nullptr) {
        resp.slowlog = slow_log->Drain(config.slow_query_capacity);
        resp.slowlog_recorded = slow_log->recorded();
        resp.slowlog_evicted = slow_log->evicted();
      }
    }
    out->type = FrameType::kStatsResult;
    out->payload = EncodeStatsResponse(resp);
    return Status::OK();
  }

  Status HandleDropIndex(const Frame& frame, RequestObs* ro, Terminal* out) {
    DropIndexRequest req;
    SIMJOIN_RETURN_NOT_OK(ParseDropIndexRequest(frame.payload, &req));
    ArmObs(ro, TraceContext{}, req.name);
    DropIndexResponse resp;
    resp.found = registry.Erase(req.name);
    out->type = FrameType::kDropIndexOk;
    out->payload = EncodeDropIndexResponse(resp);
    return Status::OK();
  }

  // -- live-update RPCs (docs/updates.md) ------------------------------------

  /// Looks up one index for a live-update RPC.  Updates against an index
  /// whose primary is not the updatable backend fail here — every other
  /// snapshot's structures are immutable by contract and must stay that way.
  Result<std::shared_ptr<const IndexSnapshot>> ResolveUpdatable(
      const std::string& name, const UpdatableIndex** upd) {
    SIMJOIN_ASSIGN_OR_RETURN(std::shared_ptr<const IndexSnapshot> snapshot,
                             registry.Get(name));
    *upd = snapshot->updatable();
    if (*upd == nullptr) {
      return Status::InvalidArgument(
          "index '" + name + "' uses the " +
          std::string(BackendKindName(snapshot->backend())) +
          " backend; live updates need an index built with the updatable "
          "backend");
    }
    return snapshot;
  }

  /// Publishes the delta-tier gauges after an update RPC.  Gauges reflect
  /// the most recently updated index; the per-index breakdown lives in the
  /// Stats index list (bytes are the dynamic registry charge).
  void PublishDeltaGauges(const UpdatableIndex& upd) {
    const UpdatableStats s = upd.Stats();
    const ServiceMetrics& m = GetServiceMetrics();
    m.delta_points->Set(static_cast<int64_t>(s.delta_points));
    m.delta_tombstones->Set(static_cast<int64_t>(s.tombstones));
    m.delta_bytes->Set(static_cast<int64_t>(s.delta_bytes));
  }

  Status HandleInsert(const Frame& frame, RequestObs* ro, Terminal* out) {
    InsertRequest req;
    SIMJOIN_RETURN_NOT_OK(ParseInsertRequest(frame.payload, &req));
    ArmObs(ro, req.trace, req.name);
    const UpdatableIndex* upd = nullptr;
    SIMJOIN_ASSIGN_OR_RETURN(std::shared_ptr<const IndexSnapshot> snapshot,
                             ResolveUpdatable(req.name, &upd));
    const size_t index_dims = snapshot->dataset().dims();
    if (req.dims != index_dims) {
      return Status::InvalidArgument(
          "insert dims " + std::to_string(req.dims) + " != index dims " +
          std::to_string(index_dims));
    }
    const size_t count = req.rows.size() / req.dims;
    SIMJOIN_ASSIGN_OR_RETURN(PointId first,
                             upd->InsertBatch(req.rows.data(), count));
    // The delta grew: re-read this index's dynamic footprint into the LRU
    // accounting (evicting colder entries if the budget is now exceeded).
    registry.RefreshCharge(req.name);
    const UpdatableStats s = upd->Stats();
    const ServiceMetrics& metrics = GetServiceMetrics();
    metrics.updates_inserts->Add();
    metrics.updates_rows_inserted->Add(count);
    PublishDeltaGauges(*upd);
    InsertResponse resp;
    resp.first_id = first;
    resp.count = static_cast<uint32_t>(count);
    resp.delta_points = s.delta_points;
    resp.tombstones = s.tombstones;
    out->type = FrameType::kInsertOk;
    out->payload = EncodeInsertResponse(resp);
    return Status::OK();
  }

  Status HandleRemove(const Frame& frame, RequestObs* ro, Terminal* out) {
    RemoveRequest req;
    SIMJOIN_RETURN_NOT_OK(ParseRemoveRequest(frame.payload, &req));
    ArmObs(ro, req.trace, req.name);
    const UpdatableIndex* upd = nullptr;
    SIMJOIN_ASSIGN_OR_RETURN(std::shared_ptr<const IndexSnapshot> snapshot,
                             ResolveUpdatable(req.name, &upd));
    RemoveResponse resp;
    upd->RemoveBatch(req.ids.data(), req.ids.size(), &resp.removed,
                     &resp.missing);
    registry.RefreshCharge(req.name);
    const UpdatableStats s = upd->Stats();
    const ServiceMetrics& metrics = GetServiceMetrics();
    metrics.updates_removes->Add();
    metrics.updates_rows_removed->Add(resp.removed);
    PublishDeltaGauges(*upd);
    resp.delta_points = s.delta_points;
    resp.tombstones = s.tombstones;
    out->type = FrameType::kRemoveOk;
    out->payload = EncodeRemoveResponse(resp);
    return Status::OK();
  }

  Status HandleFlush(const Frame& frame, RequestObs* ro, Terminal* out) {
    FlushRequest req;
    SIMJOIN_RETURN_NOT_OK(ParseFlushRequest(frame.payload, &req));
    ArmObs(ro, req.trace, req.name);
    const UpdatableIndex* upd = nullptr;
    SIMJOIN_ASSIGN_OR_RETURN(std::shared_ptr<const IndexSnapshot> snapshot,
                             ResolveUpdatable(req.name, &upd));
    SIMJOIN_ASSIGN_OR_RETURN(bool compacted, upd->Flush());
    registry.RefreshCharge(req.name);
    const UpdatableStats s = upd->Stats();
    GetServiceMetrics().updates_flushes->Add();
    PublishDeltaGauges(*upd);
    FlushResponse resp;
    resp.compacted = compacted;
    resp.base_points = s.base_points;
    resp.delta_points = s.delta_points;
    resp.tombstones = s.tombstones;
    resp.index_bytes = snapshot->memory_bytes();
    out->type = FrameType::kFlushOk;
    out->payload = EncodeFlushResponse(resp);
    return Status::OK();
  }

  /// Runs one admitted request on a worker thread.
  void ExecuteRequest(const std::shared_ptr<Conn>& conn, const Frame& frame,
                      Clock::time_point admitted_at) {
    if (config.handler_delay_ms_for_testing > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(config.handler_delay_ms_for_testing));
    }
    SIMJOIN_TRACE_SPAN(RequestSpanName(frame.header.type));
    RequestObs ro;
    ro.span_name = RequestSpanName(frame.header.type);
    ro.epoch_ns = TraceStamp(admitted_at);
    ro.handler_start_ns = obs::internal::TraceNowNanos();
    ro.cpu_start_ns = obs::ThreadCpuNanos();
    Terminal term;
    Status request_status;
    const uint32_t deadline = frame.header.deadline_ms;
    if (deadline > 0 && ElapsedMs(admitted_at) > deadline) {
      deadline_expired.fetch_add(1, std::memory_order_relaxed);
      GetServiceMetrics().deadline_expired->Add();
      request_status = Status::DeadlineExceeded(
          "deadline of " + std::to_string(deadline) + " ms expired after " +
          std::to_string(ElapsedMs(admitted_at)) + " ms");
      term.payload = EncodeErrorResponse(request_status);
    } else {
      Status st;
      switch (frame.header.type) {
        case FrameType::kBuildIndex:
          st = HandleBuildIndex(frame, &ro, &term);
          break;
        case FrameType::kRangeQuery:
          st = HandleRangeQuery(frame, &ro, &term);
          break;
        case FrameType::kSimilarityJoin:
          st = HandleSimilarityJoin(conn, frame, &ro, &term);
          break;
        case FrameType::kStats:
          st = HandleStats(frame, &ro, &term);
          break;
        case FrameType::kDropIndex:
          st = HandleDropIndex(frame, &ro, &term);
          break;
        case FrameType::kInsert:
          st = HandleInsert(frame, &ro, &term);
          break;
        case FrameType::kRemove:
          st = HandleRemove(frame, &ro, &term);
          break;
        case FrameType::kFlush:
          st = HandleFlush(frame, &ro, &term);
          break;
        default:
          st = Status::Internal("request type routed to worker unexpectedly");
          break;
      }
      if (!st.ok()) {
        term.type = FrameType::kError;
        term.payload = EncodeErrorResponse(st);
      }
      request_status = std::move(st);
    }
    // The worker thread is about to move on: whatever the handler (or
    // ArmObs) left in the request context must not leak into the next
    // request — or into a background task submitted later from this thread.
    obs::internal::MutableRequestContext() = obs::RequestContext{};
    // A response the peer would reject (or that would overflow the u32
    // size field) must fail loudly here, not desync the stream: replace it
    // with an error telling the client to split its batch.
    if (term.payload.size() > config.max_frame_payload) {
      term.type = FrameType::kError;
      term.payload = EncodeErrorResponse(Status::OutOfRange(
          "response payload of " + std::to_string(term.payload.size()) +
          " bytes exceeds the " + std::to_string(config.max_frame_payload) +
          "-byte frame limit; split the request into smaller batches"));
    }
    std::vector<uint8_t> bytes =
        EncodeFrame(term.type, frame.header.request_id, 0, term.payload);
    // Free the admission slot BEFORE the response becomes visible: a client
    // that sends its next request the moment it reads this response must
    // find the slot open, not a stale count (false kRetryAfter).
    inflight.fetch_sub(1, std::memory_order_acq_rel);
    const ServiceMetrics& metrics = GetServiceMetrics();
    metrics.inflight->Add(-1);
    const double wall_us = ElapsedUs(admitted_at);
    if (obs::Histogram* hist = metrics.LatencyFor(frame.header.type)) {
      hist->Record(wall_us);
    }
    RecordSlowQuery(ro.trace, ro.index, frame.header.request_id,
                    frame.header.type, request_status, wall_us,
                    ro.collector.get(), CloseObsPhases(&ro));
    EnqueueFrame(conn, std::move(bytes));
  }

  // -- fused range-query execution -------------------------------------------

  /// Runs one fused batch of admitted range queries on a worker thread.
  ///
  /// Each entry is resolved exactly as the solo path would (same parse,
  /// lookup, dims, and epsilon errors); the viable ones are grouped by index
  /// snapshot and executed through RangeQueryBatch, which plans every
  /// query's leaf windows, sorts them by arena position, and sweeps the
  /// coordinate arena once with the strided SIMD kernels.  Responses are
  /// bit-identical to solo execution: same id order, same per-request
  /// JoinStats (RangeQueryBatch attributes kernel counters per query).
  void ExecuteFusedBatch(std::vector<FusionEntry> entries) {
    if (config.handler_delay_ms_for_testing > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(config.handler_delay_ms_for_testing));
    }
    SIMJOIN_TRACE_SPAN("service.fusion.sweep");
    const ServiceMetrics& metrics = GetServiceMetrics();
    fusion_batches.fetch_add(1, std::memory_order_relaxed);
    fusion_fused_queries.fetch_add(entries.size(), std::memory_order_relaxed);
    metrics.fusion_batches->Add();
    metrics.fusion_fused_queries->Add(entries.size());
    metrics.fusion_batch_size->Record(static_cast<double>(entries.size()));
    for (const FusionEntry& entry : entries) {
      metrics.fusion_wait_us->Record(ElapsedUs(entry.admitted_at));
    }

    const size_t n = entries.size();
    std::vector<Terminal> terminals(n);
    std::vector<ResolvedRangeQuery> resolved(n);
    std::vector<bool> viable(n, false);
    // Per-member observability: a member that asked for a profile (or that
    // the slow-query log will want) gets its own collector, and the shared
    // sweep is attributed retroactively to every member — each profile
    // shows the full batch sweep interval, because that IS the wall time
    // the member spent executing.  Phases stay contiguous per member:
    // queue | resolve | wait (grouping + other members) | sweep | finalize.
    struct EntryObs {
      TraceContext trace;
      std::string index;
      std::unique_ptr<obs::RequestProfileCollector> collector;
      uint32_t root = obs::kProfileNoParent;
      uint64_t epoch_ns = 0;
      uint64_t resolve_end_ns = 0;
      Status status;
      bool closed = false;
    };
    std::vector<EntryObs> eobs(n);
    for (size_t i = 0; i < n; ++i) {
      const Frame& frame = entries[i].frame;
      eobs[i].epoch_ns = TraceStamp(entries[i].admitted_at);
      const uint32_t deadline = frame.header.deadline_ms;
      if (deadline > 0 && ElapsedMs(entries[i].admitted_at) > deadline) {
        deadline_expired.fetch_add(1, std::memory_order_relaxed);
        metrics.deadline_expired->Add();
        eobs[i].status = Status::DeadlineExceeded(
            "deadline of " + std::to_string(deadline) + " ms expired after " +
            std::to_string(ElapsedMs(entries[i].admitted_at)) + " ms");
        terminals[i].payload = EncodeErrorResponse(eobs[i].status);
        continue;
      }
      const uint64_t resolve_start = obs::internal::TraceNowNanos();
      Status st = ParseRangeQueryRequest(frame.payload, &resolved[i].req);
      if (st.ok()) {
        eobs[i].trace = resolved[i].req.trace;
        eobs[i].index = resolved[i].req.name;
        if (eobs[i].trace.profile() || slow_log != nullptr) {
          if (eobs[i].trace.profile()) metrics.profiled_requests->Add();
          eobs[i].collector =
              std::make_unique<obs::RequestProfileCollector>(
                  eobs[i].trace.trace_id, eobs[i].epoch_ns);
          eobs[i].root = eobs[i].collector->BeginPhase(
              "service.range_query", obs::kProfileNoParent, eobs[i].epoch_ns);
          eobs[i].collector->AddPhase("queue", eobs[i].root, eobs[i].epoch_ns,
                                      resolve_start - eobs[i].epoch_ns, 0);
        }
        st = ResolveRangeQuery(&resolved[i]);
      }
      if (eobs[i].collector != nullptr) {
        eobs[i].resolve_end_ns = obs::internal::TraceNowNanos();
        eobs[i].collector->AddPhase("resolve", eobs[i].root, resolve_start,
                                    eobs[i].resolve_end_ns - resolve_start,
                                    0);
        eobs[i].collector->SetPlan(st.ok() ? RangePlanString(resolved[i])
                                           : "unresolved");
      }
      if (!st.ok()) {
        eobs[i].status = st;
        terminals[i].payload = EncodeErrorResponse(st);
        continue;
      }
      viable[i] = true;
    }

    // Group viable requests by the backend that executes them (the
    // planner's pick for extension requests, the snapshot primary
    // otherwise); requests on the same structure fuse among themselves, so
    // legacy and planner-routed-to-primary traffic against one index still
    // share a sweep.  Raw pointers are safe as group keys: each resolved
    // entry keeps its snapshot (and any planner backend) alive for the
    // whole batch.  Linear scan: batches hold few distinct backends.
    struct BackendGroup {
      const IndexBackend* backend;
      std::vector<size_t> members;  ///< entry indexes, admission order
    };
    std::vector<BackendGroup> groups;
    for (size_t i = 0; i < n; ++i) {
      if (!viable[i]) continue;
      const IndexBackend* backend = ExecBackend(resolved[i]);
      auto it = std::find_if(
          groups.begin(), groups.end(),
          [backend](const BackendGroup& g) { return g.backend == backend; });
      if (it == groups.end()) {
        groups.push_back(BackendGroup{backend, {}});
        it = std::prev(groups.end());
      }
      it->members.push_back(i);
    }

    for (const BackendGroup& bg : groups) {
      std::vector<RangeQuerySpec> specs;
      bool any_planner = false;
      for (const size_t i : bg.members) {
        const ResolvedRangeQuery& rq = resolved[i];
        any_planner = any_planner || rq.req.has_planner;
        for (size_t q = 0; q < rq.count; ++q) {
          specs.push_back(RangeQuerySpec{
              rq.req.queries.data() + q * rq.req.dims, rq.eps});
        }
      }
      std::vector<std::vector<PointId>> results;
      std::vector<JoinStats> stats;
      std::vector<double> recalls;
      Status st;
      const uint64_t sweep_start_ns = obs::internal::TraceNowNanos();
      const uint64_t sweep_cpu_start = obs::ThreadCpuNanos();
      if (!specs.empty()) {
        st = bg.backend->RangeQueryBatch(specs.data(), specs.size(), &results,
                                         &stats,
                                         any_planner ? &recalls : nullptr);
      }
      const uint64_t sweep_end_ns = obs::internal::TraceNowNanos();
      const uint64_t sweep_cpu = obs::ThreadCpuNanos() - sweep_cpu_start;
      size_t cursor = 0;
      for (const size_t i : bg.members) {
        if (!st.ok()) {
          // Cannot happen after per-request validation, but if the batch
          // engine ever rejects, every member reports the failure rather
          // than silently dropping.
          viable[i] = false;
          eobs[i].status = st;
          terminals[i].payload = EncodeErrorResponse(st);
          continue;
        }
        const ResolvedRangeQuery& rq = resolved[i];
        RangeQueryResponse resp;
        resp.results.reserve(rq.count);
        const size_t first = cursor;
        for (size_t q = 0; q < rq.count; ++q, ++cursor) {
          resp.results.push_back(std::move(results[cursor]));
          resp.stats.Merge(stats[cursor]);
        }
        if (rq.req.has_planner) {
          FinalizePlannedResponse(rq, recalls, first, &resp);
        }
        if (obs::RequestProfileCollector* col = eobs[i].collector.get()) {
          // The group sweep is one shared interval; every member's tree
          // carries it whole (the member really did wait for all of it).
          col->AddPhase("wait", eobs[i].root, eobs[i].resolve_end_ns,
                        sweep_start_ns - eobs[i].resolve_end_ns, 0);
          col->AddPhase("fused_sweep", eobs[i].root, sweep_start_ns,
                        sweep_end_ns - sweep_start_ns, sweep_cpu);
          col->AddCounter("fused_batch_requests", bg.members.size());
          col->AddCounter("query_points", rq.count);
          col->AddCounter("candidates", resp.stats.candidate_pairs);
          col->AddCounter("distance_calls", resp.stats.distance_calls);
          col->AddCounter("results", resp.stats.pairs_emitted);
          const uint64_t fin = obs::internal::TraceNowNanos();
          col->AddPhase("finalize", eobs[i].root, sweep_end_ns,
                        fin - sweep_end_ns, 0);
          col->EndPhase(eobs[i].root, fin, 0);
          eobs[i].closed = true;
          if (eobs[i].trace.profile()) {
            resp.has_profile = true;
            resp.profile = col->Finish(fin);
          }
        }
        terminals[i].type = FrameType::kRangeQueryResult;
        terminals[i].payload = EncodeRangeQueryResponse(resp);
      }
    }

    // Scatter, in admission order, with the same tail the solo path runs:
    // oversize replacement, slot release before the response is visible,
    // latency charged from admission (buffer wait included).  Io-thread
    // wakes are coalesced to one per io thread per batch.
    std::vector<bool> wake_io(io.size(), false);
    for (size_t i = 0; i < n; ++i) {
      Terminal& term = terminals[i];
      if (term.payload.size() > config.max_frame_payload) {
        term.type = FrameType::kError;
        term.payload = EncodeErrorResponse(Status::OutOfRange(
            "response payload of " + std::to_string(term.payload.size()) +
            " bytes exceeds the " + std::to_string(config.max_frame_payload) +
            "-byte frame limit; split the request into smaller batches"));
      }
      std::vector<uint8_t> bytes = EncodeFrame(
          term.type, entries[i].frame.header.request_id, 0, term.payload);
      inflight.fetch_sub(1, std::memory_order_acq_rel);
      metrics.inflight->Add(-1);
      const double wall_us = ElapsedUs(entries[i].admitted_at);
      metrics.latency_range_query->Record(wall_us);
      uint64_t end_ns = obs::internal::TraceNowNanos();
      if (eobs[i].collector != nullptr && !eobs[i].closed) {
        // Deadline-expired / unresolvable member: its tree never reached
        // the sweep, close the root here so the slow-log profile is whole.
        eobs[i].collector->EndPhase(eobs[i].root, end_ns, 0);
        eobs[i].closed = true;
      }
      RecordSlowQuery(eobs[i].trace, eobs[i].index,
                      entries[i].frame.header.request_id,
                      FrameType::kRangeQuery, eobs[i].status, wall_us,
                      eobs[i].collector.get(), end_ns);
      EnqueueFrameNoWake(entries[i].conn, std::move(bytes));
      wake_io[entries[i].conn->io_index] = true;
    }
    // pending drops only after every response of the batch is queued (the
    // shutdown drain invariant), then each touched io thread is woken once.
    pending.fetch_sub(n, std::memory_order_acq_rel);
    for (size_t idx = 0; idx < io.size(); ++idx) {
      if (wake_io[idx]) io[idx]->wake.Notify();
    }
  }

  /// Collector thread: parks admitted range queries until the batch fills
  /// or the oldest one's wait budget expires, then hands the batch to the
  /// worker pool.  While a batch executes, the next one accumulates — under
  /// load that is what grows batch sizes (and amortisation) automatically.
  void FusionLoop() {
    std::unique_lock<std::mutex> lock(fusion_mu);
    while (true) {
      fusion_cv.wait(lock, [&] {
        return !fusion_queue.empty() || stop.load(std::memory_order_relaxed);
      });
      if (fusion_queue.empty()) break;  // stop requested, fully drained
      const Clock::time_point flush_at =
          fusion_queue.front().admitted_at +
          std::chrono::microseconds(config.fusion_wait_us);
      fusion_cv.wait_until(lock, flush_at, [&] {
        return fusion_queue.size() >= config.fusion_max_batch ||
               stop.load(std::memory_order_relaxed);
      });
      // Budget spent but the workers are saturated with fused batches:
      // keep accumulating until one completes (the worker notifies), the
      // buffer fills, or stop.  One in-flight batch per worker thread keeps
      // multicore pools busy without queueing up undersized batches.
      const size_t max_outstanding = std::max<size_t>(
          1, config.worker_threads != 0
                 ? config.worker_threads
                 : std::thread::hardware_concurrency());
      fusion_cv.wait(lock, [&] {
        return fusion_queue.size() >= config.fusion_max_batch ||
               fusion_executing.load(std::memory_order_acquire) <
                   max_outstanding ||
               stop.load(std::memory_order_relaxed);
      });
      const bool full = fusion_queue.size() >= config.fusion_max_batch;
      const size_t take = std::min(fusion_queue.size(), config.fusion_max_batch);
      std::vector<FusionEntry> batch;
      batch.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(fusion_queue.front()));
        fusion_queue.pop_front();
      }
      lock.unlock();
      if (full) {
        fusion_batch_full.fetch_add(1, std::memory_order_relaxed);
        GetServiceMetrics().fusion_batch_full->Add();
      } else {
        fusion_wait_expired.fetch_add(1, std::memory_order_relaxed);
        GetServiceMetrics().fusion_wait_expired->Add();
      }
      fusion_executing.fetch_add(1, std::memory_order_acq_rel);
      group->Run([this, batch = std::move(batch)]() mutable {
        ExecuteFusedBatch(std::move(batch));
        fusion_executing.fetch_sub(1, std::memory_order_acq_rel);
        // Lock/unlock pairs with the collector's predicate so this wakeup
        // cannot be lost between its check and its wait.
        { std::lock_guard<std::mutex> relock(fusion_mu); }
        fusion_cv.notify_one();
      });
      lock.lock();
    }
    // Frames racing in after this point fall back to solo dispatch; setting
    // the flag under the lock makes "parked but never flushed" impossible.
    fusion_exited = true;
  }

  // -- frame routing (io threads) --------------------------------------------

  /// Decides what to do with one complete request frame: answer inline
  /// (ping/shutdown), reject (overload / stopping / wrong direction), or
  /// admit and dispatch to the worker pool.
  void HandleFrame(const std::shared_ptr<Conn>& conn, Frame frame) {
    const FrameHeader& h = frame.header;
    if (!IsRequestFrameType(h.type)) {
      ReplyError(conn, h.request_id,
                 Status::InvalidArgument("response-type frame sent to server"));
      conn->close_after_flush = true;
      return;
    }
    switch (h.type) {
      case FrameType::kPing:
        Reply(conn, FrameType::kPong, h.request_id, {});
        return;
      case FrameType::kShutdown:
        Reply(conn, FrameType::kShutdownOk, h.request_id, {});
        RequestStop();
        return;
      default:
        break;
    }
    if (stop.load(std::memory_order_relaxed)) {
      ReplyError(conn, h.request_id,
                 Status::Unavailable("server is shutting down"));
      return;
    }
    // Admission gate: bounded in-flight requests; beyond the bound the
    // client gets an immediate retry hint instead of a queue slot.
    if (inflight.fetch_add(1, std::memory_order_acq_rel) >=
        config.max_inflight) {
      inflight.fetch_sub(1, std::memory_order_acq_rel);
      requests_rejected.fetch_add(1, std::memory_order_relaxed);
      GetServiceMetrics().retry_after->Add();
      Reply(conn, FrameType::kRetryAfter, h.request_id,
            EncodeRetryAfterResponse(config.retry_after_ms));
      return;
    }
    requests_admitted.fetch_add(1, std::memory_order_relaxed);
    GetServiceMetrics().requests_admitted->Add();
    GetServiceMetrics().inflight->Add(1);
    pending.fetch_add(1, std::memory_order_acq_rel);
    const Clock::time_point admitted_at = Clock::now();
    if (config.fusion_enabled && h.type == FrameType::kRangeQuery) {
      bool parked = false;
      bool notify = false;
      {
        std::lock_guard<std::mutex> lock(fusion_mu);
        if (!fusion_exited) {
          fusion_queue.push_back(FusionEntry{conn, std::move(frame),
                                             admitted_at});
          parked = true;
          // The collector only sleeps on two edges: queue empty (waiting
          // for a first entry) and batch not yet full (waiting out the
          // budget).  Notifying on just those transitions spares a futex
          // wake per request in between.
          notify = fusion_queue.size() == 1 ||
                   fusion_queue.size() >= config.fusion_max_batch;
        }
      }
      if (parked) {
        if (notify) fusion_cv.notify_one();
        return;
      }
      // The collector already drained and exited (shutdown race): fall
      // through to solo dispatch so the admitted request is still answered.
    }
    group->Run([this, conn, frame = std::move(frame), admitted_at]() {
      ExecuteRequest(conn, frame, admitted_at);
      // pending drops strictly after the terminal response is queued, so
      // the drain-on-shutdown condition (pending == 0 and empty write
      // queues) can never exit with a response still unqueued.
      pending.fetch_sub(1, std::memory_order_acq_rel);
      io[conn->io_index]->wake.Notify();
    });
  }

  // -- io loop ----------------------------------------------------------------

  bool HasPendingWrites(const std::shared_ptr<Conn>& conn) {
    std::lock_guard<std::mutex> lock(conn->write_mu);
    return !conn->write_queue.empty();
  }

  /// Drains as much of the write queue as the socket accepts.  On a hard
  /// socket error the connection is marked dead and its queue discarded —
  /// nothing can reach the peer any more, and a retained queue would wedge
  /// both DrainFinished and the shutdown drain (and any worker blocked on
  /// write backpressure).  Returns false on that error (caller closes).
  bool FlushWrites(const std::shared_ptr<Conn>& conn) {
    bool ok = true;
    bool freed = false;
    {
      std::lock_guard<std::mutex> lock(conn->write_mu);
      while (!conn->write_queue.empty()) {
        const std::vector<uint8_t>& front = conn->write_queue.front();
        size_t sent = 0;
        const Status st = conn->sock.SendSome(
            front.data() + conn->write_offset,
            front.size() - conn->write_offset, &sent);
        if (!st.ok()) {
          conn->dead = true;
          conn->write_queue.clear();
          conn->write_offset = 0;
          conn->queued_bytes = 0;
          ok = false;
          freed = true;
          break;
        }
        if (sent == 0) break;  // kernel buffer full; wait for POLLOUT
        GetServiceMetrics().bytes_out->Add(sent);
        conn->write_offset += sent;
        if (conn->write_offset == front.size()) {
          conn->queued_bytes -= front.size();
          conn->write_queue.pop_front();
          conn->write_offset = 0;
          freed = true;
        }
      }
    }
    if (freed) conn->write_cv.notify_all();
    return ok;
  }

  /// Poisons a connection whose socket failed: further writes are dropped,
  /// queued bytes discarded, and any worker blocked on backpressure woken.
  void MarkDead(const std::shared_ptr<Conn>& conn) {
    {
      std::lock_guard<std::mutex> lock(conn->write_mu);
      conn->dead = true;
      conn->write_queue.clear();
      conn->write_offset = 0;
      conn->queued_bytes = 0;
    }
    conn->write_cv.notify_all();
  }

  bool IsDead(const std::shared_ptr<Conn>& conn) {
    std::lock_guard<std::mutex> lock(conn->write_mu);
    return conn->dead;
  }

  void CloseConn(const std::shared_ptr<Conn>& conn) {
    MarkDead(conn);
    conn->sock.Close();
    active_connections.fetch_sub(1, std::memory_order_relaxed);
  }

  void RequestStop() {
    stop.store(true, std::memory_order_seq_cst);
    // Lock/unlock pairs the store with the collector's predicate check, so
    // the wakeup below can never race into a lost notify.
    { std::lock_guard<std::mutex> lock(fusion_mu); }
    fusion_cv.notify_all();
    for (auto& t : io) t->wake.Notify();
  }

  /// Accepts every pending connection and hands each to an io thread
  /// round-robin.  Only io thread 0 calls this.
  void AcceptPending(std::vector<std::shared_ptr<Conn>>* own_conns) {
    while (true) {
      Result<TcpSocket> accepted = listener.Accept();
      if (!accepted.ok()) {
        SIMJOIN_LOG(Warning) << "accept: " << accepted.status().ToString();
        return;
      }
      if (!accepted->valid()) return;  // drained
      accepted_connections.fetch_add(1, std::memory_order_relaxed);
      active_connections.fetch_add(1, std::memory_order_relaxed);
      const size_t target =
          next_io.fetch_add(1, std::memory_order_relaxed) % io.size();
      auto conn = std::make_shared<Conn>(std::move(*accepted),
                                         config.max_frame_payload);
      conn->io_index = target;
      if (target == 0) {
        own_conns->push_back(std::move(conn));
      } else {
        {
          std::lock_guard<std::mutex> lock(io[target]->incoming_mu);
          io[target]->incoming.push_back(std::move(conn));
        }
        io[target]->wake.Notify();
      }
    }
  }

  /// Reads whatever the socket has, feeds the decoder, and routes complete
  /// frames.  Returns false when the connection should close (EOF, socket
  /// error, or a poisoned frame stream).
  bool DrainReadable(const std::shared_ptr<Conn>& conn) {
    if (conn->close_after_flush) return true;  // stream already poisoned
    uint8_t buf[64 << 10];
    bool keep_open = true;
    while (true) {
      size_t n = 0;
      bool eof = false;
      if (!conn->sock.RecvSome(buf, sizeof(buf), &n, &eof).ok()) {
        MarkDead(conn);  // hard error, not EOF: queued bytes are undeliverable
        return false;
      }
      if (n > 0) {
        conn->decoder.Append(buf, n);
        GetServiceMetrics().bytes_in->Add(n);
      }
      if (eof) keep_open = false;
      if (n == 0) break;
    }
    while (true) {
      Frame frame;
      bool got = false;
      const Status st = conn->decoder.Next(&frame, &got);
      if (!st.ok()) {
        // Corrupt stream: frame boundaries are gone, so report once and
        // hang up (flushing the error frame first).
        decode_errors.fetch_add(1, std::memory_order_relaxed);
        GetServiceMetrics().decode_errors->Add();
        ReplyError(conn, 0, st);
        conn->close_after_flush = true;
        return true;
      }
      if (!got) break;
      HandleFrame(conn, std::move(frame));
    }
    return keep_open;
  }

  void IoLoop(size_t index) {
    IoThread& self = *io[index];
    std::vector<std::shared_ptr<Conn>> conns;
    std::vector<pollfd> fds;
    bool listener_open = index == 0;
    while (true) {
      {
        std::lock_guard<std::mutex> lock(self.incoming_mu);
        for (auto& c : self.incoming) conns.push_back(std::move(c));
        self.incoming.clear();
      }
      const bool stopping = stop.load(std::memory_order_seq_cst);
      if (listener_open && stopping) {
        listener.Close();
        listener_open = false;
      }

      fds.clear();
      fds.push_back(pollfd{self.wake.read_fd(), POLLIN, 0});
      if (listener_open) fds.push_back(pollfd{listener.fd(), POLLIN, 0});
      const size_t first_conn = fds.size();
      for (const auto& conn : conns) {
        short events = POLLIN;
        if (HasPendingWrites(conn)) events |= POLLOUT;
        fds.push_back(pollfd{conn->sock.fd(), events, 0});
      }

      ::poll(fds.data(), fds.size(), 25);
      self.wake.Drain();
      if (listener_open && (fds[1].revents & POLLIN) != 0) {
        AcceptPending(&conns);
      }

      for (size_t i = 0; i < conns.size();) {
        const std::shared_ptr<Conn>& conn = conns[i];
        const short revents =
            first_conn + i < fds.size() ? fds[first_conn + i].revents : 0;
        bool keep = true;
        if ((revents & (POLLERR | POLLNVAL)) != 0) {
          MarkDead(conn);
          keep = false;
        }
        if (keep && (revents & (POLLIN | POLLHUP)) != 0) {
          keep = DrainReadable(conn);
        }
        if (!FlushWrites(conn)) keep = false;
        // A stalled stream reader is killed by EnqueueStreamFrame (dead set
        // from a worker thread); notice it here so the conn gets closed.
        if (keep && IsDead(conn)) keep = false;
        if (keep && conn->close_after_flush && !HasPendingWrites(conn)) {
          keep = false;
        }
        // A peer that half-closed (EOF) still gets its queued responses.
        if (!keep && DrainFinished(conn)) {
          CloseConn(conn);
          conns.erase(conns.begin() + static_cast<ptrdiff_t>(i));
          // fds indexes are stale for the rest of this sweep; the next
          // loop iteration rebuilds them.  Treat remaining conns as
          // event-free this round.
          fds.resize(first_conn);
          continue;
        }
        if (!keep) conn->close_after_flush = true;
        ++i;
      }

      if (stopping && pending.load(std::memory_order_seq_cst) == 0) {
        bool all_flushed = true;
        for (const auto& conn : conns) {
          if (HasPendingWrites(conn)) {
            all_flushed = false;
            break;
          }
        }
        if (all_flushed) break;
      }
    }
    for (const auto& conn : conns) CloseConn(conn);
    conns.clear();
  }

  /// True when it is safe to drop the connection: nothing queued.  Error
  /// paths (FlushWrites/DrainReadable failures, POLLERR, stream stalls)
  /// clear the queue when they set the dead flag, so a failed socket never
  /// lingers with undeliverable bytes.
  bool DrainFinished(const std::shared_ptr<Conn>& conn) {
    return !HasPendingWrites(conn);
  }
};

Server::Server() = default;

Server::~Server() {
  Shutdown();
  Wait();
}

Result<std::unique_ptr<Server>> Server::Start(const ServerConfig& config) {
  std::unique_ptr<Server> server(new Server());
  server->impl_ = std::make_unique<Impl>(config);
  Impl& impl = *server->impl_;
  if (impl.config.io_threads == 0) impl.config.io_threads = 1;
  SIMJOIN_RETURN_NOT_OK(
      impl.listener.Listen(impl.config.host, impl.config.port));
  impl.pool = &ThreadPool::Shared(impl.config.worker_threads);
  impl.group = std::make_unique<TaskGroup>(impl.pool);
  for (size_t i = 0; i < impl.config.io_threads; ++i) {
    auto t = std::make_unique<Impl::IoThread>();
    SIMJOIN_RETURN_NOT_OK(t->wake.Open());
    impl.io.push_back(std::move(t));
  }
  for (size_t i = 0; i < impl.io.size(); ++i) {
    impl.io[i]->thread = std::thread([&impl, i]() { impl.IoLoop(i); });
  }
  if (impl.config.fusion_enabled) {
    if (impl.config.fusion_max_batch == 0) impl.config.fusion_max_batch = 1;
    impl.fusion_thread = std::thread([&impl]() { impl.FusionLoop(); });
  }
  return server;
}

uint16_t Server::port() const { return impl_->listener.port(); }

void Server::Shutdown() {
  if (impl_ != nullptr) impl_->RequestStop();
}

void Server::Wait() {
  if (impl_ == nullptr) return;
  std::lock_guard<std::mutex> lock(impl_->join_mu);
  if (impl_->joined) return;
  for (auto& t : impl_->io) {
    if (t->thread.joinable()) t->thread.join();
  }
  if (impl_->fusion_thread.joinable()) impl_->fusion_thread.join();
  // Io threads only exit once inflight hit zero, so this returns promptly.
  // group is null when Start() failed before creating it (e.g. the bind
  // failed) and its partially built Server is being destroyed.
  if (impl_->group != nullptr) impl_->group->Wait();
  impl_->listener.Close();
  impl_->joined = true;
}

ServerCounters Server::counters() const {
  const Impl& impl = *impl_;
  ServerCounters c;
  c.accepted_connections =
      impl.accepted_connections.load(std::memory_order_relaxed);
  c.active_connections =
      impl.active_connections.load(std::memory_order_relaxed);
  c.requests_admitted =
      impl.requests_admitted.load(std::memory_order_relaxed);
  c.requests_rejected =
      impl.requests_rejected.load(std::memory_order_relaxed);
  c.deadline_expired = impl.deadline_expired.load(std::memory_order_relaxed);
  c.decode_errors = impl.decode_errors.load(std::memory_order_relaxed);
  c.pairs_streamed = impl.pairs_streamed.load(std::memory_order_relaxed);
  c.write_stall_disconnects =
      impl.write_stall_disconnects.load(std::memory_order_relaxed);
  c.fusion_batches = impl.fusion_batches.load(std::memory_order_relaxed);
  c.fusion_fused_queries =
      impl.fusion_fused_queries.load(std::memory_order_relaxed);
  c.fusion_batch_full =
      impl.fusion_batch_full.load(std::memory_order_relaxed);
  c.fusion_wait_expired =
      impl.fusion_wait_expired.load(std::memory_order_relaxed);
  return c;
}

IndexRegistry& Server::registry() { return impl_->registry; }

}  // namespace simjoin
