#include "service/client.h"

#include <chrono>
#include <thread>
#include <utility>

namespace simjoin {

namespace {

/// Ensures an encoded request carries a trace context: when the caller did
/// not set one, a generated id is appended.  Appending after encoding is
/// sound because the trace suffix is defined as the final bytes of every
/// request payload that supports it.
std::vector<uint8_t> WithTrace(const TraceContext& trace,
                               std::vector<uint8_t> payload) {
  if (!trace.present) {
    TraceContext generated;
    generated.present = true;
    generated.trace_id = GenerateTraceId();
    AppendTraceContext(generated, &payload);
  }
  return payload;
}

}  // namespace

Result<Client> Client::Connect(const ClientConfig& config) {
  Client client(config);
  SIMJOIN_ASSIGN_OR_RETURN(client.sock_,
                           TcpSocket::Connect(config.host, config.port));
  return client;
}

Status Client::SendRequest(FrameType type, uint64_t request_id,
                           std::span<const uint8_t> payload) {
  const std::vector<uint8_t> frame =
      EncodeFrame(type, request_id, config_.deadline_ms, payload);
  return sock_.SendAll(frame.data(), frame.size());
}

Result<Frame> Client::ReadFrame(uint64_t expect_request_id) {
  uint8_t header_bytes[kFrameHeaderSize];
  SIMJOIN_RETURN_NOT_OK(sock_.RecvAll(header_bytes, sizeof(header_bytes)));
  Frame frame;
  SIMJOIN_RETURN_NOT_OK(DecodeFrameHeader(header_bytes,
                                          config_.max_frame_payload,
                                          &frame.header));
  frame.payload.resize(frame.header.payload_size);
  if (!frame.payload.empty()) {
    SIMJOIN_RETURN_NOT_OK(
        sock_.RecvAll(frame.payload.data(), frame.payload.size()));
  }
  if (frame.header.request_id != expect_request_id) {
    return Status::IoError(
        "response for request " + std::to_string(frame.header.request_id) +
        " while awaiting " + std::to_string(expect_request_id) +
        " (stream out of sync)");
  }
  return frame;
}

Result<Frame> Client::Roundtrip(FrameType type,
                                std::span<const uint8_t> payload) {
  for (size_t attempt = 0; attempt <= config_.max_retries; ++attempt) {
    const uint64_t id = next_request_id_++;
    SIMJOIN_RETURN_NOT_OK(SendRequest(type, id, payload));
    SIMJOIN_ASSIGN_OR_RETURN(Frame frame, ReadFrame(id));
    if (frame.header.type == FrameType::kRetryAfter) {
      RetryAfterResponse retry;
      SIMJOIN_RETURN_NOT_OK(ParseRetryAfterResponse(frame.payload, &retry));
      ++retries_;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(retry.retry_after_ms));
      continue;
    }
    if (frame.header.type == FrameType::kError) {
      Status remote = Status::OK();
      SIMJOIN_RETURN_NOT_OK(ParseErrorResponse(frame.payload, &remote));
      return remote;
    }
    return frame;
  }
  return Status::Unavailable("server still overloaded after " +
                             std::to_string(config_.max_retries) +
                             " retries");
}

Result<BuildIndexResponse> Client::BuildIndex(
    const BuildIndexRequest& request) {
  SIMJOIN_ASSIGN_OR_RETURN(
      Frame frame,
      Roundtrip(FrameType::kBuildIndex,
                WithTrace(request.trace, EncodeBuildIndexRequest(request))));
  if (frame.header.type != FrameType::kBuildIndexOk) {
    return Status::IoError("unexpected response frame type " +
                           std::to_string(uint8_t(frame.header.type)));
  }
  BuildIndexResponse resp;
  SIMJOIN_RETURN_NOT_OK(ParseBuildIndexResponse(frame.payload, &resp));
  return resp;
}

Result<RangeQueryResponse> Client::RangeQuery(
    const RangeQueryRequest& request) {
  SIMJOIN_ASSIGN_OR_RETURN(
      Frame frame,
      Roundtrip(FrameType::kRangeQuery,
                WithTrace(request.trace, EncodeRangeQueryRequest(request))));
  if (frame.header.type != FrameType::kRangeQueryResult) {
    return Status::IoError("unexpected response frame type " +
                           std::to_string(uint8_t(frame.header.type)));
  }
  RangeQueryResponse resp;
  SIMJOIN_RETURN_NOT_OK(ParseRangeQueryResponse(frame.payload, &resp));
  return resp;
}

Result<std::vector<PointId>> Client::RangeQueryOne(
    const std::string& name, std::span<const float> query, double epsilon) {
  RangeQueryRequest req;
  req.name = name;
  req.epsilon = epsilon;
  req.dims = static_cast<uint32_t>(query.size());
  req.queries.assign(query.begin(), query.end());
  SIMJOIN_ASSIGN_OR_RETURN(RangeQueryResponse resp, RangeQuery(req));
  if (resp.results.size() != 1) {
    return Status::IoError("expected one result list, got " +
                           std::to_string(resp.results.size()));
  }
  return std::move(resp.results[0]);
}

Result<JoinDone> Client::SimilarityJoin(const SimilarityJoinRequest& request,
                                        PairSink* sink) {
  const std::vector<uint8_t> payload =
      WithTrace(request.trace, EncodeSimilarityJoinRequest(request));
  for (size_t attempt = 0; attempt <= config_.max_retries; ++attempt) {
    const uint64_t id = next_request_id_++;
    SIMJOIN_RETURN_NOT_OK(SendRequest(FrameType::kSimilarityJoin, id, payload));
    // kRetryAfter / kError can only arrive before the first chunk: the
    // server admits or rejects a join before it starts streaming.
    bool streamed = false;
    while (true) {
      SIMJOIN_ASSIGN_OR_RETURN(Frame frame, ReadFrame(id));
      switch (frame.header.type) {
        case FrameType::kJoinChunk: {
          JoinChunk chunk;
          SIMJOIN_RETURN_NOT_OK(ParseJoinChunk(frame.payload, &chunk));
          if (sink != nullptr) sink->EmitBatch(chunk.pairs);
          streamed = true;
          break;
        }
        case FrameType::kJoinDone: {
          JoinDone done;
          SIMJOIN_RETURN_NOT_OK(ParseJoinDone(frame.payload, &done));
          return done;
        }
        case FrameType::kRetryAfter: {
          if (streamed) {
            return Status::IoError("kRetryAfter after join chunks");
          }
          RetryAfterResponse retry;
          SIMJOIN_RETURN_NOT_OK(
              ParseRetryAfterResponse(frame.payload, &retry));
          ++retries_;
          std::this_thread::sleep_for(
              std::chrono::milliseconds(retry.retry_after_ms));
          break;
        }
        case FrameType::kError: {
          Status remote = Status::OK();
          SIMJOIN_RETURN_NOT_OK(ParseErrorResponse(frame.payload, &remote));
          return remote;
        }
        default:
          return Status::IoError("unexpected response frame type " +
                                 std::to_string(uint8_t(frame.header.type)));
      }
      if (frame.header.type == FrameType::kRetryAfter) break;  // resend
    }
  }
  return Status::Unavailable("server still overloaded after " +
                             std::to_string(config_.max_retries) +
                             " retries");
}

Result<InsertResponse> Client::Insert(const InsertRequest& request) {
  SIMJOIN_ASSIGN_OR_RETURN(
      Frame frame,
      Roundtrip(FrameType::kInsert,
                WithTrace(request.trace, EncodeInsertRequest(request))));
  if (frame.header.type != FrameType::kInsertOk) {
    return Status::IoError("unexpected response frame type " +
                           std::to_string(uint8_t(frame.header.type)));
  }
  InsertResponse resp;
  SIMJOIN_RETURN_NOT_OK(ParseInsertResponse(frame.payload, &resp));
  return resp;
}

Result<RemoveResponse> Client::Remove(const RemoveRequest& request) {
  SIMJOIN_ASSIGN_OR_RETURN(
      Frame frame,
      Roundtrip(FrameType::kRemove,
                WithTrace(request.trace, EncodeRemoveRequest(request))));
  if (frame.header.type != FrameType::kRemoveOk) {
    return Status::IoError("unexpected response frame type " +
                           std::to_string(uint8_t(frame.header.type)));
  }
  RemoveResponse resp;
  SIMJOIN_RETURN_NOT_OK(ParseRemoveResponse(frame.payload, &resp));
  return resp;
}

Result<FlushResponse> Client::Flush(const std::string& name) {
  FlushRequest req;
  req.name = name;
  SIMJOIN_ASSIGN_OR_RETURN(
      Frame frame,
      Roundtrip(FrameType::kFlush,
                WithTrace(req.trace, EncodeFlushRequest(req))));
  if (frame.header.type != FrameType::kFlushOk) {
    return Status::IoError("unexpected response frame type " +
                           std::to_string(uint8_t(frame.header.type)));
  }
  FlushResponse resp;
  SIMJOIN_RETURN_NOT_OK(ParseFlushResponse(frame.payload, &resp));
  return resp;
}

Result<DropIndexResponse> Client::DropIndex(const std::string& name) {
  DropIndexRequest req;
  req.name = name;
  SIMJOIN_ASSIGN_OR_RETURN(
      Frame frame,
      Roundtrip(FrameType::kDropIndex, EncodeDropIndexRequest(req)));
  if (frame.header.type != FrameType::kDropIndexOk) {
    return Status::IoError("unexpected response frame type " +
                           std::to_string(uint8_t(frame.header.type)));
  }
  DropIndexResponse resp;
  SIMJOIN_RETURN_NOT_OK(ParseDropIndexResponse(frame.payload, &resp));
  return resp;
}

Result<StatsResponse> Client::GetStats(bool drain_slowlog) {
  StatsRequest req;
  req.drain_slowlog = drain_slowlog;
  SIMJOIN_ASSIGN_OR_RETURN(
      Frame frame, Roundtrip(FrameType::kStats, EncodeStatsRequest(req)));
  if (frame.header.type != FrameType::kStatsResult) {
    return Status::IoError("unexpected response frame type " +
                           std::to_string(uint8_t(frame.header.type)));
  }
  StatsResponse resp;
  SIMJOIN_RETURN_NOT_OK(ParseStatsResponse(frame.payload, &resp));
  return resp;
}

Status Client::Ping() {
  SIMJOIN_ASSIGN_OR_RETURN(Frame frame, Roundtrip(FrameType::kPing, {}));
  if (frame.header.type != FrameType::kPong) {
    return Status::IoError("unexpected response frame type " +
                           std::to_string(uint8_t(frame.header.type)));
  }
  return Status::OK();
}

Status Client::Shutdown() {
  SIMJOIN_ASSIGN_OR_RETURN(Frame frame, Roundtrip(FrameType::kShutdown, {}));
  if (frame.header.type != FrameType::kShutdownOk) {
    return Status::IoError("unexpected response frame type " +
                           std::to_string(uint8_t(frame.header.type)));
  }
  return Status::OK();
}

}  // namespace simjoin
