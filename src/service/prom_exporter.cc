#include "service/prom_exporter.h"

#include <poll.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/net.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"

namespace simjoin {
namespace {

/// A scraper that trickles its request slower than this is dropped; the
/// endpoint is for local Prometheus scrapes, not arbitrary HTTP clients.
constexpr int kReadTimeoutMs = 2'000;
/// More request bytes than any sane "GET /metrics HTTP/1.1" + headers.
constexpr size_t kMaxRequestBytes = 8 * 1024;

/// Reads until a blank line ends the header block (or timeout/overflow).
/// Returns false when the request never completed; the caller just closes.
bool ReadRequest(TcpSocket* sock, std::string* request) {
  request->clear();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(kReadTimeoutMs);
  char buf[1024];
  while (request->find("\r\n\r\n") == std::string::npos &&
         request->find("\n\n") == std::string::npos) {
    if (request->size() > kMaxRequestBytes) return false;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    pollfd pfd{sock->fd(), POLLIN, 0};
    const int timeout = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count());
    if (::poll(&pfd, 1, timeout) <= 0) return false;
    size_t n = 0;
    bool eof = false;
    if (!sock->RecvSome(buf, sizeof(buf), &n, &eof).ok()) return false;
    if (eof) return false;
    request->append(buf, n);
  }
  return true;
}

std::string HttpResponse(const char* status_line, const std::string& body,
                         const char* content_type) {
  std::string resp = "HTTP/1.1 ";
  resp += status_line;
  resp += "\r\nContent-Type: ";
  resp += content_type;
  resp += "\r\nContent-Length: " + std::to_string(body.size());
  resp += "\r\nConnection: close\r\n\r\n";
  resp += body;
  return resp;
}

void ServeOne(TcpSocket sock) {
  std::string request;
  if (!ReadRequest(&sock, &request)) return;
  const size_t line_end = request.find_first_of("\r\n");
  const std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);
  std::string response;
  if (line == "GET /metrics HTTP/1.1" || line == "GET /metrics HTTP/1.0" ||
      line == "GET /metrics") {
    response = HttpResponse(
        "200 OK", obs::RenderPrometheusText(obs::GlobalMetrics().Snapshot()),
        "text/plain; version=0.0.4; charset=utf-8");
  } else {
    response = HttpResponse("404 Not Found", "only GET /metrics is served\n",
                            "text/plain; charset=utf-8");
  }
  // Best effort: a scraper that hung up mid-response is its own problem.
  sock.SetNonBlocking(false);
  (void)sock.SendAll(response.data(), response.size());
}

}  // namespace

struct PromExporter::Impl {
  TcpListener listener;
  WakePipe wake;
  std::thread thread;
  std::atomic<bool> stop{false};

  void Loop() {
    while (!stop.load(std::memory_order_relaxed)) {
      pollfd pfds[2] = {{listener.fd(), POLLIN, 0},
                        {wake.read_fd(), POLLIN, 0}};
      if (::poll(pfds, 2, -1) < 0) continue;
      if (pfds[1].revents != 0) wake.Drain();
      if (stop.load(std::memory_order_relaxed)) return;
      if (pfds[0].revents == 0) continue;
      // Accept everything pending; each scrape is served synchronously on
      // this thread (responses are one snapshot render, milliseconds at
      // most, and Prometheus scrapes are sequential anyway).
      while (true) {
        auto accepted = listener.Accept();
        if (!accepted.ok() || !accepted.value().valid()) break;
        ServeOne(std::move(accepted.value()));
      }
    }
  }
};

PromExporter::PromExporter() : impl_(new Impl) {}

PromExporter::~PromExporter() { Shutdown(); }

Result<std::unique_ptr<PromExporter>> PromExporter::Start(
    const std::string& host, uint16_t port) {
  std::unique_ptr<PromExporter> exporter(new PromExporter());
  SIMJOIN_RETURN_NOT_OK(exporter->impl_->listener.Listen(host, port));
  SIMJOIN_RETURN_NOT_OK(exporter->impl_->wake.Open());
  Impl* impl = exporter->impl_.get();
  impl->thread = std::thread([impl] { impl->Loop(); });
  return exporter;
}

uint16_t PromExporter::port() const { return impl_->listener.port(); }

void PromExporter::Shutdown() {
  if (impl_ == nullptr || !impl_->thread.joinable()) return;
  impl_->stop.store(true, std::memory_order_relaxed);
  impl_->wake.Notify();
  impl_->thread.join();
  impl_->listener.Close();
}

}  // namespace simjoin
