// Wire protocol of the similarity-join query service.
//
// Every message is one length-prefixed frame: a fixed 24-byte header
// (magic, version, type, payload size, deadline, request id) followed by a
// type-specific little-endian payload.  The codec is defensive by design —
// it is the part of the server that touches attacker-controlled bytes — so
// every read goes through the bounds-checked WireReader cursor and every
// malformed input returns a Status; no parser CHECKs, throws, or over-reads
// (tools/fuzz_protocol.cpp soaks exactly this property).  The one CHECK in
// this file sits on the *encode* side: EncodeFrame refuses to truncate a
// payload past the u32 size field, which only local logic bugs can reach
// (the server caps response payloads at max_frame_payload first).
//
//   frame  := header payload
//   header := magic:u32 version:u8 type:u8 reserved:u16
//             payload_size:u32 deadline_ms:u32 request_id:u64
//
// Integers are little-endian; f32/f64 are IEEE-754 bit patterns carried as
// u32/u64.  Requests stream client -> server; a request is answered by
// exactly one terminal response frame with the same request_id, optionally
// preceded by zero or more kJoinChunk frames (SimilarityJoin streams its
// result pairs).  See docs/service.md for the full layout of every payload.

#ifndef SIMJOIN_SERVICE_PROTOCOL_H_
#define SIMJOIN_SERVICE_PROTOCOL_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/pair_sink.h"
#include "common/status.h"
#include "core/ekdb_config.h"
#include "core/epsilon_grid.h"
#include "core/index_backend.h"
#include "obs/metrics.h"
#include "obs/request_context.h"
#include "obs/slow_query_log.h"

namespace simjoin {

/// First four bytes of every frame: "SJWP" (simjoin wire protocol).
inline constexpr uint32_t kWireMagic = 0x53'4a'57'50;
/// Protocol revision; bumped on any incompatible layout change.
inline constexpr uint8_t kWireVersion = 1;
/// Bytes of the fixed frame header.
inline constexpr size_t kFrameHeaderSize = 24;
/// Default ceiling on one frame's payload (guards the decoder against
/// hostile length fields; BuildIndex of 100k x 16 floats is ~6.4 MB).
inline constexpr uint32_t kDefaultMaxFramePayload = 256u << 20;

/// Frame type tags.  Requests are < 64, responses >= 64, so each side can
/// reject frames from the wrong direction outright.
enum class FrameType : uint8_t {
  // Requests (client -> server).
  kBuildIndex = 1,      ///< upload points, build + register a named index
  kRangeQuery = 2,      ///< batched eps-range queries against one index
  kSimilarityJoin = 3,  ///< self- or cross-join, result pairs streamed
  kStats = 4,           ///< server + registry counters
  kShutdown = 5,        ///< orderly server stop
  kDropIndex = 6,       ///< evict one named index
  kPing = 7,            ///< liveness probe
  kInsert = 8,          ///< append points to an updatable index's delta tier
  kRemove = 9,          ///< tombstone points in an updatable index
  kFlush = 10,          ///< force a synchronous compaction of the delta tier

  // Responses (server -> client).
  kBuildIndexOk = 64,
  kRangeQueryResult = 65,
  kJoinChunk = 66,  ///< non-terminal: one run of result pairs
  kJoinDone = 67,   ///< terminal: pair total + JoinStats
  kStatsResult = 68,
  kShutdownOk = 69,
  kDropIndexOk = 70,
  kPong = 71,
  kInsertOk = 72,
  kRemoveOk = 73,
  kFlushOk = 74,
  kError = 126,      ///< terminal failure: wire StatusCode + message
  kRetryAfter = 127, ///< admission queue full; retry after the given delay
};

/// True for tags a conforming peer may put on the wire.
bool IsKnownFrameType(uint8_t tag);
/// True for request tags (client -> server direction).
bool IsRequestFrameType(FrameType type);

/// Decoded fixed header of one frame.
struct FrameHeader {
  FrameType type = FrameType::kPing;
  uint32_t payload_size = 0;
  uint32_t deadline_ms = 0;  ///< 0 = no deadline
  uint64_t request_id = 0;
};

/// One complete frame.
struct Frame {
  FrameHeader header;
  std::vector<uint8_t> payload;
};

// ---------------------------------------------------------------------------
// Primitive codec
// ---------------------------------------------------------------------------

/// Append-only little-endian serialiser.
class WireWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(v); }
  void U16(uint16_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);
  void F32(float v);
  void F64(double v);
  void Bytes(const void* data, size_t len);
  /// u32 length prefix + raw bytes.
  void String(const std::string& s);
  /// Raw float array, no length prefix (callers encode counts themselves).
  void FloatArray(std::span<const float> values);

  const std::vector<uint8_t>& buffer() const { return buf_; }
  std::vector<uint8_t> Take() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

/// Bounds-checked little-endian cursor over one payload.  Every accessor
/// fails with OutOfRange instead of reading past the end.
class WireReader {
 public:
  explicit WireReader(std::span<const uint8_t> data) : data_(data) {}

  Status U8(uint8_t* v);
  Status U16(uint16_t* v);
  Status U32(uint32_t* v);
  Status U64(uint64_t* v);
  Status F32(float* v);
  Status F64(double* v);
  /// u32 length prefix + bytes; lengths above max_len are rejected.
  Status String(std::string* s, uint32_t max_len = 4096);
  /// Reads exactly count floats.
  Status FloatArray(size_t count, std::vector<float>* out);

  size_t remaining() const { return data_.size() - pos_; }
  /// Fails unless the cursor consumed the payload exactly — trailing bytes
  /// in a parsed message are a framing bug, not padding.
  Status ExpectEnd() const;

 private:
  Status Need(size_t n) const;

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Frame encode / decode
// ---------------------------------------------------------------------------

/// Serialises one complete frame (header + payload) ready to send.
std::vector<uint8_t> EncodeFrame(FrameType type, uint64_t request_id,
                                 uint32_t deadline_ms,
                                 std::span<const uint8_t> payload);

/// Parses and validates one fixed header from exactly kFrameHeaderSize
/// bytes (magic, version, known type, payload bound).
Status DecodeFrameHeader(std::span<const uint8_t> bytes, uint32_t max_payload,
                         FrameHeader* out);

/// Incremental frame extractor over a byte stream.  Feed arbitrary chunks
/// with Append, then call Next until it reports "no complete frame yet".
/// Any error is sticky: the stream is corrupt and the connection should be
/// closed (frame boundaries can no longer be trusted).
class FrameDecoder {
 public:
  explicit FrameDecoder(uint32_t max_payload = kDefaultMaxFramePayload)
      : max_payload_(max_payload) {}

  void Append(const uint8_t* data, size_t len);

  /// Extracts the next complete frame into *out.  *got is false when more
  /// bytes are needed.  Returns the sticky decode error, if any.
  Status Next(Frame* out, bool* got);

  /// Bytes buffered but not yet consumed by complete frames.
  size_t buffered_bytes() const { return buf_.size() - consumed_; }

 private:
  uint32_t max_payload_;
  std::vector<uint8_t> buf_;
  size_t consumed_ = 0;  // prefix of buf_ already handed out as frames
  Status error_;
};

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

/// Longest accepted index name.
inline constexpr uint32_t kMaxIndexNameLen = 256;

// ---------------------------------------------------------------------------
// Trace-context request extension
// ---------------------------------------------------------------------------

/// Trailing magic byte of the trace-context suffix ('T').  The suffix is
/// appended *after* every other optional extension, so parsers detect it
/// by exact surplus size plus this byte — a legacy payload whose natural
/// tail happens to be 10 bytes longer is impossible by construction on
/// every frame that carries the extension (see each parser's size
/// arithmetic), and the magic catches stream corruption.
inline constexpr uint8_t kWireTraceMagic = 0x54;
/// Suffix layout: trace_id:u64 flags:u8 magic:u8.
inline constexpr size_t kWireTraceExtBytes = 10;
/// flags bit 0: request an EXPLAIN ANALYZE profile in the response.
inline constexpr uint8_t kTraceFlagProfile = 0x01;

/// Optional per-request trace context (docs/observability.md).  Legacy
/// frames (present == false) are byte-identical to the pre-extension wire
/// shape.  The client attaches a generated context to every request that
/// does not already carry one, so server logs and traces can always name
/// the request they belong to.
struct TraceContext {
  bool present = false;
  uint64_t trace_id = 0;
  uint8_t flags = 0;

  bool profile() const { return (flags & kTraceFlagProfile) != 0; }

  bool operator==(const TraceContext&) const = default;
};

/// Process-unique nonzero trace id (random base + counter).
uint64_t GenerateTraceId();

/// Appends the 10-byte trace suffix to an already encoded request payload
/// (no-op when ctx.present is false).  The client uses this to stamp
/// requests without re-encoding them.
void AppendTraceContext(const TraceContext& ctx, std::vector<uint8_t>* payload);

struct BuildIndexRequest {
  std::string name;
  EkdbConfig config;
  uint32_t num_threads = 1;  ///< build parallelism; 0 = server default
  uint32_t dims = 0;
  std::vector<float> points;  ///< row-major, points.size() == n * dims
  /// Index structure to build.  Encoded as one trailing byte only when not
  /// the default, so default builds keep the original wire shape (and old
  /// servers keep accepting them); old servers reject grid builds with a
  /// payload-mismatch error instead of misbuilding them.  Only buildable
  /// kinds (tree, grid) are valid; the server rejects the rest.
  BackendKind backend = BackendKind::kEkdbFlat;
  /// Build the index *externally* (sort runs + merge on disk, core/
  /// segment_builder.h) and serve it memory-mapped instead of heap-built —
  /// for datasets larger than the registry budget.  Encoded as a second
  /// trailing byte after the backend byte (payload tail % 4 == 2), so
  /// legacy frames keep their shape and old servers reject on-disk builds
  /// with a payload-mismatch error instead of silently heap-building them.
  /// Requires the tree backend and a server started with a spill dir.
  bool on_disk = false;
  /// Optional trace context, appended after the backend/on_disk tail.
  TraceContext trace;
};

struct BuildIndexResponse {
  uint32_t num_points = 0;
  uint32_t dims = 0;
  uint64_t index_bytes = 0;   ///< dataset + flat tree footprint
  uint64_t registry_bytes = 0;
  uint32_t evicted = 0;       ///< LRU entries evicted to admit this index
  double build_seconds = 0.0;
};

struct RangeQueryRequest {
  std::string name;
  double epsilon = 0.0;  ///< 0 = the index's build epsilon
  uint32_t dims = 0;
  std::vector<float> queries;  ///< row-major, queries.size() == count * dims
  /// Planner extension, encoded as 9 trailing bytes (recall:f64 backend:u8)
  /// after the float block only when has_planner — the query count is an
  /// explicit header field, so old servers reject extended payloads with a
  /// mismatch error and old clients' frames still parse as legacy.
  bool has_planner = false;
  /// Recall target in (0, 1].  1 = exact answer (planner may still switch
  /// among exact backends); < 1 admits the LSH tier.
  double recall = 1.0;
  /// BackendKind wire byte forcing one backend, or kWireBackendAuto to let
  /// the cost-based planner choose.
  uint8_t backend = kWireBackendAuto;
  /// Optional trace context, appended after the planner extension.  The
  /// profile flag asks for the EXPLAIN ANALYZE response extension.
  TraceContext trace;
};

struct RangeQueryResponse {
  /// results[i] = ids within epsilon of query i.  Legacy requests: index
  /// traversal order (identical to FlatEkdbTree::RangeQuery on the same
  /// snapshot).  Planner-extension requests: ascending id order — the
  /// canonical form, so the bytes do not depend on which exact backend the
  /// planner routed to.
  std::vector<std::vector<PointId>> results;
  JoinStats stats;  ///< summed over the batch
  /// Planner extension, echoed (10 trailing bytes: achieved_recall:f64
  /// backend_used:u8 cache_hit:u8) only when the request carried it.
  bool has_planner = false;
  /// Estimated recall achieved over the batch (1.0 on exact routes).
  double achieved_recall = 1.0;
  /// BackendKind wire byte of the backend that served the batch.
  uint8_t backend_used = 0;
  bool plan_cache_hit = false;
  /// EXPLAIN ANALYZE extension: the request's phase tree, appended after
  /// the planner extension as [profile][len:u32][magic 'P'] and detected
  /// from the payload tail — only present when the request set the
  /// profile flag in its trace context.
  bool has_profile = false;
  obs::RequestProfile profile;
};

struct SimilarityJoinRequest {
  std::string name_a;
  std::string name_b;        ///< empty = self-join of name_a
  double epsilon = 0.0;      ///< 0 = build epsilon
  uint32_t num_threads = 1;  ///< join parallelism; 0 = server default
  uint32_t chunk_pairs = 0;  ///< pairs per kJoinChunk frame; 0 = server default
  TraceContext trace;
};

struct JoinChunk {
  std::vector<IdPair> pairs;
};

struct JoinDone {
  uint64_t total_pairs = 0;
  JoinStats stats;
};

// Live-update messages (docs/updates.md).  All three target an index built
// with the updatable backend; the server answers updates against any other
// backend (or an unknown name) with kError, never by mutating a snapshot.

struct InsertRequest {
  std::string name;
  uint32_t dims = 0;
  std::vector<float> rows;  ///< row-major, rows.size() == count * dims
  TraceContext trace;
};

struct InsertResponse {
  PointId first_id = 0;      ///< ids assigned are [first_id, first_id+count)
  uint32_t count = 0;
  uint64_t delta_points = 0;  ///< delta-tier size after the insert
  uint64_t tombstones = 0;
};

struct RemoveRequest {
  std::string name;
  std::vector<PointId> ids;
  TraceContext trace;
};

struct RemoveResponse {
  uint32_t removed = 0;  ///< ids that were live and are now tombstoned
  uint32_t missing = 0;  ///< ids unknown or already removed (not an error)
  uint64_t delta_points = 0;
  uint64_t tombstones = 0;
};

struct FlushRequest {
  std::string name;
  TraceContext trace;
};

struct FlushResponse {
  bool compacted = false;  ///< false when there was nothing to fold in
  uint64_t base_points = 0;
  uint64_t delta_points = 0;  ///< 0 unless concurrent inserts raced the flush
  uint64_t tombstones = 0;
  uint64_t index_bytes = 0;
};

struct DropIndexRequest {
  std::string name;
};

struct DropIndexResponse {
  bool found = false;
};

/// One registry entry in a stats response.
struct IndexInfo {
  std::string name;
  uint32_t num_points = 0;
  uint32_t dims = 0;
  uint64_t bytes = 0;
  uint64_t hits = 0;
  double epsilon = 0.0;
  Metric metric = Metric::kL2;
};

/// kStats payload.  A legacy (empty) payload behaves as all-false flags.
struct StatsRequest {
  /// Drain the server's slow-query ring into the response (entries are
  /// removed server-side — repeated drains return only new entries).
  bool drain_slowlog = false;
};

struct StatsResponse {
  uint64_t accepted_connections = 0;
  uint64_t active_connections = 0;
  uint64_t requests_admitted = 0;
  uint64_t requests_rejected = 0;   ///< backpressure (kRetryAfter) rejections
  uint64_t deadline_expired = 0;
  uint64_t decode_errors = 0;
  uint64_t pairs_streamed = 0;
  uint64_t registry_byte_budget = 0;
  uint64_t registry_bytes = 0;
  uint64_t registry_evictions = 0;
  std::vector<IndexInfo> indexes;
  /// Payload rev 2: full metrics-registry snapshot appended after the index
  /// list.  A rev-1 payload simply ends after the indexes, so old clients
  /// ignore the block and new clients parse rev-1 responses with
  /// has_metrics == false — no frame-version bump needed.
  bool has_metrics = false;
  obs::MetricsSnapshot metrics;
  /// Payload rev 3, appended after the metrics block only when the request
  /// asked for a slow-query drain (same absent-block backwards rule).
  bool has_slowlog = false;
  std::vector<obs::SlowQueryEntry> slowlog;
  uint64_t slowlog_recorded = 0;  ///< entries ever recorded server-side
  uint64_t slowlog_evicted = 0;   ///< entries lost to the ring bound
};

struct ErrorResponse {
  StatusCode code = StatusCode::kInternal;
  std::string message;
};

struct RetryAfterResponse {
  uint32_t retry_after_ms = 0;
};

// Payload encoders (frame body only; wrap with EncodeFrame) and parsers.
// Parsers validate structure — string bounds, float-count consistency,
// exact payload consumption — but not semantics (unknown index names etc.
// are the server's job).
std::vector<uint8_t> EncodeBuildIndexRequest(const BuildIndexRequest& req);
Status ParseBuildIndexRequest(std::span<const uint8_t> payload,
                              BuildIndexRequest* out);

std::vector<uint8_t> EncodeBuildIndexResponse(const BuildIndexResponse& resp);
Status ParseBuildIndexResponse(std::span<const uint8_t> payload,
                               BuildIndexResponse* out);

std::vector<uint8_t> EncodeRangeQueryRequest(const RangeQueryRequest& req);
Status ParseRangeQueryRequest(std::span<const uint8_t> payload,
                              RangeQueryRequest* out);

std::vector<uint8_t> EncodeRangeQueryResponse(const RangeQueryResponse& resp);
Status ParseRangeQueryResponse(std::span<const uint8_t> payload,
                               RangeQueryResponse* out);

std::vector<uint8_t> EncodeSimilarityJoinRequest(
    const SimilarityJoinRequest& req);
Status ParseSimilarityJoinRequest(std::span<const uint8_t> payload,
                                  SimilarityJoinRequest* out);

std::vector<uint8_t> EncodeJoinChunk(std::span<const IdPair> pairs);
Status ParseJoinChunk(std::span<const uint8_t> payload, JoinChunk* out);

std::vector<uint8_t> EncodeJoinDone(const JoinDone& done);
Status ParseJoinDone(std::span<const uint8_t> payload, JoinDone* out);

std::vector<uint8_t> EncodeInsertRequest(const InsertRequest& req);
Status ParseInsertRequest(std::span<const uint8_t> payload,
                          InsertRequest* out);

std::vector<uint8_t> EncodeInsertResponse(const InsertResponse& resp);
Status ParseInsertResponse(std::span<const uint8_t> payload,
                           InsertResponse* out);

std::vector<uint8_t> EncodeRemoveRequest(const RemoveRequest& req);
Status ParseRemoveRequest(std::span<const uint8_t> payload,
                          RemoveRequest* out);

std::vector<uint8_t> EncodeRemoveResponse(const RemoveResponse& resp);
Status ParseRemoveResponse(std::span<const uint8_t> payload,
                           RemoveResponse* out);

std::vector<uint8_t> EncodeFlushRequest(const FlushRequest& req);
Status ParseFlushRequest(std::span<const uint8_t> payload, FlushRequest* out);

std::vector<uint8_t> EncodeFlushResponse(const FlushResponse& resp);
Status ParseFlushResponse(std::span<const uint8_t> payload,
                          FlushResponse* out);

std::vector<uint8_t> EncodeDropIndexRequest(const DropIndexRequest& req);
Status ParseDropIndexRequest(std::span<const uint8_t> payload,
                             DropIndexRequest* out);

std::vector<uint8_t> EncodeDropIndexResponse(const DropIndexResponse& resp);
Status ParseDropIndexResponse(std::span<const uint8_t> payload,
                              DropIndexResponse* out);

std::vector<uint8_t> EncodeStatsRequest(const StatsRequest& req);
Status ParseStatsRequest(std::span<const uint8_t> payload, StatsRequest* out);

std::vector<uint8_t> EncodeStatsResponse(const StatsResponse& resp);
Status ParseStatsResponse(std::span<const uint8_t> payload,
                          StatsResponse* out);

std::vector<uint8_t> EncodeErrorResponse(const Status& status);
/// Reconstructs the Status an ErrorResponse carries.
Status ParseErrorResponse(std::span<const uint8_t> payload, Status* out);

std::vector<uint8_t> EncodeRetryAfterResponse(uint32_t retry_after_ms);
Status ParseRetryAfterResponse(std::span<const uint8_t> payload,
                               RetryAfterResponse* out);

/// JoinStats as 7 u64 fields (shared by several responses).
void EncodeJoinStats(const JoinStats& stats, WireWriter* w);
Status ParseJoinStats(WireReader* r, JoinStats* out);

// Defensive bounds for the Stats metrics block (hostile peers can claim
// arbitrary counts; parsers reject anything beyond these before allocating).
inline constexpr uint32_t kMaxMetricNameLen = 256;
inline constexpr uint32_t kMaxMetricsPerKind = 4096;
inline constexpr uint32_t kMaxHistogramBoundaries = 512;

/// Metrics snapshot as the rev-2 Stats block (also usable standalone; the
/// parser enforces the kMaxMetric* bounds above).
void EncodeMetricsSnapshot(const obs::MetricsSnapshot& snapshot,
                           WireWriter* w);
Status ParseMetricsSnapshot(WireReader* r, obs::MetricsSnapshot* out);

// ---------------------------------------------------------------------------
// EXPLAIN ANALYZE profile block
// ---------------------------------------------------------------------------

/// Trailing magic byte of the profile response extension ('P').  Layout on
/// kRangeQueryResult, after the optional planner extension:
/// [profile bytes][profile_len:u32][magic:u8].  Detected from the payload
/// tail; the planner extension's last byte (a 0/1 cache-hit flag) can
/// never equal the magic, so the two tails stay distinguishable.
inline constexpr uint8_t kWireProfileMagic = 0x50;
/// Length + magic framing bytes past the profile body.
inline constexpr size_t kWireProfileFrameBytes = 5;
/// Longest accepted phase/counter name and plan string on the parse side.
inline constexpr uint32_t kMaxProfileNameLen = 256;
inline constexpr uint32_t kMaxProfilePlanLen = 1024;

/// RequestProfile body (trace id, plan, node tree, counters).  The parser
/// enforces obs::kMaxProfileNodes / kMaxProfileCounters and the name
/// bounds above before allocating.
void EncodeRequestProfile(const obs::RequestProfile& profile, WireWriter* w);
Status ParseRequestProfile(WireReader* r, obs::RequestProfile* out);

/// Slow-query entries as the rev-3 Stats block.
void EncodeSlowQueryEntry(const obs::SlowQueryEntry& entry, WireWriter* w);
Status ParseSlowQueryEntry(WireReader* r, obs::SlowQueryEntry* out);

}  // namespace simjoin

#endif  // SIMJOIN_SERVICE_PROTOCOL_H_
