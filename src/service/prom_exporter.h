// Read-only HTTP endpoint serving the global metric registry in Prometheus
// text exposition format.
//
// `simjoin_server --prom-port N` starts one of these next to the wire
// server: a single poll thread accepts connections, reads one HTTP request
// line, and answers GET /metrics with RenderPrometheusText over a fresh
// MetricsSnapshot (anything else gets 404).  Connections are closed after
// each response — scrapers reconnect per scrape, and keeping the endpoint
// connectionless means a stuck scraper can never pin server memory.
//
// The exporter shares nothing with the wire server except the process-wide
// metric registry, so it can be scraped mid-load without touching request
// paths (Snapshot takes the registry mutex briefly; handlers never hold it
// across work).

#ifndef SIMJOIN_SERVICE_PROM_EXPORTER_H_
#define SIMJOIN_SERVICE_PROM_EXPORTER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"

namespace simjoin {

class PromExporter {
 public:
  /// Binds host:port (port 0 = ephemeral, read back via port()) and starts
  /// the serving thread.
  static Result<std::unique_ptr<PromExporter>> Start(const std::string& host,
                                                     uint16_t port);

  ~PromExporter();
  PromExporter(const PromExporter&) = delete;
  PromExporter& operator=(const PromExporter&) = delete;

  uint16_t port() const;

  /// Stops the serving thread and closes the listener.  Idempotent; also
  /// run by the destructor.
  void Shutdown();

 private:
  PromExporter();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace simjoin

#endif  // SIMJOIN_SERVICE_PROM_EXPORTER_H_
