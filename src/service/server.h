// Poll-based TCP server for the similarity-join query service.
//
// Architecture (see docs/service.md for the ops view):
//
//   accept -> io threads -> admission gate -> worker pool -> io threads
//
// A small set of I/O threads each own a poll() loop over a disjoint subset
// of connections: they read bytes, run the frame decoder, and flush queued
// response bytes.  Complete request frames pass an admission gate — a
// bounded count of in-flight requests — and are dispatched as tasks onto the
// shared work-stealing ThreadPool, which executes them against immutable
// IndexRegistry snapshots and enqueues response frames back on the
// connection (waking its io thread through a self-pipe).  When the gate is
// full the io thread answers kRetryAfter immediately instead of queueing —
// overload sheds load in O(1) with a client-visible retry hint rather than
// by letting latency grow without bound.  Each request may carry a deadline;
// a request that expires while queued is answered kError/DEADLINE_EXCEEDED
// without touching the index.
//
// Client-supplied resource parameters are clamped server-side: thread
// counts to the worker-pool size, chunk sizes to kMaxJoinChunkPairs, and
// response payloads to max_frame_payload — a hostile request can make the
// server do bounded work, never spawn unbounded threads or allocations.
// Streamed join chunks obey per-connection write backpressure: once
// max_conn_queued_bytes of responses are queued unsent, the producing
// worker blocks until the client drains (or the stall timeout declares the
// connection dead and discards its queue), so a slow reader bounds server
// memory instead of buffering its whole result set.
//
// Query execution never locks the registry for longer than a map lookup:
// handlers copy out a shared_ptr snapshot and run lock-free against it, so
// concurrent BuildIndex requests (which insert new snapshots) neither block
// nor are blocked by running queries.  Responses are bit-identical to the
// in-process FlatEkdbTree APIs — same id order, same pair sequence, same
// JoinStats — which the loopback differential tests assert.

#ifndef SIMJOIN_SERVICE_SERVER_H_
#define SIMJOIN_SERVICE_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "service/protocol.h"
#include "service/registry.h"

namespace simjoin {

/// Hard ceiling on pairs per streamed kJoinChunk frame.  Client requests
/// beyond it are clamped, which bounds the per-chunk buffer no matter what
/// a hostile SimilarityJoinRequest asks for (2^20 pairs = 8 MB on the wire).
inline constexpr size_t kMaxJoinChunkPairs = 1u << 20;

/// Server tuning knobs.
struct ServerConfig {
  std::string host = "127.0.0.1";
  uint16_t port = 0;      ///< 0 = ephemeral; read back via Server::port()
  size_t io_threads = 1;  ///< poll loops decoding frames / flushing writes
  size_t worker_threads = 0;  ///< request executors; 0 = hardware concurrency

  /// Admission gate: at most this many requests dispatched-but-unanswered.
  /// Requests arriving beyond the bound get kRetryAfter instead of queueing.
  size_t max_inflight = 256;
  /// Retry hint sent with kRetryAfter rejections.
  uint32_t retry_after_ms = 20;

  /// Byte budget of the index registry (LRU-evicted beyond it).
  uint64_t registry_byte_budget = 4ull << 30;

  /// Directory for the registry's out-of-core tier: spilled index segment
  /// files, on-disk build artifacts, and external-sort temporaries.  Must
  /// be an existing writable directory.  Empty disables the tier: eviction
  /// destroys instead of demoting, and BuildIndex requests asking for an
  /// on-disk build are rejected with a clear error.
  std::string segment_spill_dir;

  /// Ceiling on one request frame's payload.  Also enforced on responses:
  /// a terminal response larger than this is replaced by kError/OUT_OF_RANGE
  /// telling the client to split its batch (never a truncated frame).
  uint32_t max_frame_payload = kDefaultMaxFramePayload;
  /// Result pairs per streamed kJoinChunk frame (when the request does not
  /// choose its own chunking).  Clamped to kMaxJoinChunkPairs either way.
  uint32_t join_chunk_pairs = 8192;

  /// Per-connection ceiling on queued-but-unsent response bytes.  Streamed
  /// join chunks block the producing worker at the ceiling until the client
  /// drains; at least one frame is always admitted so oversized single
  /// responses still flow.
  size_t max_conn_queued_bytes = 64u << 20;
  /// How long a streamed join may block on a client that has stopped
  /// reading before the connection is declared dead and its queued bytes
  /// are discarded (counted in write_stall_disconnects).
  uint32_t write_stall_timeout_ms = 30'000;

  /// Cross-connection range-query fusion.  Admitted kRangeQuery frames from
  /// ALL connections land in one fusion buffer; a dedicated collector thread
  /// flushes the buffer as one fused batch — executed with
  /// IndexSnapshot::RangeQueryBatch, which sorts the constituent leaf sweeps
  /// by arena position and runs one SIMD kernel over the whole batch — when
  /// either fusion_max_batch requests have accumulated or the oldest one has
  /// waited fusion_wait_us microseconds.  Per-request responses are
  /// bit-identical to unfused execution (same id order, same JoinStats), so
  /// fusion is purely a throughput/latency trade: under load, batches fill
  /// and amortise traversal + kernel dispatch; when idle, a lone query pays
  /// at most the wait budget.
  bool fusion_enabled = true;
  /// Flush when this many range queries are buffered (counts requests, each
  /// of which may carry several query points).
  size_t fusion_max_batch = 256;
  /// Flush when the oldest buffered request has waited this long (µs).
  uint32_t fusion_wait_us = 120;

  /// Slow-query log (docs/observability.md).  A request whose wall time
  /// (admission to response built) reaches this many microseconds — or that
  /// fails with any error — is recorded with its full phase profile into a
  /// bounded ring, drainable via the Stats RPC (`simjoin_client slowlog`).
  /// 0 disables recording entirely (the default: no per-request collector
  /// is ever allocated).
  uint64_t slow_query_us = 0;
  /// JSONL sink for slow-query entries (one JSON object per line); empty
  /// keeps them in the in-memory ring only.  Writes are rotation-safe
  /// (open-append-close per entry) and rate-limited.
  std::string slow_query_log_path;
  /// Ring capacity for drainable slow-query entries.
  size_t slow_query_capacity = 512;
  /// Ceiling on JSONL sink writes per second (ring recording is unlimited).
  uint64_t slow_query_sink_per_sec = 100;

  /// Test hook: sleep this long at the start of every worker-side request,
  /// so deadline and backpressure paths can be exercised deterministically.
  uint32_t handler_delay_ms_for_testing = 0;
};

/// Counter snapshot (monotonic except active_connections).
struct ServerCounters {
  uint64_t accepted_connections = 0;
  uint64_t active_connections = 0;
  uint64_t requests_admitted = 0;
  uint64_t requests_rejected = 0;
  uint64_t deadline_expired = 0;
  uint64_t decode_errors = 0;
  uint64_t pairs_streamed = 0;
  uint64_t write_stall_disconnects = 0;
  uint64_t fusion_batches = 0;       ///< fused batches executed
  uint64_t fusion_fused_queries = 0; ///< range-query requests routed through fusion
  uint64_t fusion_batch_full = 0;    ///< flushes triggered by a full buffer
  uint64_t fusion_wait_expired = 0;  ///< flushes triggered by the wait budget
};

/// Running service instance.  Start() binds and spins up the io threads;
/// the server runs until a kShutdown frame arrives or Shutdown() is called
/// locally; Wait() blocks until fully drained (all io threads joined, all
/// dispatched requests finished).
class Server {
 public:
  static Result<std::unique_ptr<Server>> Start(const ServerConfig& config);

  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Port actually bound (resolves an ephemeral request).
  uint16_t port() const;

  /// Initiates an orderly stop: stop accepting, answer nothing new, flush
  /// pending responses, then tear down.  Idempotent, callable from any
  /// thread (including request handlers).
  void Shutdown();

  /// Blocks until the server has fully stopped.
  void Wait();

  /// Point-in-time counters.
  ServerCounters counters() const;

  /// The index registry (pre-loading indexes before serving is fine).
  IndexRegistry& registry();

 private:
  Server();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace simjoin

#endif  // SIMJOIN_SERVICE_SERVER_H_
